#!/usr/bin/env python3
"""Perf regression gate over google-benchmark JSON output.

Compares a freshly measured microbenchmark run against the committed
baseline (bench/BENCH_baseline.json) and fails when any benchmark got
more than --threshold slower after correcting for overall machine
speed.

Machine-speed correction: CI runners and developer machines differ in
clock and cache by far more than any real regression, so raw times
cannot be compared across hosts. A fixed anchor benchmark
(--anchor, default BM_CacheAccess/32768: pure in-core cache-walk
arithmetic, untouched by replay-path changes) measures the host's
speed relative to the baseline host, and every comparison is scaled
by that factor. The gate therefore tests "did this benchmark slow
down relative to the others", which is host-independent.

Benchmarks present in only one file are reported and skipped, so
adding or renaming a benchmark does not require regenerating the
baseline in the same commit (but regenerate it when benchmarks'
workloads change meaning).

Exit status: 0 when no benchmark regressed, 1 otherwise, 2 on bad
input.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json
        [--threshold 1.20] [--anchor BM_CacheAccess/32768]
"""

import argparse
import json
import re
import sys


def load_times(path):
    """name -> real_time in ns from a google-benchmark JSON file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip mean/median/stddev aggregate rows; with
        # --benchmark_repetitions we take the minimum across the
        # iteration rows ourselves. The minimum is the standard
        # noise-robust estimator for a deterministic benchmark: other
        # tenants and scheduler waves only ever add time.
        if b.get("run_type") == "aggregate":
            continue
        ns = float(b["real_time"]) * unit_ns.get(
            b.get("time_unit", "ns"), 1.0)
        name = b.get("run_name", b["name"])
        times[name] = min(ns, times.get(name, ns))
    if not times:
        sys.exit(f"error: no benchmarks in {path}")
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.20,
                    help="fail when current > baseline * factor * "
                         "threshold (default 1.20)")
    ap.add_argument("--anchor", default="BM_CacheAccess/32768",
                    help="machine-speed anchor benchmark name")
    ap.add_argument("--skip", default=None, metavar="REGEX",
                    help="skip benchmarks matching REGEX (e.g. "
                         "multi-threaded arms whose wall time "
                         "measures the host's core count, not the "
                         "code)")
    args = ap.parse_args()
    skip = re.compile(args.skip) if args.skip else None

    base = load_times(args.baseline)
    cur = load_times(args.current)

    factor = 1.0
    if args.anchor in base and args.anchor in cur:
        factor = cur[args.anchor] / base[args.anchor]
        print(f"machine-speed factor ({args.anchor}): {factor:.3f}")
    else:
        print(f"warning: anchor {args.anchor} missing; comparing "
              "raw times", file=sys.stderr)

    regressed = []
    print(f"{'benchmark':<28} {'base':>10} {'scaled':>10} "
          f"{'current':>10} {'ratio':>7}")
    for name in sorted(base):
        if name == args.anchor:
            continue
        if skip and skip.search(name):
            print(f"{name:<28} {'(skipped by --skip)':>40}")
            continue
        if name not in cur:
            print(f"{name:<28} {'(missing from current run)':>40}")
            continue
        scaled = base[name] * factor
        ratio = cur[name] / scaled
        flag = " REGRESSED" if ratio > args.threshold else ""
        print(f"{name:<28} {base[name]:>10.0f} {scaled:>10.0f} "
              f"{cur[name]:>10.0f} {ratio:>7.2f}{flag}")
        if ratio > args.threshold:
            regressed.append((name, ratio))
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<28} {'(new; no baseline, skipped)':>40}")

    if regressed:
        print(f"\n{len(regressed)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, ratio in regressed:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
