/**
 * @file
 * nvmcache command-line driver: the library's functionality as a set
 * of composable subcommands, for users who want the framework without
 * writing C++.
 *
 *   nvmcache models                      list the released cell models
 *   nvmcache llc [--fixed-area]          print the Table III LLC models
 *   nvmcache complete <cell>             heuristic-complete a raw cell
 *   nvmcache estimate <cell> [capacityMB] run the circuit estimator
 *   nvmcache simulate <workload> <tech> [--fixed-area] [--threads N]
 *   nvmcache characterize <workload|tracefile.nvmt>
 *   nvmcache export-trace <workload> <file.nvmt> [--threads N]
 *   nvmcache workloads [--json]          list workload kinds/params
 *   nvmcache studies                     list the study registry
 *   nvmcache study <kind> [key=value ..] run any registered study
 *   nvmcache serve --socket PATH         persistent evaluation daemon
 *   nvmcache store <action> --store-dir DIR   result-store maintenance
 *   nvmcache client --socket PATH <kind> [key=value ..]
 *
 * All flag parsing goes through util/args.hh; every subcommand rejects
 * unknown flags with a diagnostic naming the flag and the subcommand.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/study.hh"
#include "core/study_registry.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "nvsim/estimator.hh"
#include "nvsim/published.hh"
#include "prism/metrics.hh"
#include "service/chaos.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "store/result_store.hh"
#include "util/args.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"
#include "util/units.hh"
#include "workload/suite.hh"
#include "workload/trace_io.hh"
#include "workload/workload_registry.hh"

using namespace nvmcache;

namespace {

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: nvmcache <command> [args]\n"
        "  models                             list released NVM "
        "cell models (Table II)\n"
        "  llc [--fixed-area]                 print LLC models "
        "(Table III)\n"
        "  complete <cell>                    heuristic-complete a "
        "reported-only cell\n"
        "  estimate <cell> [capacityMB]       circuit-estimate an LLC "
        "model\n"
        "  simulate <workload> <tech> [--fixed-area] [--threads N] "
        "[--jobs N] [--shards N]\n"
        "           [--scale F] [--stats-out FILE] "
        "[--stats-format json|csv] [--trace-out FILE]\n"
        "           [--progress]\n"
        "  characterize <workload|file.nvmt>  PRISM-style features\n"
        "  export-trace <workload> <file.nvmt> [--threads N]\n"
        "  workloads [--json]                 list workload kinds "
        "with parameter schemas\n"
        "  reliability [workload] [--ber-scale A,B,..] "
        "[--wear-leveling A,B,..]\n"
        "           [--wear-scale X] [--max-retries N] [--scale F] "
        "[--fixed-area]\n"
        "           [--threads N] [--jobs N] [--shards N] "
        "[--stats-out FILE] [--stats-format json|csv]\n"
        "           [--trace-out FILE] [--progress]   fault-injection "
        "sweep over all technologies\n"
        "  studies                            list registered studies "
        "with defaults\n"
        "  study <kind> [key=value ..] [--jobs N] [--shards N] "
        "[--stats-out FILE]\n"
        "           [--stats-format json|csv] [--trace-out FILE] "
        "[--progress]\n"
        "           run one study, print JSON\n"
        "  serve --socket PATH [--queue-depth N] [--workers N] "
        "[--exec-threads N]\n"
        "           [--jobs N] [--shards N] [--store-dir DIR] "
        "[--trace] [--trace-out FILE]\n"
        "           [--heartbeat-ms N] [--job-timeout-ms N] "
        "[--chaos-spec SPEC] [--no-resume]\n"
        "           persistent evaluation daemon (newline-delimited "
        "JSON protocol);\n"
        "           --workers N spawns N supervised worker daemons "
        "sharing the store\n"
        "           (needs --store-dir; dead workers respawn, "
        "crash-loopers quarantine),\n"
        "           --exec-threads sets in-process concurrency, "
        "--chaos-spec injects a\n"
        "           deterministic fault schedule (see `nvmcache "
        "chaos`)\n"
        "  store <ls|stats|verify|gc> --store-dir DIR [--repair] "
        "[--max-bytes N]\n"
        "           inspect, check, or shrink the persistent result "
        "store\n"
        "  client --socket PATH <kind> [key=value ..] [--id X] "
        "[--result-only]\n"
        "           [--op ping|studies|workloads|metrics|stats|health|"
        "trace|shutdown] [--trace-id X]\n"
        "           [--timeout-ms N] [--retries N] [--deadline-ms N]\n"
        "           talk to a serving daemon; --timeout-ms bounds "
        "every response wait,\n"
        "           --retries adds jittered-backoff retry attempts, "
        "--deadline-ms asks\n"
        "           the server to drop the run if still queued past "
        "the deadline\n"
        "  health --socket PATH [--probe] [--timeout-ms N]\n"
        "           daemon health (state ok|degraded|draining, worker "
        "capacity); with\n"
        "           --probe exits 0 only when state is ok at full "
        "capacity (1 degraded,\n"
        "           2 draining, 3 unreachable)\n"
        "  chaos --spec SPEC                  print the deterministic "
        "fault schedule a\n"
        "           serve --chaos-spec run would inject "
        "(seed=..,kill=..,stop=..,corrupt=..,\n"
        "           truncate=..,drop=..,stall=..,partial=..,"
        "interval-ms=..,start-delay-ms=..)\n"
        "\n"
        "--jobs N (or NVMCACHE_JOBS=N) caps the experiment engine's "
        "worker threads;\nthe default is the hardware thread count. "
        "Results are bit-identical at any\njob count.\n"
        "--shards N (or NVMCACHE_SHARDS=N) splits each simulated "
        "LLC's sets over N\nthreads inside one run (default 1). "
        "Results are bit-identical at any shard\ncount; total "
        "threads scale with jobs x shards.\n"
        "--stats-out FILE writes the structured run report "
        "(sim.*, runner.*,\nestimator.*, phase.* metrics); "
        "--stats-format picks json (default) or csv.\n"
        "--trace-out FILE enables span/counter tracing and writes a "
        "Chrome\ntrace-event JSON (load in Perfetto or "
        "chrome://tracing). Tracing is off\nwithout the flag and "
        "costs nothing when disabled.\n"
        "--store-dir DIR (or NVMCACHE_STORE=DIR) persists every "
        "simulated run and\nrecorded trace to a content-addressed "
        "on-disk store: a warm restart replays\nfrom disk instead of "
        "re-simulating. Results are byte-identical either way.\n"
        "\nRun `nvmcache studies` for every study's parameters and "
        "defaults.\n");
    return out == stdout ? 0 : 2;
}

/**
 * Consume `--store-dir PATH` (falling back to the NVMCACHE_STORE
 * environment variable) and, when set, install the persistent result
 * store before any engine work runs: every ExperimentRunner built
 * afterwards reads and writes the on-disk tier. Returns the directory
 * ("" = persistence off).
 */
std::string
storeDirFlag(ArgParser &parser)
{
    std::string dir = parser.str("--store-dir", "");
    if (dir.empty()) {
        const char *env = std::getenv("NVMCACHE_STORE");
        if (env)
            dir = env;
    }
    if (!dir.empty())
        ResultStore::setGlobal(dir);
    return dir;
}

/**
 * Consume `--trace-out FILE` and, when present, switch tracing on
 * before any engine work runs. Returns the output path ("" = off).
 */
std::string
traceOutFlag(ArgParser &parser)
{
    const std::string traceOut = parser.str("--trace-out", "");
    if (!traceOut.empty())
        setTracingEnabled(true);
    return traceOut;
}

/** Dump the collected trace when --trace-out was given. */
void
finishTrace(const std::string &traceOut)
{
    if (traceOut.empty())
        return;
    writeTraceFile(traceOut);
    std::fprintf(stderr, "trace written to %s\n", traceOut.c_str());
}

/** "key=value" positional tokens -> a StudyRequest. */
StudyRequest
buildStudyRequest(const std::vector<std::string> &pos,
                  const std::string &context)
{
    if (pos.empty())
        throw std::runtime_error(
            "'" + context +
            "' needs a study name (run `nvmcache studies` for the "
            "list)");
    StudyRequest req;
    req.kind = pos[0];
    for (std::size_t i = 1; i < pos.size(); ++i) {
        const std::size_t eq = pos[i].find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::runtime_error("study parameter '" + pos[i] +
                                     "' is not of the form key=value");
        req.params[pos[i].substr(0, eq)] = pos[i].substr(eq + 1);
    }
    return req;
}

int
cmdModels()
{
    std::printf("%-10s %-7s %-5s %-8s %-10s %s\n", "name", "class",
                "year", "node", "cell[F^2]", "bits/cell");
    for (const CellSpec &c : publishedCells())
        std::printf("%-10s %-7s %-5d %-8.0f %-10.1f %d\n",
                    c.name.c_str(), toString(c.klass).c_str(), c.year,
                    c.processNode.get() * 1e9, c.cellSizeF2.get(),
                    c.bitsPerCell());
    return 0;
}

int
cmdLlc(ArgParser &parser)
{
    const CapacityMode mode = parser.flag("--fixed-area")
                                  ? CapacityMode::FixedArea
                                  : CapacityMode::FixedCapacity;
    parser.rejectUnknown("llc");
    std::printf("%-12s %-8s %-9s %-9s %-10s %-9s %-9s\n", "model",
                "cap[MB]", "read[ns]", "write[ns]", "Ewrite[nJ]",
                "Ehit[nJ]", "leak[W]");
    for (const LlcModel &m : publishedLlcModels(mode))
        std::printf("%-12s %-8.0f %-9.3f %-9.3f %-10.3f %-9.3f "
                    "%-9.3f\n",
                    m.citationName().c_str(), toMB(m.capacityBytes),
                    toNs(m.readLatency), toNs(m.writeLatency()),
                    toNJ(m.eWrite), toNJ(m.eHit), m.leakage);
    return 0;
}

int
cmdComplete(const std::string &name)
{
    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);

    for (const CellSpec &raw : rawCells()) {
        if (raw.name != name)
            continue;
        CompletionResult result = engine.complete(raw);
        std::printf("%s: %zu parameters derived\n", name.c_str(),
                    result.steps.size());
        for (const CompletionStep &s : result.steps)
            std::printf("  %-16s = %-12.4g  %s\n",
                        toString(s.field).c_str(), s.value,
                        s.rationale.c_str());
        return result.complete() ? 0 : 1;
    }
    std::fprintf(stderr, "unknown cell '%s'\n", name.c_str());
    return 2;
}

int
cmdEstimate(const std::vector<std::string> &pos)
{
    const CellSpec &cell = publishedCell(pos[0]);
    CacheOrgConfig org;
    if (pos.size() > 1)
        org.capacityBytes =
            std::uint64_t(ArgParser::parseU32("capacityMB", pos[1]))
            << 20;
    LlcModel m = Estimator().estimate(cell, org);
    std::printf("%s @ %.0f MB: area %.3f mm^2, tag %.3f ns, read "
                "%.3f ns, write %.3f ns,\n  Ehit %.3f nJ, Emiss %.3f "
                "nJ, Ewrite %.3f nJ, leakage %.3f W\n",
                cell.citationName().c_str(), toMB(org.capacityBytes),
                toMm2(m.area), toNs(m.tagLatency),
                toNs(m.readLatency), toNs(m.writeLatency()),
                toNJ(m.eHit), toNJ(m.eMiss), toNJ(m.eWrite),
                m.leakage);
    return 0;
}

int
cmdSimulate(ArgParser &parser)
{
    CompareConfig cfg;
    cfg.mode = parser.flag("--fixed-area") ? CapacityMode::FixedArea
                                           : CapacityMode::FixedCapacity;
    cfg.threads = parser.u32("--threads", 0);
    cfg.traceScale = parser.num("--scale", 1.0);
    const unsigned jobs = parser.u32("--jobs", 0);
    const unsigned shards = parser.u32("--shards", 0);
    setProgressEnabled(parser.flag("--progress"));
    const std::string statsOut = parser.str("--stats-out", "");
    const std::string statsFormat = parser.str("--stats-format", "json");
    storeDirFlag(parser);
    const std::string traceOut = traceOutFlag(parser);
    parser.rejectUnknown("simulate");

    const std::vector<std::string> pos = parser.positionals();
    if (pos.size() < 2)
        throw std::runtime_error(
            "'simulate' needs a workload and a technology");
    cfg.workload = pos[0];
    cfg.tech = pos[1];

    ExperimentRunner runner;
    runner.setJobs(jobs);
    runner.setShards(shards);
    const CompareResult r = runCompare(cfg, runner);
    const LlcModel &llc = publishedLlcModel(cfg.tech, cfg.mode);

    std::printf("%s on %s (%s):\n", cfg.workload.c_str(),
                llc.citationName().c_str(), toString(cfg.mode).c_str());
    std::printf("  runtime %.3f ms (SRAM %.3f), mpki %.1f\n",
                r.nvm.seconds * 1e3, r.sram.seconds * 1e3,
                r.nvm.llcMpki());
    std::printf("  speedup %.3f, energy %.3f, ED^2P %.3f "
                "(vs SRAM)\n",
                r.speedup, r.normEnergy, r.normEd2p);

    if (!statsOut.empty()) {
        // Report = the NVM run's deterministic detail, the SRAM
        // baseline's detail under "baseline.", and the process-wide
        // engine metrics (runner.*, estimator.*, phase.*).
        StatsSnapshot report = r.nvm.detail;
        report.mergeSum(r.sram.detail.withPrefix("baseline"));
        report.mergeSum(MetricsRegistry::global().snapshot());
        writeStatsFile(statsOut, report, parseStatsFormat(statsFormat));
        std::printf("  stats written to %s\n", statsOut.c_str());
    }
    finishTrace(traceOut);
    return 0;
}

WorkloadFeatures
featuresOf(const std::string &what)
{
    if (what.size() > 5 &&
        what.substr(what.size() - 5) == ".nvmt") {
        FileTrace trace = readTraceFile(what);
        std::vector<TraceSource *> ptrs{&trace};
        return characterize(ptrs);
    }
    auto traces = buildTraces(benchmark(what));
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    return characterize(ptrs);
}

int
cmdCharacterize(const std::string &what)
{
    WorkloadFeatures f = featuresOf(what);
    const auto names = WorkloadFeatures::featureNames();
    const auto values = f.featureVector();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::printf("  %-10s %.6g\n", names[i].c_str(), values[i]);
    return 0;
}

int
cmdExportTrace(ArgParser &parser)
{
    const std::uint32_t threadsFlag = parser.u32("--threads", 0);
    parser.rejectUnknown("export-trace");
    const std::vector<std::string> pos = parser.positionals();
    if (pos.size() < 2)
        throw std::runtime_error(
            "'export-trace' needs a workload and an output file");
    const BenchmarkSpec &spec = benchmark(pos[0]);
    const std::uint32_t threads =
        threadsFlag ? threadsFlag : spec.defaultThreads;
    auto traces = buildTraces(spec, threads);
    std::uint64_t total = 0;
    for (std::uint32_t t = 0; t < traces.size(); ++t) {
        std::string path = pos[1];
        if (traces.size() > 1) {
            // One file per thread: insert ".tN" before the suffix.
            const auto dot = path.rfind(".nvmt");
            path = path.substr(0, dot) + ".t" + std::to_string(t) +
                   ".nvmt";
        }
        total += writeTraceFile(path, *traces[t]);
        std::printf("wrote %s\n", path.c_str());
    }
    std::printf("%llu records\n", (unsigned long long)total);
    return 0;
}

int
cmdReliability(ArgParser &parser)
{
    ReliabilityConfig cfg;
    cfg.mode = parser.flag("--fixed-area") ? CapacityMode::FixedArea
                                           : CapacityMode::FixedCapacity;
    cfg.threads = parser.u32("--threads", 0);
    cfg.jobs = parser.u32("--jobs", 0);
    cfg.shards = parser.u32("--shards", 0);
    cfg.traceScale = parser.num("--scale", 0.25);
    cfg.berScales = parser.numList("--ber-scale", cfg.berScales);
    cfg.wearLevelingFactors =
        parser.numList("--wear-leveling", cfg.wearLevelingFactors);
    cfg.wearScale = parser.num("--wear-scale", 1.0);
    cfg.maxWriteRetries = parser.u32("--max-retries", 3);
    setProgressEnabled(parser.flag("--progress"));
    const std::string statsOut = parser.str("--stats-out", "");
    const std::string statsFormat = parser.str("--stats-format", "json");
    storeDirFlag(parser);
    const std::string traceOut = traceOutFlag(parser);
    parser.rejectUnknown("reliability");

    const std::vector<std::string> pos = parser.positionals();
    if (!pos.empty())
        cfg.workload = pos[0];

    ReliabilityStudy study = runReliabilityStudy(cfg);

    std::printf("%s (%s), wearScale %g, maxRetries %u:\n",
                cfg.workload.c_str(), toString(cfg.mode).c_str(),
                cfg.wearScale, cfg.maxWriteRetries);
    std::printf("%-6s %-6s %-12s %10s %8s %8s %8s %8s %8s %10s\n",
                "ber", "wear", "tech", "retries", "scrubs", "uncorr",
                "retired", "effCap%", "speedup", "life[y]");
    for (const ReliabilityPoint &p : study.points)
        std::printf("%-6g %-6g %-12s %10llu %8llu %8llu %8llu "
                    "%8.2f %8.3f %10.3g\n",
                    p.berScale, p.wearLevelingFactor, p.tech.c_str(),
                    (unsigned long long)p.writeRetries,
                    (unsigned long long)(p.writeScrubs + p.readScrubs),
                    (unsigned long long)p.uncorrectable,
                    (unsigned long long)p.retiredLines,
                    p.effectiveCapacityFraction * 100.0, p.speedup,
                    p.lifetime.lifetimeYears);

    if (!statsOut.empty()) {
        StatsSnapshot report = aggregateSimStats(study);
        report.mergeSum(MetricsRegistry::global().snapshot());
        writeStatsFile(statsOut, report, parseStatsFormat(statsFormat));
        std::printf("stats written to %s\n", statsOut.c_str());
    }
    finishTrace(traceOut);
    return 0;
}

int
cmdWorkloads(ArgParser &parser)
{
    const bool json = parser.flag("--json");
    parser.rejectUnknown("workloads");

    if (json) {
        std::printf("%s\n", workloadsToJson().dump().c_str());
        return 0;
    }

    const WorkloadRegistry &reg = WorkloadRegistry::global();
    std::printf("%-10s %-10s %s\n", "kind", "suite", "description");
    for (const std::string &name : reg.kinds()) {
        const WorkloadKindDef &def = reg.kind(name);
        std::printf("%-10s %-10s %s\n", def.name.c_str(),
                    def.suite.c_str(), def.description.c_str());
        for (const WorkloadParamDef &p : def.params)
            std::printf("    %-12s = %-12s %s\n", p.key.c_str(),
                        p.defaultValue.c_str(), p.help.c_str());
    }
    std::printf(
        "\nParameterized kinds take spec strings like "
        "\"kv:skew=0.99,readRatio=0.95,keys=64M\";\n"
        "kinds with no listed parameters are fixed workloads.\n");
    return 0;
}

int
cmdStudies()
{
    std::printf("%s", StudyRegistry::global().helpText().c_str());
    return 0;
}

int
cmdStudy(ArgParser &parser)
{
    StudyRunOptions opts;
    opts.jobs = parser.u32("--jobs", 0);
    opts.shards = parser.u32("--shards", 0);
    setProgressEnabled(parser.flag("--progress"));
    const std::string statsOut = parser.str("--stats-out", "");
    const std::string statsFormat = parser.str("--stats-format", "json");
    storeDirFlag(parser);
    const std::string traceOut = traceOutFlag(parser);
    parser.rejectUnknown("study");

    const StudyRequest req =
        buildStudyRequest(parser.positionals(), "study");
    const StudyReport report = runStudyRequest(req, opts);
    std::printf("%s\n", report.resultJson().c_str());

    if (!statsOut.empty()) {
        StatsSnapshot out = report.stats;
        out.mergeSum(MetricsRegistry::global().snapshot());
        writeStatsFile(statsOut, out, parseStatsFormat(statsFormat));
        std::fprintf(stderr, "stats written to %s\n", statsOut.c_str());
    }
    finishTrace(traceOut);
    return 0;
}

int
cmdServe(ArgParser &parser)
{
    ServeConfig cfg;
    cfg.socketPath = parser.str("--socket", "");
    cfg.queueDepth = parser.u32("--queue-depth", 16);
    cfg.workers = parser.u32("--workers", 0);
    cfg.execThreads = parser.u32("--exec-threads", 2);
    cfg.jobs = parser.u32("--jobs", 0);
    cfg.shards = parser.u32("--shards", 0);
    cfg.trace = parser.flag("--trace");
    cfg.traceOut = parser.str("--trace-out", "");
    cfg.heartbeatMs = parser.u32("--heartbeat-ms", 500);
    const double jobTimeoutMs = parser.num("--job-timeout-ms", -1.0);
    cfg.jobTimeoutMs = jobTimeoutMs < 0 ? -1 : int(jobTimeoutMs);
    cfg.chaosSpec = parser.str("--chaos-spec", "");
    cfg.resume = !parser.flag("--no-resume");
    if (!cfg.chaosSpec.empty())
        parseChaosSpec(cfg.chaosSpec); // fail fast on a bad spec
    storeDirFlag(parser);
    setProgressEnabled(parser.flag("--progress"));
    parser.rejectUnknown("serve");
    if (cfg.socketPath.empty())
        throw std::runtime_error("'serve' needs --socket PATH");
    std::fprintf(stderr,
                 "nvmcache serve: listening on %s (queue %u, "
                 "workers %u, exec threads %u)\n",
                 cfg.socketPath.c_str(), cfg.queueDepth, cfg.workers,
                 cfg.execThreads);
    return serveMain(cfg);
}

int
cmdStore(ArgParser &parser)
{
    const std::string dir = storeDirFlag(parser);
    const bool repair = parser.flag("--repair");
    const double maxBytes = parser.num("--max-bytes", -1.0);
    parser.rejectUnknown("store");
    if (dir.empty())
        throw std::runtime_error(
            "'store' needs --store-dir PATH (or NVMCACHE_STORE)");
    const std::vector<std::string> pos = parser.positionals();
    if (pos.empty())
        throw std::runtime_error(
            "'store' needs an action: ls, stats, verify, or gc");
    const std::string &action = pos[0];
    ResultStore store(dir);

    if (action == "ls") {
        for (const StoreScanEntry &e : store.scan())
            std::printf("%-7s %12llu %s%s\n", e.kind.c_str(),
                        (unsigned long long)e.payloadBytes,
                        e.path.c_str(), e.valid ? "" : "  [corrupt]");
        return 0;
    }
    if (action == "stats") {
        const StoreUsage usage = store.usage();
        const ResultStore::Counters c = store.cumulativeCounters();
        JsonValue v = JsonValue::makeObject();
        v.set("dir", JsonValue::makeString(dir));
        v.set("entries", JsonValue::makeNumber(double(usage.entries)));
        v.set("bytes", JsonValue::makeNumber(double(usage.bytes)));
        v.set("generation",
              JsonValue::makeNumber(double(store.generation())));
        v.set("hits", JsonValue::makeNumber(double(c.hits)));
        v.set("misses", JsonValue::makeNumber(double(c.misses)));
        v.set("writes", JsonValue::makeNumber(double(c.writes)));
        v.set("corrupt", JsonValue::makeNumber(double(c.corrupt)));
        std::printf("%s\n", v.dump().c_str());
        return 0;
    }
    if (action == "verify") {
        const StoreVerifyResult r = store.verify(repair);
        JsonValue v = JsonValue::makeObject();
        v.set("checked", JsonValue::makeNumber(double(r.checked)));
        v.set("corrupt", JsonValue::makeNumber(double(r.corrupt)));
        v.set("repaired", JsonValue::makeBool(repair));
        JsonValue paths = JsonValue::makeArray();
        for (const std::string &p : r.corruptPaths)
            paths.push(JsonValue::makeString(p));
        v.set("corruptPaths", std::move(paths));
        std::printf("%s\n", v.dump().c_str());
        // Unrepaired corruption is an actionable condition; repaired
        // (or clean) stores exit 0.
        return r.corrupt > 0 && !repair ? 1 : 0;
    }
    if (action == "gc") {
        if (maxBytes < 0)
            throw std::runtime_error(
                "'store gc' needs --max-bytes N (target size)");
        const StoreGcResult r = store.gc(std::uint64_t(maxBytes));
        JsonValue v = JsonValue::makeObject();
        v.set("evicted", JsonValue::makeNumber(double(r.evicted)));
        v.set("bytesEvicted",
              JsonValue::makeNumber(double(r.bytesEvicted)));
        v.set("bytesRemaining",
              JsonValue::makeNumber(double(r.bytesRemaining)));
        std::printf("%s\n", v.dump().c_str());
        return 0;
    }
    throw std::runtime_error("unknown store action '" + action +
                             "' (ls, stats, verify, gc)");
}

int
cmdClient(ArgParser &parser)
{
    const std::string socket = parser.str("--socket", "");
    const std::string op = parser.str("--op", "");
    const std::string id = parser.str("--id", "");
    const std::string traceId = parser.str("--trace-id", "");
    const bool resultOnly = parser.flag("--result-only");
    ClientConfig ccfg;
    const double timeoutMs = parser.num("--timeout-ms", -1.0);
    ccfg.timeoutMs = timeoutMs < 0 ? -1 : int(timeoutMs);
    ccfg.retries = parser.u32("--retries", 0);
    ccfg.deadlineMs = parser.num("--deadline-ms", 0.0);
    parser.rejectUnknown("client");
    if (socket.empty())
        throw std::runtime_error("'client' needs --socket PATH");
    if (ccfg.deadlineMs < 0)
        throw std::runtime_error(
            "--deadline-ms must be non-negative");

    JsonValue response;
    if (!op.empty()) {
        ServiceClient client(socket, ccfg);
        JsonValue req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString(op));
        if (!id.empty())
            req.set("id", JsonValue::makeString(id));
        if (!traceId.empty())
            req.set("traceId", JsonValue::makeString(traceId));
        response = client.request(req);
    } else {
        // The retry path even at --retries 0: one code path, and a
        // run rejected with a retryAfterMs hint behaves identically
        // from the command line and from library callers.
        response = runWithRetry(
            socket, buildStudyRequest(parser.positionals(), "client"),
            ccfg, id);
    }

    if (resultOnly) {
        // The deterministic payload only — byte-identical to
        // `nvmcache study <kind> ...` run locally.
        const JsonValue *result = response.find("result");
        if (!result) {
            std::fprintf(stderr, "%s\n", response.dump().c_str());
            return 1;
        }
        std::printf("%s\n", result->dump().c_str());
    } else {
        std::printf("%s\n", response.dump().c_str());
    }
    return response.boolOr("ok", false) ? 0 : 1;
}

int
cmdHealth(ArgParser &parser)
{
    const std::string socket = parser.str("--socket", "");
    const bool probe = parser.flag("--probe");
    const double timeoutMs = parser.num("--timeout-ms", 2000.0);
    parser.rejectUnknown("health");
    if (socket.empty())
        throw std::runtime_error("'health' needs --socket PATH");

    ClientConfig ccfg;
    ccfg.timeoutMs = timeoutMs < 0 ? -1 : int(timeoutMs);
    JsonValue response;
    try {
        ServiceClient client(socket, ccfg);
        response = client.health();
    } catch (const std::exception &e) {
        // Probe mode is for scripts and CI gates: a daemon that
        // cannot answer is its own health state, not a crash.
        std::fprintf(stderr, "health: %s\n", e.what());
        return 3;
    }
    std::printf("%s\n", response.dump().c_str());
    if (!probe)
        return response.boolOr("ok", false) ? 0 : 1;

    const JsonValue *h = response.find("health");
    if (!h || !response.boolOr("ok", false))
        return 3;
    const std::string state = h->stringOr("state", "unknown");
    const double workers = h->numberOr("workers", 0.0);
    const double alive = h->numberOr("workersAlive", workers);
    const double quarantined = h->numberOr("workersQuarantined", 0.0);
    if (state == "draining")
        return 2;
    if (state != "ok" || alive < workers || quarantined > 0)
        return 1;
    return 0;
}

int
cmdChaos(ArgParser &parser)
{
    const std::string spec = parser.str("--spec", "");
    parser.rejectUnknown("chaos");
    if (spec.empty())
        throw std::runtime_error(
            "'chaos' needs --spec key=value[,key=value ..] (e.g. "
            "seed=7,kill=1,corrupt=2,drop=1,interval-ms=500)");
    // Pure function of the spec: printing it twice yields identical
    // bytes, which is exactly what the reproducibility gate checks.
    std::printf("%s\n",
                chaosScheduleToJson(parseChaosSpec(spec))
                    .dump()
                    .c_str());
    return 0;
}

/** Throws when @p cmd got fewer positional tokens than it needs. */
void
requireArgs(const std::string &cmd,
            const std::vector<std::string> &args, std::size_t need)
{
    if (args.size() < need)
        throw std::runtime_error(
            "'" + cmd + "' needs at least " + std::to_string(need) +
            (need == 1 ? " argument" : " arguments") +
            " (run nvmcache with no arguments for usage)");
}

int
run(const std::string &cmd, const std::vector<std::string> &args)
{
    ArgParser parser(args);
    if (cmd == "models")
        return cmdModels();
    if (cmd == "llc")
        return cmdLlc(parser);
    if (cmd == "complete") {
        requireArgs(cmd, args, 1);
        return cmdComplete(args[0]);
    }
    if (cmd == "estimate") {
        requireArgs(cmd, args, 1);
        return cmdEstimate(parser.positionals());
    }
    if (cmd == "simulate")
        return cmdSimulate(parser);
    if (cmd == "characterize") {
        requireArgs(cmd, args, 1);
        return cmdCharacterize(args[0]);
    }
    if (cmd == "export-trace")
        return cmdExportTrace(parser);
    if (cmd == "workloads")
        return cmdWorkloads(parser);
    if (cmd == "reliability")
        return cmdReliability(parser);
    if (cmd == "studies")
        return cmdStudies();
    if (cmd == "study")
        return cmdStudy(parser);
    if (cmd == "serve")
        return cmdServe(parser);
    if (cmd == "store")
        return cmdStore(parser);
    if (cmd == "client")
        return cmdClient(parser);
    if (cmd == "health")
        return cmdHealth(parser);
    if (cmd == "chaos")
        return cmdChaos(parser);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usage(stdout);
        std::printf("\n%s",
                    StudyRegistry::global().helpText().c_str());
        return 0;
    }
    throw std::runtime_error("unknown command '" + cmd + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    // Every library-level validation failure below this point either
    // throws or fatal()s; the throws surface here as one diagnostic
    // line and a nonzero exit instead of std::terminate.
    try {
        return run(cmd, args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nvmcache: error: %s\n", e.what());
        return 1;
    }
}
