/**
 * @file
 * nvmcache command-line driver: the library's functionality as a set
 * of composable subcommands, for users who want the framework without
 * writing C++.
 *
 *   nvmcache models                      list the released cell models
 *   nvmcache llc [--fixed-area]          print the Table III LLC models
 *   nvmcache complete <cell>             heuristic-complete a raw cell
 *   nvmcache estimate <cell> [capacityMB] run the circuit estimator
 *   nvmcache simulate <workload> <tech> [--fixed-area] [--threads N]
 *   nvmcache characterize <workload|tracefile.nvmt>
 *   nvmcache export-trace <workload> <file.nvmt> [--threads N]
 *   nvmcache workloads                   list the Table V suite
 */

#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/study.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "nvsim/estimator.hh"
#include "nvsim/published.hh"
#include "prism/metrics.hh"
#include "util/metrics.hh"
#include "util/units.hh"
#include "workload/suite.hh"
#include "workload/trace_io.hh"

using namespace nvmcache;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: nvmcache <command> [args]\n"
        "  models                             list released NVM "
        "cell models (Table II)\n"
        "  llc [--fixed-area]                 print LLC models "
        "(Table III)\n"
        "  complete <cell>                    heuristic-complete a "
        "reported-only cell\n"
        "  estimate <cell> [capacityMB]       circuit-estimate an LLC "
        "model\n"
        "  simulate <workload> <tech> [--fixed-area] [--threads N] "
        "[--jobs N]\n"
        "           [--stats-out FILE] [--stats-format json|csv] "
        "[--progress]\n"
        "  characterize <workload|file.nvmt>  PRISM-style features\n"
        "  export-trace <workload> <file.nvmt> [--threads N]\n"
        "  workloads                          list the Table V suite\n"
        "  reliability [workload] [--ber-scale A,B,..] "
        "[--wear-leveling A,B,..]\n"
        "           [--wear-scale X] [--max-retries N] [--scale F] "
        "[--fixed-area]\n"
        "           [--threads N] [--jobs N] [--stats-out FILE] "
        "[--stats-format json|csv]\n"
        "           [--progress]        fault-injection sweep over "
        "all technologies\n"
        "\n"
        "--jobs N (or NVMCACHE_JOBS=N) caps the experiment engine's "
        "worker threads;\nthe default is the hardware thread count. "
        "Results are bit-identical at any\njob count.\n"
        "--stats-out FILE writes the structured run report "
        "(sim.*, runner.*,\nestimator.*, phase.* metrics); "
        "--stats-format picks json (default) or csv.\n");
    return 2;
}

bool
hasFlag(const std::vector<std::string> &args, const char *flag)
{
    for (const auto &a : args)
        if (a == flag)
            return true;
    return false;
}

/** Parse a full token as a u32; throws naming the flag on garbage. */
std::uint32_t
parseU32(const char *flag, const std::string &token)
{
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(token, &pos);
        if (pos != token.size() ||
            v > std::numeric_limits<std::uint32_t>::max())
            throw std::invalid_argument(token);
        return std::uint32_t(v);
    } catch (const std::exception &) {
        throw std::runtime_error(std::string("bad value '") + token +
                                 "' for " + flag +
                                 " (expected a non-negative integer)");
    }
}

/** Parse a full token as a double; throws naming the flag on garbage. */
double
parseDouble(const char *flag, const std::string &token)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(token, &pos);
        if (pos != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception &) {
        throw std::runtime_error(std::string("bad value '") + token +
                                 "' for " + flag +
                                 " (expected a number)");
    }
}

/** The token following @p flag; throws if the flag ends the line. */
const std::string *
flagToken(const std::vector<std::string> &args, const char *flag)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] != flag)
            continue;
        if (i + 1 >= args.size())
            throw std::runtime_error(std::string(flag) +
                                     " needs a value");
        return &args[i + 1];
    }
    return nullptr;
}

std::uint32_t
flagValue(const std::vector<std::string> &args, const char *flag,
          std::uint32_t fallback)
{
    const std::string *token = flagToken(args, flag);
    return token ? parseU32(flag, *token) : fallback;
}

double
flagDouble(const std::vector<std::string> &args, const char *flag,
           double fallback)
{
    const std::string *token = flagToken(args, flag);
    return token ? parseDouble(flag, *token) : fallback;
}

/** Comma-separated list of doubles, e.g. "--ber-scale 1,8,64". */
std::vector<double>
flagDoubleList(const std::vector<std::string> &args, const char *flag,
               std::vector<double> fallback)
{
    const std::string *token = flagToken(args, flag);
    if (!token)
        return fallback;
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= token->size()) {
        std::size_t comma = token->find(',', start);
        if (comma == std::string::npos)
            comma = token->size();
        values.push_back(
            parseDouble(flag, token->substr(start, comma - start)));
        start = comma + 1;
    }
    return values;
}

std::string
flagString(const std::vector<std::string> &args, const char *flag,
           const std::string &fallback)
{
    for (std::size_t i = 0; i + 1 < args.size(); ++i)
        if (args[i] == flag)
            return args[i + 1];
    return fallback;
}

int
cmdModels()
{
    std::printf("%-10s %-7s %-5s %-8s %-10s %s\n", "name", "class",
                "year", "node", "cell[F^2]", "bits/cell");
    for (const CellSpec &c : publishedCells())
        std::printf("%-10s %-7s %-5d %-8.0f %-10.1f %d\n",
                    c.name.c_str(), toString(c.klass).c_str(), c.year,
                    c.processNode.get() * 1e9, c.cellSizeF2.get(),
                    c.bitsPerCell());
    return 0;
}

int
cmdLlc(const std::vector<std::string> &args)
{
    const CapacityMode mode = hasFlag(args, "--fixed-area")
                                  ? CapacityMode::FixedArea
                                  : CapacityMode::FixedCapacity;
    std::printf("%-12s %-8s %-9s %-9s %-10s %-9s %-9s\n", "model",
                "cap[MB]", "read[ns]", "write[ns]", "Ewrite[nJ]",
                "Ehit[nJ]", "leak[W]");
    for (const LlcModel &m : publishedLlcModels(mode))
        std::printf("%-12s %-8.0f %-9.3f %-9.3f %-10.3f %-9.3f "
                    "%-9.3f\n",
                    m.citationName().c_str(), toMB(m.capacityBytes),
                    toNs(m.readLatency), toNs(m.writeLatency()),
                    toNJ(m.eWrite), toNJ(m.eHit), m.leakage);
    return 0;
}

int
cmdComplete(const std::string &name)
{
    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);

    for (const CellSpec &raw : rawCells()) {
        if (raw.name != name)
            continue;
        CompletionResult result = engine.complete(raw);
        std::printf("%s: %zu parameters derived\n", name.c_str(),
                    result.steps.size());
        for (const CompletionStep &s : result.steps)
            std::printf("  %-16s = %-12.4g  %s\n",
                        toString(s.field).c_str(), s.value,
                        s.rationale.c_str());
        return result.complete() ? 0 : 1;
    }
    std::fprintf(stderr, "unknown cell '%s'\n", name.c_str());
    return 2;
}

int
cmdEstimate(const std::vector<std::string> &args)
{
    const CellSpec &cell = publishedCell(args[0]);
    CacheOrgConfig org;
    if (args.size() > 1)
        org.capacityBytes = std::uint64_t(
                                parseU32("capacityMB", args[1]))
                            << 20;
    LlcModel m = Estimator().estimate(cell, org);
    std::printf("%s @ %.0f MB: area %.3f mm^2, tag %.3f ns, read "
                "%.3f ns, write %.3f ns,\n  Ehit %.3f nJ, Emiss %.3f "
                "nJ, Ewrite %.3f nJ, leakage %.3f W\n",
                cell.citationName().c_str(), toMB(org.capacityBytes),
                toMm2(m.area), toNs(m.tagLatency),
                toNs(m.readLatency), toNs(m.writeLatency()),
                toNJ(m.eHit), toNJ(m.eMiss), toNJ(m.eWrite),
                m.leakage);
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    const BenchmarkSpec &spec = benchmark(args[0]);
    const CapacityMode mode = hasFlag(args, "--fixed-area")
                                  ? CapacityMode::FixedArea
                                  : CapacityMode::FixedCapacity;
    const std::uint32_t threads = flagValue(args, "--threads", 0);
    const LlcModel &llc = publishedLlcModel(args[1], mode);

    setProgressEnabled(hasFlag(args, "--progress"));

    ExperimentRunner runner;
    runner.setJobs(flagValue(args, "--jobs", 0));
    SimStats nvm;
    {
        PhaseTimer timer("phase.simulate.nvm");
        nvm = runner.runOne(spec, llc, threads);
    }
    SimStats sram;
    {
        PhaseTimer timer("phase.simulate.sram");
        sram = runner.runOne(spec, publishedLlcModel("SRAM", mode),
                             threads);
    }
    std::printf("%s on %s (%s):\n", spec.name.c_str(),
                llc.citationName().c_str(), toString(mode).c_str());
    std::printf("  runtime %.3f ms (SRAM %.3f), mpki %.1f\n",
                nvm.seconds * 1e3, sram.seconds * 1e3, nvm.llcMpki());
    std::printf("  speedup %.3f, energy %.3f, ED^2P %.3f "
                "(vs SRAM)\n",
                sram.seconds / nvm.seconds,
                nvm.llcEnergy() / sram.llcEnergy(),
                nvm.ed2p() / sram.ed2p());

    const std::string stats_out = flagString(args, "--stats-out", "");
    if (!stats_out.empty()) {
        // Report = the NVM run's deterministic detail, the SRAM
        // baseline's detail under "baseline.", and the process-wide
        // engine metrics (runner.*, estimator.*, phase.*).
        StatsSnapshot report = nvm.detail;
        report.mergeSum(sram.detail.withPrefix("baseline"));
        report.mergeSum(MetricsRegistry::global().snapshot());
        writeStatsFile(stats_out, report,
                       parseStatsFormat(flagString(
                           args, "--stats-format", "json")));
        std::printf("  stats written to %s\n", stats_out.c_str());
    }
    return 0;
}

WorkloadFeatures
featuresOf(const std::string &what)
{
    if (what.size() > 5 &&
        what.substr(what.size() - 5) == ".nvmt") {
        FileTrace trace = readTraceFile(what);
        std::vector<TraceSource *> ptrs{&trace};
        return characterize(ptrs);
    }
    auto traces = buildTraces(benchmark(what));
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    return characterize(ptrs);
}

int
cmdCharacterize(const std::string &what)
{
    WorkloadFeatures f = featuresOf(what);
    const auto names = WorkloadFeatures::featureNames();
    const auto values = f.featureVector();
    for (std::size_t i = 0; i < names.size(); ++i)
        std::printf("  %-10s %.6g\n", names[i].c_str(), values[i]);
    return 0;
}

int
cmdExportTrace(const std::vector<std::string> &args)
{
    const BenchmarkSpec &spec = benchmark(args[0]);
    const std::uint32_t threads =
        flagValue(args, "--threads", spec.defaultThreads);
    auto traces = buildTraces(spec, threads);
    std::uint64_t total = 0;
    for (std::uint32_t t = 0; t < traces.size(); ++t) {
        std::string path = args[1];
        if (traces.size() > 1) {
            // One file per thread: insert ".tN" before the suffix.
            const auto dot = path.rfind(".nvmt");
            path = path.substr(0, dot) + ".t" + std::to_string(t) +
                   ".nvmt";
        }
        total += writeTraceFile(path, *traces[t]);
        std::printf("wrote %s\n", path.c_str());
    }
    std::printf("%llu records\n", (unsigned long long)total);
    return 0;
}

int
cmdReliability(const std::vector<std::string> &args)
{
    ReliabilityConfig cfg;
    if (!args.empty() && args[0][0] != '-')
        cfg.workload = args[0];
    cfg.mode = hasFlag(args, "--fixed-area")
                   ? CapacityMode::FixedArea
                   : CapacityMode::FixedCapacity;
    cfg.threads = flagValue(args, "--threads", 0);
    cfg.jobs = flagValue(args, "--jobs", 0);
    cfg.traceScale = flagDouble(args, "--scale", 0.25);
    cfg.berScales =
        flagDoubleList(args, "--ber-scale", cfg.berScales);
    cfg.wearLevelingFactors = flagDoubleList(
        args, "--wear-leveling", cfg.wearLevelingFactors);
    cfg.wearScale = flagDouble(args, "--wear-scale", 1.0);
    cfg.maxWriteRetries = flagValue(args, "--max-retries", 3);
    setProgressEnabled(hasFlag(args, "--progress"));

    ReliabilityStudy study = runReliabilityStudy(cfg);

    std::printf("%s (%s), wearScale %g, maxRetries %u:\n",
                cfg.workload.c_str(), toString(cfg.mode).c_str(),
                cfg.wearScale, cfg.maxWriteRetries);
    std::printf("%-6s %-6s %-12s %10s %8s %8s %8s %8s %8s %10s\n",
                "ber", "wear", "tech", "retries", "scrubs", "uncorr",
                "retired", "effCap%", "speedup", "life[y]");
    for (const ReliabilityPoint &p : study.points)
        std::printf("%-6g %-6g %-12s %10llu %8llu %8llu %8llu "
                    "%8.2f %8.3f %10.3g\n",
                    p.berScale, p.wearLevelingFactor, p.tech.c_str(),
                    (unsigned long long)p.writeRetries,
                    (unsigned long long)(p.writeScrubs + p.readScrubs),
                    (unsigned long long)p.uncorrectable,
                    (unsigned long long)p.retiredLines,
                    p.effectiveCapacityFraction * 100.0, p.speedup,
                    p.lifetime.lifetimeYears);

    const std::string stats_out = flagString(args, "--stats-out", "");
    if (!stats_out.empty()) {
        StatsSnapshot report = aggregateSimStats(study);
        report.mergeSum(MetricsRegistry::global().snapshot());
        writeStatsFile(stats_out, report,
                       parseStatsFormat(flagString(
                           args, "--stats-format", "json")));
        std::printf("stats written to %s\n", stats_out.c_str());
    }
    return 0;
}

int
cmdWorkloads()
{
    std::printf("%-10s %-10s %-8s %-11s %s\n", "name", "suite",
                "threads", "paper mpki", "description");
    for (const BenchmarkSpec &b : benchmarkSuite())
        std::printf("%-10s %-10s %-8u %-11.2f %s\n", b.name.c_str(),
                    b.suite.c_str(), b.defaultThreads, b.paperMpki,
                    b.description.c_str());
    return 0;
}

/** Throws when @p cmd got fewer positional tokens than it needs. */
void
requireArgs(const std::string &cmd,
            const std::vector<std::string> &args, std::size_t need)
{
    if (args.size() < need)
        throw std::runtime_error(
            "'" + cmd + "' needs at least " + std::to_string(need) +
            (need == 1 ? " argument" : " arguments") +
            " (run nvmcache with no arguments for usage)");
}

int
run(const std::string &cmd, const std::vector<std::string> &args)
{
    if (cmd == "models")
        return cmdModels();
    if (cmd == "llc")
        return cmdLlc(args);
    if (cmd == "complete") {
        requireArgs(cmd, args, 1);
        return cmdComplete(args[0]);
    }
    if (cmd == "estimate") {
        requireArgs(cmd, args, 1);
        return cmdEstimate(args);
    }
    if (cmd == "simulate") {
        requireArgs(cmd, args, 2);
        return cmdSimulate(args);
    }
    if (cmd == "characterize") {
        requireArgs(cmd, args, 1);
        return cmdCharacterize(args[0]);
    }
    if (cmd == "export-trace") {
        requireArgs(cmd, args, 2);
        return cmdExportTrace(args);
    }
    if (cmd == "workloads")
        return cmdWorkloads();
    if (cmd == "reliability")
        return cmdReliability(args);
    throw std::runtime_error("unknown command '" + cmd + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    // Every library-level validation failure below this point either
    // throws or fatal()s; the throws surface here as one diagnostic
    // line and a nonzero exit instead of std::terminate.
    try {
        return run(cmd, args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nvmcache: error: %s\n", e.what());
        return 1;
    }
}
