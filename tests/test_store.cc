/**
 * @file
 * Persistent result store tests: record codec bit-exactness, trace
 * serializers, durability under corruption/truncation/concurrent
 * writers (everything degrades to re-simulate-and-rewrite, never to a
 * wrong result), warm-restart byte-identity for the study kinds, LRU
 * gc, verify/repair, and the RunnerPool generation-key regression.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fcntl.h>
#include <filesystem>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/experiment.hh"
#include "core/study_registry.hh"
#include "nvsim/published.hh"
#include "sim/private_trace.hh"
#include "store/codec.hh"
#include "store/result_store.hh"
#include "util/metrics.hh"
#include "workload/generators.hh"
#include "workload/recorded_trace.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

namespace fs = std::filesystem;

/** Fresh (wiped) store directory under the test tempdir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "nvmcache_store_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

GeneratorConfig
microConfig(std::uint64_t accesses)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = accesses;
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 1 << 20;
    hot.zipfSkew = 0.9;
    hot.weight = 0.8;
    StreamConfig cold;
    cold.kind = StreamConfig::Kind::Uniform;
    cold.regionBytes = 16 << 20;
    cold.weight = 0.2;
    cfg.loads.streams = {hot, cold};
    cfg.stores.streams = {hot, cold};
    return cfg;
}

BenchmarkSpec
microSpec(std::uint64_t accesses = 20'000)
{
    BenchmarkSpec spec;
    spec.name = "microzipf";
    spec.gen = microConfig(accesses);
    spec.defaultThreads = 1;
    return spec;
}

/** Real SimStats (with detail) from one small simulation. */
SimStats
sampleStats()
{
    ExperimentRunner runner;
    runner.setJobs(1);
    return runner.runOne(microSpec(),
                         publishedLlcModel(
                             "Chung", CapacityMode::FixedCapacity));
}

/** Overwrite @p path's byte at @p offset with @p value. */
void
stompByte(const std::string &path, off_t offset, char value)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0) << path;
    ASSERT_EQ(::pwrite(fd, &value, 1, offset), 1);
    ::close(fd);
}

/** Counter/gauge scalar at @p path, 0 when absent. */
double
scalarOf(const StatsSnapshot &snap, const std::string &path)
{
    const auto it = snap.entries.find(path);
    return it == snap.entries.end() ? 0.0 : it->second.scalar;
}

/** Engine metric delta over @p fn. */
template <typename Fn>
StatsSnapshot
metricsOver(Fn &&fn)
{
    const StatsSnapshot before = MetricsRegistry::global().snapshot();
    fn();
    return MetricsRegistry::global().snapshot().diff(before);
}

} // namespace

// --- codec ----------------------------------------------------------

TEST(StoreCodec, SimStatsRoundTripIsBitExact)
{
    const SimStats stats = sampleStats();
    const std::string payload = encodeSimStats(stats);
    const SimStats back = decodeSimStats(payload);

    // Doubles travel as raw bit patterns, so a round trip must be
    // exact, not approximate.
    EXPECT_EQ(back.instructions, stats.instructions);
    EXPECT_EQ(back.cycles, stats.cycles);
    EXPECT_EQ(back.seconds, stats.seconds);
    EXPECT_EQ(back.llc.demandMisses, stats.llc.demandMisses);
    EXPECT_EQ(back.llc.writeStallCycles, stats.llc.writeStallCycles);
    EXPECT_EQ(back.dramQueueCycles, stats.dramQueueCycles);
    EXPECT_EQ(back.coreCycles, stats.coreCycles);
    EXPECT_EQ(back.llcLeakageEnergy, stats.llcLeakageEnergy);
    EXPECT_EQ(back.detail, stats.detail);
    // Encoding the decoded value reproduces the payload byte for byte.
    EXPECT_EQ(encodeSimStats(back), payload);
}

TEST(StoreCodec, RejectsDamagedPayloads)
{
    const std::string payload = encodeSimStats(sampleStats());
    EXPECT_THROW(decodeSimStats(""), std::runtime_error);
    EXPECT_THROW(decodeSimStats(payload.substr(0, payload.size() / 2)),
                 std::runtime_error);
    EXPECT_THROW(decodeSimStats(payload + "x"), std::runtime_error);
}

TEST(StoreCodec, RecordedTraceRoundTrips)
{
    const auto trace = RecordedTrace::record(microConfig(20'000), 2);
    const std::string payload = trace->serialize();
    const auto back = RecordedTrace::deserialize(payload);
    EXPECT_EQ(back->serialize(), payload);
    EXPECT_EQ(back->packedBytes(), trace->packedBytes());
    EXPECT_THROW(RecordedTrace::deserialize(
                     payload.substr(0, payload.size() - 3)),
                 std::runtime_error);
}

TEST(StoreCodec, PrivateTraceRoundTrips)
{
    const auto trace = RecordedTrace::record(microConfig(20'000), 1);
    auto cursors = trace->cursors();
    std::vector<BatchSource *> srcs{&cursors[0]};
    const auto priv = PrivateTrace::record(srcs, CoreParams{});
    const std::string payload = priv->serialize();
    const auto back = PrivateTrace::deserialize(payload);
    EXPECT_EQ(back->serialize(), payload);
    EXPECT_THROW(PrivateTrace::deserialize(
                     payload.substr(0, payload.size() - 3)),
                 std::runtime_error);
}

// --- record files ---------------------------------------------------

TEST(ResultStoreFiles, PutLoadMissAndCounters)
{
    ResultStore store(freshDir("putload"));
    EXPECT_FALSE(store.load("run", "absent").has_value());
    store.put("run", "k1", "payload-1");
    store.put("trace", "k1", "payload-2"); // distinct namespace
    const auto run = store.load("run", "k1");
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(*run, "payload-1");
    const auto trace = store.load("trace", "k1");
    ASSERT_TRUE(trace.has_value());
    EXPECT_EQ(*trace, "payload-2");

    const ResultStore::Counters c = store.counters();
    EXPECT_EQ(c.hits, 2u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.writes, 2u);
    EXPECT_EQ(c.corrupt, 0u);

    const StoreUsage usage = store.usage();
    EXPECT_EQ(usage.entries, 2u);
    EXPECT_GT(usage.bytes, 0u);
}

TEST(ResultStoreFiles, CorruptionDegradesToMissAndRewrite)
{
    ResultStore store(freshDir("corrupt"));

    // Bad magic.
    store.put("run", "k", "the payload");
    const std::string path = store.pathFor("run", "k");
    stompByte(path, 0, 'X');
    EXPECT_FALSE(store.load("run", "k").has_value());
    EXPECT_FALSE(fs::exists(path)); // unlinked, rewrite starts clean

    // Flipped payload byte breaks the checksum footer.
    store.put("run", "k", "the payload");
    stompByte(path, off_t(fs::file_size(path)) - 12, '~');
    EXPECT_FALSE(store.load("run", "k").has_value());

    // Truncation.
    store.put("run", "k", "the payload");
    fs::resize_file(path, fs::file_size(path) / 2);
    EXPECT_FALSE(store.load("run", "k").has_value());

    EXPECT_GE(store.counters().corrupt, 3u);

    // The re-put/re-load cycle works after every corruption.
    store.put("run", "k", "the payload");
    const auto back = store.load("run", "k");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "the payload");
}

TEST(ResultStoreFiles, ConcurrentProcessWritersNeverTearRecords)
{
    const std::string dir = freshDir("race");
    const std::string payload(8192, 'p');

    // Two child processes hammer the same (kind, key) with identical
    // payloads — the daemon's forked-worker pattern. Atomic
    // temp+rename means any interleaving yields a whole record.
    std::vector<pid_t> kids;
    for (int child = 0; child < 2; ++child) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ResultStore w(dir);
            for (int i = 0; i < 200; ++i)
                w.put("run", "contended", payload);
            ::_exit(0);
        }
        kids.push_back(pid);
    }
    ResultStore reader(dir);
    for (int i = 0; i < 200; ++i) {
        const auto got = reader.load("run", "contended");
        if (got.has_value())
            EXPECT_EQ(*got, payload); // whole or absent, never torn
    }
    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    const auto final = reader.load("run", "contended");
    ASSERT_TRUE(final.has_value());
    EXPECT_EQ(*final, payload);
}

TEST(ResultStoreFiles, VerifyDetectsAndRepairs)
{
    ResultStore store(freshDir("verify"));
    store.put("run", "good", "aaaa");
    store.put("run", "bad", "bbbb");
    const std::string badPath = store.pathFor("run", "bad");
    stompByte(badPath, off_t(fs::file_size(badPath)) - 10, '!');

    const StoreVerifyResult detect = store.verify(/*repair=*/false);
    EXPECT_EQ(detect.checked, 2u);
    EXPECT_EQ(detect.corrupt, 1u);
    ASSERT_EQ(detect.corruptPaths.size(), 1u);
    EXPECT_EQ(detect.corruptPaths[0], badPath);
    EXPECT_TRUE(fs::exists(badPath)); // detection does not mutate

    const std::uint64_t gen = store.generation();
    const StoreVerifyResult repair = store.verify(/*repair=*/true);
    EXPECT_EQ(repair.corrupt, 1u);
    EXPECT_FALSE(fs::exists(badPath));
    EXPECT_EQ(store.generation(), gen + 1); // destructive => bumped

    const StoreVerifyResult clean = store.verify(/*repair=*/true);
    EXPECT_EQ(clean.checked, 1u);
    EXPECT_EQ(clean.corrupt, 0u);
    EXPECT_EQ(store.generation(), gen + 1); // no-op => not bumped
}

TEST(ResultStoreFiles, GcEvictsLeastRecentlyUsedFirst)
{
    ResultStore store(freshDir("gc"));
    const std::string payload(1024, 'x');
    store.put("run", "old", payload);
    store.put("run", "mid", payload);
    store.put("run", "hot", payload);

    // Filesystem atime granularity is too coarse for a test; pin the
    // access order explicitly through the same mechanism load() uses.
    int age = 3;
    for (const char *key : {"old", "mid", "hot"}) {
        const std::string path = store.pathFor("run", key);
        timespec times[2];
        times[0].tv_sec = ::time(nullptr) - age-- * 3600;
        times[0].tv_nsec = 0;
        times[1].tv_nsec = UTIME_OMIT;
        ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
    }

    const std::uint64_t gen = store.generation();
    const std::uint64_t perRecord = store.usage().bytes / 3;
    const StoreGcResult gc = store.gc(2 * perRecord);
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_LE(gc.bytesRemaining, 2 * perRecord);
    EXPECT_FALSE(store.load("run", "old").has_value()); // oldest went
    EXPECT_TRUE(store.load("run", "mid").has_value());
    EXPECT_TRUE(store.load("run", "hot").has_value());
    EXPECT_EQ(store.generation(), gen + 1);

    // gc to zero clears everything and still leaves a usable store.
    const StoreGcResult wipe = store.gc(0);
    EXPECT_EQ(wipe.evicted, 2u);
    EXPECT_EQ(wipe.bytesRemaining, 0u);
    store.put("run", "fresh", payload);
    EXPECT_TRUE(store.load("run", "fresh").has_value());
}

// --- engine integration ---------------------------------------------

namespace {

/**
 * Cold/warm byte-identity harness: run @p req once against a fresh
 * store (cold: simulates and persists) and once with a brand-new
 * runner against the same store (warm restart: replays from disk).
 * Both results must match the store-less reference byte for byte, and
 * the warm pass must not simulate anything.
 */
void
expectWarmRestartIdentity(const StudyRequest &req,
                          const std::string &tag)
{
    const std::string reference = runStudyRequest(req).resultJson();

    ResultStore::setGlobal(freshDir(tag));
    const std::string cold = runStudyRequest(req).resultJson();
    EXPECT_EQ(cold, reference);

    // runStudyRequest builds an ephemeral runner per call, so this is
    // a true warm restart: fresh memo, fresh pool, disk only.
    std::string warm;
    const StatsSnapshot delta = metricsOver(
        [&] { warm = runStudyRequest(req).resultJson(); });
    EXPECT_EQ(warm, reference);
    EXPECT_EQ(scalarOf(delta, "runner.memo.simulations"), 0.0);
    EXPECT_GT(scalarOf(delta, "runner.store.hits"), 0.0);
    ResultStore::setGlobal("");
}

} // namespace

TEST(StoreWarmRestart, CompareStudyReplaysFromDisk)
{
    StudyRequest req;
    req.kind = "compare";
    req.params["workload"] = "lbm";
    req.params["scale"] = "0.02";
    expectWarmRestartIdentity(req, "warm_compare");
}

TEST(StoreWarmRestart, ReliabilityStudyReplaysFromDisk)
{
    StudyRequest req;
    req.kind = "reliability";
    req.params["workload"] = "lbm";
    req.params["scale"] = "0.02";
    req.params["ber-scale"] = "1,8";
    req.params["wear-leveling"] = "1";
    expectWarmRestartIdentity(req, "warm_reliability");
}

TEST(StoreWarmRestart, FigureStudyReplaysFromDisk)
{
    StudyRequest req;
    req.kind = "figure";
    req.params["scale"] = "0.01";
    expectWarmRestartIdentity(req, "warm_figure");
}

TEST(StoreWarmRestart, RunnerPoolKeysOnGenerationAndEpoch)
{
    ResultStore::setGlobal(freshDir("pool_gen"));
    RunnerPool pool;
    (void)pool.acquire();
    EXPECT_EQ(pool.size(), 1u);
    (void)pool.acquire();
    EXPECT_EQ(pool.size(), 1u); // same store view => same runner

    // A destructive store mutation (gc/repair, possibly by a sibling
    // process) must retire pooled handles built before it: their
    // in-memory view no longer agrees with the disk.
    ResultStore::global()->bumpGeneration();
    (void)pool.acquire();
    EXPECT_EQ(pool.size(), 2u);

    // So must swapping the process-wide store itself.
    ResultStore::setGlobal(freshDir("pool_gen2"));
    (void)pool.acquire();
    EXPECT_EQ(pool.size(), 3u);
    ResultStore::setGlobal("");
}

TEST(StoreWarmRestart, DamagedRecordsDegradeToResimulation)
{
    const StudyRequest req = [] {
        StudyRequest r;
        r.kind = "compare";
        r.params["workload"] = "lbm";
        r.params["scale"] = "0.02";
        return r;
    }();
    const std::string reference = runStudyRequest(req).resultJson();

    const std::string dir = freshDir("damaged");
    ResultStore::setGlobal(dir);
    (void)runStudyRequest(req); // populate

    // Stomp every record's checksum region: a warm restart now finds
    // only corrupt entries, must re-simulate, and must rewrite them.
    {
        ResultStore probe(dir);
        for (const StoreScanEntry &e : probe.scan())
            stompByte(e.path, off_t(e.fileBytes) - 4, '?');
    }
    std::string warm;
    const StatsSnapshot delta = metricsOver(
        [&] { warm = runStudyRequest(req).resultJson(); });
    EXPECT_EQ(warm, reference);
    EXPECT_GT(scalarOf(delta, "runner.memo.simulations"), 0.0);
    EXPECT_GT(scalarOf(delta, "store.corrupt"), 0.0);
    EXPECT_GT(scalarOf(delta, "store.writes"), 0.0);

    // The rewrite healed the store: the next restart is warm again.
    const StatsSnapshot healed = metricsOver(
        [&] { warm = runStudyRequest(req).resultJson(); });
    EXPECT_EQ(warm, reference);
    EXPECT_EQ(scalarOf(healed, "runner.memo.simulations"), 0.0);
    ResultStore::setGlobal("");
}
