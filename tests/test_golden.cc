/**
 * @file
 * Golden-number regression pins: a handful of headline results, with
 * tolerances, so that behavioural drift anywhere in the stack (RNG,
 * generators, cache policy, timing model, energy accounting) is
 * caught immediately rather than discovered as a silently changed
 * figure. Values were recorded from the verified reproduction state;
 * if a deliberate model change moves them, update the pins in the
 * same commit and note why.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "prism/metrics.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

SimStats
runSram(const std::string &workload)
{
    ExperimentRunner runner;
    return runner.runOne(benchmark(workload), sramBaselineLlc());
}

} // namespace

TEST(Golden, LeelaOnChungFixedCapacity)
{
    ExperimentRunner runner;
    const BenchmarkSpec &spec = benchmark("leela");
    SimStats sram = runner.runOne(spec, sramBaselineLlc());
    SimStats chung = runner.runOne(
        spec,
        publishedLlcModel("Chung", CapacityMode::FixedCapacity));

    EXPECT_NEAR(sram.seconds / chung.seconds, 0.99, 0.02);
    EXPECT_NEAR(chung.llcEnergy() / sram.llcEnergy(), 0.07, 0.025);
}

TEST(Golden, MpkiPins)
{
    EXPECT_NEAR(runSram("gamess").llcMpki(), 12.3, 1.5);
    EXPECT_NEAR(runSram("leela").llcMpki(), 22.9, 2.5);
    EXPECT_NEAR(runSram("exchange2").llcMpki(), 15.4, 2.0);
}

TEST(Golden, GobmkFixedAreaHayakawaSpeedup)
{
    // The paper's most-cited fixed-area result: gobmk accelerates
    // ~1.5-1.6x on the 32 MB Hayakawa_R LLC.
    ExperimentRunner runner;
    const BenchmarkSpec &spec = benchmark("gobmk");
    SimStats sram = runner.runOne(
        spec, publishedLlcModel("SRAM", CapacityMode::FixedArea));
    SimStats hay = runner.runOne(
        spec, publishedLlcModel("Hayakawa", CapacityMode::FixedArea));
    EXPECT_NEAR(sram.seconds / hay.seconds, 1.55, 0.15);
}

TEST(Golden, DeepsjengFeatureVector)
{
    auto traces = buildTraces(benchmark("deepsjeng"));
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    WorkloadFeatures f = characterize(ptrs);
    EXPECT_NEAR(f.writes.globalEntropy, 9.2, 0.4);
    EXPECT_NEAR(double(f.writes.unique), 250e3, 40e3);
}

TEST(Golden, KangWriteEnergyBlowupOnBzip2)
{
    ExperimentRunner runner;
    const BenchmarkSpec &spec = benchmark("bzip2");
    SimStats sram = runner.runOne(spec, sramBaselineLlc());
    SimStats kang = runner.runOne(
        spec,
        publishedLlcModel("Kang", CapacityMode::FixedCapacity));
    const double ratio = kang.llcEnergy() / sram.llcEnergy();
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 8.0);
}
