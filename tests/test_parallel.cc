/**
 * @file
 * The parallel experiment engine: thread-pool/parallelMap semantics
 * (order stability, exception propagation, NVMCACHE_JOBS), run
 * memoization with its exactly-once baseline guarantee, estimator
 * memoization, and the headline determinism contract — a figure study
 * produces bit-identical SimStats at any concurrency level.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "core/study.hh"
#include "nvm/model_library.hh"
#include "nvsim/estimator.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

using namespace nvmcache;

namespace {

/** Concurrency used by the "parallel" side of the determinism tests:
 *  always multi-threaded, even on a single-core CI machine. */
unsigned
parallelJobs()
{
    return std::max(4u, std::thread::hardware_concurrency());
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);       // bit-identical doubles
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.llc.demandReads, b.llc.demandReads);
    EXPECT_EQ(a.llc.demandHits, b.llc.demandHits);
    EXPECT_EQ(a.llc.demandMisses, b.llc.demandMisses);
    EXPECT_EQ(a.llc.fills, b.llc.fills);
    EXPECT_EQ(a.llc.writebacksIn, b.llc.writebacksIn);
    EXPECT_EQ(a.llc.dirtyEvictions, b.llc.dirtyEvictions);
    EXPECT_EQ(a.llc.writeBypasses, b.llc.writeBypasses);
    EXPECT_EQ(a.llc.readWaitCycles, b.llc.readWaitCycles);
    EXPECT_EQ(a.llc.writeStallCycles, b.llc.writeStallCycles);
    EXPECT_EQ(a.llc.hitEnergy, b.llc.hitEnergy);
    EXPECT_EQ(a.llc.missEnergy, b.llc.missEnergy);
    EXPECT_EQ(a.llc.writeEnergy, b.llc.writeEnergy);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramQueueCycles, b.dramQueueCycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.llcLeakageEnergy, b.llcLeakageEnergy);
    EXPECT_EQ(a.llcDynamicEnergy, b.llcDynamicEnergy);
}

void
expectSameSweeps(const std::vector<TechSweep> &a,
                 const std::vector<TechSweep> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].cores, b[i].cores);
        ASSERT_EQ(a[i].results.size(), b[i].results.size());
        for (std::size_t j = 0; j < a[i].results.size(); ++j) {
            const RunResult &ra = a[i].results[j];
            const RunResult &rb = b[i].results[j];
            EXPECT_EQ(ra.tech, rb.tech);
            EXPECT_EQ(ra.speedup, rb.speedup);
            EXPECT_EQ(ra.normEnergy, rb.normEnergy);
            EXPECT_EQ(ra.normEd2p, rb.normEd2p);
            expectSameStats(ra.stats, rb.stats);
        }
    }
}

} // namespace

// --- parallelMap / ThreadPool ---------------------------------------

TEST(ParallelMap, OrderStableUnderConcurrency)
{
    std::vector<int> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(i);
    auto results = parallelMap(8, items, [](const int &i) {
        return i * i;
    });
    ASSERT_EQ(results.size(), items.size());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(results[std::size_t(i)], i * i);
}

TEST(ParallelMap, SerialAndParallelAgree)
{
    std::vector<int> items{5, 4, 3, 2, 1};
    auto serial = parallelMap(1, items, [](const int &i) {
        return i + 100;
    });
    auto parallel = parallelMap(4, items, [](const int &i) {
        return i + 100;
    });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, PropagatesExceptions)
{
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallelMap(4, items,
                    [&](const int &i) {
                        ++ran;
                        if (i == 3)
                            throw std::runtime_error("job failed");
                        return i;
                    }),
        std::runtime_error);
    // Every job still ran (no abandoned futures).
    EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelMap, SingleFailureRethrowsOriginalType)
{
    // One failed job must surface its original exception, not the
    // aggregated runtime_error wrapper.
    std::vector<int> items{0, 1, 2, 3};
    EXPECT_THROW(parallelMap(4, items,
                             [](const int &i) {
                                 if (i == 2)
                                     throw std::out_of_range("lone");
                                 return i;
                             }),
                 std::out_of_range);
}

TEST(ParallelMap, AggregatesEveryFailure)
{
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    std::atomic<int> ran{0};
    std::string what;
    try {
        parallelMap(4, items, [&](const int &i) {
            ++ran;
            if (i == 1 || i == 4 || i == 6)
                throw std::runtime_error("job " + std::to_string(i) +
                                         " exploded");
            return i;
        });
        FAIL() << "parallelMap did not throw";
    } catch (const std::runtime_error &e) {
        what = e.what();
    }
    EXPECT_EQ(ran.load(), 8); // no abandoned futures
    EXPECT_NE(what.find("3 of 8 jobs failed"), std::string::npos);
    // Every failure's message survives, in input order.
    const std::size_t p1 = what.find("job 1 exploded");
    const std::size_t p4 = what.find("job 4 exploded");
    const std::size_t p6 = what.find("job 6 exploded");
    ASSERT_NE(p1, std::string::npos);
    ASSERT_NE(p4, std::string::npos);
    ASSERT_NE(p6, std::string::npos);
    EXPECT_LT(p1, p4);
    EXPECT_LT(p4, p6);
}

TEST(ParallelMap, CapsAggregatedMessages)
{
    // A mass failure reports the count plus the first few messages
    // and summarizes the rest instead of printing all of them.
    std::vector<int> items;
    for (int i = 0; i < 12; ++i)
        items.push_back(i);
    std::string what;
    try {
        parallelMap(4, items, [](const int &i) -> int {
            throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "parallelMap did not throw";
    } catch (const std::runtime_error &e) {
        what = e.what();
    }
    EXPECT_NE(what.find("12 of 12 jobs failed"), std::string::npos);
    EXPECT_NE(what.find("boom 0"), std::string::npos);
    EXPECT_NE(what.find("boom 3"), std::string::npos);
    EXPECT_EQ(what.find("boom 4"), std::string::npos);
    EXPECT_NE(what.find("... and 8 more"), std::string::npos);
}

TEST(ParallelMap, RunsEveryItemExactlyOnce)
{
    std::vector<int> items(100, 1);
    std::atomic<int> ran{0};
    parallelMap(8, items, [&](const int &) { return ++ran; });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitReturnsFutures)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.jobs(), 3u);
    auto f1 = pool.submit([]() { return 41 + 1; });
    auto f2 = pool.submit([]() { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(DefaultJobs, RespectsEnvironment)
{
    ::setenv("NVMCACHE_JOBS", "7", 1);
    EXPECT_EQ(defaultJobs(), 7u);
    ::setenv("NVMCACHE_JOBS", "garbage", 1);
    EXPECT_GE(defaultJobs(), 1u); // falls back, never 0
    ::unsetenv("NVMCACHE_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

// --- deterministic per-job seeding ----------------------------------

TEST(DeriveSeed, DeterministicAndStreamSeparated)
{
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
    // Derived seeds drive independent deterministic generators.
    Rng a(deriveSeed(99, 3)), b(deriveSeed(99, 3));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a(), b());
}

// --- run memoization -------------------------------------------------

TEST(RunnerMemo, RepeatedRunIsServedFromCache)
{
    ExperimentRunner runner;
    BenchmarkSpec spec = benchmark("tonto");
    spec.gen.totalAccesses = 50'000;
    const LlcModel &sram = sramBaselineLlc();

    SimStats first = runner.runOne(spec, sram, 1);
    RunnerStats after_one = runner.runnerStats();
    EXPECT_EQ(after_one.simulations, 1u);
    EXPECT_EQ(after_one.baselineSimulations, 1u);
    EXPECT_EQ(after_one.memoHits, 0u);

    SimStats second = runner.runOne(spec, sram, 1);
    RunnerStats after_two = runner.runnerStats();
    EXPECT_EQ(after_two.simulations, 1u); // no new simulation
    EXPECT_EQ(after_two.memoHits, 1u);
    expectSameStats(first, second);
}

TEST(RunnerMemo, DistinctInputsAreDistinctRuns)
{
    ExperimentRunner runner;
    BenchmarkSpec spec = benchmark("tonto");
    spec.gen.totalAccesses = 50'000;
    runner.runOne(spec, sramBaselineLlc(), 1);
    // Different technology, different trace length, different thread
    // count: all three must simulate anew.
    runner.runOne(spec,
                  publishedLlcModel("Chung",
                                    CapacityMode::FixedCapacity),
                  1);
    spec.gen.totalAccesses = 60'000;
    runner.runOne(spec, sramBaselineLlc(), 1);
    EXPECT_EQ(runner.runnerStats().simulations, 3u);
    EXPECT_EQ(runner.runnerStats().memoHits, 0u);
}

TEST(RunnerMemo, SweepSimulatesSramExactlyOnce)
{
    ExperimentRunner runner;
    BenchmarkSpec spec = benchmark("tonto");
    spec.gen.totalAccesses = 50'000;

    runner.sweepTechs(spec, CapacityMode::FixedCapacity);
    RunnerStats stats = runner.runnerStats();
    EXPECT_EQ(stats.simulations, 11u); // 10 NVMs + 1 SRAM
    EXPECT_EQ(stats.baselineSimulations, 1u);

    // Re-sweeping costs nothing new; the SRAM row is also shared
    // with the fixed-area sweep (identical published model).
    runner.sweepTechs(spec, CapacityMode::FixedCapacity);
    EXPECT_EQ(runner.runnerStats().simulations, 11u);
    runner.sweepTechs(spec, CapacityMode::FixedArea);
    EXPECT_EQ(runner.runnerStats().baselineSimulations, 1u);
}

TEST(RunnerMemo, FigureStudyBaselinePerWorkloadIsOne)
{
    ExperimentRunner runner;
    runner.setJobs(parallelJobs());
    runFigureStudy(CapacityMode::FixedCapacity, runner, 0.01);
    RunnerStats stats = runner.runnerStats();
    // Exactly one SRAM baseline per workload, despite ten NVM rows
    // normalizing against it and the assembly pass re-reading it.
    EXPECT_EQ(stats.baselineSimulations, benchmarkSuite().size());
    EXPECT_EQ(stats.simulations,
              benchmarkSuite().size() * 11u);
    EXPECT_GT(stats.memoHits, 0u);
}

// --- estimator memoization ------------------------------------------

TEST(EstimatorMemo, RepeatedEstimateIsServedFromCache)
{
    Estimator est;
    CacheOrgConfig org;
    LlcModel first = est.estimate(publishedCell("Chung"), org);
    LlcModel second = est.estimate(publishedCell("Chung"), org);
    EXPECT_EQ(est.estimatesComputed(), 1u);
    EXPECT_EQ(est.estimateCacheHits(), 1u);
    EXPECT_EQ(first.readLatency, second.readLatency);
    EXPECT_EQ(first.eWrite, second.eWrite);
    EXPECT_EQ(first.leakage, second.leakage);

    org.capacityBytes *= 2; // a new point computes
    est.estimate(publishedCell("Chung"), org);
    EXPECT_EQ(est.estimatesComputed(), 2u);
}

// --- the determinism contract ---------------------------------------

TEST(ParallelDeterminism, FigureStudyBitIdenticalAcrossJobCounts)
{
    ExperimentRunner serial;
    serial.setJobs(1);
    FigureStudy s1 =
        runFigureStudy(CapacityMode::FixedCapacity, serial, 0.01);

    ExperimentRunner parallel;
    parallel.setJobs(parallelJobs());
    FigureStudy sN =
        runFigureStudy(CapacityMode::FixedCapacity, parallel, 0.01);

    expectSameSweeps(s1.singleThreaded, sN.singleThreaded);
    expectSameSweeps(s1.multiThreaded, sN.multiThreaded);
}

TEST(ParallelDeterminism, CoreSweepBitIdenticalAcrossJobCounts)
{
    ExperimentRunner serial;
    serial.setJobs(1);
    ExperimentRunner parallel;
    parallel.setJobs(parallelJobs());

    const std::vector<std::string> workloads{"ft"};
    const std::vector<std::string> techs{"SRAM", "Hayakawa"};
    const std::vector<std::uint32_t> cores{1, 2, 4};
    CoreSweepStudy a = runCoreSweep(workloads, techs, cores, serial);
    CoreSweepStudy b = runCoreSweep(workloads, techs, cores, parallel);

    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].workload, b.points[i].workload);
        EXPECT_EQ(a.points[i].tech, b.points[i].tech);
        EXPECT_EQ(a.points[i].cores, b.points[i].cores);
        EXPECT_EQ(a.points[i].speedupVsBaseline,
                  b.points[i].speedupVsBaseline);
        EXPECT_EQ(a.points[i].normEnergy, b.points[i].normEnergy);
        expectSameStats(a.points[i].stats, b.points[i].stats);
    }
}

TEST(ParallelDeterminism, CorrelationStudyBitIdenticalAcrossJobCounts)
{
    ExperimentRunner serial;
    serial.setJobs(1);
    ExperimentRunner parallel;
    parallel.setJobs(parallelJobs());

    const std::vector<std::string> techs{"Jan", "Hayakawa"};
    const std::vector<CapacityMode> modes{CapacityMode::FixedCapacity};
    CorrelationStudy a =
        runCorrelationStudy(true, techs, modes, serial, 0.05);
    CorrelationStudy b =
        runCorrelationStudy(true, techs, modes, parallel, 0.05);

    ASSERT_EQ(a.perTech.size(), b.perTech.size());
    EXPECT_EQ(a.workloads, b.workloads);
    for (std::size_t i = 0; i < a.features.size(); ++i)
        EXPECT_EQ(a.features[i].featureVector(),
                  b.features[i].featureVector());
    for (std::size_t i = 0; i < a.perTech.size(); ++i) {
        EXPECT_EQ(a.perTech[i].tech, b.perTech[i].tech);
        EXPECT_EQ(a.perTech[i].dataset.energy,
                  b.perTech[i].dataset.energy);
        EXPECT_EQ(a.perTech[i].dataset.speedup,
                  b.perTech[i].dataset.speedup);
        EXPECT_EQ(a.perTech[i].result.energyCorr,
                  b.perTech[i].result.energyCorr);
        EXPECT_EQ(a.perTech[i].result.speedupCorr,
                  b.perTech[i].result.speedupCorr);
    }
}
