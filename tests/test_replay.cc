/**
 * @file
 * Tests of the vectorized batch-replay kernel and set-sharded LLC
 * classification (sim/replay.cc): bit-identity against the per-access
 * scheduler at every shard count, with and without fault injection,
 * across write-timing policies, through the experiment engine's
 * (shards x jobs) matrix, and the multi-source fallback.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/study.hh"
#include "nvsim/published.hh"
#include "util/metrics.hh"
#include "workload/recorded_trace.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

/** A trimmed copy of a suite workload to keep runs fast. */
BenchmarkSpec
trimmed(const std::string &name, std::uint64_t accesses)
{
    BenchmarkSpec spec = benchmark(name);
    spec.gen.totalAccesses = accesses;
    return spec;
}

/** Every field of both SimStats exactly equal (== on doubles). */
void
expectSimStatsIdentical(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.llc.demandReads, b.llc.demandReads);
    EXPECT_EQ(a.llc.demandHits, b.llc.demandHits);
    EXPECT_EQ(a.llc.demandMisses, b.llc.demandMisses);
    EXPECT_EQ(a.llc.fills, b.llc.fills);
    EXPECT_EQ(a.llc.writebacksIn, b.llc.writebacksIn);
    EXPECT_EQ(a.llc.dirtyEvictions, b.llc.dirtyEvictions);
    EXPECT_EQ(a.llc.writeBypasses, b.llc.writeBypasses);
    EXPECT_EQ(a.llc.readWaitCycles, b.llc.readWaitCycles);
    EXPECT_EQ(a.llc.writeStallCycles, b.llc.writeStallCycles);
    EXPECT_EQ(a.llc.hitEnergy, b.llc.hitEnergy);
    EXPECT_EQ(a.llc.missEnergy, b.llc.missEnergy);
    EXPECT_EQ(a.llc.writeEnergy, b.llc.writeEnergy);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramQueueCycles, b.dramQueueCycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.llcLeakageEnergy, b.llcLeakageEnergy);
    EXPECT_EQ(a.llcDynamicEnergy, b.llcDynamicEnergy);
    EXPECT_TRUE(a.detail == b.detail);
}

/** Shared per-suite recording: trace + private outcomes. */
struct Recording
{
    std::shared_ptr<const RecordedTrace> trace;
    std::shared_ptr<const PrivateTrace> priv;
};

Recording
makeRecording(const BenchmarkSpec &spec, const SystemConfig &base,
              std::uint32_t threads = 0)
{
    Recording r;
    if (threads == 0)
        threads = spec.defaultThreads;
    r.trace = RecordedTrace::record(spec.gen, threads);
    auto cursors = r.trace->cursors();
    std::vector<BatchSource *> srcs;
    for (TraceCursor &c : cursors)
        srcs.push_back(&c);
    r.priv = PrivateTrace::record(srcs, base.core);
    return r;
}

/**
 * One replay run through System::runReplay with the given knobs.
 * batch == false forces the per-access scheduler (the oracle).
 */
SimStats
runReplay(const Recording &rec, const SystemConfig &base,
          const LlcModel &llc, std::uint32_t shards, bool batch)
{
    SystemConfig cfg = base;
    cfg.numCores = rec.trace->threads();
    cfg.shards = shards;
    cfg.batchReplay = batch;
    System system(cfg, llc);
    auto cursors = rec.trace->cursors();
    std::vector<ReplaySource *> ptrs;
    for (TraceCursor &c : cursors)
        ptrs.push_back(&c);
    return system.runReplay(ptrs, rec.priv.get());
}

double
globalCounter(const std::string &name)
{
    return double(MetricsRegistry::global().counter(name).get());
}

double
detailScalar(const SimStats &s, const std::string &path)
{
    auto it = s.detail.entries.find(path);
    return it == s.detail.entries.end() ? -1.0 : it->second.scalar;
}

} // namespace

TEST(ShardedReplay, KernelMatchesLegacyScheduler)
{
    // The batch kernel against the per-access min-local-time
    // scheduler on the same recording: every SimStats field,
    // including the full detail tree, bit for bit.
    const BenchmarkSpec spec = trimmed("tonto", 120'000);
    const SystemConfig base;
    const Recording rec = makeRecording(spec, base);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    const SimStats legacy = runReplay(rec, base, jan, 1, false);
    const SimStats kernel = runReplay(rec, base, jan, 1, true);
    expectSimStatsIdentical(legacy, kernel);
}

TEST(ShardedReplay, BitIdenticalAcrossShardCounts)
{
    // Shard counts that divide the set count evenly, unevenly (7),
    // and degenerately (1) must all merge back to the serial state.
    const BenchmarkSpec spec = trimmed("tonto", 120'000);
    const SystemConfig base;
    const Recording rec = makeRecording(spec, base);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    const SimStats serial = runReplay(rec, base, jan, 1, true);
    for (std::uint32_t shards : {2u, 4u, 7u}) {
        const SimStats sharded =
            runReplay(rec, base, jan, shards, true);
        SCOPED_TRACE("shards=" + std::to_string(shards));
        expectSimStatsIdentical(serial, sharded);
    }
}

TEST(ShardedReplay, FaultSweepBitIdentical)
{
    // With the fault layer injecting aggressively (retries, scrubs,
    // wear retirements), the per-line draw and wear state the shards
    // classify must absorb back losslessly: every llc.faults.*
    // counter and distribution rides in the detail tree.
    const BenchmarkSpec spec = trimmed("lbm", 120'000);
    SystemConfig base;
    base.llc.faults.enabled = true;
    base.llc.faults.berScale = 64.0;
    base.llc.faults.wearScale = 1e6;
    const Recording rec = makeRecording(spec, base);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    const SimStats legacy = runReplay(rec, base, jan, 1, false);
    ASSERT_GT(detailScalar(legacy, "sim.llc.faults.writeRetries"),
              0.0); // the config actually injects
    for (std::uint32_t shards : {1u, 4u, 7u}) {
        const SimStats sharded =
            runReplay(rec, base, jan, shards, true);
        SCOPED_TRACE("shards=" + std::to_string(shards));
        expectSimStatsIdentical(legacy, sharded);
    }
}

TEST(ShardedReplay, WritePoliciesAndBypassBitIdentical)
{
    // The non-default write-timing policies exercise accountWrite's
    // order-sensitive bank state, and bypassWritebackMiss exercises
    // the probe-miss forwarding path; all of it lives in the timing
    // pass, so sharded classification must not perturb any of it.
    const BenchmarkSpec spec = trimmed("lbm", 80'000);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    SystemConfig variants[3];
    variants[0].llc.writePolicy = WritePolicy::BankContention;
    variants[1].llc.writePolicy = WritePolicy::Blocking;
    variants[2].llc.bypassWritebackMiss = true;

    for (const SystemConfig &base : variants) {
        const Recording rec = makeRecording(spec, base);
        const SimStats legacy = runReplay(rec, base, jan, 1, false);
        const SimStats sharded = runReplay(rec, base, jan, 4, true);
        expectSimStatsIdentical(legacy, sharded);
    }
}

TEST(ShardedReplay, OvershardingClampsToSetCountAndMatches)
{
    // More shards than the run needs (and than makes sense) must
    // clamp rather than misroute: a huge shard count still merges to
    // the serial state.
    const BenchmarkSpec spec = trimmed("tonto", 60'000);
    const SystemConfig base;
    const Recording rec = makeRecording(spec, base);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    const SimStats serial = runReplay(rec, base, jan, 1, true);
    const SimStats sharded =
        runReplay(rec, base, jan, 1u << 30, true);
    expectSimStatsIdentical(serial, sharded);
}

TEST(ShardedReplay, MultiThreadTraceFallsBack)
{
    // A multi-source replay interleaves cores by local time, which
    // the kernel cannot precompute; runReplay must route it through
    // the legacy scheduler (counting the fallback) with identical
    // results.
    const BenchmarkSpec spec = trimmed("vips", 120'000);
    const SystemConfig base;
    const Recording rec = makeRecording(spec, base);
    ASSERT_GT(rec.trace->threads(), 1u);
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    SystemConfig cfg = base;
    cfg.numCores = rec.trace->threads();
    System direct(cfg, jan);
    auto directCursors = rec.trace->cursors();
    std::vector<BatchSource *> batch;
    for (TraceCursor &c : directCursors)
        batch.push_back(&c);
    const SimStats viaRun = direct.run(batch, rec.priv.get());

    const double fallbackBefore =
        globalCounter("sim.replay.runs.fallback");
    const SimStats viaReplay = runReplay(rec, base, jan, 4, true);
    EXPECT_EQ(globalCounter("sim.replay.runs.fallback"),
              fallbackBefore + 1.0);
    expectSimStatsIdentical(viaRun, viaReplay);
}

TEST(ShardedReplay, RunnerMatrixShardsJobsBitIdentical)
{
    // The full experiment engine: a tech sweep per (shards, jobs)
    // combination, every result compared against the serial
    // reference. jobs threads run whole simulations concurrently;
    // shards thread inside each simulation; neither may leak into
    // results.
    const BenchmarkSpec spec = trimmed("tonto", 60'000);

    ExperimentRunner reference;
    reference.setJobs(1);
    reference.setShards(1);
    const TechSweep want =
        reference.sweepTechs(spec, CapacityMode::FixedCapacity);

    for (unsigned jobs : {1u, 8u}) {
        for (unsigned shards : {1u, 2u, 4u, 7u}) {
            ExperimentRunner runner;
            runner.setJobs(jobs);
            runner.setShards(shards);
            const TechSweep got =
                runner.sweepTechs(spec, CapacityMode::FixedCapacity);
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " shards=" + std::to_string(shards));
            ASSERT_EQ(want.results.size(), got.results.size());
            for (std::size_t i = 0; i < want.results.size(); ++i) {
                EXPECT_EQ(want.results[i].tech, got.results[i].tech);
                EXPECT_EQ(want.results[i].speedup,
                          got.results[i].speedup);
                EXPECT_EQ(want.results[i].normEnergy,
                          got.results[i].normEnergy);
                EXPECT_EQ(want.results[i].normEd2p,
                          got.results[i].normEd2p);
                expectSimStatsIdentical(want.results[i].stats,
                                        got.results[i].stats);
            }
        }
    }
}

TEST(ShardedReplay, ReliabilityStudyShardsInvariant)
{
    // The reliability grid drives fault-heavy sweeps through the
    // study layer; its report must not depend on the shards knob.
    ReliabilityConfig serialCfg;
    serialCfg.workload = "lbm";
    serialCfg.traceScale = 0.02;
    serialCfg.berScales = {64.0};
    serialCfg.wearLevelingFactors = {0.5};
    serialCfg.wearScale = 1e6;
    serialCfg.jobs = 1;
    serialCfg.shards = 1;
    ReliabilityConfig shardedCfg = serialCfg;
    shardedCfg.jobs = 8;
    shardedCfg.shards = 7;

    const ReliabilityStudy a = runReliabilityStudy(serialCfg);
    const ReliabilityStudy b = runReliabilityStudy(shardedCfg);

    ASSERT_EQ(a.points.size(), b.points.size());
    bool sawFaults = false;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const ReliabilityPoint &pa = a.points[i];
        const ReliabilityPoint &pb = b.points[i];
        EXPECT_EQ(pa.tech, pb.tech);
        EXPECT_EQ(pa.writeRetries, pb.writeRetries);
        EXPECT_EQ(pa.writeScrubs, pb.writeScrubs);
        EXPECT_EQ(pa.readScrubs, pb.readScrubs);
        EXPECT_EQ(pa.uncorrectable, pb.uncorrectable);
        EXPECT_EQ(pa.retiredLines, pb.retiredLines);
        EXPECT_EQ(pa.speedup, pb.speedup);
        EXPECT_TRUE(pa.stats.detail == pb.stats.detail) << pa.tech;
        sawFaults = sawFaults || pa.writeRetries > 0;
    }
    EXPECT_TRUE(sawFaults);
    EXPECT_TRUE(aggregateSimStats(a) == aggregateSimStats(b));
}
