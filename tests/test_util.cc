/**
 * @file
 * Unit tests for the util module: RNG, samplers, statistics, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "util/varint.hh"

using namespace nvmcache;

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiased)
{
    Rng rng(11);
    const std::uint64_t bound = 7;
    std::vector<std::uint64_t> counts(bound, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(bound)];
    for (std::uint64_t c : counts)
        EXPECT_NEAR(double(c), n / double(bound), 0.05 * n / bound);
}

TEST(Rng, InRangeBoundsInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.inRange(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialGapMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.exponentialGap(3.0));
    // gap = 1 + floor(Exp(3)); mean ~ 1 + (3 - 0.5)
    EXPECT_NEAR(sum / n, 3.5, 0.2);
}

// --- ZipfSampler -------------------------------------------------------

class ZipfTest : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(ZipfTest, SamplesInRangeAndRankZeroMostPopular)
{
    const auto [n, s] = GetParam();
    ZipfSampler zipf(n, s);
    Rng rng(17);
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 50000; ++i) {
        auto k = zipf(rng);
        ASSERT_LT(k, std::uint64_t(n));
        ++counts[k];
    }
    if (s > 0.2) {
        // Rank 0 should be (one of) the most frequent.
        int max_count = *std::max_element(counts.begin(), counts.end());
        EXPECT_GE(counts[0], int(max_count * 0.8));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfTest,
    ::testing::Values(std::make_tuple(16, 0.0),
                      std::make_tuple(16, 0.8),
                      std::make_tuple(1024, 0.5),
                      std::make_tuple(1024, 1.0),
                      std::make_tuple(4096, 1.2),
                      std::make_tuple(1, 1.0)));

TEST(Zipf, EmpiricalEntropyTracksExact)
{
    const int n = 512;
    ZipfSampler zipf(n, 0.9);
    Rng rng(23);
    std::vector<double> counts(n, 0.0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i)
        counts[zipf(rng)] += 1.0;
    double h = 0.0;
    for (double c : counts) {
        if (c > 0) {
            double p = c / draws;
            h -= p * std::log2(p);
        }
    }
    EXPECT_NEAR(h, zipf.exactEntropyBits(), 0.15);
}

TEST(Zipf, SkewZeroIsUniform)
{
    ZipfSampler zipf(256, 0.0);
    EXPECT_NEAR(zipf.exactEntropyBits(), 8.0, 1e-9);
}

TEST(Zipf, HigherSkewLowersEntropy)
{
    ZipfSampler a(1024, 0.4), b(1024, 1.2);
    EXPECT_GT(a.exactEntropyBits(), b.exactEntropyBits());
}

// --- DiscreteSampler ---------------------------------------------------

TEST(DiscreteSampler, MatchesWeights)
{
    DiscreteSampler pick({1.0, 2.0, 7.0});
    Rng rng(29);
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[pick(rng)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.2, 0.015);
    EXPECT_NEAR(counts[2] / double(n), 0.7, 0.015);
}

TEST(DiscreteSampler, SingleItem)
{
    DiscreteSampler pick({5.0});
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(pick(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverPicked)
{
    DiscreteSampler pick({0.0, 1.0});
    Rng rng(2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(pick(rng), 1u);
}

// --- stats --------------------------------------------------------------

TEST(Stats, MeanAndStdev)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stdevPop({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, PearsonPerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 5, 9}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({2, 5, 9}, {3, 3, 3}), 0.0);
}

TEST(Stats, PearsonKnownValue)
{
    // Hand-computed: cov = 6.4, sd_x = sqrt(10), sd_y = sqrt(17.2)
    // (sum-of-squares form) -> r = 6.4/sqrt(10*17.2) ~ 0.91499.
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 1, 4, 5, 6};
    EXPECT_NEAR(pearson(x, y), 0.91499, 5e-4);
}

TEST(Stats, SpearmanMonotonicNonlinear)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{1, 8, 27, 64, 125}; // monotone, nonlinear
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Stats, SpearmanHandlesTies)
{
    std::vector<double> x{1, 2, 2, 3};
    std::vector<double> y{10, 20, 20, 30};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> x{0, 1, 2, 3};
    std::vector<double> y{5, 7, 9, 11}; // y = 5 + 2x
    LinearFit fit = linearFit(x, y);
    EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(Stats, AccumulatorTracksMinMaxMean)
{
    Accumulator acc;
    for (double v : {3.0, -1.0, 7.0, 2.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.minimum(), -1.0);
    EXPECT_DOUBLE_EQ(acc.maximum(), 7.0);
    EXPECT_DOUBLE_EQ(acc.average(), 2.75);
}

// --- units --------------------------------------------------------------

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(20.0_ns, 20e-9);
    EXPECT_DOUBLE_EQ(0.75_pJ, 0.75e-12);
    EXPECT_DOUBLE_EQ(600.0_uA, 600e-6);
    EXPECT_DOUBLE_EQ(2_MB, 2097152ull);
    EXPECT_DOUBLE_EQ(toNs(1.5e-9), 1.5);
    EXPECT_DOUBLE_EQ(toNJ(2e-9), 2.0);
    EXPECT_DOUBLE_EQ(toMm2(6.548e-6), 6.548);
    EXPECT_DOUBLE_EQ(toMB(2ull << 20), 2.0);
}

// --- Table --------------------------------------------------------------

TEST(Table, CsvRoundTrip)
{
    Table t("demo");
    t.setHeader({"name", "a", "b"});
    t.startRow("row1");
    t.addCell(1.5, 1);
    t.addCell("x,y");
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("name,a,b"), std::string::npos);
    EXPECT_NE(csv.find("row1,1.5,\"x,y\""), std::string::npos);
}

TEST(Table, PrintContainsCells)
{
    Table t("demo");
    t.setHeader({"name", "v"});
    t.startRow("alpha");
    t.addCell(3.25, 2);
    std::ostringstream os;
    t.setColor(false);
    t.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("3.25"), std::string::npos);
}

TEST(Table, DimensionsTrack)
{
    Table t;
    t.setHeader({"h", "c1", "c2"});
    EXPECT_EQ(t.rows(), 0u);
    t.startRow("r");
    t.addCell("a");
    t.addCell("b");
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.cols(), 3u);
}

TEST(Table, BlankCellsExcludedFromCsvQuoting)
{
    Table t;
    t.setHeader({"n", "v"});
    t.startRow("r");
    t.addBlank();
    EXPECT_NE(t.toCsv().find("r,"), std::string::npos);
}

// --- varint / zigzag edge cases (util/varint.hh) -------------------

namespace {

/** Encode @p v, pad per the fast-decoder contract, decode both ways. */
void
expectVarintRoundTrip(std::uint64_t v)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, v);
    const std::size_t encoded = buf.size();
    buf.resize(encoded + kVarintPad, 0);

    const std::uint8_t *slow = buf.data();
    EXPECT_EQ(getVarint(slow), v);
    EXPECT_EQ(std::size_t(slow - buf.data()), encoded);

    const std::uint8_t *fast = buf.data();
    EXPECT_EQ(getVarintFast(fast), v);
    // Both decoders must consume exactly the encoded bytes — a
    // length disagreement silently desynchronizes a whole stream.
    EXPECT_EQ(fast, slow);
}

} // namespace

TEST(Varint, EveryEncodedLengthRoundTrips)
{
    // One value per encoded length 1..10: the k*7-bit boundaries on
    // both sides. Length 9 is the first to take getVarintFast's
    // byte-loop fallback; length 10 is the 64-bit maximum.
    for (unsigned bits = 7; bits <= 63; bits += 7) {
        expectVarintRoundTrip((std::uint64_t(1) << bits) - 1);
        expectVarintRoundTrip(std::uint64_t(1) << bits);
    }
    expectVarintRoundTrip(0);
    expectVarintRoundTrip(~std::uint64_t(0)); // 10 bytes, all bits
}

TEST(Varint, MaxLengthEncodingIsTenBytes)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, ~std::uint64_t(0));
    EXPECT_EQ(buf.size(), 10u);
    // Continuation bit set on all but the final byte.
    for (std::size_t i = 0; i + 1 < buf.size(); ++i)
        EXPECT_TRUE(buf[i] & 0x80) << "byte " << i;
    EXPECT_FALSE(buf.back() & 0x80);
}

TEST(Varint, FastDecoderMatchesSlowOnDenseStream)
{
    // A stream mixing every length class back to back, decoded by
    // both decoders in lockstep. Catches any window-masking bug that
    // a single-varint test would miss (the next varint's bytes are
    // live data here, not padding).
    std::vector<std::uint64_t> values;
    for (unsigned bits = 0; bits < 64; ++bits) {
        values.push_back((std::uint64_t(1) << bits) - 1);
        values.push_back(std::uint64_t(1) << bits);
        values.push_back((std::uint64_t(1) << bits) | 0x55);
    }
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        putVarint(buf, v);
    buf.resize(buf.size() + kVarintPad, 0);

    const std::uint8_t *slow = buf.data();
    const std::uint8_t *fast = buf.data();
    for (std::uint64_t v : values) {
        EXPECT_EQ(getVarint(slow), v);
        EXPECT_EQ(getVarintFast(fast), v);
        EXPECT_EQ(fast, slow);
    }
}

TEST(Varint, FastDecoderStaysInsidePaddedBuffer)
{
    // The fast decoder's contract: exactly kVarintPad zero bytes
    // after the last varint suffice. Decode a stream whose final
    // varint ends flush against the pad from a heap buffer sized to
    // the byte — under ASan, any over-read past the pad faults.
    std::vector<std::uint8_t> stream;
    putVarint(stream, 1);               // 1-byte path
    putVarint(stream, ~std::uint64_t(0)); // 10-byte fallback path
    putVarint(stream, 0x80);            // 2-byte path, last varint
    const std::size_t bytes = stream.size() + kVarintPad;
    auto buf = std::make_unique<std::uint8_t[]>(bytes);
    std::memcpy(buf.get(), stream.data(), stream.size());
    std::memset(buf.get() + stream.size(), 0, kVarintPad);

    const std::uint8_t *p = buf.get();
    EXPECT_EQ(getVarintFast(p), 1u);
    EXPECT_EQ(getVarintFast(p), ~std::uint64_t(0));
    EXPECT_EQ(getVarintFast(p), 0x80u);
    EXPECT_EQ(std::size_t(p - buf.get()), stream.size());
}

TEST(Varint, ZigzagExtremes)
{
    const std::int64_t cases[] = {
        0,
        1,
        -1,
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::min() + 1,
    };
    for (std::int64_t d : cases) {
        EXPECT_EQ(unzigzag(zigzag(d)), d) << d;
        expectVarintRoundTrip(zigzag(d));
    }
    // Small magnitudes stay small — the property the delta encoding
    // of the trace stores relies on for density.
    EXPECT_EQ(zigzag(0), 0u);
    EXPECT_EQ(zigzag(-1), 1u);
    EXPECT_EQ(zigzag(1), 2u);
    EXPECT_EQ(zigzag(-2), 3u);
}
