/**
 * @file
 * Tests for the circuit-level estimator substrate: technology
 * scaling, mat/H-tree structure, the eq (4)-(8) identities, the
 * published Table III data, and the fixed-area solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nvm/model_library.hh"
#include "nvsim/area_solver.hh"
#include "nvsim/array.hh"
#include "nvsim/estimator.hh"
#include "nvsim/htree.hh"
#include "nvsim/published.hh"
#include "nvsim/tech.hh"
#include "util/stats.hh"
#include "util/units.hh"

using namespace nvmcache;

// --- tech ----------------------------------------------------------------

TEST(Tech, TableEndpointsExact)
{
    TechNode t45 = techAt(45e-9);
    EXPECT_DOUBLE_EQ(t45.node, 45e-9);
    EXPECT_NEAR(t45.fo4Delay, 16e-12, 1e-15);
    EXPECT_NEAR(t45.vdd, 1.0, 1e-12);
}

TEST(Tech, InterpolatesBetweenNodes)
{
    TechNode t = techAt(54e-9);
    TechNode lo = techAt(45e-9), hi = techAt(65e-9);
    EXPECT_GT(t.fo4Delay, lo.fo4Delay);
    EXPECT_LT(t.fo4Delay, hi.fo4Delay);
    EXPECT_GT(t.vdd, lo.vdd);
    EXPECT_LT(t.vdd, hi.vdd);
}

TEST(Tech, ClampsOutOfRange)
{
    EXPECT_DOUBLE_EQ(techAt(10e-9).node, 22e-9);
    EXPECT_DOUBLE_EQ(techAt(500e-9).node, 180e-9);
}

TEST(Tech, MonotoneScaling)
{
    // Gates get faster and leakier as the node shrinks; wire
    // resistance rises.
    double prev_fo4 = 0.0, prev_res = 1e18;
    for (double node : {120e-9, 90e-9, 65e-9, 45e-9, 32e-9, 22e-9}) {
        TechNode t = techAt(node);
        if (prev_fo4 > 0.0) {
            EXPECT_LT(t.fo4Delay, prev_fo4);
            EXPECT_GT(t.wireResPerM, 0.0);
        }
        EXPECT_LT(t.wireResPerM, 2e6);
        EXPECT_GT(t.wireResPerM, 0.0);
        EXPECT_LT(t.wireResPerM, prev_res * 20);
        prev_fo4 = t.fo4Delay;
        prev_res = t.wireResPerM;
    }
}

// --- array / mat ----------------------------------------------------------

TEST(Mat, WriteLatencyIncludesPulse)
{
    const CellSpec &chung = publishedCell("Chung");
    TechNode tech = techAt(chung.processNode.get());
    CacheOrgConfig org;
    Calibration cal;
    MatModel mat = buildMat(chung, tech, org, cal);
    EXPECT_GE(mat.writeSetLatency, chung.setPulse.get());
    EXPECT_GE(mat.writeResetLatency, chung.resetPulse.get());
    // ... but within a few ns of the pulse (peripheral overhead only).
    EXPECT_LT(mat.writeSetLatency, chung.setPulse.get() + 5e-9);
}

TEST(Mat, SttramSensingSlowsWithLowReadVoltage)
{
    // Jan reads at 0.08 V; Xue at 1.2 V. Jan must sense slower.
    const CellSpec &jan = publishedCell("Jan");
    const CellSpec &xue = publishedCell("Xue");
    Calibration cal;
    double t_jan = senseTime(jan, techAt(jan.processNode.get()), cal);
    double t_xue = senseTime(xue, techAt(xue.processNode.get()), cal);
    EXPECT_GT(t_jan, 3.0 * t_xue);
}

TEST(Mat, PcramWriteEnergyMatchesPublishedScale)
{
    // Per-line write energy = 512 * per-bit energy should land within
    // ~35% of the published E_dyn,write for each PCRAM cell.
    Calibration cal;
    CacheOrgConfig org;
    struct Expect
    {
        const char *name;
        double published_nj;
    } cases[] = {
        {"Oh", 225.413}, {"Chen", 34.108}, {"Kang", 375.073},
        {"Close", 51.116},
    };
    for (const auto &c : cases) {
        const CellSpec &cell = publishedCell(c.name);
        MatModel mat =
            buildMat(cell, techAt(cell.processNode.get()), org, cal);
        double per_line =
            512.0 * std::max(mat.writeSetEnergyPerBit,
                             mat.writeResetEnergyPerBit);
        EXPECT_NEAR(per_line / (c.published_nj * 1e-9), 1.0, 0.35)
            << c.name;
    }
}

TEST(Mat, SramCellsLeakNvmCellsDoNot)
{
    CacheOrgConfig org;
    Calibration cal;
    const CellSpec &sram = sramBaselineCell();
    const CellSpec &zhang = publishedCell("Zhang");
    MatModel m_sram =
        buildMat(sram, techAt(sram.processNode.get()), org, cal);
    MatModel m_zhang =
        buildMat(zhang, techAt(zhang.processNode.get()), org, cal);
    EXPECT_GT(m_sram.leakage, 10.0 * m_zhang.leakage);
}

// --- htree -----------------------------------------------------------------

TEST(Htree, SingleMatNeedsNoRouting)
{
    HtreeModel h = buildHtree(1, 1e-7, techAt(45e-9));
    EXPECT_DOUBLE_EQ(h.latency, 0.0);
    EXPECT_DOUBLE_EQ(h.energyPerBit, 0.0);
}

TEST(Htree, LatencyGrowsWithBankArea)
{
    TechNode tech = techAt(45e-9);
    HtreeModel small = buildHtree(16, 1e-8, tech);
    HtreeModel large = buildHtree(256, 1e-8, tech);
    EXPECT_GT(large.latency, small.latency);
    EXPECT_GT(large.energyPerBit, small.energyPerBit);
    EXPECT_GT(large.wireArea, small.wireArea);
}

// --- estimator ---------------------------------------------------------------

class EstimatorAllCellsTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    Estimator estimator_;
    CacheOrgConfig org_; // 2 MB default
};

TEST_P(EstimatorAllCellsTest, ProducesPhysicallySaneModel)
{
    const CellSpec &cell = GetParam() == "SRAM"
                               ? sramBaselineCell()
                               : publishedCell(GetParam());
    LlcModel m = estimator_.estimate(cell, org_);
    EXPECT_GT(m.area, 0.05e-6);  // > 0.05 mm^2
    EXPECT_LT(m.area, 50e-6);    // < 50 mm^2
    EXPECT_GT(m.tagLatency, 0.05e-9);
    EXPECT_LT(m.tagLatency, 10e-9);
    EXPECT_GT(m.readLatency, m.tagLatency * 0.2);
    EXPECT_LT(m.readLatency, 20e-9);
    EXPECT_GE(m.writeLatency(), 0.3e-9);
    EXPECT_GT(m.eHit, m.eMiss);
    EXPECT_GT(m.eWrite, m.eMiss);
    EXPECT_GT(m.leakage, 1e-4);
    EXPECT_LT(m.leakage, 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, EstimatorAllCellsTest,
    ::testing::Values("Oh", "Chen", "Kang", "Close", "Chung", "Jan",
                      "Umeki", "Xue", "Hayakawa", "Zhang", "SRAM"));

TEST(Estimator, Eq4Eq5Structure)
{
    // Reads traverse the H-tree twice, writes once: for any cell,
    // t_read - t_read,mat ~= 2 * (t_write - t_write,mat).
    Estimator est;
    CacheOrgConfig org;
    Calibration cal;
    const CellSpec &cell = publishedCell("Chung");
    TechNode tech = techAt(cell.processNode.get());
    MatModel mat = buildMat(cell, tech, org, cal);
    LlcModel m = est.estimate(cell, org);
    double read_htree = m.readLatency - mat.readLatency;
    double write_htree = m.writeLatencySet - mat.writeSetLatency;
    EXPECT_NEAR(read_htree, 2.0 * write_htree, 1e-12);
}

TEST(Estimator, Eq7TagOnlyMissEnergy)
{
    Estimator est;
    CacheOrgConfig org;
    LlcModel m = est.estimate(publishedCell("Chung"), org);
    // eMiss is the tag probe energy; hit/write add the data array on
    // top of the same tag probe (eqs 6-8).
    EXPECT_GT(m.eHit, m.eMiss);
    EXPECT_GT(m.eWrite, m.eHit * 0.5);
}

TEST(Estimator, SramBaselineNearPublished)
{
    Estimator est;
    CacheOrgConfig org;
    LlcModel m = est.estimate(sramBaselineCell(), org);
    // Published: 6.548 mm^2, 3.438 W leakage for the 2 MB LLC.
    EXPECT_NEAR(toMm2(m.area), 6.548, 3.0);
    EXPECT_NEAR(m.leakage, 3.438, 1.8);
    EXPECT_LT(m.writeLatency(), 2e-9); // SRAM writes are fast
}

TEST(Estimator, MlcHalvesDataArea)
{
    Estimator est;
    CacheOrgConfig org;
    CellSpec slc = publishedCell("Xue");
    slc.name = "Xue-slc";
    slc.cellLevels = CellParam::reported(1);
    LlcModel mlc = est.estimate(publishedCell("Xue"), org);
    LlcModel slc_model = est.estimate(slc, org);
    EXPECT_LT(mlc.area, slc_model.area * 0.75);
}

TEST(Estimator, AreaMonotonicInCapacity)
{
    Estimator est;
    CacheOrgConfig org;
    double prev = 0.0;
    for (std::uint64_t mb : {1, 2, 4, 8, 16}) {
        org.capacityBytes = mb << 20;
        LlcModel m = est.estimate(publishedCell("Chung"), org);
        EXPECT_GT(m.area, prev);
        prev = m.area;
    }
}

TEST(Estimator, RramDensestSramLeakiest)
{
    Estimator est;
    CacheOrgConfig org;
    LlcModel zhang = est.estimate(publishedCell("Zhang"), org);
    LlcModel jan = est.estimate(publishedCell("Jan"), org);
    LlcModel sram = est.estimate(sramBaselineCell(), org);
    EXPECT_LT(zhang.area, jan.area);
    EXPECT_LT(zhang.area, sram.area);
    EXPECT_GT(sram.leakage, zhang.leakage);
    EXPECT_GT(sram.leakage, jan.leakage);
}

TEST(Estimator, RankCorrelationWithPublishedTableIII)
{
    // Across the 11 technologies, the estimator's ordering of area,
    // write latency, and write energy must track the published NVSim
    // ordering (Spearman > 0.6). Absolute agreement is not the goal —
    // the paper's methodology point is consistent relative modeling.
    Estimator est;
    CacheOrgConfig org;
    std::vector<double> est_area, pub_area, est_wlat, pub_wlat,
        est_we, pub_we;
    for (const LlcModel &pub :
         publishedLlcModels(CapacityMode::FixedCapacity)) {
        const CellSpec &cell = pub.klass == NvmClass::SRAM
                                   ? sramBaselineCell()
                                   : publishedCell(pub.name);
        LlcModel m = est.estimate(cell, org);
        est_area.push_back(m.area);
        pub_area.push_back(pub.area);
        est_wlat.push_back(m.writeLatency());
        pub_wlat.push_back(pub.writeLatency());
        est_we.push_back(m.eWrite);
        pub_we.push_back(pub.eWrite);
    }
    EXPECT_GT(spearman(est_area, pub_area), 0.6);
    EXPECT_GT(spearman(est_wlat, pub_wlat), 0.6);
    EXPECT_GT(spearman(est_we, pub_we), 0.6);
}

TEST(Estimator, RejectsIncompleteSpec)
{
    Estimator est;
    CacheOrgConfig org;
    CellSpec incomplete;
    incomplete.name = "hole";
    incomplete.klass = NvmClass::STTRAM;
    incomplete.processNode = CellParam::reported(45e-9);
    EXPECT_DEATH(est.estimate(incomplete, org), "incomplete");
}

// --- published Table III -----------------------------------------------------

class PublishedModeTest : public ::testing::TestWithParam<CapacityMode>
{
};

TEST_P(PublishedModeTest, ElevenModelsSramLast)
{
    const auto &models = publishedLlcModels(GetParam());
    ASSERT_EQ(models.size(), 11u);
    EXPECT_EQ(models.back().name, "SRAM");
}

TEST_P(PublishedModeTest, AllPositive)
{
    for (const LlcModel &m : publishedLlcModels(GetParam())) {
        EXPECT_GT(m.capacityBytes, 0u) << m.name;
        EXPECT_GT(m.tagLatency, 0.0) << m.name;
        EXPECT_GT(m.readLatency, 0.0) << m.name;
        EXPECT_GT(m.writeLatency(), 0.0) << m.name;
        EXPECT_GT(m.eHit, 0.0) << m.name;
        EXPECT_GT(m.leakage, 0.0) << m.name;
    }
}

INSTANTIATE_TEST_SUITE_P(BothModes, PublishedModeTest,
                         ::testing::Values(CapacityMode::FixedCapacity,
                                           CapacityMode::FixedArea));

TEST(Published, FixedCapacityIsAllTwoMB)
{
    for (const LlcModel &m :
         publishedLlcModels(CapacityMode::FixedCapacity))
        EXPECT_EQ(m.capacityBytes, 2ull << 20) << m.name;
}

TEST(Published, FixedAreaCapacitiesMatchPaper)
{
    struct Expect
    {
        const char *name;
        double mb;
    } expected[] = {
        {"Oh", 2},    {"Chen", 4},     {"Kang", 2}, {"Close", 4},
        {"Chung", 8}, {"Jan", 1},      {"Umeki", 2}, {"Xue", 8},
        {"Hayakawa", 32}, {"Zhang", 128}, {"SRAM", 2},
    };
    for (const auto &e : expected) {
        const LlcModel &m =
            publishedLlcModel(e.name, CapacityMode::FixedArea);
        EXPECT_DOUBLE_EQ(toMB(m.capacityBytes), e.mb) << e.name;
    }
}

TEST(Published, PcramSetResetAsymmetry)
{
    const LlcModel &oh =
        publishedLlcModel("Oh", CapacityMode::FixedCapacity);
    EXPECT_NEAR(toNs(oh.writeLatencySet), 181.206, 1e-9);
    EXPECT_NEAR(toNs(oh.writeLatencyReset), 11.206, 1e-9);
    EXPECT_NEAR(toNs(oh.writeLatency()), 181.206, 1e-9);
}

TEST(Published, SramRowMatchesPaper)
{
    const LlcModel &sram = sramBaselineLlc();
    EXPECT_NEAR(toMm2(sram.area), 6.548, 1e-9);
    EXPECT_NEAR(toNs(sram.tagLatency), 0.439, 1e-9);
    EXPECT_NEAR(toNs(sram.readLatency), 1.234, 1e-9);
    EXPECT_NEAR(toNJ(sram.eHit), 0.565, 1e-9);
    EXPECT_NEAR(sram.leakage, 3.438, 1e-9);
}

TEST(Published, CitationNames)
{
    EXPECT_EQ(publishedLlcModel("Oh", CapacityMode::FixedCapacity)
                  .citationName(),
              "Oh_P");
    EXPECT_EQ(publishedLlcModel("Zhang", CapacityMode::FixedArea)
                  .citationName(),
              "Zhang_R");
    EXPECT_EQ(sramBaselineLlc().citationName(), "SRAM");
}

// --- area solver ---------------------------------------------------------------

TEST(AreaSolver, DenserCellsGetMoreCapacity)
{
    AreaSolver solver{Estimator()};
    CacheOrgConfig org;
    const double budget = 6.548e-6;
    auto zhang = solver.solve(publishedCell("Zhang"), budget, org);
    auto jan = solver.solve(publishedCell("Jan"), budget, org);
    auto chung = solver.solve(publishedCell("Chung"), budget, org);
    EXPECT_GT(zhang.capacityBytes, 4 * chung.capacityBytes);
    EXPECT_GE(chung.capacityBytes, jan.capacityBytes);
}

TEST(AreaSolver, RespectsBudgetWithSlack)
{
    AreaSolver::Options opts;
    AreaSolver solver{Estimator(), opts};
    CacheOrgConfig org;
    const double budget = 6.548e-6;
    for (const char *name : {"Chung", "Xue", "Hayakawa", "Zhang"}) {
        auto r = solver.solve(publishedCell(name), budget, org);
        EXPECT_LE(r.model.area, budget * (1.0 + opts.slack)) << name;
    }
}

TEST(AreaSolver, LargerBudgetNeverShrinksCapacity)
{
    AreaSolver solver{Estimator()};
    CacheOrgConfig org;
    auto small = solver.solve(publishedCell("Chung"), 3e-6, org);
    auto large = solver.solve(publishedCell("Chung"), 12e-6, org);
    EXPECT_GE(large.capacityBytes, small.capacityBytes);
}

TEST(Estimator, LargerMatsAmortizePeripheralAreaAndLeakage)
{
    Estimator est;
    CacheOrgConfig small, large;
    small.matRows = small.matCols = 256;
    large.matRows = large.matCols = 1024;
    for (const char *name : {"Kang", "Chung", "Zhang"}) {
        LlcModel s = est.estimate(publishedCell(name), small);
        LlcModel l = est.estimate(publishedCell(name), large);
        EXPECT_LT(l.area, s.area) << name;
        EXPECT_LT(l.leakage, s.leakage) << name;
    }
}

TEST(Estimator, HigherAssociativityCostsMoreTagEnergy)
{
    Estimator est;
    CacheOrgConfig lo, hi;
    lo.associativity = 8;
    hi.associativity = 32;
    LlcModel a = est.estimate(publishedCell("Chung"), lo);
    LlcModel b = est.estimate(publishedCell("Chung"), hi);
    EXPECT_GT(b.eMiss, a.eMiss * 1.5);
}

TEST(Estimator, WriteLatencyInsensitiveToOrganization)
{
    // NVM write latency is pulse-dominated; organization moves it by
    // nanoseconds at most.
    Estimator est;
    CacheOrgConfig small, large;
    small.matRows = small.matCols = 256;
    large.matRows = large.matCols = 1024;
    LlcModel s = est.estimate(publishedCell("Zhang"), small);
    LlcModel l = est.estimate(publishedCell("Zhang"), large);
    EXPECT_NEAR(toNs(s.writeLatency()), toNs(l.writeLatency()), 2.0);
}
