/**
 * @file
 * Tests for the architectural extensions layered on the baseline
 * reproduction: replacement-policy variants and NVM write-bypass
 * (the paper's related-work category 2).
 */

#include <gtest/gtest.h>

#include "nvsim/published.hh"
#include "sim/cache.hh"
#include "sim/nvm_llc.hh"
#include "sim/system.hh"
#include "util/rng.hh"
#include "workload/generators.hh"

using namespace nvmcache;

// --- replacement policies ------------------------------------------------

namespace {

CacheGeometry
geom(ReplacementPolicy policy)
{
    return CacheGeometry{128, 2, 64, policy};
}

} // namespace

TEST(Replacement, FifoIgnoresHits)
{
    SetAssocCache cache(geom(ReplacementPolicy::FIFO));
    cache.access(0x0, false);  // A inserted first
    cache.access(0x40, false); // B
    cache.access(0x0, false);  // hit A: FIFO must NOT refresh it
    auto r = cache.access(0x80, false);
    EXPECT_EQ(r.evictedAddr, 0x0u); // A evicted despite recent hit
}

TEST(Replacement, LruRefreshesOnHit)
{
    SetAssocCache cache(geom(ReplacementPolicy::LRU));
    cache.access(0x0, false);
    cache.access(0x40, false);
    cache.access(0x0, false);
    auto r = cache.access(0x80, false);
    EXPECT_EQ(r.evictedAddr, 0x40u);
}

TEST(Replacement, RandomIsDeterministicPerInstance)
{
    SetAssocCache a(geom(ReplacementPolicy::Random));
    SetAssocCache b(geom(ReplacementPolicy::Random));
    Rng rng(4);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 2000; ++i)
        addrs.push_back(rng.below(1 << 16) & ~63ull);
    for (std::uint64_t addr : addrs) {
        auto ra = a.access(addr, false);
        auto rb = b.access(addr, false);
        EXPECT_EQ(ra.hit, rb.hit);
        EXPECT_EQ(ra.evictedAddr, rb.evictedAddr);
    }
}

TEST(Replacement, RandomStillPrefersInvalidWays)
{
    SetAssocCache cache(geom(ReplacementPolicy::Random));
    auto r1 = cache.access(0x0, false);
    auto r2 = cache.access(0x40, false);
    // Two fills into a 2-way set must not evict anything.
    EXPECT_FALSE(r1.evictedValid);
    EXPECT_FALSE(r2.evictedValid);
}

class PolicyHitRateTest
    : public ::testing::TestWithParam<ReplacementPolicy>
{
};

TEST_P(PolicyHitRateTest, SkewedTrafficMostlyHits)
{
    SetAssocCache cache(
        CacheGeometry{32 * 1024, 8, 64, GetParam()});
    ZipfSampler zipf(256, 1.0); // hot set fits easily
    Rng rng(11);
    std::uint64_t hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += cache.access(zipf(rng) * 64, false).hit;
    EXPECT_GT(double(hits) / n, 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyHitRateTest,
                         ::testing::Values(ReplacementPolicy::LRU,
                                           ReplacementPolicy::FIFO,
                                           ReplacementPolicy::Random));

TEST(Replacement, LruBeatsRandomOnReuseHeavyTraffic)
{
    // Working set slightly over capacity with skewed reuse: LRU's
    // recency tracking must win.
    auto run = [](ReplacementPolicy policy) {
        SetAssocCache cache(CacheGeometry{8192, 4, 64, policy});
        ZipfSampler zipf(256, 0.8); // 16 KB zipf set over 8 KB cache
        Rng rng(13);
        std::uint64_t hits = 0;
        for (int i = 0; i < 50000; ++i)
            hits += cache.access(zipf(rng) * 64, false).hit;
        return hits;
    };
    EXPECT_GT(run(ReplacementPolicy::LRU),
              run(ReplacementPolicy::Random));
}

// --- write bypass ------------------------------------------------------------

namespace {

SharedLlc
makeLlc(bool bypass)
{
    SharedLlc::Config cfg;
    cfg.bypassWritebackMiss = bypass;
    return SharedLlc(
        publishedLlcModel("Kang", CapacityMode::FixedCapacity), cfg,
        2.66e9);
}

} // namespace

TEST(WriteBypass, MissingWritebackForwardedToDram)
{
    SharedLlc llc = makeLlc(true);
    auto wb = llc.writeback(0x9000, 0);
    EXPECT_TRUE(wb.forwardedToDram);
    EXPECT_EQ(llc.stats().writeBypasses, 1u);
    EXPECT_DOUBLE_EQ(llc.stats().writeEnergy, 0.0); // no array write
    // The line was NOT installed.
    auto rd = llc.demandRead(0x9000, 10);
    EXPECT_FALSE(rd.hit);
}

TEST(WriteBypass, PresentLineStillWrittenInPlace)
{
    SharedLlc llc = makeLlc(true);
    llc.demandRead(0x9000, 0); // install via demand fill
    auto wb = llc.writeback(0x9000, 10);
    EXPECT_FALSE(wb.forwardedToDram);
    EXPECT_EQ(llc.stats().writeBypasses, 0u);
}

TEST(WriteBypass, DisabledInstallsEverything)
{
    SharedLlc llc = makeLlc(false);
    auto wb = llc.writeback(0x9000, 0);
    EXPECT_FALSE(wb.forwardedToDram);
    auto rd = llc.demandRead(0x9000, 10);
    EXPECT_TRUE(rd.hit);
}

TEST(WriteBypass, CutsWriteEnergyOnStreamingWritebacks)
{
    // Streaming writeback traffic (no reuse): bypass should remove
    // nearly all NVM write energy.
    auto energy = [](bool bypass) {
        SharedLlc llc = makeLlc(bypass);
        for (std::uint64_t i = 0; i < 5000; ++i)
            llc.writeback(0x100000 + i * 64, i);
        return llc.stats().writeEnergy;
    };
    EXPECT_LT(energy(true), 0.01 * energy(false));
}

TEST(WriteBypass, SystemLevelEnergyNeverWorseForStreamingStores)
{
    // Bypass fires when a dirty line outlives its LLC copy: private
    // hot store sets stay alive in each core's L2 (LRU refresh) while
    // four cores' streaming loads churn the shared LLC underneath.
    GeneratorConfig cfg;
    cfg.totalAccesses = 1'500'000;
    cfg.loadFraction = 0.7;
    cfg.storeFraction = 0.3;
    StreamConfig stream;
    stream.kind = StreamConfig::Kind::Sequential;
    stream.regionBytes = 8 << 20;
    stream.stride = 8;
    cfg.loads.streams = {stream};
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 256 << 10;
    hot.zipfSkew = 0.8;
    cfg.stores.streams = {hot};

    auto run = [&](bool bypass) {
        SystemConfig sys;
        sys.numCores = 4;
        sys.llc.bypassWritebackMiss = bypass;
        System system(sys, publishedLlcModel(
                               "Kang", CapacityMode::FixedCapacity));
        auto traces = buildThreadTraces(cfg, 4);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        return system.run(ptrs);
    };
    SimStats with = run(true);
    SimStats without = run(false);
    EXPECT_LT(with.llcDynamicEnergy, without.llcDynamicEnergy);
    EXPECT_GT(with.llc.writeBypasses, 0u);
    // Bypassed lines went somewhere: DRAM write traffic grows.
    EXPECT_GT(with.dramWrites, without.dramWrites);
}
