/**
 * @file
 * The tracing subsystem: disabled-by-default no-op behavior, context
 * scoping, event collection and the Chrome-trace-event export schema,
 * request-id filtering, parent-directory creation on write, and the
 * headline determinism contract — a run's trace has byte-identical
 * semantic content (modulo wall-clock ts/dur/tid) at any --jobs
 * count, and identical content outside the "replay" category at any
 * --shards count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/study.hh"
#include "util/json.hh"
#include "util/parallel.hh"
#include "util/trace_events.hh"

using namespace nvmcache;

namespace {

/** RAII: clean collector + tracing on for one test, off after. */
struct TracingOn
{
    TracingOn()
    {
        clearTraceEvents();
        setTracingEnabled(true);
    }
    ~TracingOn()
    {
        setTracingEnabled(false);
        clearTraceEvents();
    }
};

/**
 * The export with every nondeterministic field removed: "tid" always
 * (thread registration order depends on scheduling), "ts"/"dur" on
 * wall-clock events (pid 1). Simulated-time events (pid 2) keep their
 * ts — simulated cycles are part of the determinism contract.
 */
JsonValue
normalizedTrace(std::uint64_t traceId = 0)
{
    JsonValue doc = traceEventsToJson(traceId);
    for (JsonValue &e : doc.members.at("traceEvents").items) {
        e.members.erase("tid");
        if (e.numberOr("pid", 0) == 1.0) {
            e.members.erase("ts");
            e.members.erase("dur");
        }
    }
    return doc;
}

/** Events of @p doc whose "cat" is not @p dropped. */
JsonValue
withoutCategory(const JsonValue &doc, const std::string &dropped)
{
    JsonValue out = JsonValue::makeObject();
    JsonValue evs = JsonValue::makeArray();
    for (const JsonValue &e : doc.members.at("traceEvents").items)
        if (e.stringOr("cat", "") != dropped)
            evs.push(e);
    out.set("traceEvents", std::move(evs));
    return out;
}

/** Count of events in @p doc with name == @p name. */
std::size_t
countNamed(const JsonValue &doc, const std::string &name)
{
    std::size_t n = 0;
    for (const JsonValue &e : doc.members.at("traceEvents").items)
        if (e.stringOr("name", "") == name)
            ++n;
    return n;
}

} // namespace

// --- enable/disable --------------------------------------------------

TEST(TraceEvents, DisabledByDefaultCollectsNothing)
{
    clearTraceEvents();
    ASSERT_FALSE(tracingEnabled());
    {
        TraceSpan span("x", "study", "id");
    }
    traceInstant("y", "engine", "id2");
    traceCounter("z", "engine", "id3", 1.0);
    traceSimCounter("w", "id4", 100, 2.0);
    EXPECT_EQ(traceEventCount(), 0u);
    EXPECT_EQ(traceDroppedCount(), 0u);
}

TEST(TraceEvents, CollectsAllThreeKindsWhenEnabled)
{
    TracingOn on;
    {
        TraceSpan span("phase.a", "study", "a");
    }
    traceInstant("hit", "engine", "a/hit");
    traceSimCounter("llc.misses", "a/llc", 4096, 17.0);
    ASSERT_EQ(traceEventCount(), 3u);

    const std::vector<TraceEvent> evs = snapshotTraceEvents();
    ASSERT_EQ(evs.size(), 3u);
    // Content sort: cat "engine" < "sim" < "study".
    EXPECT_EQ(evs[0].kind, TraceEventKind::Instant);
    EXPECT_EQ(evs[0].name, "hit");
    EXPECT_EQ(evs[0].id, "a/hit");
    EXPECT_EQ(evs[1].kind, TraceEventKind::Counter);
    EXPECT_TRUE(evs[1].simTime);
    EXPECT_EQ(evs[1].ts, 4096);
    EXPECT_EQ(evs[1].value, 17.0);
    EXPECT_EQ(evs[2].kind, TraceEventKind::Span);
    EXPECT_EQ(evs[2].name, "phase.a");
    EXPECT_GE(evs[2].dur, 0);
}

// --- context ---------------------------------------------------------

TEST(TraceEvents, ScopesInstallAndRestoreContext)
{
    TracingOn on;
    EXPECT_EQ(TraceContext::current().path, "");
    {
        TraceScope outer(TraceContext{"study/figure", 7});
        EXPECT_EQ(TraceContext::current().path, "study/figure");
        EXPECT_EQ(TraceContext::current().traceId, 7u);
        EXPECT_EQ(TraceContext::current().child("job0").path,
                  "study/figure/job0");
        {
            TraceScope inner(TraceContext{"run/lbm", 7});
            EXPECT_EQ(TraceContext::current().path, "run/lbm");
        }
        EXPECT_EQ(TraceContext::current().path, "study/figure");
    }
    EXPECT_EQ(TraceContext::current().path, "");
}

TEST(TraceEvents, ParallelMapEmitsIdenticalJobSpansAtAnyJobCount)
{
    const std::vector<int> items{1, 2, 3, 4, 5};
    auto square = [](const int &x) { return x * x; };

    std::string serial, pooled;
    {
        TracingOn on;
        TraceScope scope(TraceContext{"p", 0});
        parallelMap(1, items, square);
        serial = normalizedTrace().dump();
    }
    {
        TracingOn on;
        TraceScope scope(TraceContext{"p", 0});
        parallelMap(4, items, square);
        pooled = normalizedTrace().dump();
    }
    EXPECT_EQ(serial, pooled);
    EXPECT_NE(serial.find("\"p/job0\""), std::string::npos);
    EXPECT_NE(serial.find("\"p/job4\""), std::string::npos);
}

// --- export schema ---------------------------------------------------

TEST(TraceEvents, ExportMatchesChromeTraceEventSchema)
{
    TracingOn on;
    {
        TraceScope scope(TraceContext{"req", 3});
        TraceSpan span("service.run", "service", "req");
        traceInstant("hit", "engine", "req/hit");
    }
    traceSimCounter("llc.misses", "run/llc", 10, 2.0);

    const JsonValue doc =
        JsonValue::parse(exportTraceJson()); // round-trips
    const JsonValue &evs = doc.at("traceEvents");
    ASSERT_TRUE(evs.isArray());
    ASSERT_GE(evs.items.size(), 5u); // 2 metadata + 3 events

    std::set<std::string> phases;
    for (const JsonValue &e : evs.items) {
        ASSERT_TRUE(e.isObject());
        const std::string ph = e.at("ph").asString();
        phases.insert(ph);
        EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M")
            << ph;
        EXPECT_TRUE(e.at("name").isString());
        const double pid = e.at("pid").asNumber();
        EXPECT_TRUE(pid == 1.0 || pid == 2.0);
        if (ph == "M") { // process_name metadata
            EXPECT_EQ(e.at("name").asString(), "process_name");
            EXPECT_TRUE(e.at("args").at("name").isString());
            continue;
        }
        EXPECT_TRUE(e.at("cat").isString());
        EXPECT_TRUE(e.at("ts").isNumber());
        EXPECT_TRUE(e.at("tid").isNumber());
        if (ph == "X") {
            EXPECT_GE(e.at("dur").asNumber(), 0.0);
            EXPECT_EQ(pid, 1.0);
            EXPECT_TRUE(e.at("args").at("id").isString());
        }
        if (ph == "i") {
            EXPECT_EQ(e.at("s").asString(), "t");
            EXPECT_TRUE(e.at("args").at("id").isString());
        }
        if (ph == "C") {
            EXPECT_EQ(pid, 2.0); // only sim counters in this test
            EXPECT_TRUE(e.at("id").isString());
            EXPECT_TRUE(e.at("args").at("value").isNumber());
        }
    }
    EXPECT_TRUE(phases.count("M"));
    EXPECT_TRUE(phases.count("X"));
    EXPECT_TRUE(phases.count("i"));
    EXPECT_TRUE(phases.count("C"));
}

TEST(TraceEvents, SnapshotFiltersByTraceId)
{
    TracingOn on;
    {
        TraceScope a(TraceContext{"req/t5", 5});
        traceInstant("a", "service", "req/t5");
    }
    {
        TraceScope b(TraceContext{"req/t9", 9});
        traceInstant("b", "service", "req/t9");
    }
    EXPECT_EQ(snapshotTraceEvents().size(), 2u);
    const std::vector<TraceEvent> only5 = snapshotTraceEvents(5);
    ASSERT_EQ(only5.size(), 1u);
    EXPECT_EQ(only5[0].name, "a");

    const JsonValue doc = traceEventsToJson(9);
    // 2 process_name metadata events + the one matching event.
    EXPECT_EQ(doc.at("traceEvents").items.size(), 3u);
}

TEST(TraceEvents, HashAndTraceIdHelpers)
{
    EXPECT_EQ(traceHashId("abc"), traceHashId("abc"));
    EXPECT_NE(traceHashId("abc"), traceHashId("abd"));
    EXPECT_EQ(traceHashId("x").size(), 16u);
    for (char c : traceHashId("x"))
        EXPECT_TRUE(std::isxdigit((unsigned char)c));

    const std::uint64_t a = newTraceId();
    const std::uint64_t b = newTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_GT(b, a);
}

TEST(TraceEvents, WriteTraceFileCreatesMissingParents)
{
    namespace fs = std::filesystem;
    TracingOn on;
    traceInstant("x", "engine", "x");

    const fs::path root =
        fs::temp_directory_path() / "nvmcache_test_tracedir";
    fs::remove_all(root);
    const fs::path out = root / "deep" / "run.trace.json";
    writeTraceFile(out.string());

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << out;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const JsonValue doc = JsonValue::parse(text);
    EXPECT_TRUE(doc.at("traceEvents").isArray());
    fs::remove_all(root);
}

// --- determinism -----------------------------------------------------

TEST(TraceDeterminism, StudyTraceIsByteIdenticalAcrossJobCounts)
{
    // The tentpole contract: running the same study serially and with
    // a saturated pool must export the same trace document after
    // wall-clock normalization — span ids derive from the experiment
    // structure, never from scheduling.
    std::string serial, parallel;
    {
        TracingOn on;
        ExperimentRunner runner;
        runner.setJobs(1);
        runFigureStudy(CapacityMode::FixedCapacity, runner, 0.01);
        serial = normalizedTrace().dump();
    }
    {
        TracingOn on;
        ExperimentRunner runner;
        runner.setJobs(8);
        runFigureStudy(CapacityMode::FixedCapacity, runner, 0.01);
        parallel = normalizedTrace().dump();
    }
    EXPECT_EQ(serial, parallel);

    // And the trace actually covers the advertised layers.
    EXPECT_NE(serial.find("runner.simulate"), std::string::npos);
    EXPECT_NE(serial.find("parallel.job"), std::string::npos);
    EXPECT_NE(serial.find("llc.demandMisses"), std::string::npos);
}

TEST(TraceDeterminism, ShardingOnlyAddsReplayCategoryEvents)
{
    // Shards change host-side execution structure, not simulation
    // content: dropping category "replay" (the per-block classify /
    // timing spans) must make the sharded trace identical to the
    // serial one, and the sharded run must actually have emitted
    // those extra spans.
    auto runOnce = [](unsigned shards) {
        CompareConfig cfg;
        cfg.workload = "lbm";
        cfg.tech = "Oh";
        cfg.traceScale = 0.05;
        ExperimentRunner runner;
        runner.setJobs(1);
        runner.setShards(shards);
        runCompare(cfg, runner);
        return normalizedTrace();
    };

    JsonValue serial, sharded;
    {
        TracingOn on;
        serial = runOnce(1);
    }
    {
        TracingOn on;
        sharded = runOnce(4);
    }

    EXPECT_GT(countNamed(sharded, "replay.classify"), 0u);
    EXPECT_GT(countNamed(sharded, "replay.classify.shard"), 0u);
    EXPECT_GT(countNamed(sharded, "replay.timing"), 0u);
    EXPECT_EQ(countNamed(serial, "replay.classify"), 0u);

    EXPECT_EQ(withoutCategory(serial, "replay").dump(),
              withoutCategory(sharded, "replay").dump());
}

TEST(TraceDeterminism, MemoHitsAreCountStableAcrossJobs)
{
    // N identical runs = 1 owner simulation + N-1 memo-hit instants,
    // regardless of which job wins the owner race.
    auto runTwice = [](unsigned jobs) {
        CompareConfig cfg;
        cfg.workload = "lbm";
        cfg.tech = "Oh";
        cfg.traceScale = 0.05;
        ExperimentRunner runner;
        runner.setJobs(jobs);
        runCompare(cfg, runner);
        runCompare(cfg, runner); // warm: every run memo-hits
        return normalizedTrace();
    };

    JsonValue serial, parallel;
    {
        TracingOn on;
        serial = runTwice(1);
    }
    {
        TracingOn on;
        parallel = runTwice(8);
    }
    EXPECT_GT(countNamed(serial, "runner.memoHit"), 0u);
    EXPECT_EQ(countNamed(serial, "runner.memoHit"),
              countNamed(parallel, "runner.memoHit"));
    EXPECT_EQ(countNamed(serial, "runner.simulate"),
              countNamed(parallel, "runner.simulate"));
    EXPECT_EQ(serial.dump(), parallel.dump());
}
