/**
 * @file
 * Self-healing service tests: the deterministic chaos schedule, the
 * protocol write-fault hooks, store-record damage and its checksum
 * detection, worker supervision (respawn after SIGKILL/SIGSTOP,
 * crash-loop quarantine), and the end-to-end guarantee that a study
 * report produced while workers are killed, records corrupted, and
 * connections dropped is byte-identical to a clean run.
 *
 * Tests that spawn real worker daemons exec the CLI binary named by
 * the NVMCACHE_CLI environment variable (set by CMake); they skip
 * when it is absent.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/experiment.hh"
#include "core/study_registry.hh"
#include "service/chaos.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/workers.hh"
#include "store/result_store.hh"
#include "util/json.hh"
#include "util/metrics.hh"

using namespace nvmcache;

namespace {

std::string
cliPath()
{
    const char *cli = std::getenv("NVMCACHE_CLI");
    return cli ? cli : "";
}

std::string
socketPathFor(const std::string &name)
{
    return ::testing::TempDir() + "nvmchaos_" + name + ".sock";
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "nvmchaos_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

bool
waitUntil(const std::function<bool()> &pred, int timeoutMs)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

bool
daemonResponds(const std::string &socket)
{
    try {
        ClientConfig cfg;
        cfg.timeoutMs = 250;
        ServiceClient client(socket, cfg);
        return client.ping();
    } catch (const std::exception &) {
        return false;
    }
}

/** argv for a real single-process worker daemon on @p socket. */
std::vector<std::string>
workerArgv(const std::string &socket, const std::string &storeDir = "")
{
    std::vector<std::string> argv = {cliPath(),        "serve",
                                     "--socket",       socket,
                                     "--exec-threads", "1",
                                     "--no-resume"};
    if (!storeDir.empty()) {
        argv.push_back("--store-dir");
        argv.push_back(storeDir);
    }
    return argv;
}

/** Small-but-real study request; scale keeps runs sub-second. */
StudyRequest
compareRequest(const std::string &scale)
{
    StudyRequest req;
    req.kind = "compare";
    req.params["workload"] = "lbm";
    req.params["scale"] = scale;
    return req;
}

} // namespace

// --- the deterministic schedule -------------------------------------

TEST(Chaos, SpecParsesKeysAndRejectsUnknown)
{
    const ChaosSpec spec = parseChaosSpec(
        "seed=7,kill=2,stop=1,corrupt=3,truncate=1,drop=2,stall=1,"
        "partial=4,interval-ms=250,start-delay-ms=100,stall-ms=20");
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.kill, 2u);
    EXPECT_EQ(spec.stop, 1u);
    EXPECT_EQ(spec.corrupt, 3u);
    EXPECT_EQ(spec.truncate, 1u);
    EXPECT_EQ(spec.drop, 2u);
    EXPECT_EQ(spec.stall, 1u);
    EXPECT_EQ(spec.partial, 4u);
    EXPECT_EQ(spec.intervalMs, 250u);
    EXPECT_EQ(spec.startDelayMs, 100u);
    EXPECT_EQ(spec.stallMs, 20u);
    EXPECT_EQ(spec.totalEvents(), 14u);

    EXPECT_EQ(parseChaosSpec("").totalEvents(), 0u);

    try {
        parseChaosSpec("kill=1,explode=3");
        FAIL() << "expected unknown-key error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("explode"),
                  std::string::npos);
    }
    EXPECT_THROW(parseChaosSpec("kill"), std::runtime_error);
    EXPECT_THROW(parseChaosSpec("kill=lots"), std::runtime_error);
}

TEST(Chaos, ScheduleIsDeterministicSortedAndComplete)
{
    const ChaosSpec spec =
        parseChaosSpec("seed=42,kill=2,corrupt=2,drop=1,interval-ms=100");
    const std::vector<ChaosEvent> a = buildChaosSchedule(spec);
    const std::vector<ChaosEvent> b = buildChaosSchedule(spec);
    ASSERT_EQ(a.size(), spec.totalEvents());
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].atMs, b[i].atMs);
        EXPECT_EQ(a[i].pick, b[i].pick);
        EXPECT_EQ(a[i].index, i);
        if (i > 0) {
            EXPECT_GE(a[i].atMs, a[i - 1].atMs);
        }
    }
    // The JSON export (what `nvmcache chaos` prints) is byte-stable.
    EXPECT_EQ(chaosScheduleToJson(spec).dump(),
              chaosScheduleToJson(spec).dump());
    // A different seed yields a different schedule.
    ChaosSpec other = spec;
    other.seed = 43;
    EXPECT_NE(chaosScheduleToJson(spec).dump(),
              chaosScheduleToJson(other).dump());
}

// --- write-fault hooks ----------------------------------------------

TEST(Chaos, ArmedWriteFaultsNeverCorruptFrames)
{
    chaosResetWriteFaults();
    EXPECT_FALSE(chaosWriteFaultsArmed());

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    chaosArmPartialWrites(2);
    chaosArmStallWrites(1, 5);
    EXPECT_TRUE(chaosWriteFaultsArmed());

    // Three writes: two forced through the 1-byte chunk path, one
    // stalled. Every frame must still arrive intact and in order.
    const std::string payload =
        "{\"op\":\"run\",\"study\":\"compare\",\"id\":\"r1\"}";
    EXPECT_TRUE(writeLine(fds[0], payload));
    EXPECT_TRUE(writeLine(fds[0], payload));
    EXPECT_TRUE(writeLine(fds[0], "short"));

    LineReader reader(fds[1]);
    std::string line;
    ASSERT_TRUE(reader.readLine(line));
    EXPECT_EQ(line, payload);
    ASSERT_TRUE(reader.readLine(line));
    EXPECT_EQ(line, payload);
    ASSERT_TRUE(reader.readLine(line));
    EXPECT_EQ(line, "short");

    // All faults consumed: the armed flag clears itself.
    EXPECT_FALSE(chaosWriteFaultsArmed());
    ::close(fds[0]);
    ::close(fds[1]);
    chaosResetWriteFaults();
}

// --- store record damage --------------------------------------------

TEST(Chaos, DamagedRecordsAreCaughtByChecksumsAndHealed)
{
    ResultStore store(freshDir("damage"));
    store.put("sim", "key-a", "payload-a-0123456789");
    store.put("sim", "key-b", "payload-b-0123456789");
    store.put("sim", "key-c", "payload-c-0123456789");

    // Byte flip: the record must read as a miss, not as wrong data.
    const std::string flipped =
        damageStoreRecord(store, 1, /*truncate=*/false);
    ASSERT_FALSE(flipped.empty());
    // Truncation: same detection path, different damage shape.
    const std::string cut =
        damageStoreRecord(store, 0, /*truncate=*/true);
    ASSERT_FALSE(cut.empty());
    EXPECT_NE(flipped, cut);

    std::size_t misses = 0;
    for (const char *key : {"key-a", "key-b", "key-c"}) {
        const auto payload = store.load("sim", key);
        if (!payload) {
            ++misses;
            continue;
        }
        // Undamaged records still read back exactly.
        EXPECT_EQ(payload->substr(0, 10),
                  std::string("payload-") + key[4] + "-");
    }
    EXPECT_EQ(misses, 2u);

    // The recovery path: a rewrite heals the store completely.
    store.put("sim", "key-a", "payload-a-0123456789");
    store.put("sim", "key-b", "payload-b-0123456789");
    store.put("sim", "key-c", "payload-c-0123456789");
    EXPECT_EQ(store.verify().corrupt, 0u);

    // Same pick against the same contents damages the same record.
    ResultStore twin(store.dir());
    EXPECT_EQ(damageStoreRecord(twin, 5, false),
              damageStoreRecord(store, 5, false));

    // An empty store is a no-target, never an error.
    ResultStore empty(freshDir("damage_empty"));
    EXPECT_EQ(damageStoreRecord(empty, 3, false), "");
}

// --- worker supervision ---------------------------------------------

TEST(Supervisor, RestartsKilledWorkerWithinOneInterval)
{
    if (cliPath().empty())
        GTEST_SKIP() << "NVMCACHE_CLI not set";
    const std::string socket = socketPathFor("sup_kill");

    WorkerSupervisorConfig cfg;
    cfg.sockets = {socket};
    cfg.command = [&](std::size_t) { return workerArgv(socket); };
    cfg.heartbeatMs = 100;
    WorkerSupervisor sup(cfg);
    std::vector<std::pair<std::size_t, bool>> healthEvents;
    std::mutex healthMu;
    sup.setHealthSink([&](std::size_t index, bool healthy) {
        std::lock_guard<std::mutex> lk(healthMu);
        healthEvents.emplace_back(index, healthy);
    });
    sup.start();
    ASSERT_TRUE(waitUntil([&] { return daemonResponds(socket); }, 5000));
    EXPECT_TRUE(sup.atFullCapacity());
    EXPECT_EQ(sup.restarts(), 0u);

    const double restartsBefore = MetricsRegistry::global()
                                      .counter("service.worker.restarts")
                                      .get();
    ASSERT_TRUE(sup.signalWorker(0, SIGKILL));
    ASSERT_TRUE(waitUntil([&] { return sup.restarts() == 1; }, 5000));
    ASSERT_TRUE(waitUntil([&] { return daemonResponds(socket); }, 5000));
    EXPECT_TRUE(sup.atFullCapacity());
    EXPECT_EQ(sup.restarts(), 1u);
    EXPECT_EQ(MetricsRegistry::global()
                      .counter("service.worker.restarts")
                      .get() -
                  restartsBefore,
              1.0);
    {
        // The health sink saw down-then-up, in that order.
        std::lock_guard<std::mutex> lk(healthMu);
        ASSERT_GE(healthEvents.size(), 2u);
        EXPECT_EQ(healthEvents.front(),
                  (std::pair<std::size_t, bool>{0, false}));
        EXPECT_EQ(healthEvents.back(),
                  (std::pair<std::size_t, bool>{0, true}));
    }
    sup.stop();
}

TEST(Supervisor, DetectsStoppedWorkerViaMissedHeartbeats)
{
    if (cliPath().empty())
        GTEST_SKIP() << "NVMCACHE_CLI not set";
    const std::string socket = socketPathFor("sup_stop");

    WorkerSupervisorConfig cfg;
    cfg.sockets = {socket};
    cfg.command = [&](std::size_t) { return workerArgv(socket); };
    cfg.heartbeatMs = 100;
    cfg.missedLimit = 2;
    WorkerSupervisor sup(cfg);
    sup.start();
    ASSERT_TRUE(waitUntil([&] { return daemonResponds(socket); }, 5000));

    // A SIGSTOPped daemon still accepts connections (kernel backlog),
    // so only the heartbeat's receive timeout can catch it. The
    // supervisor must SIGKILL and respawn.
    ASSERT_TRUE(sup.signalWorker(0, SIGSTOP));
    ASSERT_TRUE(waitUntil([&] { return sup.restarts() == 1; }, 10000));
    ASSERT_TRUE(waitUntil([&] { return daemonResponds(socket); }, 5000));
    EXPECT_TRUE(sup.atFullCapacity());
    sup.stop();
}

TEST(Supervisor, QuarantinesCrashLoopingWorker)
{
    if (cliPath().empty())
        GTEST_SKIP() << "NVMCACHE_CLI not set";
    const std::string socket = socketPathFor("sup_loop");

    WorkerSupervisorConfig cfg;
    cfg.sockets = {socket};
    // No --socket: the CLI exits immediately — a perfect crash loop.
    cfg.command = [&](std::size_t) {
        return std::vector<std::string>{cliPath(), "serve"};
    };
    cfg.heartbeatMs = 30;
    cfg.backoffBaseMs = 5;
    cfg.backoffMaxMs = 20;
    cfg.quarantineRestarts = 3;
    cfg.quarantineWindowMs = 60000;
    WorkerSupervisor sup(cfg);
    sup.start();

    ASSERT_TRUE(
        waitUntil([&] { return sup.quarantinedWorkers() == 1; }, 15000));
    EXPECT_FALSE(sup.atFullCapacity());
    EXPECT_GE(sup.restarts(), 3u);
    const std::size_t restartsAtQuarantine = sup.restarts();
    // The circuit breaker holds: no further respawns.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(sup.restarts(), restartsAtQuarantine);
    EXPECT_GE(MetricsRegistry::global()
                  .gauge("service.worker.quarantined")
                  .get(),
              1.0);
    sup.stop();
}

// --- end to end: self-healing under fire ----------------------------

namespace {

/**
 * A front daemon over @p workers supervised real worker processes
 * sharing a fresh store, with worker health wired into the dispatch
 * fleet — the full `serve --workers N` stack, minus the outer CLI.
 */
struct SupervisedFront
{
    std::vector<std::string> sockets;
    std::unique_ptr<WorkerSupervisor> supervisor;
    std::unique_ptr<EvalServer> server;
    ServeConfig cfg;

    SupervisedFront(unsigned workers, const std::string &tag,
                    unsigned heartbeatMs = 100)
    {
        const std::string storeDir = freshDir("store_" + tag);
        ResultStore::setGlobal(storeDir);
        for (unsigned i = 0; i < workers; ++i)
            sockets.push_back(
                socketPathFor(tag + "_w" + std::to_string(i)));

        WorkerSupervisorConfig sup;
        sup.sockets = sockets;
        sup.command = [this, storeDir](std::size_t index) {
            return workerArgv(sockets[index], storeDir);
        };
        sup.heartbeatMs = heartbeatMs;
        supervisor = std::make_unique<WorkerSupervisor>(sup);

        cfg.socketPath = socketPathFor(tag + "_front");
        cfg.execThreads = 1;
        cfg.workerSockets = sockets;
        server = std::make_unique<EvalServer>(cfg);
        server->start();
        supervisor->setHealthSink(
            [this](std::size_t index, bool healthy) {
                if (WorkerFleet *fleet = server->fleet())
                    fleet->setWorkerHealthy(index, healthy);
            });
        server->attachSupervisor(supervisor.get());
        supervisor->start();
    }

    ~SupervisedFront()
    {
        server->requestStop();
        server->wait();
        supervisor->stop();
        ResultStore::setGlobal("");
    }

    bool
    allWorkersUp()
    {
        for (const std::string &socket : sockets)
            if (!daemonResponds(socket))
                return false;
        return true;
    }
};

} // namespace

TEST(ChaosE2E, WorkerDeathMidStudyStillYieldsByteIdenticalReport)
{
    if (cliPath().empty())
        GTEST_SKIP() << "NVMCACHE_CLI not set";
    const StudyRequest req = compareRequest("0.02");
    const std::string reference = runStudyRequest(req).resultJson();

    SupervisedFront front(2, "midkill");
    ASSERT_TRUE(waitUntil([&] { return front.allWorkersUp(); }, 10000));

    // Fire the study, then SIGKILL a worker while its shards are (most
    // likely) in flight. Whatever the interleaving, the front's local
    // pass over the store must produce the reference bytes.
    JsonValue response;
    std::thread runner([&] {
        ServiceClient client(front.cfg.socketPath);
        response = client.run(req, "r");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(front.supervisor->signalWorker(0, SIGKILL));
    runner.join();

    ASSERT_TRUE(response.boolOr("ok", false)) << response.dump();
    EXPECT_EQ(response.at("result").dump(), reference);
    ASSERT_TRUE(
        waitUntil([&] { return front.supervisor->restarts() == 1; },
                  10000));
    ASSERT_TRUE(waitUntil(
        [&] { return front.supervisor->atFullCapacity(); }, 10000));
    EXPECT_EQ(front.supervisor->restarts(), 1u);
}

TEST(ChaosE2E, SeededFaultScheduleReproducesByteIdenticalReports)
{
    if (cliPath().empty())
        GTEST_SKIP() << "NVMCACHE_CLI not set";
    const StudyRequest req = compareRequest("0.02");
    const std::string reference = runStudyRequest(req).resultJson();

    SupervisedFront front(2, "sched");
    ASSERT_TRUE(waitUntil([&] { return front.allWorkersUp(); }, 10000));

    // Warm pass: populate the shared store so the corrupt event has a
    // target and the replay path is exercised.
    {
        ServiceClient client(front.cfg.socketPath);
        const JsonValue warm = client.run(req, "warm");
        ASSERT_TRUE(warm.boolOr("ok", false)) << warm.dump();
        ASSERT_EQ(warm.at("result").dump(), reference);
    }

    // The acceptance trio — a worker SIGKILL, a corrupted store
    // record, a dropped client connection — plus a partial-write
    // injection, on a fixed seed.
    const ChaosSpec spec = parseChaosSpec(
        "seed=9,kill=1,corrupt=1,drop=1,partial=1,interval-ms=120,"
        "start-delay-ms=40");
    ChaosTargets targets;
    targets.signalWorker = [&](std::uint64_t pick, int sig) {
        return front.supervisor->signalWorker(pick, sig);
    };
    targets.damageRecord = [&](std::uint64_t pick, bool truncate) {
        return !damageStoreRecord(*ResultStore::global(), pick,
                                  truncate)
                    .empty();
    };
    targets.dropConnection = [&](std::uint64_t pick) {
        return front.server->dropConnection(pick);
    };
    ChaosInjector injector(spec, std::move(targets));
    injector.start();

    // The chaos-facing client: the drop event may sever its
    // connection mid-wait, so it runs with a retry budget. Identical
    // re-requests coalesce server-side; the result bytes must not
    // care what the schedule did.
    ClientConfig ccfg;
    ccfg.timeoutMs = 30000;
    ccfg.retries = 4;
    ccfg.backoffBaseMs = 50;
    ccfg.jitterSeed = 9;
    const JsonValue response =
        runWithRetry(front.cfg.socketPath, req, ccfg, "under-fire");
    ASSERT_TRUE(response.boolOr("ok", false)) << response.dump();
    EXPECT_EQ(response.at("result").dump(), reference);

    ASSERT_TRUE(waitUntil([&] { return injector.done(); }, 10000));
    EXPECT_EQ(injector.injected(), spec.totalEvents());
    // The injected-fault log is a pure function of the seed: every
    // event fired, in schedule order.
    const std::vector<std::string> log = injector.log();
    ASSERT_EQ(log.size(), spec.totalEvents());
    const std::vector<ChaosEvent> schedule = buildChaosSchedule(spec);
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_NE(log[i].find("#" + std::to_string(i) + " " +
                              schedule[i].type),
                  std::string::npos)
            << log[i];
    }
    injector.stop();

    // Full capacity restored after the kill.
    ASSERT_TRUE(waitUntil(
        [&] { return front.supervisor->atFullCapacity(); }, 10000));
    // The store heals: any record the schedule damaged was unlinked on
    // detection or rewritten; a verify pass must come back clean
    // enough to replay the reference bytes again.
    {
        ServiceClient client(front.cfg.socketPath);
        const JsonValue again = client.run(req, "after");
        ASSERT_TRUE(again.boolOr("ok", false)) << again.dump();
        EXPECT_EQ(again.at("result").dump(), reference);
    }
}
