/**
 * @file
 * Tests for the PRISM-style characterizer: Shannon entropy (eq 9),
 * local entropy masking, unique and 90% footprints.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "prism/metrics.hh"
#include "util/rng.hh"
#include "workload/generators.hh"

using namespace nvmcache;

namespace {

MemAccess
read(std::uint64_t addr)
{
    return MemAccess{addr, AccessKind::Load, 0};
}

MemAccess
write(std::uint64_t addr)
{
    return MemAccess{addr, AccessKind::Store, 0};
}

} // namespace

TEST(Prism, SingleAddressHasZeroEntropy)
{
    FeatureCollector fc;
    for (int i = 0; i < 100; ++i)
        fc.record(read(0x1234));
    auto f = fc.finalize();
    EXPECT_DOUBLE_EQ(f.reads.globalEntropy, 0.0);
    EXPECT_EQ(f.reads.unique, 1u);
    EXPECT_EQ(f.reads.footprint90, 1u);
    EXPECT_EQ(f.reads.total, 100u);
}

TEST(Prism, UniformOverPowerOfTwoIsLogN)
{
    FeatureCollector fc;
    const int n = 256;
    for (int rep = 0; rep < 4; ++rep)
        for (int i = 0; i < n; ++i)
            fc.record(read(std::uint64_t(i) << 12));
    auto f = fc.finalize();
    EXPECT_NEAR(f.reads.globalEntropy, 8.0, 1e-9);
    EXPECT_EQ(f.reads.unique, 256u);
}

TEST(Prism, LocalEntropyMasksLowBits)
{
    // 256 addresses inside ONE 1 KB page: global entropy 8 bits,
    // local entropy (M=10) zero.
    FeatureCollector fc(10);
    for (int i = 0; i < 256; ++i)
        fc.record(read(i * 4));
    auto f = fc.finalize();
    EXPECT_NEAR(f.reads.globalEntropy, 8.0, 1e-9);
    EXPECT_DOUBLE_EQ(f.reads.localEntropy, 0.0);
}

TEST(Prism, LocalEntropyAcrossPages)
{
    // 16 addresses in 16 distinct pages: local entropy = 4 bits.
    FeatureCollector fc(10);
    for (int i = 0; i < 16; ++i)
        fc.record(read(std::uint64_t(i) << 10));
    auto f = fc.finalize();
    EXPECT_NEAR(f.reads.localEntropy, 4.0, 1e-9);
}

TEST(Prism, ReadsAndWritesSeparated)
{
    FeatureCollector fc;
    fc.record(read(0x100));
    fc.record(read(0x200));
    fc.record(write(0x300));
    auto f = fc.finalize();
    EXPECT_EQ(f.reads.total, 2u);
    EXPECT_EQ(f.writes.total, 1u);
    EXPECT_EQ(f.reads.unique, 2u);
    EXPECT_EQ(f.writes.unique, 1u);
}

TEST(Prism, IFetchCountsAsRead)
{
    FeatureCollector fc;
    fc.record(MemAccess{0x100, AccessKind::IFetch, 0});
    auto f = fc.finalize();
    EXPECT_EQ(f.reads.total, 1u);
    EXPECT_EQ(f.writes.total, 0u);
}

TEST(Prism, Footprint90SkewedDistribution)
{
    // 90 accesses to A, 10 spread over B..K: the hottest address
    // alone covers 90%.
    FeatureCollector fc;
    for (int i = 0; i < 90; ++i)
        fc.record(read(0x1000));
    for (int i = 0; i < 10; ++i)
        fc.record(read(0x2000 + std::uint64_t(i) * 64));
    auto f = fc.finalize();
    EXPECT_EQ(f.reads.unique, 11u);
    EXPECT_EQ(f.reads.footprint90, 1u);
}

TEST(Prism, Footprint90UniformNeedsNinetyPercent)
{
    FeatureCollector fc;
    for (int i = 0; i < 100; ++i)
        fc.record(read(std::uint64_t(i) * 64));
    auto f = fc.finalize();
    EXPECT_EQ(f.reads.footprint90, 90u);
}

TEST(Prism, ZipfEntropyMatchesSamplerExactEntropy)
{
    const std::uint64_t n = 512;
    const double skew = 0.9;
    ZipfSampler zipf(n, skew);
    Rng rng(3);
    FeatureCollector fc;
    for (int i = 0; i < 300'000; ++i)
        fc.record(read(zipf(rng) << 6));
    auto f = fc.finalize();
    EXPECT_NEAR(f.reads.globalEntropy, zipf.exactEntropyBits(), 0.2);
}

TEST(Prism, EmptyCollectorIsAllZero)
{
    FeatureCollector fc;
    auto f = fc.finalize();
    EXPECT_DOUBLE_EQ(f.reads.globalEntropy, 0.0);
    EXPECT_EQ(f.writes.total, 0u);
    EXPECT_EQ(f.writes.footprint90, 0u);
}

TEST(Prism, FeatureVectorOrderMatchesTableVI)
{
    FeatureCollector fc;
    fc.record(read(0x40));
    fc.record(write(0x80));
    fc.record(write(0xc0));
    auto f = fc.finalize();
    auto v = f.featureVector();
    const auto &names = WorkloadFeatures::featureNames();
    ASSERT_EQ(v.size(), 10u);
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names[0], "H_rg");
    EXPECT_EQ(names[8], "r_total");
    EXPECT_DOUBLE_EQ(v[8], 1.0); // r_total
    EXPECT_DOUBLE_EQ(v[9], 2.0); // w_total
    EXPECT_DOUBLE_EQ(v[4], 1.0); // r_uniq
    EXPECT_DOUBLE_EQ(v[5], 2.0); // w_uniq
}

TEST(Prism, CharacterizeResetsTracesForReuse)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = 5000;
    StreamConfig s;
    s.kind = StreamConfig::Kind::Uniform;
    s.regionBytes = 1 << 18;
    cfg.loads.streams = {s};
    cfg.stores.streams = {s};
    auto traces = buildThreadTraces(cfg, 2);
    std::vector<TraceSource *> ptrs{traces[0].get(), traces[1].get()};

    auto f1 = characterize(ptrs);
    auto f2 = characterize(ptrs); // must be identical after reset
    EXPECT_EQ(f1.reads.total + f1.writes.total, 5000u);
    EXPECT_DOUBLE_EQ(f1.reads.globalEntropy, f2.reads.globalEntropy);
    EXPECT_EQ(f1.writes.unique, f2.writes.unique);

    // And the traces are still usable afterwards.
    MemAccess a;
    EXPECT_TRUE(ptrs[0]->next(a));
}
