/**
 * @file
 * Tests for the system-simulator substrate: DRAM queueing, the
 * asymmetric LLC (write policies, energy accounting), the core
 * interval model, and whole-System invariants.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nvsim/published.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/nvm_llc.hh"
#include "sim/system.hh"
#include "workload/generators.hh"

using namespace nvmcache;

// --- DRAM ----------------------------------------------------------------

TEST(Dram, DeviceLatencyFloor)
{
    DramModel dram(DramConfig{}, 2.66e9);
    auto lat = dram.read(0x1000, 1000);
    // 45 ns at 2.66 GHz ~ 120 cycles.
    EXPECT_GE(lat, 115u);
    EXPECT_LE(lat, 130u);
}

TEST(Dram, BandwidthQueueingDelaysBackToBackReads)
{
    DramModel dram(DramConfig{}, 2.66e9);
    // Saturate one controller: blocks 0, 4, 8... all map to ctl 0.
    auto first = dram.read(0, 0);
    auto second = dram.read(4 * 64, 0);
    EXPECT_GT(second, first);
    EXPECT_GT(dram.queueCycles(), 0u);
}

TEST(Dram, InterleavingSpreadsLoad)
{
    DramModel dram(DramConfig{}, 2.66e9);
    // Consecutive blocks map to different controllers: no queueing.
    auto a = dram.read(0 * 64, 0);
    auto b = dram.read(1 * 64, 0);
    auto c = dram.read(2 * 64, 0);
    auto d = dram.read(3 * 64, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
    EXPECT_EQ(c, d);
}

TEST(Dram, WritesConsumeBandwidthOnly)
{
    DramModel dram(DramConfig{}, 2.66e9);
    dram.write(0, 0);
    EXPECT_EQ(dram.writes(), 1u);
    // A read right behind the write on the same controller queues.
    auto lat = dram.read(4 * 64, 0);
    auto lat_clean = DramModel(DramConfig{}, 2.66e9).read(4 * 64, 0);
    EXPECT_GT(lat, lat_clean);
}

// --- SharedLlc --------------------------------------------------------------

namespace {

SharedLlc
makeLlc(const std::string &tech, WritePolicy policy,
        CapacityMode mode = CapacityMode::FixedCapacity)
{
    SharedLlc::Config cfg;
    cfg.writePolicy = policy;
    return SharedLlc(publishedLlcModel(tech, mode), cfg, 2.66e9);
}

} // namespace

TEST(Llc, HitAndMissEnergyAccounting)
{
    SharedLlc llc = makeLlc("Chung", WritePolicy::Posted);
    const LlcModel &m = llc.model();

    llc.demandRead(0x10000, 0); // miss -> eMiss + fill eWrite
    llc.demandRead(0x10000, 100); // hit -> eHit
    const LlcStats &s = llc.stats();
    EXPECT_EQ(s.demandReads, 2u);
    EXPECT_EQ(s.demandHits, 1u);
    EXPECT_EQ(s.demandMisses, 1u);
    EXPECT_EQ(s.fills, 1u);
    EXPECT_DOUBLE_EQ(s.hitEnergy, m.eHit);
    EXPECT_DOUBLE_EQ(s.missEnergy, m.eMiss);
    EXPECT_DOUBLE_EQ(s.writeEnergy, m.eWrite);
    EXPECT_DOUBLE_EQ(s.dynamicEnergy(), m.eHit + m.eMiss + m.eWrite);
}

TEST(Llc, PostedWritesNeverStall)
{
    SharedLlc llc = makeLlc("Kang", WritePolicy::Posted); // 301 ns writes
    for (int i = 0; i < 1000; ++i) {
        auto wb = llc.writeback(0x40000 + i * 64, 0);
        EXPECT_EQ(wb.stallCycles, 0u);
    }
    EXPECT_EQ(llc.stats().writeStallCycles, 0u);
}

TEST(Llc, BlockingWritesChargeFullLatency)
{
    SharedLlc llc = makeLlc("Kang", WritePolicy::Blocking);
    auto wb = llc.writeback(0x40000, 0);
    // Kang write = 301 ns ~ 801 cycles.
    EXPECT_GE(wb.stallCycles, 790u);
}

TEST(Llc, BankContentionStallsOnlyBeyondQueueDepth)
{
    SharedLlc llc = makeLlc("Kang", WritePolicy::BankContention);
    const auto depth = llc.config().writeQueueDepth;
    // Hammer one bank (stride = numBanks * blockBytes).
    const std::uint64_t stride =
        std::uint64_t(llc.config().numBanks) * 64;
    std::uint64_t stalls = 0;
    for (std::uint32_t i = 0; i < depth; ++i)
        stalls += llc.writeback(i * stride * 1024, 0).stallCycles;
    EXPECT_EQ(stalls, 0u); // within queue depth: free
    auto wb = llc.writeback(depth * stride * 1024, 0);
    EXPECT_GT(wb.stallCycles, 0u); // queue full: backpressure
}

TEST(Llc, ReadsWaitBehindBankBusy)
{
    SharedLlc llc = makeLlc("Zhang", WritePolicy::BankContention,
                            CapacityMode::FixedArea);
    // Prime the set so the reads below hit.
    llc.demandRead(0x0, 0);
    // Occupy bank 0 with a slow write (Zhang ~ 305 ns ~ 812 cycles).
    llc.writeback(64 * llc.config().numBanks, 0);
    auto rd = llc.demandRead(0x0, 1); // same bank, right behind
    EXPECT_TRUE(rd.hit);
    EXPECT_GT(rd.latencyCycles, 700u);
    EXPECT_GT(llc.stats().readWaitCycles, 0u);
}

TEST(Llc, WritebackInstallsLine)
{
    SharedLlc llc = makeLlc("Chung", WritePolicy::Posted);
    llc.writeback(0x7000, 0);
    auto rd = llc.demandRead(0x7000, 10);
    EXPECT_TRUE(rd.hit);
}

TEST(Llc, DirtyVictimSurfacesOnEviction)
{
    // Tiny traffic pattern guaranteed to evict: fill one set beyond
    // its associativity with dirty lines.
    SharedLlc llc = makeLlc("Chung", WritePolicy::Posted);
    const auto &m = llc.model();
    const std::uint64_t sets =
        m.capacityBytes / 64 / llc.config().associativity;
    const std::uint64_t set_stride = sets * 64;
    bool saw_dirty_victim = false;
    for (std::uint32_t i = 0; i <= llc.config().associativity; ++i) {
        auto wb = llc.writeback(i * set_stride, 0);
        saw_dirty_victim |= wb.victimDirty;
    }
    EXPECT_TRUE(saw_dirty_victim);
}

TEST(Llc, MissRate)
{
    SharedLlc llc = makeLlc("Chung", WritePolicy::Posted);
    EXPECT_DOUBLE_EQ(llc.missRate(), 0.0);
    llc.demandRead(0x0, 0);
    llc.demandRead(0x0, 1);
    EXPECT_DOUBLE_EQ(llc.missRate(), 0.5);
}

// --- PrivateCore -------------------------------------------------------------

TEST(Core, BaseCpiAccounting)
{
    CoreParams params;
    params.baseCpi = 0.5;
    PrivateCore core(params);
    MemAccess a{0x1000, AccessKind::Load, 3};
    core.accessPrivate(a);
    // 3 gap instructions + the load itself at CPI 0.5.
    EXPECT_DOUBLE_EQ(core.cycle(), 2.0);
    EXPECT_EQ(core.instructions(), 4u);
}

TEST(Core, StallOnlyBeyondHideWindow)
{
    CoreParams params;
    PrivateCore core(params);
    double before = core.cycle();
    core.applyStall(AccessKind::Load, params.loadHide - 1);
    EXPECT_DOUBLE_EQ(core.cycle(), before); // hidden
    core.applyStall(AccessKind::Load, params.loadHide + 10);
    EXPECT_DOUBLE_EQ(core.cycle(), before + 10.0);
}

TEST(Core, StoreStallsAreDiscounted)
{
    CoreParams params;
    PrivateCore core(params);
    double before = core.cycle();
    core.applyStall(AccessKind::Store, params.storeHide + 100);
    EXPECT_DOUBLE_EQ(core.cycle(),
                     before + 100.0 * params.storeStallFactor);
}

TEST(Core, L1HitNeedsNoLowerLevels)
{
    PrivateCore core(CoreParams{});
    MemAccess a{0x2000, AccessKind::Load, 0};
    auto first = core.accessPrivate(a);
    EXPECT_FALSE(first.satisfied && first.latencyCycles == 0);
    auto second = core.accessPrivate(a);
    EXPECT_TRUE(second.satisfied);
    EXPECT_EQ(second.latencyCycles, 0u);
}

TEST(Core, IFetchUsesL1I)
{
    PrivateCore core(CoreParams{});
    MemAccess load{0x3000, AccessKind::Load, 0};
    MemAccess fetch{0x3000, AccessKind::IFetch, 0};
    core.accessPrivate(load);
    // Same address via ifetch misses L1I (separate array).
    auto r = core.accessPrivate(fetch);
    EXPECT_FALSE(r.satisfied && r.latencyCycles == 0);
}

TEST(Core, DirtyL1VictimDrainsToL2)
{
    CoreParams params;
    // Tiny L1D: 2 sets x 2 ways to force evictions quickly.
    params.l1d = CacheGeometry{256, 2, 64};
    PrivateCore core(params);
    // Dirty four distinct lines mapping to one set, then overflow.
    for (int i = 0; i < 8; ++i) {
        MemAccess st{std::uint64_t(i) * 128, AccessKind::Store, 0};
        core.accessPrivate(st);
    }
    // L2 should now hold the dirty victims: re-reading one is an L2
    // hit, not an LLC request.
    MemAccess ld{0 * 128, AccessKind::Load, 0};
    auto r = core.accessPrivate(ld);
    EXPECT_TRUE(r.satisfied);
}

// --- System -------------------------------------------------------------------

namespace {

GeneratorConfig
tinyWorkload(std::uint64_t accesses = 50'000)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = accesses;
    cfg.loadFraction = 0.7;
    cfg.storeFraction = 0.3;
    cfg.meanGap = 2.0;
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 1 << 20;
    hot.zipfSkew = 0.8;
    hot.weight = 0.8;
    StreamConfig cold;
    cold.kind = StreamConfig::Kind::Uniform;
    cold.regionBytes = 8 << 20;
    cold.weight = 0.2;
    cfg.loads.streams = {hot, cold};
    cfg.stores.streams = {hot, cold};
    cfg.seed = 77;
    return cfg;
}

SimStats
runTiny(const LlcModel &llc, std::uint32_t threads = 1,
        WritePolicy policy = WritePolicy::Posted,
        std::uint64_t accesses = 50'000)
{
    SystemConfig cfg;
    cfg.numCores = threads;
    cfg.llc.writePolicy = policy;
    System system(cfg, llc);
    auto traces = buildThreadTraces(tinyWorkload(accesses), threads);
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    return system.run(ptrs);
}

} // namespace

TEST(System, DeterministicAcrossRuns)
{
    SimStats a = runTiny(sramBaselineLlc());
    SimStats b = runTiny(sramBaselineLlc());
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llc.demandMisses, b.llc.demandMisses);
    EXPECT_DOUBLE_EQ(a.llcDynamicEnergy, b.llcDynamicEnergy);
}

TEST(System, InstructionConservationAcrossThreadCounts)
{
    SimStats one = runTiny(sramBaselineLlc(), 1);
    SimStats four = runTiny(sramBaselineLlc(), 4);
    // Same total work split across threads (same generator totals).
    EXPECT_NEAR(double(one.instructions), double(four.instructions),
                0.02 * double(one.instructions));
}

TEST(System, MoreCoresFinishSooner)
{
    SimStats one = runTiny(sramBaselineLlc(), 1, WritePolicy::Posted,
                           200'000);
    SimStats four = runTiny(sramBaselineLlc(), 4, WritePolicy::Posted,
                            200'000);
    EXPECT_LT(four.cycles, one.cycles);
}

TEST(System, EnergyIdentity)
{
    const LlcModel &m = publishedLlcModel(
        "Chung", CapacityMode::FixedCapacity);
    SimStats s = runTiny(m);
    const double expected =
        double(s.llc.demandHits) * m.eHit +
        double(s.llc.demandMisses) * m.eMiss +
        double(s.llc.fills + s.llc.writebacksIn) * m.eWrite;
    EXPECT_NEAR(s.llcDynamicEnergy, expected, 1e-12);
    EXPECT_NEAR(s.llcLeakageEnergy, m.leakage * s.seconds, 1e-12);
}

TEST(System, FillsEqualDemandMisses)
{
    SimStats s = runTiny(sramBaselineLlc());
    EXPECT_EQ(s.llc.fills, s.llc.demandMisses);
}

TEST(System, LargerLlcMissesLess)
{
    const LlcModel &small =
        publishedLlcModel("Chung", CapacityMode::FixedCapacity); // 2MB
    const LlcModel &large =
        publishedLlcModel("Chung", CapacityMode::FixedArea); // 8MB
    SimStats s_small = runTiny(small);
    SimStats s_large = runTiny(large);
    EXPECT_LT(s_large.llc.demandMisses, s_small.llc.demandMisses);
}

TEST(System, BlockingWritesSlowerThanPosted)
{
    const LlcModel &kang =
        publishedLlcModel("Kang", CapacityMode::FixedCapacity);
    SimStats posted = runTiny(kang, 1, WritePolicy::Posted);
    SimStats blocking = runTiny(kang, 1, WritePolicy::Blocking);
    EXPECT_GT(blocking.cycles, posted.cycles * 1.05);
    // Same access stream -> identical energy counts.
    EXPECT_EQ(posted.llc.demandMisses, blocking.llc.demandMisses);
}

TEST(System, BankContentionBetweenPostedAndBlocking)
{
    const LlcModel &kang =
        publishedLlcModel("Kang", CapacityMode::FixedCapacity);
    SimStats posted = runTiny(kang, 4, WritePolicy::Posted);
    SimStats bank = runTiny(kang, 4, WritePolicy::BankContention);
    SimStats blocking = runTiny(kang, 4, WritePolicy::Blocking);
    EXPECT_LE(posted.cycles, bank.cycles);
    EXPECT_LE(bank.cycles, blocking.cycles);
}

TEST(System, MpkiComputation)
{
    SimStats s;
    s.instructions = 2'000'000;
    s.llc.demandMisses = 5000;
    EXPECT_DOUBLE_EQ(s.llcMpki(), 2.5);
}

TEST(System, RejectsMoreThreadsThanCores)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    System system(cfg, sramBaselineLlc());
    auto traces = buildThreadTraces(tinyWorkload(1000), 2);
    std::vector<TraceSource *> ptrs{traces[0].get(), traces[1].get()};
    EXPECT_DEATH(system.run(ptrs), "more threads");
}
