/**
 * @file
 * Tests of the record-once/replay-many stores: RecordedTrace replay
 * fidelity, PrivateTrace-backed simulation bit-identity against
 * on-the-fly generation, concurrency independence, and the
 * exactly-once build discipline across whole studies.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/study.hh"
#include "nvsim/published.hh"
#include "workload/recorded_trace.hh"

using namespace nvmcache;

namespace {

/** A trimmed copy of a suite workload to keep runs fast. */
BenchmarkSpec
trimmed(const std::string &name, std::uint64_t accesses = 150'000)
{
    BenchmarkSpec spec = benchmark(name);
    spec.gen.totalAccesses = accesses;
    return spec;
}

GeneratorConfig
oneStreamConfig(StreamConfig::Kind kind)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = 30'000;
    cfg.loadFraction = 0.5;
    cfg.storeFraction = 0.3;
    cfg.meanGap = 2.0;
    StreamConfig s;
    s.kind = kind;
    s.regionBytes = 1 << 20;
    if (kind == StreamConfig::Kind::Zipf)
        s.zipfSkew = 0.9;
    cfg.loads.streams = {s};
    cfg.stores.streams = {s};
    cfg.ifetches.streams = {s};
    cfg.seed = 11;
    return cfg;
}

std::vector<MemAccess>
drainSource(TraceSource &trace)
{
    std::vector<MemAccess> out;
    MemAccess a;
    while (trace.next(a))
        out.push_back(a);
    return out;
}

std::vector<MemAccess>
drainCursor(TraceCursor cur)
{
    std::vector<MemAccess> out;
    std::array<MemAccess, 100> batch;
    std::size_t n;
    while ((n = cur.fill(batch)) != 0)
        out.insert(out.end(), batch.begin(), batch.begin() + n);
    return out;
}

void
expectSameAccesses(const std::vector<MemAccess> &a,
                   const std::vector<MemAccess> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "access " << i;
        ASSERT_EQ(a[i].kind, b[i].kind) << "access " << i;
        ASSERT_EQ(a[i].nonMemInstrs, b[i].nonMemInstrs)
            << "access " << i;
    }
}

/**
 * Every field of both SimStats exactly equal — floating-point fields
 * compared with ==, i.e. bit-identity for non-NaN values, including
 * the full hierarchical detail report.
 */
void
expectSimStatsIdentical(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.llc.demandReads, b.llc.demandReads);
    EXPECT_EQ(a.llc.demandHits, b.llc.demandHits);
    EXPECT_EQ(a.llc.demandMisses, b.llc.demandMisses);
    EXPECT_EQ(a.llc.fills, b.llc.fills);
    EXPECT_EQ(a.llc.writebacksIn, b.llc.writebacksIn);
    EXPECT_EQ(a.llc.dirtyEvictions, b.llc.dirtyEvictions);
    EXPECT_EQ(a.llc.writeBypasses, b.llc.writeBypasses);
    EXPECT_EQ(a.llc.readWaitCycles, b.llc.readWaitCycles);
    EXPECT_EQ(a.llc.writeStallCycles, b.llc.writeStallCycles);
    EXPECT_EQ(a.llc.hitEnergy, b.llc.hitEnergy);
    EXPECT_EQ(a.llc.missEnergy, b.llc.missEnergy);
    EXPECT_EQ(a.llc.writeEnergy, b.llc.writeEnergy);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramQueueCycles, b.dramQueueCycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.llcLeakageEnergy, b.llcLeakageEnergy);
    EXPECT_EQ(a.llcDynamicEnergy, b.llcDynamicEnergy);
    EXPECT_TRUE(a.detail == b.detail);
}

} // namespace

TEST(TraceStore, ReplayMatchesGeneratorForEveryStreamKind)
{
    for (StreamConfig::Kind kind :
         {StreamConfig::Kind::Zipf, StreamConfig::Kind::Uniform,
          StreamConfig::Kind::Sequential, StreamConfig::Kind::Chase}) {
        const GeneratorConfig cfg = oneStreamConfig(kind);
        SyntheticTrace gen(cfg, 0, 1);
        auto trace = RecordedTrace::record(cfg, 1);
        EXPECT_EQ(trace->totalAccesses(), cfg.totalAccesses);
        expectSameAccesses(drainCursor(trace->cursor(0)),
                           drainSource(gen));
    }
}

TEST(TraceStore, ReplayMatchesGeneratorPerThread)
{
    const GeneratorConfig cfg =
        oneStreamConfig(StreamConfig::Kind::Zipf);
    const std::uint32_t threads = 3;
    auto trace = RecordedTrace::record(cfg, threads);
    ASSERT_EQ(trace->threads(), threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        SyntheticTrace gen(cfg, t, threads);
        expectSameAccesses(drainCursor(trace->cursor(t)),
                           drainSource(gen));
    }
}

TEST(TraceStore, CursorResetRewindsToTheBeginning)
{
    const GeneratorConfig cfg =
        oneStreamConfig(StreamConfig::Kind::Uniform);
    auto trace = RecordedTrace::record(cfg, 1);
    TraceCursor cur = trace->cursor(0);
    const auto first = drainCursor(cur);

    // Full drain, reset, drain again.
    cur.reset();
    std::vector<MemAccess> second;
    std::array<MemAccess, 100> batch;
    std::size_t n;
    while ((n = cur.fill(batch)) != 0)
        second.insert(second.end(), batch.begin(),
                      batch.begin() + n);
    expectSameAccesses(first, second);

    // Partial drain, reset: replay starts over, not mid-stream.
    cur.reset();
    (void)cur.fill(batch);
    cur.reset();
    EXPECT_EQ(cur.remaining(), trace->totalAccesses());
    std::vector<MemAccess> third;
    while ((n = cur.fill(batch)) != 0)
        third.insert(third.end(), batch.begin(), batch.begin() + n);
    expectSameAccesses(first, third);
}

TEST(TraceStore, ReplayedSimStatsBitIdenticalToOnTheFly)
{
    // The replay path skips generator and L1/L2 work entirely; its
    // SimStats — every scalar, every per-core cycle, the whole
    // exported detail tree — must still match a live simulation bit
    // for bit.
    for (const char *name : {"tonto", "vips"}) {
        const BenchmarkSpec spec = trimmed(name);
        const std::uint32_t threads = spec.defaultThreads;
        const LlcModel &llc =
            publishedLlcModel("Jan", CapacityMode::FixedCapacity);

        ExperimentRunner runner;
        runner.setJobs(1);
        const SimStats replayed = runner.runOne(spec, llc);

        SystemConfig cfg = runner.baseConfig();
        cfg.numCores = threads;
        System system(cfg, llc);
        auto traces = buildThreadTraces(spec.gen, threads);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        const SimStats live = system.run(ptrs);

        expectSimStatsIdentical(replayed, live);
    }
}

TEST(TraceStore, SweepBitIdenticalAtAnyJobCount)
{
    const BenchmarkSpec spec = trimmed("tonto");
    ExperimentRunner serial;
    serial.setJobs(1);
    ExperimentRunner parallel;
    parallel.setJobs(8);
    const TechSweep a =
        serial.sweepTechs(spec, CapacityMode::FixedCapacity);
    const TechSweep b =
        parallel.sweepTechs(spec, CapacityMode::FixedCapacity);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].tech, b.results[i].tech);
        EXPECT_EQ(a.results[i].speedup, b.results[i].speedup);
        EXPECT_EQ(a.results[i].normEnergy, b.results[i].normEnergy);
        EXPECT_EQ(a.results[i].normEd2p, b.results[i].normEd2p);
        expectSimStatsIdentical(a.results[i].stats,
                                b.results[i].stats);
    }
}

TEST(TraceStore, SweepRecordsOnceAndReplaysElevenTimes)
{
    const BenchmarkSpec spec = trimmed("tonto");
    ExperimentRunner runner;
    runner.setJobs(1);
    (void)runner.sweepTechs(spec, CapacityMode::FixedCapacity);
    const RunnerStats rs = runner.runnerStats();
    // One recording each; every one of the 11 models replays. The
    // private-level recording itself replays the recorded trace,
    // which accounts for the extra trace-store hit.
    EXPECT_EQ(rs.traceBuilds, 1u);
    EXPECT_EQ(rs.traceHits, 11u);
    EXPECT_EQ(rs.privateBuilds, 1u);
    EXPECT_EQ(rs.privateHits, 10u);
    EXPECT_GT(rs.traceBytes, 0u);
    EXPECT_GT(rs.privateBytes, 0u);
}

TEST(TraceStore, FigureAndCorrelationStudiesRecordEachTraceOnce)
{
    // A figure study touches every workload once per (generator,
    // threads) pair; the correlation study re-uses the same scaled
    // specs, so the union of both studies still builds each trace
    // exactly once.
    const double scale = 0.02;
    ExperimentRunner runner;
    const FigureStudy fig =
        runFigureStudy(CapacityMode::FixedCapacity, runner, scale);
    const std::size_t workloads =
        fig.singleThreaded.size() + fig.multiThreaded.size();
    RunnerStats rs = runner.runnerStats();
    EXPECT_EQ(rs.traceBuilds, workloads);
    EXPECT_EQ(rs.privateBuilds, workloads);
    EXPECT_GE(rs.traceHits, 10 * rs.traceBuilds);

    (void)runCorrelationStudy(true, {"Jan"},
                              {CapacityMode::FixedCapacity}, runner,
                              scale);
    rs = runner.runnerStats();
    EXPECT_EQ(rs.traceBuilds, workloads); // no re-recording
    EXPECT_EQ(rs.privateBuilds, workloads);
}
