/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/cache.hh"
#include "util/rng.hh"

using namespace nvmcache;

namespace {

CacheGeometry
geom(std::uint64_t capacity, std::uint32_t assoc,
     std::uint32_t block = 64)
{
    return CacheGeometry{capacity, assoc, block};
}

} // namespace

TEST(Cache, GeometryDerivedQuantities)
{
    CacheGeometry g = geom(32 * 1024, 4);
    EXPECT_EQ(g.numLines(), 512u);
    EXPECT_EQ(g.numSets(), 128u);
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(geom(4096, 4));
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1030, false).hit); // same 64 B line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // 1 set of 2 ways: third distinct line evicts the least recently
    // used one.
    SetAssocCache cache(geom(128, 2));
    const std::uint64_t sets = cache.geometry().numSets();
    ASSERT_EQ(sets, 1u);
    cache.access(0x0, false);   // A
    cache.access(0x40, false);  // B
    cache.access(0x0, false);   // touch A -> B is LRU
    auto r = cache.access(0x80, false); // C evicts B
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_EQ(r.evictedAddr, 0x40u);
    EXPECT_TRUE(cache.access(0x0, false).hit);   // A still present
    EXPECT_FALSE(cache.access(0x40, false).hit); // B gone
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssocCache cache(geom(128, 2));
    cache.access(0x0, true); // dirty A
    cache.access(0x40, false);
    auto r = cache.access(0x80, false); // evicts A (LRU) dirty
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(r.evictedAddr, 0x0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, WriteMarksDirtyOnHit)
{
    SetAssocCache cache(geom(128, 2));
    cache.access(0x0, false); // clean fill
    cache.access(0x0, true);  // dirty it
    cache.access(0x40, false);
    auto r = cache.access(0x80, false);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, ProbeDoesNotChangeState)
{
    SetAssocCache cache(geom(128, 2));
    cache.access(0x0, false);
    cache.access(0x40, false);
    // Probing A must NOT refresh its recency.
    EXPECT_TRUE(cache.probe(0x0));
    auto r = cache.access(0x80, false);
    EXPECT_EQ(r.evictedAddr, 0x0u); // A was still LRU
    EXPECT_EQ(cache.hits(), 0u);    // probes not counted
}

TEST(Cache, InstallWritebackMarksDirtyNotDemand)
{
    SetAssocCache cache(geom(128, 2));
    cache.installWriteback(0x0);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    cache.access(0x40, false);
    auto r = cache.access(0x80, false);
    EXPECT_TRUE(r.evictedDirty); // the writeback line was dirty
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    SetAssocCache cache(geom(128, 2));
    cache.access(0x0, true);
    cache.access(0x40, false);
    EXPECT_TRUE(cache.invalidate(0x0));  // was dirty
    EXPECT_FALSE(cache.probe(0x0));      // gone
    EXPECT_FALSE(cache.invalidate(0x40)); // present but clean
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_FALSE(cache.invalidate(0x1000)); // absent
}

TEST(Cache, ResetStats)
{
    SetAssocCache cache(geom(128, 2));
    cache.access(0x0, false);
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.writebacks(), 0u);
    EXPECT_TRUE(cache.probe(0x0)); // contents survive stat reset
}

// --- property tests across geometries -----------------------------------

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheGeometryTest, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    const auto [capacity, assoc] = GetParam();
    SetAssocCache cache(geom(capacity, assoc));
    const std::uint64_t lines = cache.geometry().numLines();
    // Touch exactly `lines` distinct lines twice; the second pass must
    // be all hits (true LRU with a working set == capacity).
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(i * 64, false).hit) << i;
}

TEST_P(CacheGeometryTest, RandomTrafficNeverLosesLinesItJustTouched)
{
    const auto [capacity, assoc] = GetParam();
    SetAssocCache cache(geom(capacity, assoc));
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t addr = rng.below(1 << 22) & ~63ull;
        cache.access(addr, rng.chance(0.3));
        // The line touched most recently must still be present.
        EXPECT_TRUE(cache.probe(addr));
    }
}

TEST_P(CacheGeometryTest, EvictionConservesOccupancy)
{
    const auto [capacity, assoc] = GetParam();
    SetAssocCache cache(geom(capacity, assoc));
    const std::uint64_t lines = cache.geometry().numLines();
    Rng rng(7);
    std::uint64_t fills = 0, evictions = 0;
    for (int i = 0; i < 30000; ++i) {
        auto r = cache.access(rng.below(1 << 24) & ~63ull,
                              rng.chance(0.5));
        if (!r.hit)
            ++fills;
        if (r.evictedValid)
            ++evictions;
    }
    // Occupancy identity: valid lines = fills - evictions <= capacity.
    EXPECT_LE(fills - evictions, lines);
    EXPECT_GE(fills, evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(4096ull, 1u),
                      std::make_tuple(32768ull, 4u),
                      std::make_tuple(32768ull, 8u),
                      std::make_tuple(262144ull, 8u),
                      std::make_tuple(2097152ull, 16u)));

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_DEATH(SetAssocCache(geom(100, 2)), "");
    EXPECT_DEATH(SetAssocCache(geom(4096, 3, 64)), "");
    EXPECT_DEATH(SetAssocCache(geom(4096, 4, 48)), "");
}
