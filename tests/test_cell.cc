/**
 * @file
 * Unit tests for the NVM cell representation (nvm/cell.hh).
 */

#include <gtest/gtest.h>

#include "nvm/cell.hh"

using namespace nvmcache;

TEST(NvmClass, Names)
{
    EXPECT_EQ(toString(NvmClass::PCRAM), "PCRAM");
    EXPECT_EQ(toString(NvmClass::STTRAM), "STTRAM");
    EXPECT_EQ(toString(NvmClass::RRAM), "RRAM");
    EXPECT_EQ(toString(NvmClass::SRAM), "SRAM");
}

TEST(NvmClass, Subscripts)
{
    EXPECT_EQ(classSubscript(NvmClass::PCRAM), 'P');
    EXPECT_EQ(classSubscript(NvmClass::STTRAM), 'S');
    EXPECT_EQ(classSubscript(NvmClass::RRAM), 'R');
}

TEST(Provenance, Marks)
{
    EXPECT_EQ(provenanceMark(Provenance::Reported), "");
    EXPECT_EQ(provenanceMark(Provenance::H1Electrical), "+");
    EXPECT_EQ(provenanceMark(Provenance::H2Interpolated), "*");
    EXPECT_EQ(provenanceMark(Provenance::H3Similarity), "*");
    EXPECT_EQ(provenanceMark(Provenance::Missing), "?");
}

TEST(CellParam, KnownAndGet)
{
    CellParam missing;
    EXPECT_FALSE(missing.known());
    CellParam v = CellParam::reported(3.5);
    EXPECT_TRUE(v.known());
    EXPECT_DOUBLE_EQ(v.get(), 3.5);
    EXPECT_EQ(v.prov, Provenance::Reported);
}

TEST(CellSpec, CitationName)
{
    CellSpec c;
    c.name = "Chung";
    c.klass = NvmClass::STTRAM;
    EXPECT_EQ(c.citationName(), "Chung_S");
    c.klass = NvmClass::SRAM;
    c.name = "SRAM";
    EXPECT_EQ(c.citationName(), "SRAM");
}

TEST(CellSpec, FieldAccessorCoversAllFields)
{
    CellSpec c;
    const CellField all[] = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::CellLevels, CellField::ReadCurrent,
        CellField::ReadVoltage, CellField::ReadPower,
        CellField::ReadEnergy, CellField::ResetCurrent,
        CellField::ResetVoltage, CellField::ResetPulse,
        CellField::ResetEnergy, CellField::SetCurrent,
        CellField::SetVoltage, CellField::SetPulse,
        CellField::SetEnergy,
    };
    double v = 1.0;
    for (CellField f : all) {
        c.field(f) = CellParam::reported(v);
        EXPECT_DOUBLE_EQ(c.field(f).get(), v) << toString(f);
        v += 1.0;
    }
}

TEST(CellSpec, BitsPerCell)
{
    CellSpec c;
    EXPECT_EQ(c.bitsPerCell(), 1); // unknown -> SLC
    c.cellLevels = CellParam::reported(2);
    EXPECT_EQ(c.bitsPerCell(), 2);
}

class RequiredFieldsTest : public ::testing::TestWithParam<NvmClass>
{
};

TEST_P(RequiredFieldsTest, RequiredFieldsAreApplicable)
{
    const NvmClass klass = GetParam();
    for (CellField f : requiredFields(klass))
        EXPECT_TRUE(fieldApplicable(klass, f)) << toString(f);
}

TEST_P(RequiredFieldsTest, MissingFieldsMatchRequired)
{
    const NvmClass klass = GetParam();
    CellSpec empty;
    empty.klass = klass;
    auto missing = missingFields(empty);
    EXPECT_EQ(missing.size(), requiredFields(klass).size());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, RequiredFieldsTest,
                         ::testing::Values(NvmClass::PCRAM,
                                           NvmClass::STTRAM,
                                           NvmClass::RRAM,
                                           NvmClass::SRAM));

TEST(RequiredFields, PaperParameterSets)
{
    // Paper SIII: PCRAM uses currents for read; STTRAM/RRAM use
    // voltage+power; only RRAM switches with voltages.
    auto has = [](NvmClass k, CellField f) {
        for (CellField g : requiredFields(k))
            if (g == f)
                return true;
        return false;
    };
    EXPECT_TRUE(has(NvmClass::PCRAM, CellField::ReadCurrent));
    EXPECT_FALSE(has(NvmClass::PCRAM, CellField::ReadVoltage));
    EXPECT_TRUE(has(NvmClass::STTRAM, CellField::ReadVoltage));
    EXPECT_TRUE(has(NvmClass::STTRAM, CellField::SetCurrent));
    EXPECT_TRUE(has(NvmClass::RRAM, CellField::SetVoltage));
    EXPECT_FALSE(has(NvmClass::RRAM, CellField::SetCurrent));
    EXPECT_TRUE(has(NvmClass::RRAM, CellField::ResetEnergy));
}

TEST(FieldApplicable, GrayedOutCellsOfTable2)
{
    // Grayed-out combinations from Table II.
    EXPECT_FALSE(fieldApplicable(NvmClass::STTRAM, CellField::ReadEnergy));
    EXPECT_FALSE(fieldApplicable(NvmClass::RRAM, CellField::ResetCurrent));
    EXPECT_FALSE(fieldApplicable(NvmClass::PCRAM, CellField::SetVoltage));
    EXPECT_TRUE(fieldApplicable(NvmClass::PCRAM, CellField::SetCurrent));
    EXPECT_TRUE(fieldApplicable(NvmClass::RRAM, CellField::SetPulse));
}

TEST(MissingFields, PartialSpec)
{
    CellSpec c;
    c.klass = NvmClass::PCRAM;
    c.processNode = CellParam::reported(90e-9);
    c.cellSizeF2 = CellParam::reported(16.0);
    auto missing = missingFields(c);
    EXPECT_EQ(missing.size(), requiredFields(NvmClass::PCRAM).size() - 2);
}
