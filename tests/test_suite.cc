/**
 * @file
 * Tests for the benchmark suite definitions (paper Table V / VI).
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/suite.hh"

using namespace nvmcache;

TEST(Suite, TwentyWorkloadsInTableVOrder)
{
    const auto &suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 20u);
    EXPECT_EQ(suite.front().name, "bzip2");
    EXPECT_EQ(suite.back().name, "exchange2");
}

TEST(Suite, SuiteBreakdownMatchesPaper)
{
    // 7 from cpu2006, 2 from PARSEC3.0, 8 from NPB3.3.1, 3 from
    // cpu2017 (paper SIV).
    std::map<std::string, int> counts;
    for (const auto &b : benchmarkSuite())
        ++counts[b.suite];
    EXPECT_EQ(counts["cpu2006"], 7);
    EXPECT_EQ(counts["PARSEC3.0"], 2);
    EXPECT_EQ(counts["NPB3.3.1"], 8);
    EXPECT_EQ(counts["cpu2017"], 3);
}

TEST(Suite, ThreadingMatchesPaper)
{
    // PARSEC vips and all NPB are multi-threaded; cpu2006/2017 and
    // x264 are single-threaded.
    for (const auto &b : benchmarkSuite()) {
        if (b.suite == "NPB3.3.1" || b.name == "vips") {
            EXPECT_TRUE(b.multiThreaded) << b.name;
            EXPECT_EQ(b.defaultThreads, 4u) << b.name;
        } else {
            EXPECT_FALSE(b.multiThreaded) << b.name;
            EXPECT_EQ(b.defaultThreads, 1u) << b.name;
        }
    }
}

TEST(Suite, AiTrio)
{
    auto ai = aiBenchmarks();
    ASSERT_EQ(ai.size(), 3u);
    std::set<std::string> names;
    for (auto *b : ai)
        names.insert(b->name);
    EXPECT_TRUE(names.count("deepsjeng"));
    EXPECT_TRUE(names.count("leela"));
    EXPECT_TRUE(names.count("exchange2"));
}

TEST(Suite, SixteenCharacterizedWorkloads)
{
    // The paper excludes gamess, gobmk, milc and perlbench from PRISM.
    auto chars = characterizedBenchmarks();
    EXPECT_EQ(chars.size(), 16u);
    for (auto *b : chars) {
        EXPECT_TRUE(b->paper.available()) << b->name;
        EXPECT_NE(b->name, "gamess");
        EXPECT_NE(b->name, "gobmk");
        EXPECT_NE(b->name, "milc");
        EXPECT_NE(b->name, "perlbench");
    }
}

TEST(Suite, PaperMpkiAboveSelectionBar)
{
    // The paper only selected workloads with LLC mpki > 5.
    for (const auto &b : benchmarkSuite())
        EXPECT_GT(b.paperMpki, 5.0) << b.name;
}

TEST(Suite, TableVIValueSpotChecks)
{
    const auto &gems = benchmark("GemsFDTD");
    EXPECT_NEAR(gems.paper.globalWriteEntropy, 22.27, 1e-9);
    EXPECT_NEAR(gems.paper.footprint90Write, 113183.50e3, 1.0);
    const auto &ex = benchmark("exchange2");
    EXPECT_NEAR(ex.paper.totalReads, 62.28e9, 1e6);
    EXPECT_NEAR(ex.paper.uniqueReads, 0.03e6, 1.0);
}

TEST(Suite, LookupUnknownNameDies)
{
    EXPECT_DEATH(benchmark("nosuch"), "unknown benchmark");
}

TEST(Suite, BuildTracesDefaultsAndOverrides)
{
    auto st = buildTraces(benchmark("bzip2"));
    EXPECT_EQ(st.size(), 1u);
    auto mt = buildTraces(benchmark("cg"));
    EXPECT_EQ(mt.size(), 4u);
    auto mt8 = buildTraces(benchmark("cg"), 8);
    EXPECT_EQ(mt8.size(), 8u);
}

TEST(Suite, SingleThreadedRejectsMultipleThreads)
{
    EXPECT_DEATH(buildTraces(benchmark("bzip2"), 2),
                 "single-threaded");
}

TEST(Suite, GeneratorsConfigured)
{
    for (const auto &b : benchmarkSuite()) {
        EXPECT_GE(b.gen.totalAccesses, 1'000'000u) << b.name;
        EXPECT_FALSE(b.gen.loads.streams.empty()) << b.name;
        EXPECT_FALSE(b.gen.stores.streams.empty()) << b.name;
        EXPECT_GT(b.gen.loadFraction, 0.3) << b.name;
        EXPECT_GT(b.gen.meanGap, 0.0) << b.name;
        EXPECT_NE(b.gen.seed, 0u) << b.name;
    }
}

TEST(Suite, UniqueSeedsPerWorkload)
{
    std::set<std::uint64_t> seeds;
    for (const auto &b : benchmarkSuite())
        seeds.insert(b.gen.seed);
    EXPECT_EQ(seeds.size(), benchmarkSuite().size());
}

TEST(Suite, ReadHeavyWorkloadsMatchPaperDirection)
{
    // Paper Table VI: x264 and lu are significantly read-heavy.
    EXPECT_GT(benchmark("x264").gen.loadFraction, 0.8);
    EXPECT_GE(benchmark("lu").gen.loadFraction, 0.8);
    // cg writes are tiny (0.04e9 vs 0.73e9 reads).
    EXPECT_LT(benchmark("cg").gen.storeFraction, 0.1);
}
