/**
 * @file
 * Tests for the paper's contribution 1: the heuristic completion
 * engine (H1 electrical identities, H2 interpolation, H3 similarity),
 * including reproduction of the paper's own derivations — the "+"
 * and "*" entries of Table II.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "util/units.hh"

using namespace nvmcache;

namespace {

/** Engine set up the way the reproduction uses it. */
HeuristicEngine
standardEngine()
{
    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    return HeuristicEngine(std::move(refs));
}

const CellSpec &
raw(const std::string &name)
{
    for (const CellSpec &c : rawCells())
        if (c.name == name)
            return c;
    throw std::runtime_error("no raw cell " + name);
}

} // namespace

// --- eq (3) -------------------------------------------------------------

TEST(CellAreaF2, Identity)
{
    // 0.45um x 0.45um at 65 nm -> ~48 F^2 (the paper's Umeki value).
    EXPECT_NEAR(cellAreaF2(0.4505e-6, 0.4505e-6, 65e-9), 48.0, 0.1);
}

TEST(CellAreaF2, ScalesInverselyWithProcessSquared)
{
    double a90 = cellAreaF2(1e-6, 1e-6, 90e-9);
    double a45 = cellAreaF2(1e-6, 1e-6, 45e-9);
    EXPECT_NEAR(a45 / a90, 4.0, 1e-9);
}

// --- H1 electrical -------------------------------------------------------

TEST(H1, ReadPowerFromCurrentAndVoltage)
{
    HeuristicEngine engine({});
    CellSpec c = raw("Chung"); // readCurrent 37.08 uA, readVoltage 0.65
    CompletionStep step;
    ASSERT_TRUE(engine.tryElectrical(c, CellField::ReadPower, step));
    EXPECT_EQ(step.method, Provenance::H1Electrical);
    // Paper's Table II: 24.1 uW (dagger).
    EXPECT_NEAR(step.value, 24.1e-6, 0.2e-6);
}

TEST(H1, ResetEnergyFromCurrentPulseAndAccessVoltage)
{
    HeuristicEngine engine({});
    CellSpec c = raw("Chung"); // 80 uA, 10 ns, V_read 0.65
    CompletionStep step;
    ASSERT_TRUE(engine.tryElectrical(c, CellField::ResetEnergy, step));
    // Paper: 0.52 pJ (dagger). 80u * 0.65 * 10n = 0.52 pJ exactly.
    EXPECT_NEAR(step.value, 0.52e-12, 0.01e-12);
}

TEST(H1, InvertedCurrentFromEnergy)
{
    HeuristicEngine engine({});
    CellSpec c = raw("Umeki"); // E=1.12pJ, t=10ns, V_read=0.38
    CompletionStep step;
    ASSERT_TRUE(engine.tryElectrical(c, CellField::ResetCurrent, step));
    // Paper derived 255 uA; the identity with V_access = V_read gives
    // ~295 uA — agreeing within the heuristic's expected error band.
    EXPECT_NEAR(step.value, 255e-6, 65e-6);
}

TEST(H1, CellSizeFromPhysicalDims)
{
    HeuristicEngine engine({});
    CellSpec c = raw("Umeki");
    CompletionStep step;
    ASSERT_TRUE(engine.tryElectrical(c, CellField::CellSizeF2, step));
    EXPECT_NEAR(step.value, 48.0, 0.5); // paper: 48 F^2 (dagger)
}

TEST(H1, FailsWithoutInputs)
{
    HeuristicEngine engine({});
    CellSpec c;
    c.klass = NvmClass::STTRAM;
    CompletionStep step;
    EXPECT_FALSE(engine.tryElectrical(c, CellField::ReadPower, step));
    EXPECT_FALSE(engine.tryElectrical(c, CellField::SetEnergy, step));
}

TEST(H1, UsesClassDefaultAccessVoltageWhenNoReadVoltage)
{
    HeuristicEngine::Options opts;
    opts.defaultAccessVoltage[int(NvmClass::PCRAM)] = 2.0;
    HeuristicEngine engine({}, opts);
    CellSpec c;
    c.klass = NvmClass::PCRAM;
    c.setCurrent = CellParam::reported(100e-6);
    c.setPulse = CellParam::reported(10e-9);
    CompletionStep step;
    ASSERT_TRUE(engine.tryElectrical(c, CellField::SetEnergy, step));
    EXPECT_NEAR(step.value, 100e-6 * 2.0 * 10e-9, 1e-18);
}

// --- H2 interpolation ----------------------------------------------------

TEST(H2, LinearTrendAcrossSameClass)
{
    // Two reference STTRAM cells define a perfect linear trend of
    // set current vs process node; the target sits between them.
    CellSpec a, b;
    a.name = "refA";
    a.klass = NvmClass::STTRAM;
    a.processNode = CellParam::reported(90e-9);
    a.setCurrent = CellParam::reported(90e-6);
    b.name = "refB";
    b.klass = NvmClass::STTRAM;
    b.processNode = CellParam::reported(45e-9);
    b.setCurrent = CellParam::reported(45e-6);

    HeuristicEngine engine({a, b});
    CellSpec target;
    target.name = "target";
    target.klass = NvmClass::STTRAM;
    target.processNode = CellParam::reported(65e-9);
    CompletionStep step;
    ASSERT_TRUE(
        engine.tryInterpolation(target, CellField::SetCurrent, step));
    EXPECT_EQ(step.method, Provenance::H2Interpolated);
    EXPECT_NEAR(step.value, 65e-6, 1e-9);
}

TEST(H2, ClampsToObservedRange)
{
    CellSpec a, b;
    a.name = "refA";
    a.klass = NvmClass::RRAM;
    a.processNode = CellParam::reported(40e-9);
    a.setVoltage = CellParam::reported(2.0);
    b.name = "refB";
    b.klass = NvmClass::RRAM;
    b.processNode = CellParam::reported(22e-9);
    b.setVoltage = CellParam::reported(1.0);

    HeuristicEngine engine({a, b});
    CellSpec target;
    target.name = "target";
    target.klass = NvmClass::RRAM;
    target.processNode = CellParam::reported(120e-9); // far outside
    CompletionStep step;
    ASSERT_TRUE(
        engine.tryInterpolation(target, CellField::SetVoltage, step));
    EXPECT_LE(step.value, 2.0);
    EXPECT_GE(step.value, 1.0);
}

TEST(H2, RequiresTwoReporters)
{
    CellSpec a;
    a.name = "refA";
    a.klass = NvmClass::RRAM;
    a.processNode = CellParam::reported(40e-9);
    a.setVoltage = CellParam::reported(2.0);
    HeuristicEngine engine({a});
    CellSpec target;
    target.klass = NvmClass::RRAM;
    target.name = "t";
    target.processNode = CellParam::reported(28e-9);
    CompletionStep step;
    EXPECT_FALSE(
        engine.tryInterpolation(target, CellField::SetVoltage, step));
}

TEST(H2, IgnoresHeuristicValuesInReferences)
{
    CellSpec a, b;
    a.name = "refA";
    a.klass = NvmClass::STTRAM;
    a.processNode = CellParam::reported(90e-9);
    a.setCurrent = CellParam(90e-6, Provenance::H3Similarity); // guess
    b.name = "refB";
    b.klass = NvmClass::STTRAM;
    b.processNode = CellParam::reported(45e-9);
    b.setCurrent = CellParam::reported(45e-6);
    HeuristicEngine engine({a, b});
    CellSpec target;
    target.name = "t";
    target.klass = NvmClass::STTRAM;
    target.processNode = CellParam::reported(65e-9);
    CompletionStep step;
    // Only one *reported* point -> H2 must refuse.
    EXPECT_FALSE(
        engine.tryInterpolation(target, CellField::SetCurrent, step));
}

// --- H3 similarity --------------------------------------------------------

TEST(H3, ReproducesPaperKangExample)
{
    // The paper's worked example: Kang's set current is taken from Oh
    // because their reset currents are identical (600 uA).
    HeuristicEngine engine(rawCells());
    CellSpec kang = raw("Kang");
    CompletionStep step;
    ASSERT_TRUE(engine.trySimilarity(kang, CellField::SetCurrent, step));
    EXPECT_EQ(step.method, Provenance::H3Similarity);
    EXPECT_NEAR(step.value, 200e-6, 1e-9); // Oh's set current
    EXPECT_NE(step.rationale.find("Oh"), std::string::npos);
}

TEST(H3, FailsWithNoSameClassDonor)
{
    HeuristicEngine engine({});
    CellSpec c = raw("Kang");
    CompletionStep step;
    EXPECT_FALSE(engine.trySimilarity(c, CellField::SetCurrent, step));
}

TEST(H3, ArchetypeSeedsFillClassWideGaps)
{
    // No PCRAM publication reports array read current; the archetype
    // seed supplies it.
    HeuristicEngine engine = standardEngine();
    CellSpec oh = raw("Oh");
    CompletionStep step;
    ASSERT_TRUE(engine.trySimilarity(oh, CellField::ReadCurrent, step));
    EXPECT_GT(step.value, 0.0);
}

// --- full completion -------------------------------------------------------

class CompletionTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CompletionTest, RawCellCompletesToSimulatorReady)
{
    HeuristicEngine engine = standardEngine();
    CompletionResult result = engine.complete(raw(GetParam()));
    EXPECT_TRUE(result.complete())
        << GetParam() << " left "
        << missingFields(result.spec).size() << " required fields open";
}

TEST_P(CompletionTest, ReportedValuesNeverMutated)
{
    HeuristicEngine engine = standardEngine();
    const CellSpec before = raw(GetParam());
    CompletionResult result = engine.complete(before);
    const CellField all[] = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::CellLevels, CellField::ReadCurrent,
        CellField::ReadVoltage, CellField::ReadPower,
        CellField::ReadEnergy, CellField::ResetCurrent,
        CellField::ResetVoltage, CellField::ResetPulse,
        CellField::ResetEnergy, CellField::SetCurrent,
        CellField::SetVoltage, CellField::SetPulse,
        CellField::SetEnergy,
    };
    for (CellField f : all) {
        if (before.field(f).known() &&
            before.field(f).prov == Provenance::Reported) {
            EXPECT_EQ(result.spec.field(f).prov, Provenance::Reported);
            EXPECT_DOUBLE_EQ(result.spec.field(f).get(),
                             before.field(f).get());
        }
    }
}

TEST_P(CompletionTest, LedgerMatchesFilledFields)
{
    HeuristicEngine engine = standardEngine();
    const CellSpec before = raw(GetParam());
    CompletionResult result = engine.complete(before);
    for (const CompletionStep &step : result.steps) {
        EXPECT_FALSE(before.field(step.field).known());
        EXPECT_TRUE(result.spec.field(step.field).known());
        EXPECT_EQ(result.spec.field(step.field).prov, step.method);
        EXPECT_FALSE(step.rationale.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTableIICells, CompletionTest,
    ::testing::Values("Oh", "Chen", "Kang", "Close", "Chung", "Jan",
                      "Umeki", "Xue", "Hayakawa", "Zhang"));

TEST(Completion, DerivableDaggerValuesMatchPaper)
{
    // The Table II dagger entries with a well-defined eq-(2)/(3)
    // derivation should land near the paper's published values.
    HeuristicEngine engine = standardEngine();

    auto completed = [&](const std::string &name) {
        return engine.complete(raw(name)).spec;
    };

    CellSpec chung = completed("Chung");
    EXPECT_NEAR(chung.readPower.get(), 24.1e-6, 0.5e-6);
    EXPECT_NEAR(chung.resetEnergy.get(), 0.52e-12, 0.02e-12);

    CellSpec umeki = completed("Umeki");
    EXPECT_NEAR(umeki.cellSizeF2.get(), 48.0, 0.5);
    EXPECT_NEAR(umeki.resetCurrent.get(), 255e-6, 65e-6);
    EXPECT_NEAR(umeki.setCurrent.get(), 255e-6, 65e-6);

    CellSpec kang = completed("Kang");
    EXPECT_NEAR(kang.setCurrent.get(), 200e-6, 1e-9); // H3 from Oh

    // Hayakawa's whole write spec is similarity-derived; with the
    // archetype seed the engine reproduces the published values.
    CellSpec hayakawa = completed("Hayakawa");
    EXPECT_NEAR(hayakawa.setVoltage.get(), 2.0, 1e-9);
    EXPECT_NEAR(hayakawa.setPulse.get(), 10e-9, 1e-15);
    EXPECT_NEAR(hayakawa.setEnergy.get(), 0.6e-12, 1e-18);
    EXPECT_NEAR(hayakawa.readVoltage.get(), 0.4, 1e-9);
}

TEST(Completion, SramNeedsNothing)
{
    HeuristicEngine engine = standardEngine();
    CompletionResult result = engine.complete(sramBaselineCell());
    EXPECT_TRUE(result.complete());
    EXPECT_TRUE(result.steps.empty());
}
