/**
 * @file
 * Cross-module integration and reproduction-property tests: the full
 * modeling pipeline (raw datasheet -> heuristics -> circuit estimator
 * -> system simulation), suite-level fidelity against the paper's
 * published workload data, and whole-stack invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/study.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "nvsim/area_solver.hh"
#include "nvsim/estimator.hh"
#include "prism/metrics.hh"
#include "util/stats.hh"

using namespace nvmcache;

namespace {

BenchmarkSpec
trimmed(const std::string &name, std::uint64_t accesses = 250'000)
{
    BenchmarkSpec spec = benchmark(name);
    spec.gen.totalAccesses = accesses;
    return spec;
}

} // namespace

// --- full modeling pipeline ------------------------------------------------

TEST(Pipeline, RawCellToSimulation)
{
    // The heuristic_completion example flow, asserted end to end.
    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);

    for (const CellSpec &raw : rawCells()) {
        CompletionResult completed = engine.complete(raw);
        ASSERT_TRUE(completed.complete()) << raw.name;

        Estimator estimator;
        CacheOrgConfig org;
        LlcModel llc = estimator.estimate(completed.spec, org);

        ExperimentRunner runner;
        SimStats stats = runner.runOne(trimmed("tonto", 60'000), llc);
        EXPECT_GT(stats.cycles, 0.0) << raw.name;
        EXPECT_GT(stats.llcEnergy(), 0.0) << raw.name;
        EXPECT_GT(stats.llc.demandReads, 0u) << raw.name;
    }
}

TEST(Pipeline, AreaSolvedModelRunsInSimulator)
{
    Estimator estimator;
    AreaSolver solver{estimator};
    CacheOrgConfig org;
    AreaSolveResult solved =
        solver.solve(publishedCell("Hayakawa"), 6.548e-6, org);
    EXPECT_GT(solved.capacityBytes, 2ull << 20); // denser than SRAM

    ExperimentRunner runner;
    SimStats stats =
        runner.runOne(trimmed("gobmk", 100'000), solved.model);
    EXPECT_GT(stats.llc.demandHits, 0u);
}

// --- reproduction properties over the whole suite ---------------------------

TEST(Reproduction, MpkiTracksPaperWithinFactorTwo)
{
    // Guard the workload tuning: measured LLC mpki on the SRAM
    // baseline must stay within 2x of the paper's Table V for every
    // workload (most are within 15%; see EXPERIMENTS.md).
    ExperimentRunner runner;
    for (const BenchmarkSpec &spec : benchmarkSuite()) {
        SimStats stats = runner.runOne(spec, sramBaselineLlc());
        const double measured = stats.llcMpki();
        EXPECT_GT(measured, spec.paperMpki / 2.0) << spec.name;
        EXPECT_LT(measured, spec.paperMpki * 2.0) << spec.name;
    }
}

TEST(Reproduction, FeatureOrderingsTrackTableVI)
{
    // Across the 16 characterized workloads, the measured per-feature
    // orderings must rank-correlate with the paper's Table VI.
    std::vector<double> m_hrg, p_hrg, m_hwg, p_hwg, m_f90w, p_f90w,
        m_unq, p_unq;
    for (const BenchmarkSpec *spec : characterizedBenchmarks()) {
        auto traces = buildTraces(*spec);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        WorkloadFeatures f = characterize(ptrs);
        m_hrg.push_back(f.reads.globalEntropy);
        p_hrg.push_back(spec->paper.globalReadEntropy);
        m_hwg.push_back(f.writes.globalEntropy);
        p_hwg.push_back(spec->paper.globalWriteEntropy);
        m_f90w.push_back(double(f.writes.footprint90));
        p_f90w.push_back(spec->paper.footprint90Write);
        m_unq.push_back(double(f.reads.unique));
        p_unq.push_back(spec->paper.uniqueReads);
    }
    EXPECT_GT(spearman(m_hrg, p_hrg), 0.5);
    EXPECT_GT(spearman(m_hwg, p_hwg), 0.5);
    EXPECT_GT(spearman(m_f90w, p_f90w), 0.5);
    EXPECT_GT(spearman(m_unq, p_unq), 0.4);
}

// --- whole-stack invariants ---------------------------------------------------

class AllTechsTest
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 CapacityMode>>
{
};

TEST_P(AllTechsTest, SaneNormalizedResults)
{
    const auto [tech, mode] = GetParam();
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("leela"), mode);
    const RunResult &r = sweep.byTech(tech);
    EXPECT_GT(r.speedup, 0.2) << tech;
    EXPECT_LT(r.speedup, 5.0) << tech;
    EXPECT_GT(r.normEnergy, 0.0) << tech;
    EXPECT_GT(r.stats.llc.demandReads, 0u) << tech;
    // Energy identity holds through the whole stack.
    const LlcModel &m = publishedLlcModel(tech, mode);
    const double expected =
        double(r.stats.llc.demandHits) * m.eHit +
        double(r.stats.llc.demandMisses) * m.eMiss +
        double(r.stats.llc.fills + r.stats.llc.writebacksIn) *
            m.eWrite +
        m.leakage * r.stats.seconds;
    EXPECT_NEAR(r.stats.llcEnergy(), expected,
                1e-9 * std::abs(expected));
}

INSTANTIATE_TEST_SUITE_P(
    TechsByMode, AllTechsTest,
    ::testing::Combine(
        ::testing::Values("Oh", "Chen", "Kang", "Close", "Chung",
                          "Jan", "Umeki", "Xue", "Hayakawa", "Zhang"),
        ::testing::Values(CapacityMode::FixedCapacity,
                          CapacityMode::FixedArea)));

TEST(Invariant, FixedAreaNeverMissesMoreThanFixedCapacity)
{
    // Fixed-area capacities are >= 2 MB for every tech except Jan
    // (1 MB); with LRU and identical traces, a strictly larger
    // same-geometry cache cannot miss more.
    ExperimentRunner runner;
    BenchmarkSpec spec = trimmed("gobmk", 400'000);
    TechSweep cap =
        runner.sweepTechs(spec, CapacityMode::FixedCapacity);
    TechSweep area = runner.sweepTechs(spec, CapacityMode::FixedArea);
    for (const RunResult &r : cap.results) {
        if (r.tech == "Jan")
            continue; // fixed-area Jan is smaller (1 MB)
        const RunResult &a = area.byTech(r.tech);
        EXPECT_LE(a.stats.llc.demandMisses,
                  r.stats.llc.demandMisses)
            << r.tech;
    }
}

TEST(Invariant, JanFixedAreaMissesMore)
{
    ExperimentRunner runner;
    BenchmarkSpec spec = trimmed("gobmk", 400'000);
    SimStats cap = runner.runOne(
        spec, publishedLlcModel("Jan", CapacityMode::FixedCapacity));
    SimStats area = runner.runOne(
        spec, publishedLlcModel("Jan", CapacityMode::FixedArea));
    EXPECT_GE(area.llc.demandMisses, cap.llc.demandMisses);
}

TEST(Invariant, ExperimentRunnerIsDeterministic)
{
    ExperimentRunner a, b;
    BenchmarkSpec spec = trimmed("ft", 120'000);
    SimStats ra = a.runOne(spec, sramBaselineLlc());
    SimStats rb = b.runOne(spec, sramBaselineLlc());
    EXPECT_DOUBLE_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.llc.demandMisses, rb.llc.demandMisses);
    EXPECT_EQ(ra.dramReads, rb.dramReads);
}

TEST(Invariant, LeakageDominatesSramEnergy)
{
    // The paper's energy story hinges on SRAM leakage (3.44 W)
    // dwarfing NVM leakage; verify the simulated split reflects it.
    ExperimentRunner runner;
    SimStats sram = runner.runOne(trimmed("tonto", 200'000),
                                  sramBaselineLlc());
    EXPECT_GT(sram.llcLeakageEnergy, sram.llcDynamicEnergy);
    SimStats jan = runner.runOne(
        trimmed("tonto", 200'000),
        publishedLlcModel("Jan", CapacityMode::FixedCapacity));
    EXPECT_LT(jan.llcEnergy(), 0.25 * sram.llcEnergy());
}

TEST(Invariant, Ed2pConsistency)
{
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("leela"),
                                        CapacityMode::FixedCapacity);
    for (const RunResult &r : sweep.results) {
        const double recomputed =
            r.normEnergy / r.speedup / r.speedup;
        EXPECT_NEAR(r.normEd2p, recomputed, 1e-9) << r.tech;
    }
}

TEST(Invariant, DramTrafficConservation)
{
    // Every LLC demand miss fetches one block from DRAM; every dirty
    // LLC eviction writes one back.
    ExperimentRunner runner;
    SimStats s = runner.runOne(trimmed("bzip2", 300'000),
                               sramBaselineLlc());
    EXPECT_EQ(s.dramReads, s.llc.demandMisses);
    EXPECT_EQ(s.dramWrites, s.llc.dirtyEvictions);
}
