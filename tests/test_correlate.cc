/**
 * @file
 * Tests for the feature-correlation framework (paper Fig 3).
 */

#include <gtest/gtest.h>

#include "correlate/framework.hh"

using namespace nvmcache;

namespace {

CorrelationDataset
makeDataset()
{
    CorrelationDataset d;
    d.workloads = {"w1", "w2", "w3", "w4"};
    d.featureNames = {"fA", "fB", "fC"};
    // fA tracks energy exactly; fB anti-tracks speedup; fC constant.
    d.features = {
        {1.0, 4.0, 7.0},
        {2.0, 3.0, 7.0},
        {3.0, 2.0, 7.0},
        {4.0, 1.0, 7.0},
    };
    d.energy = {0.1, 0.2, 0.3, 0.4};
    d.speedup = {1.1, 1.2, 1.3, 1.4};
    return d;
}

} // namespace

TEST(Correlate, PerfectAndConstantColumns)
{
    auto result = correlateFeatures(makeDataset());
    ASSERT_EQ(result.energyCorr.size(), 3u);
    EXPECT_NEAR(result.energyCorr[0], 1.0, 1e-12);
    EXPECT_NEAR(result.energyCorr[1], -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(result.energyCorr[2], 0.0);
    EXPECT_NEAR(result.speedupCorr[0], 1.0, 1e-12);
    EXPECT_NEAR(result.speedupCorr[1], -1.0, 1e-12);
}

TEST(Correlate, RankingByAbsoluteValue)
{
    CorrelationDataset d = makeDataset();
    // Make fB noisier against energy so |r| drops below fA's.
    d.features[1][1] = 3.9;
    d.features[3][1] = 0.4;
    auto result = correlateFeatures(d);
    auto rank = result.rankByEnergy();
    EXPECT_EQ(rank.front(), 0u); // fA strongest
    EXPECT_EQ(rank.back(), 2u);  // constant weakest
}

TEST(Correlate, ValidateRejectsShapeMismatch)
{
    CorrelationDataset d = makeDataset();
    d.energy.pop_back();
    EXPECT_DEATH(correlateFeatures(d), "row counts");

    CorrelationDataset d2 = makeDataset();
    d2.features[1].pop_back();
    EXPECT_DEATH(correlateFeatures(d2), "feature width");
}

TEST(Correlate, ValidateRejectsTooFewWorkloads)
{
    CorrelationDataset d;
    d.workloads = {"only"};
    d.featureNames = {"f"};
    d.features = {{1.0}};
    d.energy = {1.0};
    d.speedup = {1.0};
    EXPECT_DEATH(correlateFeatures(d), "two workloads");
}

TEST(Correlate, HeatmapRenderContainsFeaturesAndValues)
{
    auto result = correlateFeatures(makeDataset());
    std::string out = renderHeatmap(result, "demo", false);
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("fA"), std::string::npos);
    EXPECT_NE(out.find("energy"), std::string::npos);
    EXPECT_NE(out.find("+1.00"), std::string::npos);
    EXPECT_NE(out.find("-1.00"), std::string::npos);
    // No ANSI escapes when colour is off.
    EXPECT_EQ(out.find('\x1b'), std::string::npos);
}

TEST(Correlate, ThreePointDatasetMatchesPaperSetting)
{
    // The paper's Fig 4 correlates over just the 3 AI workloads; the
    // framework must behave (and saturate) sensibly there.
    CorrelationDataset d;
    d.workloads = {"deepsjeng", "leela", "exchange2"};
    d.featureNames = {"H_wg"};
    d.features = {{11.86}, {8.95}, {8.61}};
    d.energy = {0.9, 0.5, 0.4};
    d.speedup = {1.02, 0.99, 0.98};
    auto result = correlateFeatures(d);
    EXPECT_GT(result.energyCorr[0], 0.95); // near-collinear data
    EXPECT_GT(result.speedupCorr[0], 0.9);
}
