/**
 * @file
 * Tests for the endurance / lifetime extension (paper §VII future
 * work, implemented here).
 */

#include <gtest/gtest.h>

#include "nvm/endurance.hh"

using namespace nvmcache;

TEST(Endurance, ClassBoundsMatchPaperNarrative)
{
    // PCRAM worst, RRAM ~100-1000x better, STTRAM effectively
    // unlimited (Table I / SII).
    EXPECT_GE(writeEndurance(NvmClass::PCRAM), 1e7);
    EXPECT_LE(writeEndurance(NvmClass::PCRAM), 1e8);
    EXPECT_DOUBLE_EQ(writeEndurance(NvmClass::RRAM), 1e10);
    EXPECT_GT(writeEndurance(NvmClass::STTRAM),
              1e4 * writeEndurance(NvmClass::RRAM));
}

TEST(Endurance, LifetimeScalesWithEndurance)
{
    LifetimeInputs in;
    in.llcWrites = 1'000'000;
    in.seconds = 1.0;
    in.cacheLines = 32768;
    auto pcram = estimateLifetime(NvmClass::PCRAM, in);
    auto rram = estimateLifetime(NvmClass::RRAM, in);
    EXPECT_GT(rram.lifetimeSeconds, 100.0 * pcram.lifetimeSeconds);
}

TEST(Endurance, MeanRateComputation)
{
    LifetimeInputs in;
    in.llcWrites = 32768 * 10;
    in.seconds = 2.0;
    in.cacheLines = 32768;
    auto est = estimateLifetime(NvmClass::RRAM, in);
    EXPECT_DOUBLE_EQ(est.meanLineWritesPerSecond, 5.0);
    EXPECT_DOUBLE_EQ(est.hottestLineWritesPerSecond, 5.0);
    EXPECT_NEAR(est.lifetimeSeconds, 1e10 / 5.0, 1.0);
}

TEST(Endurance, ImbalanceShortensLifetime)
{
    LifetimeInputs in;
    in.llcWrites = 1'000'000;
    in.seconds = 1.0;
    in.cacheLines = 32768;
    auto level = estimateLifetime(NvmClass::PCRAM, in);
    in.writeImbalance = 100.0;
    auto skewed = estimateLifetime(NvmClass::PCRAM, in);
    EXPECT_NEAR(level.lifetimeSeconds / skewed.lifetimeSeconds, 100.0,
                1e-6);
}

TEST(Endurance, WearLevelingRestoresLifetime)
{
    LifetimeInputs in;
    in.llcWrites = 1'000'000;
    in.seconds = 1.0;
    in.cacheLines = 32768;
    in.writeImbalance = 50.0;
    auto bare = estimateLifetime(NvmClass::PCRAM, in, 1.0);
    auto leveled = estimateLifetime(NvmClass::PCRAM, in, 0.02);
    EXPECT_NEAR(leveled.lifetimeSeconds / bare.lifetimeSeconds, 50.0,
                1e-6);
    // Leveling can never push effective imbalance below level.
    auto overleveled = estimateLifetime(NvmClass::PCRAM, in, 0.001);
    EXPECT_DOUBLE_EQ(overleveled.hottestLineWritesPerSecond,
                     overleveled.meanLineWritesPerSecond);
}

TEST(Endurance, ZeroWritesNeverWearOut)
{
    LifetimeInputs in;
    in.llcWrites = 0;
    in.seconds = 1.0;
    in.cacheLines = 1024;
    auto est = estimateLifetime(NvmClass::PCRAM, in);
    EXPECT_GT(est.lifetimeSeconds, 1e20);
}

TEST(Endurance, ImbalanceFromFootprints)
{
    // 90% of writes onto 10 destinations in a 32768-line cache:
    // hot share 0.09 vs level 1/32768 -> ~2949x.
    double imb = imbalanceFromFootprints(100000, 10, 32768);
    EXPECT_NEAR(imb, 0.09 / (1.0 / 32768.0), 1.0);
    // Level traffic: f90 ~ cache lines -> imbalance ~ 0.9/1 ~ 1.
    EXPECT_NEAR(imbalanceFromFootprints(100000, 32768, 32768), 1.0,
                0.2);
    // Degenerate inputs.
    EXPECT_DOUBLE_EQ(imbalanceFromFootprints(0, 0, 32768), 1.0);
}

TEST(Endurance, RejectsBadInputs)
{
    LifetimeInputs in;
    in.llcWrites = 1;
    in.seconds = 1.0;
    in.cacheLines = 0;
    EXPECT_DEATH(estimateLifetime(NvmClass::PCRAM, in), "empty");
    in.cacheLines = 10;
    EXPECT_DEATH(estimateLifetime(NvmClass::PCRAM, in, 0.0),
                 "wear-leveling");
    EXPECT_DEATH(estimateLifetime(NvmClass::PCRAM, in, 1.5),
                 "wear-leveling");
}
