/**
 * @file
 * Integration tests: experiment orchestration, normalization, the
 * core-sweep study, and the correlation study end to end. These use
 * shortened workloads where possible to stay fast.
 */

#include <gtest/gtest.h>

#include "core/study.hh"

using namespace nvmcache;

namespace {

/** A trimmed copy of a suite workload to keep integration runs fast. */
BenchmarkSpec
trimmed(const std::string &name, std::uint64_t accesses = 200'000)
{
    BenchmarkSpec spec = benchmark(name);
    spec.gen.totalAccesses = accesses;
    return spec;
}

} // namespace

TEST(Experiment, SramRowIsExactlyUnity)
{
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("tonto"),
                                        CapacityMode::FixedCapacity);
    const RunResult &sram = sweep.byTech("SRAM");
    EXPECT_DOUBLE_EQ(sram.speedup, 1.0);
    EXPECT_DOUBLE_EQ(sram.normEnergy, 1.0);
    EXPECT_DOUBLE_EQ(sram.normEd2p, 1.0);
}

TEST(Experiment, SweepCoversAllElevenTechs)
{
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("tonto"),
                                        CapacityMode::FixedCapacity);
    EXPECT_EQ(sweep.results.size(), 11u);
    EXPECT_EQ(sweep.results.back().tech, "SRAM");
}

TEST(Experiment, NormalizationIdentity)
{
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("tonto"),
                                        CapacityMode::FixedCapacity);
    const RunResult &sram = sweep.byTech("SRAM");
    for (const RunResult &r : sweep.results) {
        EXPECT_NEAR(r.speedup,
                    sram.stats.seconds / r.stats.seconds, 1e-12);
        EXPECT_NEAR(r.normEnergy,
                    r.stats.llcEnergy() / sram.stats.llcEnergy(),
                    1e-12);
        EXPECT_NEAR(r.normEd2p, r.stats.ed2p() / sram.stats.ed2p(),
                    1e-12);
    }
}

TEST(Experiment, NvmEnergyBeatsSramForSttram)
{
    // The paper's headline: NVM LLC energy is up to an order of
    // magnitude below SRAM (driven by SRAM leakage).
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("tonto", 400'000),
                                        CapacityMode::FixedCapacity);
    EXPECT_LT(sweep.byTech("Jan").normEnergy, 0.3);
    EXPECT_LT(sweep.byTech("Chung").normEnergy, 0.3);
    EXPECT_LT(sweep.byTech("Hayakawa").normEnergy, 0.3);
}

TEST(Experiment, PcramWriteEnergyHurts)
{
    // Kang_P / Oh_P exhibit the worst-case LLC energy in the paper.
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("bzip2", 400'000),
                                        CapacityMode::FixedCapacity);
    EXPECT_GT(sweep.byTech("Kang").normEnergy,
              sweep.byTech("Chung").normEnergy * 5.0);
    EXPECT_GT(sweep.byTech("Oh").normEnergy, 1.0);
}

TEST(Experiment, FixedCapacitySpeedupNearUnity)
{
    // Paper SV-A: fixed-capacity performance stays within a few
    // percent of SRAM.
    ExperimentRunner runner;
    TechSweep sweep = runner.sweepTechs(trimmed("tonto", 400'000),
                                        CapacityMode::FixedCapacity);
    for (const RunResult &r : sweep.results) {
        EXPECT_GT(r.speedup, 0.90) << r.tech;
        EXPECT_LT(r.speedup, 1.10) << r.tech;
    }
}

TEST(Experiment, FixedAreaCapacityHelpsCapacityStarvedWorkload)
{
    // gobmk's working set exceeds 2 MB; Hayakawa's 32 MB fixed-area
    // LLC must cut misses and lift speedup above fixed-capacity.
    ExperimentRunner runner;
    BenchmarkSpec spec = trimmed("gobmk", 600'000);
    TechSweep cap =
        runner.sweepTechs(spec, CapacityMode::FixedCapacity);
    TechSweep area = runner.sweepTechs(spec, CapacityMode::FixedArea);
    const RunResult &h_cap = cap.byTech("Hayakawa");
    const RunResult &h_area = area.byTech("Hayakawa");
    EXPECT_LT(h_area.stats.llc.demandMisses,
              h_cap.stats.llc.demandMisses);
    EXPECT_GT(h_area.speedup, h_cap.speedup);
    EXPECT_GT(h_area.speedup, 1.05);
}

TEST(Experiment, RunOneRespectsThreadOverride)
{
    ExperimentRunner runner;
    const LlcModel &sram =
        publishedLlcModel("SRAM", CapacityMode::FixedCapacity);
    BenchmarkSpec spec = trimmed("cg", 200'000);
    SimStats one = runner.runOne(spec, sram, 1);
    SimStats four = runner.runOne(spec, sram, 4);
    EXPECT_EQ(one.coreCycles.size(), 1u);
    EXPECT_EQ(four.coreCycles.size(), 4u);
    EXPECT_LT(four.cycles, one.cycles);
}

TEST(CoreSweep, PointsAndBaselines)
{
    ExperimentRunner runner;
    // Shrink the workload via a local suite copy: use runner directly
    // over the study API with small core counts.
    CoreSweepStudy study = runCoreSweep(
        {"ft"}, {"SRAM", "Hayakawa"}, {1, 2, 4}, runner);
    EXPECT_EQ(study.points.size(), 6u);
    const CoreSweepPoint &p1 = study.at("ft", "SRAM", 1);
    EXPECT_DOUBLE_EQ(p1.speedupVsBaseline, 1.0);
    const CoreSweepPoint &p4 = study.at("ft", "SRAM", 4);
    EXPECT_GT(p4.speedupVsBaseline, 1.2); // parallel scaling
    EXPECT_DEATH(study.at("ft", "SRAM", 32), "missing point");
}

TEST(CoreSweep, SingleThreadedWorkloadsSkipMulticore)
{
    ExperimentRunner runner;
    CoreSweepStudy study =
        runCoreSweep({"exchange2"}, {"SRAM"}, {1, 2}, runner);
    EXPECT_EQ(study.points.size(), 1u); // only 1-core point
}

TEST(CorrelationStudy, AiStudyShapes)
{
    ExperimentRunner runner;
    CorrelationStudy study = runCorrelationStudy(
        true, {"Jan", "Xue", "Hayakawa"},
        {CapacityMode::FixedCapacity, CapacityMode::FixedArea},
        runner, 0.1);
    EXPECT_EQ(study.workloads.size(), 3u);
    EXPECT_EQ(study.features.size(), 3u);
    // 3 techs x 2 modes.
    EXPECT_EQ(study.perTech.size(), 6u);
    for (const TechCorrelation &tc : study.perTech) {
        EXPECT_EQ(tc.dataset.workloads.size(), 3u);
        EXPECT_EQ(tc.result.featureNames.size(), 10u);
        for (double r : tc.result.energyCorr) {
            EXPECT_GE(r, -1.0);
            EXPECT_LE(r, 1.0);
        }
    }
}

TEST(CorrelationStudy, FeaturesMatchDirectCharacterization)
{
    ExperimentRunner runner;
    CorrelationStudy study = runCorrelationStudy(
        true, {"Jan"}, {CapacityMode::FixedCapacity}, runner, 0.1);
    // deepsjeng's feature row must match characterizing it directly
    // at the same scale.
    BenchmarkSpec deepsjeng = benchmark("deepsjeng");
    deepsjeng.gen.totalAccesses /= 10;
    auto traces = buildTraces(deepsjeng);
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    WorkloadFeatures direct = characterize(ptrs);
    ASSERT_EQ(study.workloads.front(), "deepsjeng");
    EXPECT_DOUBLE_EQ(study.features.front().reads.globalEntropy,
                     direct.reads.globalEntropy);
    EXPECT_EQ(study.features.front().writes.unique,
              direct.writes.unique);
}
