/**
 * @file
 * Tests for the released cell model library (paper Table II values).
 */

#include <gtest/gtest.h>

#include "nvm/model_library.hh"
#include "util/units.hh"

using namespace nvmcache;

TEST(ModelLibrary, TenCellsInTableOrder)
{
    const auto &cells = publishedCells();
    ASSERT_EQ(cells.size(), 10u);
    const char *order[] = {"Oh", "Chen", "Kang", "Close", "Chung",
                           "Jan", "Umeki", "Xue", "Hayakawa", "Zhang"};
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(cells[i].name, order[i]);
}

TEST(ModelLibrary, ClassBreakdown)
{
    EXPECT_EQ(cellsOfClass(NvmClass::PCRAM).size(), 4u);
    EXPECT_EQ(cellsOfClass(NvmClass::STTRAM).size(), 4u);
    EXPECT_EQ(cellsOfClass(NvmClass::RRAM).size(), 2u);
}

TEST(ModelLibrary, TableIIValueSpotChecks)
{
    const CellSpec &oh = publishedCell("Oh");
    EXPECT_DOUBLE_EQ(oh.processNode.get(), 120e-9);
    EXPECT_DOUBLE_EQ(oh.resetCurrent.get(), 600e-6);
    EXPECT_DOUBLE_EQ(oh.setPulse.get(), 180e-9);
    EXPECT_EQ(oh.year, 2005);

    const CellSpec &chung = publishedCell("Chung");
    EXPECT_DOUBLE_EQ(chung.readVoltage.get(), 0.65);
    EXPECT_DOUBLE_EQ(chung.cellSizeF2.get(), 14.0);
    EXPECT_DOUBLE_EQ(chung.resetEnergy.get(), 0.52e-12);

    const CellSpec &zhang = publishedCell("Zhang");
    EXPECT_DOUBLE_EQ(zhang.processNode.get(), 22e-9);
    EXPECT_DOUBLE_EQ(zhang.resetPulse.get(), 150e-9);
    EXPECT_DOUBLE_EQ(zhang.setVoltage.get(), 1.0);

    const CellSpec &xue = publishedCell("Xue");
    EXPECT_EQ(xue.bitsPerCell(), 2);
    const CellSpec &close = publishedCell("Close");
    EXPECT_EQ(close.bitsPerCell(), 2);
}

TEST(ModelLibrary, ProvenanceMarksMirrorTableII)
{
    // Dagger (H1) entries.
    EXPECT_EQ(publishedCell("Chung").readPower.prov,
              Provenance::H1Electrical);
    EXPECT_EQ(publishedCell("Umeki").cellSizeF2.prov,
              Provenance::H1Electrical);
    // Star entries.
    EXPECT_EQ(publishedCell("Oh").readCurrent.prov,
              Provenance::H3Similarity);
    EXPECT_EQ(publishedCell("Kang").setCurrent.prov,
              Provenance::H3Similarity);
    EXPECT_EQ(publishedCell("Hayakawa").setEnergy.prov,
              Provenance::H3Similarity);
    // Reported entries.
    EXPECT_EQ(publishedCell("Xue").setEnergy.prov, Provenance::Reported);
    EXPECT_EQ(publishedCell("Zhang").readPower.prov,
              Provenance::Reported);
}

TEST(ModelLibrary, PublishedCellsAreSimulatorReady)
{
    for (const CellSpec &c : publishedCells())
        EXPECT_TRUE(missingFields(c).empty()) << c.name;
}

TEST(ModelLibrary, RawCellsStripHeuristicValues)
{
    for (const CellSpec &c : rawCells()) {
        const CellField all[] = {
            CellField::ProcessNode, CellField::CellSizeF2,
            CellField::CellLevels, CellField::ReadVoltage,
            CellField::ReadPower, CellField::ReadEnergy,
            CellField::ResetCurrent, CellField::ResetVoltage,
            CellField::ResetPulse, CellField::ResetEnergy,
            CellField::SetCurrent, CellField::SetVoltage,
            CellField::SetPulse, CellField::SetEnergy,
        };
        for (CellField f : all) {
            if (c.field(f).known()) {
                EXPECT_EQ(c.field(f).prov, Provenance::Reported)
                    << c.name << " " << toString(f);
            }
        }
    }
}

TEST(ModelLibrary, RawXueIsAlreadyComplete)
{
    // Xue'16 reported everything; its raw spec needs no heuristics.
    for (const CellSpec &c : rawCells()) {
        if (c.name == "Xue") {
            EXPECT_TRUE(missingFields(c).empty());
        }
    }
}

TEST(ModelLibrary, RawHayakawaIsMostlyEmpty)
{
    for (const CellSpec &c : rawCells()) {
        if (c.name == "Hayakawa") {
            EXPECT_GE(missingFields(c).size(), 8u);
        }
    }
}

TEST(ModelLibrary, ArchetypesAreReportedOnlySeeds)
{
    ASSERT_EQ(archetypeSeeds().size(), 2u);
    for (const CellSpec &seed : archetypeSeeds()) {
        EXPECT_TRUE(missingFields(seed).empty()) << seed.name;
        EXPECT_NE(seed.name.find("archetype"), std::string::npos);
    }
}

TEST(ModelLibrary, SramBaseline)
{
    const CellSpec &sram = sramBaselineCell();
    EXPECT_EQ(sram.klass, NvmClass::SRAM);
    EXPECT_DOUBLE_EQ(sram.processNode.get(), 45e-9);
    EXPECT_TRUE(missingFields(sram).empty());
}

TEST(ModelLibrary, LookupByName)
{
    EXPECT_EQ(publishedCell("Jan").klass, NvmClass::STTRAM);
    EXPECT_EQ(publishedCell("SRAM").klass, NvmClass::SRAM);
}

TEST(ModelLibrary, YearsSpanADecade)
{
    int min_year = 3000, max_year = 0;
    for (const CellSpec &c : publishedCells()) {
        min_year = std::min(min_year, c.year);
        max_year = std::max(max_year, c.year);
    }
    EXPECT_EQ(min_year, 2005);
    EXPECT_EQ(max_year, 2016);
}
