/**
 * @file
 * Tests for binary trace file I/O (the NVMT format) and FileTrace.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "prism/metrics.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

using namespace nvmcache;

namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/nvmt_" + tag +
           ".nvmt";
}

GeneratorConfig
smallConfig()
{
    GeneratorConfig cfg;
    cfg.totalAccesses = 5000;
    cfg.loadFraction = 0.6;
    cfg.storeFraction = 0.3;
    StreamConfig s;
    s.kind = StreamConfig::Kind::Uniform;
    s.regionBytes = 1 << 20;
    cfg.loads.streams = {s};
    cfg.stores.streams = {s};
    StreamConfig code;
    code.kind = StreamConfig::Kind::Zipf;
    code.regionBytes = 64 << 10;
    code.zipfSkew = 0.8;
    cfg.ifetches.streams = {code};
    cfg.seed = 31;
    return cfg;
}

} // namespace

TEST(TraceIo, RoundTripPreservesEveryRecord)
{
    const std::string path = tempPath("roundtrip");
    SyntheticTrace source(smallConfig(), 0, 1);
    const std::uint64_t written = writeTraceFile(path, source);
    EXPECT_EQ(written, 5000u);

    FileTrace loaded = readTraceFile(path);
    ASSERT_EQ(loaded.size(), 5000u);

    source.reset();
    MemAccess a, b;
    while (source.next(a)) {
        ASSERT_TRUE(loaded.next(b));
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.nonMemInstrs, b.nonMemInstrs);
    }
    EXPECT_FALSE(loaded.next(b));
    std::remove(path.c_str());
}

TEST(TraceIo, FileTraceIsResettable)
{
    FileTrace trace({{0x100, AccessKind::Load, 2},
                     {0x200, AccessKind::Store, 0}});
    MemAccess a;
    EXPECT_TRUE(trace.next(a));
    EXPECT_TRUE(trace.next(a));
    EXPECT_FALSE(trace.next(a));
    trace.reset();
    EXPECT_TRUE(trace.next(a));
    EXPECT_EQ(a.addr, 0x100u);
    EXPECT_EQ(a.nonMemInstrs, 2u);
}

TEST(TraceIo, LoadedTraceCharacterizesLikeSource)
{
    const std::string path = tempPath("features");
    SyntheticTrace source(smallConfig(), 0, 1);
    writeTraceFile(path, source);
    FileTrace loaded = readTraceFile(path);

    std::vector<TraceSource *> src{&source}, dst{&loaded};
    WorkloadFeatures f_src = characterize(src);
    WorkloadFeatures f_dst = characterize(dst);
    EXPECT_DOUBLE_EQ(f_src.reads.globalEntropy,
                     f_dst.reads.globalEntropy);
    EXPECT_EQ(f_src.writes.unique, f_dst.writes.unique);
    EXPECT_EQ(f_src.reads.total, f_dst.reads.total);
    std::remove(path.c_str());
}

TEST(TraceIo, WriterResetsSourceForReuse)
{
    const std::string path = tempPath("reuse");
    SyntheticTrace source(smallConfig(), 0, 1);
    writeTraceFile(path, source);
    // The source must be fully replayable afterwards.
    MemAccess a;
    std::size_t n = 0;
    while (source.next(a))
        ++n;
    EXPECT_EQ(n, 5000u);
    std::remove(path.c_str());
}

namespace {

/** readTraceFile's runtime_error message for @p path. */
std::string
loadError(const std::string &path)
{
    try {
        readTraceFile(path);
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    ADD_FAILURE() << "readTraceFile(" << path << ") did not throw";
    return "";
}

/** Write a valid single-record trace and return its path. */
std::string
writeTinyTrace(const char *tag)
{
    const std::string path = tempPath(tag);
    FileTrace source({{0x40, AccessKind::Load, 1}});
    writeTraceFile(path, source);
    return path;
}

} // namespace

TEST(TraceIo, RejectsGarbageFile)
{
    const std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_NE(loadError(path).find("bad magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_NE(loadError("/nonexistent/dir/x.nvmt").find("cannot open"),
              std::string::npos);
}

TEST(TraceIo, RejectsUnsupportedVersion)
{
    const std::string path = writeTinyTrace("version");
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const std::uint32_t bogus = 99;
    ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0); // past the magic
    ASSERT_EQ(std::fwrite(&bogus, 1, sizeof(bogus), f), sizeof(bogus));
    std::fclose(f);
    const std::string msg = loadError(path);
    EXPECT_NE(msg.find("version 99"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedHeader)
{
    const std::string path = tempPath("shortheader");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NVMT", f); // magic only, no version/count
    std::fclose(f);
    EXPECT_NE(loadError(path).find("truncated"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedPayload)
{
    // A valid two-record trace cut mid-payload must be diagnosed
    // from the size check, naming both byte counts.
    const std::string path = tempPath("truncated");
    FileTrace source({{0x40, AccessKind::Load, 1},
                      {0x80, AccessKind::Store, 2}});
    writeTraceFile(path, source);
    ASSERT_EQ(::truncate(path.c_str(), 16 + 10 + 3), 0);
    const std::string msg = loadError(path);
    EXPECT_NE(msg.find("declares 2 records"), std::string::npos);
    EXPECT_NE(msg.find("13 payload bytes"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsOverstatedRecordCount)
{
    // An adversarial count (here the max u64) must be rejected by the
    // size check without attempting a giant allocation.
    const std::string path = writeTinyTrace("overcount");
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const std::uint64_t huge = ~std::uint64_t(0);
    ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0); // magic + version
    ASSERT_EQ(std::fwrite(&huge, 1, sizeof(huge), f), sizeof(huge));
    std::fclose(f);
    EXPECT_NE(loadError(path).find("corrupt"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, SaturatesOversizedGaps)
{
    const std::string path = tempPath("gap");
    FileTrace source({{0x40, AccessKind::Load, 1 << 20}});
    writeTraceFile(path, source);
    FileTrace loaded = readTraceFile(path);
    MemAccess a;
    ASSERT_TRUE(loaded.next(a));
    EXPECT_EQ(a.nonMemInstrs, 0xffffu);
    std::remove(path.c_str());
}
