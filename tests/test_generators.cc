/**
 * @file
 * Tests for the synthetic trace generators.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/generators.hh"

using namespace nvmcache;

namespace {

GeneratorConfig
baseConfig()
{
    GeneratorConfig cfg;
    cfg.totalAccesses = 20'000;
    cfg.loadFraction = 0.6;
    cfg.storeFraction = 0.4;
    cfg.meanGap = 2.0;
    StreamConfig s;
    s.kind = StreamConfig::Kind::Uniform;
    s.regionBytes = 1 << 20;
    s.weight = 1.0;
    cfg.loads.streams = {s};
    cfg.stores.streams = {s};
    cfg.seed = 5;
    return cfg;
}

std::vector<MemAccess>
drain(TraceSource &trace)
{
    std::vector<MemAccess> out;
    MemAccess a;
    while (trace.next(a))
        out.push_back(a);
    return out;
}

} // namespace

TEST(Generators, EmitsExactlyConfiguredLength)
{
    SyntheticTrace trace(baseConfig(), 0, 1);
    EXPECT_EQ(drain(trace).size(), 20'000u);
}

TEST(Generators, ThreadSplitConservesTotal)
{
    auto cfg = baseConfig();
    cfg.totalAccesses = 10'003; // odd on purpose
    auto traces = buildThreadTraces(cfg, 4);
    std::size_t total = 0;
    for (auto &t : traces)
        total += drain(*t).size();
    EXPECT_EQ(total, 10'003u);
}

TEST(Generators, DeterministicPerSeedAndThread)
{
    SyntheticTrace a(baseConfig(), 0, 2), b(baseConfig(), 0, 2);
    auto va = drain(a), vb = drain(b);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(va[i].addr, vb[i].addr);
        EXPECT_EQ(va[i].kind, vb[i].kind);
        EXPECT_EQ(va[i].nonMemInstrs, vb[i].nonMemInstrs);
    }
}

TEST(Generators, ResetReproducesSequence)
{
    SyntheticTrace trace(baseConfig(), 0, 1);
    auto first = drain(trace);
    trace.reset();
    auto second = drain(trace);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST(Generators, ResetRewindsWithoutRebuildingStreams)
{
    // Regression: reset() must rewind the existing streams, not
    // rebuild them — rebuilding re-runs stream construction (Zipf
    // tables, chase permutations) on every replay and shows up as
    // streamBuilds() climbing.
    SyntheticTrace trace(baseConfig(), 0, 1);
    ASSERT_EQ(trace.streamBuilds(), 1u);
    auto first = drain(trace);
    trace.reset();
    EXPECT_EQ(trace.streamBuilds(), 1u);
    auto second = drain(trace);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr);
        EXPECT_EQ(first[i].kind, second[i].kind);
        EXPECT_EQ(first[i].nonMemInstrs, second[i].nonMemInstrs);
    }

    // Reset mid-trace rewinds to the very beginning.
    trace.reset();
    MemAccess a;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(trace.next(a));
    trace.reset();
    auto third = drain(trace);
    ASSERT_EQ(first.size(), third.size());
    EXPECT_EQ(first.front().addr, third.front().addr);
    EXPECT_EQ(trace.streamBuilds(), 1u);
}

TEST(Generators, DifferentThreadsDifferentStreams)
{
    auto cfg = baseConfig();
    SyntheticTrace t0(cfg, 0, 2), t1(cfg, 1, 2);
    auto v0 = drain(t0), v1 = drain(t1);
    int same = 0;
    const std::size_t n = std::min(v0.size(), v1.size());
    for (std::size_t i = 0; i < n; ++i)
        same += v0[i].addr == v1[i].addr;
    EXPECT_LT(same, int(n / 10));
}

TEST(Generators, KindFractionsApproximatelyRespected)
{
    SyntheticTrace trace(baseConfig(), 0, 1);
    auto v = drain(trace);
    std::size_t stores = 0;
    for (const auto &a : v)
        stores += a.kind == AccessKind::Store;
    EXPECT_NEAR(double(stores) / v.size(), 0.4, 0.02);
}

TEST(Generators, EmptyIfetchMixDonatesToLoads)
{
    auto cfg = baseConfig();
    cfg.loadFraction = 0.5;
    cfg.storeFraction = 0.3; // remaining 0.2 would be ifetch
    SyntheticTrace trace(cfg, 0, 1);
    for (const auto &a : drain(trace))
        EXPECT_NE(a.kind, AccessKind::IFetch);
}

TEST(Generators, IfetchMixProducesIFetches)
{
    auto cfg = baseConfig();
    cfg.loadFraction = 0.5;
    cfg.storeFraction = 0.3;
    StreamConfig code;
    code.kind = StreamConfig::Kind::Zipf;
    code.regionBytes = 64 << 10;
    code.zipfSkew = 0.7;
    cfg.ifetches.streams = {code};
    SyntheticTrace trace(cfg, 0, 1);
    std::size_t fetches = 0;
    auto v = drain(trace);
    for (const auto &a : v)
        fetches += a.kind == AccessKind::IFetch;
    EXPECT_NEAR(double(fetches) / v.size(), 0.2, 0.02);
}

TEST(Generators, MeanGapApproximatelyRespected)
{
    SyntheticTrace trace(baseConfig(), 0, 1);
    double sum = 0.0;
    auto v = drain(trace);
    for (const auto &a : v)
        sum += a.nonMemInstrs;
    // exponentialGap(mean) - 1 has mean ~ mean - 0.5.
    EXPECT_NEAR(sum / v.size(), 1.5, 0.3);
}

TEST(Generators, UniformCoversRegion)
{
    auto cfg = baseConfig();
    cfg.loads.streams[0].regionBytes = 64 << 10; // 1024 lines
    cfg.stores.streams[0].regionBytes = 64 << 10;
    SyntheticTrace trace(cfg, 0, 1);
    std::set<std::uint64_t> lines;
    for (const auto &a : drain(trace))
        if (a.kind == AccessKind::Load)
            lines.insert(a.addr / 64);
    EXPECT_GT(lines.size(), 1000u);
    EXPECT_LE(lines.size(), 1024u);
}

TEST(Generators, SequentialStridesThroughRegion)
{
    auto cfg = baseConfig();
    cfg.loads.streams[0].kind = StreamConfig::Kind::Sequential;
    cfg.loads.streams[0].stride = 8;
    cfg.stores.streams.clear();
    cfg.storeFraction = 0.0;
    cfg.loadFraction = 1.0;
    SyntheticTrace trace(cfg, 0, 1);
    auto v = drain(trace);
    // Consecutive sequential draws advance by the stride.
    ASSERT_GE(v.size(), 3u);
    EXPECT_EQ(v[1].addr - v[0].addr, 8u);
    EXPECT_EQ(v[2].addr - v[1].addr, 8u);
}

TEST(Generators, ChaseVisitsManyDistinctLines)
{
    auto cfg = baseConfig();
    cfg.loads.streams[0].kind = StreamConfig::Kind::Chase;
    cfg.loads.streams[0].regionBytes = 4 << 20; // 65536 lines
    cfg.stores.streams.clear();
    cfg.storeFraction = 0.0;
    cfg.loadFraction = 1.0;
    cfg.totalAccesses = 60'000;
    SyntheticTrace trace(cfg, 0, 1);
    std::set<std::uint64_t> lines;
    for (const auto &a : drain(trace))
        lines.insert(a.addr / 64);
    // Full-period LCG: nearly every draw hits a fresh line.
    EXPECT_GT(lines.size(), 59'000u);
}

TEST(Generators, ZipfConcentratesTraffic)
{
    auto cfg = baseConfig();
    cfg.loads.streams[0].kind = StreamConfig::Kind::Zipf;
    cfg.loads.streams[0].zipfSkew = 1.2;
    cfg.stores.streams.clear();
    cfg.storeFraction = 0.0;
    cfg.loadFraction = 1.0;
    SyntheticTrace trace(cfg, 0, 1);
    std::map<std::uint64_t, int> counts;
    std::size_t total = 0;
    for (const auto &a : drain(trace)) {
        ++counts[a.addr / 64];
        ++total;
    }
    // The hottest line should hold a few percent of all traffic.
    int max_count = 0;
    for (const auto &[line, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, int(total / 50));
}

TEST(Generators, SharedStreamsOverlapAcrossThreads)
{
    auto cfg = baseConfig();
    cfg.loads.streams[0].shared = true;
    cfg.stores.streams[0].shared = true;
    SyntheticTrace t0(cfg, 0, 2), t1(cfg, 1, 2);
    std::set<std::uint64_t> lines0, lines1;
    for (const auto &a : drain(t0))
        lines0.insert(a.addr / 64);
    for (const auto &a : drain(t1))
        lines1.insert(a.addr / 64);
    std::size_t overlap = 0;
    for (auto l : lines0)
        overlap += lines1.count(l);
    // Two 10k-draw samples of a shared 16k-line region overlap
    // substantially; private regions (next test) overlap not at all.
    EXPECT_GT(overlap, lines0.size() / 5);
}

TEST(Generators, PrivateStreamsDisjointAcrossThreads)
{
    auto cfg = baseConfig(); // shared = false by default
    SyntheticTrace t0(cfg, 0, 2), t1(cfg, 1, 2);
    std::set<std::uint64_t> lines0;
    for (const auto &a : drain(t0))
        lines0.insert(a.addr / 64);
    for (const auto &a : drain(t1))
        EXPECT_EQ(lines0.count(a.addr / 64), 0u);
}

TEST(Generators, StreamRegionsDoNotOverlap)
{
    auto cfg = baseConfig();
    cfg.totalAccesses = 400'000;
    StreamConfig second = cfg.loads.streams[0];
    cfg.loads.streams.push_back(second);
    SyntheticTrace trace(cfg, 0, 1);
    // Two same-size uniform load streams must cover close to twice
    // one region's lines (disjoint bases), never alias onto one.
    std::set<std::uint64_t> lines;
    for (const auto &a : drain(trace))
        if (a.kind == AccessKind::Load)
            lines.insert(a.addr / 64);
    EXPECT_GT(lines.size(), (1u << 14) + 8000u); // > one region
    EXPECT_LE(lines.size(), 2u << 14);
}

TEST(Generators, RejectsBadThreadIds)
{
    EXPECT_DEATH(SyntheticTrace(baseConfig(), 2, 2), "thread");
    EXPECT_DEATH(SyntheticTrace(baseConfig(), 0, 0), "thread");
}
