/**
 * @file
 * The hierarchical stats registry: path hierarchy and reference
 * stability, snapshot/diff exactness (including the inverted Chan
 * combination for distributions), JSON escaping and a round-trip
 * parse of the exported tree, log-2 bucket edges, thread safety of
 * concurrent updates, and the report-level determinism contract — a
 * figure study's aggregated sim.* detail is identical at any
 * experiment-engine concurrency.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/study.hh"
#include "util/metrics.hh"

using namespace nvmcache;

namespace {

/** Heavily multi-threaded even on a 1-core CI machine. */
unsigned
parallelJobs()
{
    return std::max(8u, std::thread::hardware_concurrency());
}

// --- minimal JSON reader (objects / numbers only) --------------------
//
// Just enough to round-trip what toJson() emits: nested objects,
// arrays, numbers, and strings. Numbers are parsed with strtod, so a
// shortest-round-trip exporter must come back bit-identical.

struct JsonValue
{
    enum Kind { Object, Array, Number, String } kind = Number;
    double num = 0.0;
    std::string str;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;
};

struct JsonParser
{
    const std::string &s;
    std::size_t i = 0;

    void ws()
    {
        while (i < s.size() && std::isspace((unsigned char)s[i]))
            ++i;
    }

    char peek()
    {
        ws();
        EXPECT_LT(i, s.size());
        return s[i];
    }

    void expect(char c)
    {
        ASSERT_EQ(peek(), c) << "at offset " << i;
        ++i;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                EXPECT_LT(i, s.size());
                if (i >= s.size())
                    break;
                switch (s[i]) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                      // exporter only emits \u00xx control escapes
                      const int hi = std::stoi(s.substr(i + 1, 4),
                                               nullptr, 16);
                      out += char(hi);
                      i += 4;
                      break;
                  }
                  default: out += s[i]; break;
                }
                ++i;
            } else {
                out += s[i++];
            }
        }
        expect('"');
        return out;
    }

    JsonValue parse()
    {
        JsonValue v;
        const char c = peek();
        if (c == '{') {
            v.kind = JsonValue::Object;
            expect('{');
            if (peek() == '}') {
                expect('}');
                return v;
            }
            while (true) {
                const std::string key = parseString();
                expect(':');
                v.object[key] = parse();
                if (peek() == ',') {
                    expect(',');
                    continue;
                }
                break;
            }
            expect('}');
        } else if (c == '[') {
            v.kind = JsonValue::Array;
            expect('[');
            if (peek() == ']') {
                expect(']');
                return v;
            }
            while (true) {
                v.array.push_back(parse());
                if (peek() == ',') {
                    expect(',');
                    continue;
                }
                break;
            }
            expect(']');
        } else if (c == '"') {
            v.kind = JsonValue::String;
            v.str = parseString();
        } else {
            v.kind = JsonValue::Number;
            std::size_t used = 0;
            v.num = std::stod(s.substr(i), &used);
            EXPECT_GT(used, 0u);
            i += used;
        }
        return v;
    }
};

JsonValue
parseJson(const std::string &text)
{
    JsonParser p{text};
    JsonValue v = p.parse();
    p.ws();
    EXPECT_EQ(p.i, text.size()) << "trailing JSON garbage";
    return v;
}

const JsonValue &
at(const JsonValue &v, const std::string &path)
{
    const JsonValue *cur = &v;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        const std::string key =
            path.substr(start, dot == std::string::npos
                                   ? std::string::npos
                                   : dot - start);
        auto it = cur->object.find(key);
        EXPECT_NE(it, cur->object.end()) << "missing key " << key;
        cur = &it->second;
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return *cur;
}

} // namespace

// --- registry --------------------------------------------------------

TEST(MetricsRegistry, CreatesAndReusesStatsByPath)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("sim.llc.hits");
    c.inc(3);
    EXPECT_EQ(&reg.counter("sim.llc.hits"), &c); // stable address
    EXPECT_EQ(reg.counter("sim.llc.hits").get(), 3u);

    reg.gauge("sim.mpki").set(17.5);
    reg.distribution("sim.dram.queueDepth").add(2.0);
    EXPECT_EQ(reg.size(), 3u);

    StatsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries.at("sim.llc.hits").kind, StatKind::Counter);
    EXPECT_EQ(snap.entries.at("sim.llc.hits").scalar, 3.0);
    EXPECT_EQ(snap.entries.at("sim.mpki").scalar, 17.5);
    EXPECT_EQ(snap.entries.at("sim.dram.queueDepth").dist.count, 1u);
}

TEST(MetricsRegistry, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(MetricsRegistry, PhaseTimerRecordsIntoDistribution)
{
    MetricsRegistry reg;
    {
        PhaseTimer t("phase.test", reg);
        EXPECT_GE(t.elapsedSeconds(), 0.0);
    }
    const DistributionSnapshot d =
        reg.distribution("phase.test").snapshot();
    EXPECT_EQ(d.count, 1u);
    EXPECT_GE(d.sum, 0.0);
}

// --- distribution ----------------------------------------------------

TEST(MetricsDistribution, BucketEdges)
{
    // Bucket 0: everything below 1. Bucket k >= 1: [2^(k-1), 2^k).
    EXPECT_EQ(Distribution::bucketOf(0.0), 0);
    EXPECT_EQ(Distribution::bucketOf(0.5), 0);
    EXPECT_EQ(Distribution::bucketOf(-3.0), 0);
    EXPECT_EQ(Distribution::bucketOf(1.0), 1);
    EXPECT_EQ(Distribution::bucketOf(1.999), 1);
    EXPECT_EQ(Distribution::bucketOf(2.0), 2);
    EXPECT_EQ(Distribution::bucketOf(3.0), 2);
    EXPECT_EQ(Distribution::bucketOf(4.0), 3);
    EXPECT_EQ(Distribution::bucketOf(1024.0), 11);

    EXPECT_EQ(Distribution::bucketLow(0), 0.0);
    EXPECT_EQ(Distribution::bucketHigh(0), 1.0);
    EXPECT_EQ(Distribution::bucketLow(3), 4.0);
    EXPECT_EQ(Distribution::bucketHigh(3), 8.0);

    for (double x : {0.25, 1.0, 3.0, 100.0, 1e12}) {
        const int b = Distribution::bucketOf(x);
        EXPECT_GE(x, Distribution::bucketLow(b)) << x;
        EXPECT_LT(x, Distribution::bucketHigh(b)) << x;
    }
}

TEST(MetricsDistribution, MomentsMatchWelford)
{
    Distribution d;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.add(x);
    const DistributionSnapshot s = d.snapshot();
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.sum, 40.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.stdev(), 2.0); // population stdev
    EXPECT_EQ(s.minimum, 2.0);
    EXPECT_EQ(s.maximum, 9.0);
}

TEST(MetricsDistribution, MergeMatchesSingleStream)
{
    Distribution a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = double(i * i % 37);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    const DistributionSnapshot merged = a.snapshot();
    const DistributionSnapshot direct = all.snapshot();
    EXPECT_EQ(merged.count, direct.count);
    EXPECT_DOUBLE_EQ(merged.sum, direct.sum);
    EXPECT_NEAR(merged.mean, direct.mean, 1e-12);
    EXPECT_NEAR(merged.m2, direct.m2, 1e-9);
    EXPECT_EQ(merged.minimum, direct.minimum);
    EXPECT_EQ(merged.maximum, direct.maximum);
    EXPECT_EQ(merged.buckets, direct.buckets);
}

TEST(MetricsDistribution, ConcurrentAddsLoseNothing)
{
    MetricsRegistry reg;
    Distribution &d = reg.distribution("contended");
    Counter &c = reg.counter("contended.count");
    constexpr int kThreads = 8, kPer = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPer; ++i) {
                d.add(double(t));
                c.inc();
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(d.snapshot().count, std::uint64_t(kThreads * kPer));
    EXPECT_EQ(c.get(), std::uint64_t(kThreads * kPer));
}

// --- snapshots -------------------------------------------------------

TEST(MetricsSnapshot, DiffIsExactForCountersAndDistributions)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("runner.memo.hits");
    Distribution &d = reg.distribution("runner.simulateSeconds");
    c.inc(10);
    d.add(1.0);
    d.add(3.0);
    const StatsSnapshot before = reg.snapshot();

    c.inc(5);
    d.add(7.0);
    d.add(9.0);
    const StatsSnapshot delta = reg.snapshot().diff(before);

    EXPECT_EQ(delta.entries.at("runner.memo.hits").scalar, 5.0);
    const DistributionSnapshot &dd =
        delta.entries.at("runner.simulateSeconds").dist;
    EXPECT_EQ(dd.count, 2u);
    EXPECT_DOUBLE_EQ(dd.sum, 16.0);
    EXPECT_NEAR(dd.mean, 8.0, 1e-12);
    EXPECT_NEAR(dd.m2, 2.0, 1e-9); // var of {7,9} * 2
}

TEST(MetricsSnapshot, MergeSumAccumulates)
{
    StatsSnapshot a, b;
    a.setCounter("x.hits", 3);
    b.setCounter("x.hits", 4);
    a.setGauge("x.energy", 1.5);
    b.setGauge("x.energy", 2.5);
    a.mergeSum(b);
    EXPECT_EQ(a.entries.at("x.hits").scalar, 7.0);
    EXPECT_DOUBLE_EQ(a.entries.at("x.energy").scalar, 4.0);
}

TEST(MetricsSnapshot, WithPrefixRewritesEveryPath)
{
    StatsSnapshot s;
    s.setCounter("llc.hits", 1);
    s.setGauge("mpki", 2.0);
    const StatsSnapshot p = s.withPrefix("baseline");
    EXPECT_EQ(p.entries.count("baseline.llc.hits"), 1u);
    EXPECT_EQ(p.entries.count("baseline.mpki"), 1u);
    EXPECT_EQ(p.entries.size(), 2u);
}

// --- percentiles -----------------------------------------------------

TEST(MetricsPercentile, ExactForUniformStream)
{
    Distribution d;
    for (int i = 1; i <= 1000; ++i)
        d.add(double(i));
    const DistributionSnapshot s = d.snapshot();
    // Log-2 bucket interpolation: the estimate lands inside the
    // bucket holding the true rank, i.e. within a factor of 2.
    const double p50 = s.percentile(0.50);
    const double p95 = s.percentile(0.95);
    const double p99 = s.percentile(0.99);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_GE(p95, 512.0);
    EXPECT_LE(p95, 1000.0);
    EXPECT_GE(p99, p95);
    EXPECT_LE(p99, s.maximum);
    EXPECT_LE(p50, p95);
}

TEST(MetricsPercentile, ClampedToObservedRange)
{
    Distribution d;
    d.add(5.0);
    d.add(6.0);
    d.add(7.0);
    const DistributionSnapshot s = d.snapshot();
    // All three fall in bucket [4,8); interpolation must never
    // escape [min, max].
    for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
        EXPECT_GE(s.percentile(q), 5.0) << q;
        EXPECT_LE(s.percentile(q), 7.0) << q;
    }
    EXPECT_EQ(s.percentile(0.0), 5.0);
    EXPECT_EQ(s.percentile(1.0), 7.0);
}

TEST(MetricsPercentile, EmptyDistributionIsZero)
{
    const DistributionSnapshot s = Distribution().snapshot();
    EXPECT_EQ(s.percentile(0.5), 0.0);
}

TEST(MetricsPercentile, SingleValueIsThatValue)
{
    Distribution d;
    d.add(42.0);
    const DistributionSnapshot s = d.snapshot();
    EXPECT_EQ(s.percentile(0.5), 42.0);
    EXPECT_EQ(s.percentile(0.99), 42.0);
}

// --- exporters -------------------------------------------------------

TEST(MetricsJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(MetricsJson, ExportRoundTripsThroughAParser)
{
    MetricsRegistry reg;
    reg.counter("sim.llc.hits").inc(12345);
    reg.gauge("sim.mpki").set(16.4625);
    reg.gauge("sim.tiny").set(1.2345678901234567e-300);
    Distribution &d = reg.distribution("sim.dram.queueDepth");
    for (int i = 0; i < 10; ++i)
        d.add(double(i));

    const StatsSnapshot snap = reg.snapshot();
    const JsonValue root = parseJson(snap.toJson());

    EXPECT_EQ(at(root, "sim.llc.hits").num, 12345.0);
    EXPECT_EQ(at(root, "sim.mpki").num, 16.4625); // bit-identical
    EXPECT_EQ(at(root, "sim.tiny").num, 1.2345678901234567e-300);
    const JsonValue &dist = at(root, "sim.dram.queueDepth");
    EXPECT_EQ(at(dist, "count").num, 10.0);
    EXPECT_EQ(at(dist, "sum").num, 45.0);
    std::uint64_t bucket_total = 0;
    for (const JsonValue &b : at(dist, "buckets").array)
        bucket_total += std::uint64_t(at(b, "count").num);
    EXPECT_EQ(bucket_total, 10u);
}

TEST(MetricsJson, LeafAndSubtreeCollisionUsesSelfKey)
{
    StatsSnapshot s;
    s.setCounter("sim.llc", 7);        // leaf ...
    s.setCounter("sim.llc.hits", 3);   // ... and subtree
    const JsonValue root = parseJson(s.toJson());
    EXPECT_EQ(at(root, "sim.llc._self").num, 7.0);
    EXPECT_EQ(at(root, "sim.llc.hits").num, 3.0);
}

TEST(MetricsCsv, OneRowPerPathWithHeader)
{
    MetricsRegistry reg;
    reg.counter("a.hits").inc(2);
    reg.distribution("b.lat").add(4.0);
    const std::string csv = reg.snapshot().toCsv();
    EXPECT_NE(csv.find("path,kind,value,count,sum,min,max,mean,"
                       "stdev,p50,p95,p99"),
              std::string::npos);
    EXPECT_NE(csv.find("a.hits,counter,2"), std::string::npos);
    EXPECT_NE(csv.find("b.lat,distribution"), std::string::npos);
    // A single-value distribution's percentile columns are that value.
    EXPECT_NE(csv.find(",4,4,4\n"), std::string::npos);
}

TEST(MetricsJson, DistributionsCarryPercentiles)
{
    MetricsRegistry reg;
    Distribution &d = reg.distribution("sim.lat");
    for (int i = 1; i <= 100; ++i)
        d.add(double(i));
    const JsonValue root = parseJson(reg.snapshot().toJson());
    const JsonValue &dist = at(root, "sim.lat");
    const double p50 = at(dist, "p50").num;
    const double p95 = at(dist, "p95").num;
    const double p99 = at(dist, "p99").num;
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, 100.0);
}

TEST(MetricsPrometheus, ExposesCountersGaugesAndSummaries)
{
    MetricsRegistry reg;
    reg.counter("service.requests.run").inc(3);
    reg.gauge("service.uptimeSeconds").set(12.5);
    Distribution &d = reg.distribution("service.runSeconds");
    d.add(1.0);
    d.add(3.0);
    const std::string text = reg.snapshot().toPrometheus();

    EXPECT_NE(text.find("# TYPE nvmcache_service_requests_run "
                        "counter"),
              std::string::npos);
    EXPECT_NE(text.find("nvmcache_service_requests_run 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE nvmcache_service_uptimeSeconds gauge"),
              std::string::npos);
    EXPECT_NE(text.find("nvmcache_service_uptimeSeconds 12.5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE nvmcache_service_runSeconds summary"),
              std::string::npos);
    EXPECT_NE(
        text.find("nvmcache_service_runSeconds{quantile=\"0.5\"}"),
        std::string::npos);
    EXPECT_NE(text.find("nvmcache_service_runSeconds_sum 4"),
              std::string::npos);
    EXPECT_NE(text.find("nvmcache_service_runSeconds_count 2"),
              std::string::npos);
    // Exposition format: every line ends in '\n', no blank lines.
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(text.find("\n\n"), std::string::npos);
}

TEST(MetricsStatsFile, CreatesMissingParentDirectories)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "nvmcache_test_statsdir";
    fs::remove_all(root);
    const fs::path out = root / "a" / "b" / "stats.json";

    StatsSnapshot snap;
    snap.setCounter("x.hits", 1);
    writeStatsFile(out.string(), snap, StatsFormat::Json);

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << out;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("x"), std::string::npos);
    fs::remove_all(root);
}

// --- determinism -----------------------------------------------------

TEST(MetricsDeterminism, FigureStudyDetailAgreesAcrossJobCounts)
{
    // Mirrors test_parallel.cc's headline contract, extended to the
    // structured report: every simulation-derived entry (counters,
    // gauges, distributions) must be bit-identical between a serial
    // and a parallel study. Wall-clock phase.*/runner.* timings live
    // in the global registry, not in the per-run details, so they
    // cannot contaminate this comparison.
    ExperimentRunner serial;
    serial.setJobs(1);
    const StatsSnapshot a = aggregateSimStats(
        runFigureStudy(CapacityMode::FixedCapacity, serial, 0.01));

    ExperimentRunner parallel;
    parallel.setJobs(parallelJobs());
    const StatsSnapshot b = aggregateSimStats(
        runFigureStudy(CapacityMode::FixedCapacity, parallel, 0.01));

    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (const auto &[path, value] : a.entries) {
        ASSERT_EQ(b.entries.count(path), 1u) << path;
        EXPECT_TRUE(value == b.entries.at(path)) << path;
    }

    // And the report carries the advertised subsystems.
    EXPECT_EQ(a.entries.count("sim.llc.demandReads"), 1u);
    EXPECT_EQ(a.entries.count("sim.dram.queueDelay"), 1u);
    EXPECT_EQ(a.entries.count("sim.cores.cycleImbalance"), 1u);
}
