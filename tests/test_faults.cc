/**
 * @file
 * The fault-injection layer (sim/faults.hh) end to end: SECDED
 * probability math, retry-pulse cost arithmetic, the injector's
 * counter-based determinism contract, wear-driven retirement, the tag
 * array's dead-way handling, the LLC integration's cost accounting
 * and graceful capacity degradation, and bit-identity of every fault
 * statistic across experiment-engine job counts and between live and
 * replayed runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/study.hh"
#include "nvm/endurance.hh"
#include "nvsim/published.hh"
#include "sim/cache.hh"
#include "sim/faults.hh"
#include "sim/system.hh"
#include "workload/generators.hh"

using namespace nvmcache;

// --- SECDED probability math ----------------------------------------

TEST(FaultMath, ZeroRateIsAlwaysClean)
{
    const LineErrorProbs p = lineErrorProbs(0.0, 512);
    EXPECT_DOUBLE_EQ(p.pNone, 1.0);
}

TEST(FaultMath, CertainErrorClassifiesBySize)
{
    // Every bit flips: a 1-bit line is always correctable, a wider
    // line is always a multi-bit (uncorrectable) event.
    const LineErrorProbs one = lineErrorProbs(1.0, 1);
    EXPECT_DOUBLE_EQ(one.pNone, 0.0);
    EXPECT_DOUBLE_EQ(one.pSingleGivenError, 1.0);
    const LineErrorProbs wide = lineErrorProbs(1.0, 512);
    EXPECT_DOUBLE_EQ(wide.pNone, 0.0);
    EXPECT_DOUBLE_EQ(wide.pSingleGivenError, 0.0);
}

TEST(FaultMath, MatchesBinomialClosedForm)
{
    const double p = 0.01;
    const std::uint32_t bits = 8;
    const LineErrorProbs lp = lineErrorProbs(p, bits);
    const double pNone = std::pow(1.0 - p, double(bits));
    EXPECT_DOUBLE_EQ(lp.pNone, pNone);
    const double pSingle =
        double(bits) * p * std::pow(1.0 - p, double(bits - 1));
    EXPECT_DOUBLE_EQ(lp.pSingleGivenError, pSingle / (1.0 - pNone));
}

TEST(FaultMath, SingleBitDominatesAtRealisticRates)
{
    // At device-realistic rates, an erroneous 512-bit line almost
    // surely has exactly one flipped bit — SECDED is the right code.
    const LineErrorProbs p = lineErrorProbs(1e-7, 512);
    EXPECT_GT(p.pNone, 0.9999);
    EXPECT_GT(p.pSingleGivenError, 0.99);
}

TEST(FaultMath, RetryCostDoublesPerPulse)
{
    EXPECT_EQ(retryCostMultiplier(0), 1u);  // base pulse only
    EXPECT_EQ(retryCostMultiplier(1), 3u);  // 1 + 2
    EXPECT_EQ(retryCostMultiplier(2), 7u);  // 1 + 2 + 4
    EXPECT_EQ(retryCostMultiplier(3), 15u);
    EXPECT_EQ(retryCostMultiplier(10), 2047u);
}

// --- FaultInjector ---------------------------------------------------

namespace {

FaultConfig
injectorConfig(double berScale, double wearScale = 0.0,
               double wearLeveling = 1.0, std::uint32_t retries = 3)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.berScale = berScale;
    cfg.wearScale = wearScale;
    cfg.wearLevelingFactor = wearLeveling;
    cfg.maxWriteRetries = retries;
    return cfg;
}

bool
sameOutcome(const FaultInjector::WriteOutcome &a,
            const FaultInjector::WriteOutcome &b)
{
    return a.retries == b.retries && a.scrubbed == b.scrubbed &&
           a.eccRetired == b.eccRetired &&
           a.wearRetired == b.wearRetired;
}

} // namespace

TEST(FaultInjector, IdenticalHistoriesGiveIdenticalOutcomes)
{
    FaultInjector a(injectorConfig(64.0), NvmClass::STTRAM, 1024, 64);
    FaultInjector b(injectorConfig(64.0), NvmClass::STTRAM, 1024, 64);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t line = std::uint64_t(i * 7) % 1024;
        EXPECT_TRUE(sameOutcome(a.onArrayWrite(line),
                                b.onArrayWrite(line)));
    }
    EXPECT_EQ(a.stats().writeRetries, b.stats().writeRetries);
    EXPECT_EQ(a.stats().writeScrubs, b.stats().writeScrubs);
    EXPECT_EQ(a.stats().uncorrectable, b.stats().uncorrectable);
    EXPECT_GT(a.stats().writeRetries, 0u); // the knob actually bites
}

TEST(FaultInjector, PerLineStreamsAreOrderIndependent)
{
    // A line's k-th event must draw the same verdict no matter how
    // accesses to other lines interleave — the property that makes
    // the whole layer schedule-independent.
    FaultInjector grouped(injectorConfig(64.0), NvmClass::STTRAM, 16,
                          64);
    FaultInjector interleaved(injectorConfig(64.0), NvmClass::STTRAM,
                              16, 64);

    std::vector<FaultInjector::WriteOutcome> g0, g1, i0, i1;
    for (int k = 0; k < 200; ++k)
        g0.push_back(grouped.onArrayWrite(0));
    for (int k = 0; k < 200; ++k)
        g1.push_back(grouped.onArrayWrite(1));
    for (int k = 0; k < 200; ++k) {
        i0.push_back(interleaved.onArrayWrite(0));
        i1.push_back(interleaved.onArrayWrite(1));
    }
    for (int k = 0; k < 200; ++k) {
        EXPECT_TRUE(sameOutcome(g0[std::size_t(k)], i0[std::size_t(k)]));
        EXPECT_TRUE(sameOutcome(g1[std::size_t(k)], i1[std::size_t(k)]));
    }
    EXPECT_DOUBLE_EQ(grouped.lineWear(0), interleaved.lineWear(0));
    EXPECT_DOUBLE_EQ(grouped.lineWear(1), interleaved.lineWear(1));
}

TEST(FaultInjector, SramControlNeverFaults)
{
    // SRAM's raw error rates are zero; no berScale can manufacture
    // faults for the control rows.
    FaultInjector inj(injectorConfig(1e9), NvmClass::SRAM, 64, 64);
    for (int i = 0; i < 5000; ++i) {
        const FaultInjector::WriteOutcome w =
            inj.onArrayWrite(std::uint64_t(i) % 64);
        EXPECT_EQ(w.retries, 0u);
        EXPECT_FALSE(w.scrubbed);
        EXPECT_FALSE(w.retired());
        const FaultInjector::ReadOutcome r =
            inj.onRead(std::uint64_t(i) % 64);
        EXPECT_FALSE(r.scrubbed);
        EXPECT_FALSE(r.retired);
    }
    EXPECT_EQ(inj.stats().writeRetries, 0u);
    EXPECT_EQ(inj.stats().uncorrectable, 0u);
}

TEST(FaultInjector, WearRetiresAtTheEnduranceBound)
{
    // One attempt charges wearScale * wearLevelingFactor units, so a
    // wearScale equal to the class budget retires on the first write
    // and halving the leveling factor doubles the writes to failure.
    const double budget = writeEndurance(NvmClass::PCRAM);
    FaultInjector fast(injectorConfig(0.0, budget, 1.0),
                       NvmClass::PCRAM, 8, 64);
    EXPECT_DOUBLE_EQ(fast.lineWearBudget(), budget);
    EXPECT_TRUE(fast.onArrayWrite(3).wearRetired);
    EXPECT_EQ(fast.stats().wearRetirements, 1u);

    FaultInjector slow(injectorConfig(0.0, budget, 0.5),
                       NvmClass::PCRAM, 8, 64);
    EXPECT_FALSE(slow.onArrayWrite(3).wearRetired);
    EXPECT_DOUBLE_EQ(slow.lineWear(3), budget * 0.5);
    EXPECT_TRUE(slow.onArrayWrite(3).wearRetired);
    EXPECT_DOUBLE_EQ(slow.lineWear(5), 0.0); // untouched line
}

TEST(FaultInjector, ExhaustedRetriesClassifyTheResidue)
{
    // berScale pushed to per-bit certainty: every attempt fails, the
    // retry budget is spent exactly, and the residual 512-bit error is
    // always multi-bit, so the line is ECC-retired (and charged no
    // wear: it is leaving service).
    FaultConfig cfg = injectorConfig(1e6, 1e3, 1.0, 2);
    FaultInjector inj(cfg, NvmClass::STTRAM, 8, 64);
    const FaultInjector::WriteOutcome w = inj.onArrayWrite(2);
    EXPECT_EQ(w.retries, 2u);
    EXPECT_TRUE(w.eccRetired);
    EXPECT_FALSE(w.scrubbed);
    EXPECT_EQ(inj.stats().uncorrectable, 1u);
    EXPECT_EQ(inj.stats().eccRetirements, 1u);
    EXPECT_DOUBLE_EQ(inj.lineWear(2), 0.0);

    // Reads at certainty are likewise always uncorrectable.
    EXPECT_TRUE(inj.onRead(4).retired);
}

// --- tag-array retirement -------------------------------------------

namespace {

CacheGeometry
tinyGeometry()
{
    CacheGeometry g;
    g.capacityBytes = 1024; // 4 sets x 4 ways x 64 B
    g.associativity = 4;
    g.blockBytes = 64;
    return g;
}

/** Address of @p way -th distinct block mapping to @p set. */
std::uint64_t
setAddr(std::uint64_t set, std::uint64_t i)
{
    return (i * 4 + set) * 64; // 4 sets => stride 256 per tag
}

} // namespace

TEST(CacheRetirement, RetireReportsDirtinessOnce)
{
    SetAssocCache cache(tinyGeometry());
    const CacheAccessResult r = cache.access(setAddr(1, 0), true);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(cache.liveLines(), 16u);

    EXPECT_TRUE(cache.retireLine(r.lineIndex)); // dirty line
    EXPECT_EQ(cache.retiredLines(), 1u);
    EXPECT_EQ(cache.liveLines(), 15u);
    EXPECT_FALSE(cache.retireLine(r.lineIndex)); // idempotent
    EXPECT_EQ(cache.retiredLines(), 1u);

    // A clean line retires without a writeback obligation.
    const CacheAccessResult c = cache.access(setAddr(2, 0), false);
    EXPECT_FALSE(cache.retireLine(c.lineIndex));
    EXPECT_EQ(cache.retiredLines(), 2u);
}

TEST(CacheRetirement, RetiredWayIsNeverRefilled)
{
    SetAssocCache cache(tinyGeometry());
    const CacheAccessResult first = cache.access(setAddr(0, 0), false);
    cache.retireLine(first.lineIndex);

    // The retired line's block must not hit, and no future fill may
    // land on the dead way, even under heavy conflict pressure.
    EXPECT_FALSE(cache.access(setAddr(0, 0), false).hit);
    for (std::uint64_t i = 1; i < 40; ++i) {
        const CacheAccessResult r = cache.access(setAddr(0, i), true);
        EXPECT_FALSE(r.noWay);
        EXPECT_NE(r.lineIndex, first.lineIndex);
    }
    EXPECT_EQ(cache.liveLines(), 15u);
}

TEST(CacheRetirement, FullyRetiredSetDegeneratesToProbe)
{
    SetAssocCache cache(tinyGeometry());
    for (std::uint64_t way = 0; way < 4; ++way)
        EXPECT_FALSE(cache.retireLine(2 * 4 + way)); // set 2, invalid

    const CacheAccessResult r = cache.access(setAddr(2, 0), true);
    EXPECT_TRUE(r.noWay);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evictedValid);
    EXPECT_EQ(cache.liveLines(), 12u);

    // Other sets are unaffected.
    const CacheAccessResult ok = cache.access(setAddr(3, 0), true);
    EXPECT_FALSE(ok.noWay);
    EXPECT_TRUE(cache.probe(setAddr(3, 0)));
}

TEST(CacheRetirement, LiveLinesNeverIncrease)
{
    SetAssocCache cache(tinyGeometry());
    std::uint64_t prev = cache.liveLines();
    for (std::uint64_t i = 0; i < 16; ++i) {
        cache.retireLine(i);
        // Accesses between retirements must not resurrect capacity.
        cache.access(setAddr(i % 4, i), i % 2 == 0);
        const std::uint64_t now = cache.liveLines();
        EXPECT_LE(now, prev);
        prev = now;
    }
    EXPECT_EQ(cache.liveLines(), 0u);
    EXPECT_TRUE(cache.access(setAddr(0, 7), false).noWay);
}

// --- LLC integration ------------------------------------------------

namespace {

GeneratorConfig
faultWorkload(std::uint64_t accesses = 60'000)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = accesses;
    cfg.loadFraction = 0.55;
    cfg.storeFraction = 0.4; // write-heavy: exercises the write path
    cfg.meanGap = 2.0;
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 1 << 20;
    hot.zipfSkew = 0.9;
    hot.weight = 0.7;
    StreamConfig cold;
    cold.kind = StreamConfig::Kind::Uniform;
    cold.regionBytes = 16 << 20;
    cold.weight = 0.3;
    cfg.loads.streams = {hot, cold};
    cfg.stores.streams = {hot, cold};
    cfg.seed = 123;
    return cfg;
}

SimStats
runFaulty(const FaultConfig &faults, const LlcModel &model,
          std::uint64_t accesses = 60'000)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.llc.faults = faults;
    System system(cfg, model);
    auto traces = buildThreadTraces(faultWorkload(accesses), 1);
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    return system.run(ptrs);
}

double
detail(const SimStats &s, const std::string &path)
{
    auto it = s.detail.entries.find(path);
    return it == s.detail.entries.end() ? -1.0 : it->second.scalar;
}

} // namespace

TEST(LlcFaults, DisabledRunsExportNoFaultSection)
{
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);
    const SimStats off = runFaulty(FaultConfig{}, jan);
    for (const auto &entry : off.detail.entries)
        EXPECT_EQ(entry.first.find("sim.llc.faults"),
                  std::string::npos)
            << entry.first;

    FaultConfig on;
    on.enabled = true;
    const SimStats with = runFaulty(on, jan);
    EXPECT_GE(detail(with, "sim.llc.faults.injectedWrites"), 1.0);
    EXPECT_DOUBLE_EQ(
        detail(with, "sim.llc.faults.effectiveCapacityFraction"), 1.0);
}

TEST(LlcFaults, RetryAndScrubCostsAreAccounted)
{
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);
    FaultConfig faults;
    faults.enabled = true;
    faults.berScale = 8.0; // STTRAM p_w = 8e-4: frequent retries

    const SimStats clean = runFaulty(FaultConfig{}, jan);
    const SimStats faulty = runFaulty(faults, jan);

    EXPECT_GT(detail(faulty, "sim.llc.faults.writeRetries"), 0.0);
    EXPECT_GT(detail(faulty, "sim.llc.faults.retryCycles"), 0.0);
    // Escalated pulses and scrub rewrites cost real energy.
    EXPECT_GT(faulty.llc.writeEnergy, clean.llc.writeEnergy);

    // Scrub cycle accounting: every scrub charges exactly
    // cfg.scrubCycles, nothing else touches that counter.
    const double scrubs = detail(faulty, "sim.llc.faults.writeScrubs") +
                          detail(faulty, "sim.llc.faults.readScrubs");
    EXPECT_DOUBLE_EQ(detail(faulty, "sim.llc.faults.scrubCycles"),
                     scrubs * double(faults.scrubCycles));
}

TEST(LlcFaults, WearRetirementDegradesCapacityGracefully)
{
    // PCRAM with aggressively accelerated aging: lines wear out
    // mid-run, capacity shrinks, and the simulation still completes
    // with coherent statistics.
    const LlcModel &oh =
        publishedLlcModel("Oh", CapacityMode::FixedCapacity);
    FaultConfig faults;
    faults.enabled = true;
    faults.wearScale = 1e7; // ~3 writes to the PCRAM budget

    const SimStats s = runFaulty(faults, oh, 80'000);
    EXPECT_GT(detail(s, "sim.llc.faults.wearRetirements"), 0.0);
    const double frac =
        detail(s, "sim.llc.faults.effectiveCapacityFraction");
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 1.0);
    const double total = double(oh.capacityBytes / 64);
    EXPECT_DOUBLE_EQ(detail(s, "sim.llc.faults.retiredLines"),
                     total - detail(s, "sim.llc.faults.effectiveLines"));
    EXPECT_GT(s.cycles, 0.0);
    EXPECT_GT(s.llc.demandReads, 0u);

    // More wear per write strictly accelerates retirement.
    faults.wearScale = 3e7;
    const SimStats worse = runFaulty(faults, oh, 80'000);
    EXPECT_GE(detail(worse, "sim.llc.faults.wearRetirements"),
              detail(s, "sim.llc.faults.wearRetirements"));
}

// --- determinism contract -------------------------------------------

namespace {

ReliabilityConfig
smallReliabilityConfig()
{
    ReliabilityConfig cfg;
    cfg.workload = "lbm";
    cfg.traceScale = 0.02;
    cfg.berScales = {64.0};
    cfg.wearLevelingFactors = {0.5};
    cfg.wearScale = 1e6;
    return cfg;
}

} // namespace

TEST(FaultDeterminism, ReliabilityStudyBitIdenticalAcrossJobCounts)
{
    ReliabilityConfig serialCfg = smallReliabilityConfig();
    serialCfg.jobs = 1;
    ReliabilityConfig parallelCfg = smallReliabilityConfig();
    parallelCfg.jobs = 8;

    const ReliabilityStudy a = runReliabilityStudy(serialCfg);
    const ReliabilityStudy b = runReliabilityStudy(parallelCfg);

    ASSERT_EQ(a.points.size(), b.points.size());
    bool sawFaults = false;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const ReliabilityPoint &pa = a.points[i];
        const ReliabilityPoint &pb = b.points[i];
        EXPECT_EQ(pa.tech, pb.tech);
        EXPECT_EQ(pa.writeRetries, pb.writeRetries);
        EXPECT_EQ(pa.writeScrubs, pb.writeScrubs);
        EXPECT_EQ(pa.readScrubs, pb.readScrubs);
        EXPECT_EQ(pa.uncorrectable, pb.uncorrectable);
        EXPECT_EQ(pa.retiredLines, pb.retiredLines);
        EXPECT_EQ(pa.effectiveCapacityFraction,
                  pb.effectiveCapacityFraction);
        EXPECT_EQ(pa.speedup, pb.speedup);
        EXPECT_EQ(pa.normEnergy, pb.normEnergy);
        EXPECT_EQ(pa.stats.cycles, pb.stats.cycles);
        // The whole hierarchical report — every llc.faults.* counter
        // and distribution — bit for bit.
        EXPECT_TRUE(pa.stats.detail == pb.stats.detail) << pa.tech;
        sawFaults = sawFaults || pa.writeRetries > 0;
    }
    EXPECT_TRUE(sawFaults); // the grid point actually injected faults
    EXPECT_TRUE(aggregateSimStats(a) == aggregateSimStats(b));
}

TEST(FaultDeterminism, ReplayedRunMatchesLiveRun)
{
    // runOne goes through the PrivateTrace replay path; a live
    // System::run of the same sources with the same fault config must
    // produce the identical fault history.
    BenchmarkSpec spec = benchmark("lbm");
    spec.gen.totalAccesses = 120'000;
    const std::uint32_t threads = spec.defaultThreads;
    const LlcModel &jan =
        publishedLlcModel("Jan", CapacityMode::FixedCapacity);

    SystemConfig base;
    base.llc.faults.enabled = true;
    base.llc.faults.berScale = 8.0;
    base.llc.faults.wearScale = 1e6;

    ExperimentRunner runner(base);
    runner.setJobs(1);
    const SimStats replayed = runner.runOne(spec, jan);

    SystemConfig cfg = runner.baseConfig();
    cfg.numCores = threads;
    System system(cfg, jan);
    auto traces = buildThreadTraces(spec.gen, threads);
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(t.get());
    const SimStats live = system.run(ptrs);

    EXPECT_EQ(replayed.cycles, live.cycles);
    EXPECT_EQ(replayed.llc.writeEnergy, live.llc.writeEnergy);
    EXPECT_GT(detail(replayed, "sim.llc.faults.writeRetries"), 0.0);
    EXPECT_TRUE(replayed.detail == live.detail);
}

TEST(FaultDeterminism, ReliabilityStudyShapeAndControls)
{
    ReliabilityConfig cfg = smallReliabilityConfig();
    cfg.wearLevelingFactors = {1.0, 0.25};
    const ReliabilityStudy study = runReliabilityStudy(cfg);

    // 1 BER x 2 wear levels x (10 NVM + SRAM).
    ASSERT_EQ(study.points.size(), 22u);
    const ReliabilityPoint &sram = study.at("SRAM", 64.0, 1.0);
    EXPECT_EQ(sram.writeRetries, 0u);
    EXPECT_EQ(sram.uncorrectable, 0u);
    EXPECT_DOUBLE_EQ(sram.effectiveCapacityFraction, 1.0);
    EXPECT_DOUBLE_EQ(sram.speedup, 1.0);

    const ReliabilityPoint &tight = study.at("Oh", 64.0, 1.0);
    const ReliabilityPoint &leveled = study.at("Oh", 64.0, 0.25);
    EXPECT_EQ(tight.klass, NvmClass::PCRAM);
    EXPECT_GT(tight.lifetime.lifetimeYears, 0.0);
    // Better wear-leveling never shortens the projected lifetime.
    EXPECT_GE(leveled.lifetime.lifetimeYears,
              tight.lifetime.lifetimeYears);
}
