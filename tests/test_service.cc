/**
 * @file
 * Batch evaluation service tests: the JSON value model, the shared
 * flag parser, the study registry, the fault-keyed runner pool, the
 * wire protocol, and an in-process EvalServer exercised end to end
 * (byte-identity with the direct path, warm-request memoization,
 * coalescing, admission control, graceful drain, jobs-invariance).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <pthread.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/experiment.hh"
#include "core/study_registry.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "store/result_store.hh"
#include "util/args.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

/** Small-but-real compare request; scale keeps runs sub-second. */
StudyRequest
compareRequest(const std::string &scale,
               const std::string &workload = "lbm")
{
    StudyRequest req;
    req.kind = "compare";
    req.params["workload"] = workload;
    req.params["scale"] = scale;
    return req;
}

} // namespace

// --- JsonValue ------------------------------------------------------

TEST(Json, DumpIsCompactSortedAndDeterministic)
{
    JsonValue v = JsonValue::makeObject();
    v.set("zeta", JsonValue::makeNumber(1.5));
    v.set("alpha", JsonValue::makeString("x"));
    JsonValue arr = JsonValue::makeArray();
    arr.push(JsonValue::makeBool(true));
    arr.push(JsonValue::makeNull());
    v.set("list", std::move(arr));
    EXPECT_EQ(v.dump(),
              "{\"alpha\":\"x\",\"list\":[true,null],\"zeta\":1.5}");
    // Insertion order must not matter.
    JsonValue w = JsonValue::makeObject();
    JsonValue arr2 = JsonValue::makeArray();
    arr2.push(JsonValue::makeBool(true));
    arr2.push(JsonValue::makeNull());
    w.set("list", std::move(arr2));
    w.set("alpha", JsonValue::makeString("x"));
    w.set("zeta", JsonValue::makeNumber(1.5));
    EXPECT_EQ(v.dump(), w.dump());
}

TEST(Json, NumbersUseShortestRoundTrip)
{
    EXPECT_EQ(JsonValue::makeNumber(0.25).dump(), "0.25");
    EXPECT_EQ(JsonValue::makeNumber(3).dump(), "3");
    EXPECT_EQ(JsonValue::makeNumber(1e21).dump(), "1e+21");
    // Non-finite numbers are not representable in JSON.
    EXPECT_EQ(JsonValue::makeNumber(0.0 / 0.0).dump(), "null");
}

TEST(Json, ParseRoundTripsDump)
{
    const std::string text =
        "{\"a\":[1,2.5,\"s\"],\"b\":{\"c\":false,\"d\":null},"
        "\"e\":\"q\\\"uo\\nte\"}";
    const JsonValue v = JsonValue::parse(text);
    EXPECT_EQ(v.dump(), text);
    EXPECT_EQ(JsonValue::parse(v.dump()), v);
}

TEST(Json, ParseHandlesUnicodeEscapes)
{
    const JsonValue v = JsonValue::parse("\"\\u00e9\\u20ac\"");
    EXPECT_EQ(v.asString(), "\xc3\xa9\xe2\x82\xac"); // é €
}

TEST(Json, ParseErrorsCarryByteOffset)
{
    try {
        JsonValue::parse("{\"a\":}");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
    EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"),
                 std::runtime_error);
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

TEST(Json, DumpNeverContainsNewline)
{
    JsonValue v = JsonValue::makeObject();
    v.set("s", JsonValue::makeString("line1\nline2\r\ttab"));
    EXPECT_EQ(v.dump().find('\n'), std::string::npos);
    EXPECT_EQ(JsonValue::parse(v.dump()).at("s").asString(),
              "line1\nline2\r\ttab");
}

// --- ArgParser ------------------------------------------------------

TEST(Args, TypedFlagsAndPositionals)
{
    ArgParser p({"lbm", "--jobs", "4", "--fixed-area", "Oh",
                 "--scale", "0.5"});
    EXPECT_TRUE(p.flag("--fixed-area"));
    EXPECT_FALSE(p.flag("--fixed-area")); // consumed
    EXPECT_EQ(p.u32("--jobs", 0), 4u);
    EXPECT_DOUBLE_EQ(p.num("--scale", 1.0), 0.5);
    EXPECT_EQ(p.u32("--threads", 7), 7u); // absent -> fallback
    const auto pos = p.positionals();
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[0], "lbm");
    EXPECT_EQ(pos[1], "Oh");
    EXPECT_NO_THROW(p.rejectUnknown("test"));
}

TEST(Args, ListsAndStrings)
{
    ArgParser p({"--ber-scale", "1,8,64", "--techs", "Jan,Xue",
                 "--stats-out", "out.json"});
    const auto nums = p.numList("--ber-scale", {});
    ASSERT_EQ(nums.size(), 3u);
    EXPECT_DOUBLE_EQ(nums[1], 8.0);
    const auto strs = p.strList("--techs", {});
    ASSERT_EQ(strs.size(), 2u);
    EXPECT_EQ(strs[0], "Jan");
    EXPECT_EQ(p.str("--stats-out", ""), "out.json");
}

TEST(Args, DiagnosticsNameFlagAndToken)
{
    ArgParser bad({"--jobs", "many"});
    try {
        bad.u32("--jobs", 0);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--jobs"), std::string::npos);
        EXPECT_NE(msg.find("many"), std::string::npos);
    }
    ArgParser dangling({"--scale"});
    EXPECT_THROW(dangling.num("--scale", 1.0), std::runtime_error);
    ArgParser unknown({"--no-such-flag"});
    try {
        unknown.rejectUnknown("simulate");
        FAIL() << "expected rejection";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--no-such-flag"), std::string::npos);
        EXPECT_NE(msg.find("simulate"), std::string::npos);
    }
}

// --- study registry -------------------------------------------------

TEST(Registry, GlobalCarriesTheSixStudies)
{
    const StudyRegistry &r = StudyRegistry::global();
    for (const char *name : {"figure", "core-sweep", "correlation",
                             "reliability", "server-suite",
                             "compare"}) {
        EXPECT_TRUE(r.contains(name)) << name;
        EXPECT_NE(r.helpText().find(name), std::string::npos);
    }
    EXPECT_EQ(r.names().size(), 6u);
}

TEST(Registry, UnknownStudyListsValidNames)
{
    try {
        StudyRegistry::global().create("nope");
        FAIL() << "expected error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nope"), std::string::npos);
        EXPECT_NE(msg.find("compare"), std::string::npos);
    }
}

TEST(Registry, UnknownParameterListsValidKeys)
{
    auto study = StudyRegistry::global().create("compare");
    try {
        study->parse({{"wrkload", "lbm"}});
        FAIL() << "expected error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("wrkload"), std::string::npos);
        EXPECT_NE(msg.find("workload"), std::string::npos);
        EXPECT_NE(msg.find("compare"), std::string::npos);
    }
}

TEST(Registry, BadParameterValueNamesKey)
{
    auto study = StudyRegistry::global().create("figure");
    EXPECT_THROW(study->parse({{"mode", "sideways"}}),
                 std::runtime_error);
}

TEST(Registry, RequestJsonRoundTrip)
{
    const StudyRequest req = compareRequest("0.25");
    const StudyRequest back = StudyRequest::fromJson(req.toJson());
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.params, req.params);
    EXPECT_EQ(back.canonicalKey(), req.canonicalKey());
}

TEST(Registry, RequestAcceptsNumericAndBoolParams)
{
    const StudyRequest req = StudyRequest::fromJson(JsonValue::parse(
        "{\"study\":\"figure\",\"params\":{\"scale\":0.25}}"));
    EXPECT_EQ(req.params.at("scale"), "0.25");
    const StudyRequest b = StudyRequest::fromJson(JsonValue::parse(
        "{\"study\":\"correlation\",\"params\":{\"ai\":true}}"));
    EXPECT_EQ(b.params.at("ai"), "true");
}

TEST(Registry, CanonicalKeySeparatesKinds)
{
    EXPECT_NE(compareRequest("0.25").canonicalKey(),
              compareRequest("0.5").canonicalKey());
    StudyRequest a = compareRequest("0.25");
    StudyRequest b;
    b.kind = "figure";
    b.params = a.params;
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

// --- runner pool ----------------------------------------------------

TEST(RunnerPoolT, KeysRunnersByFaultConfig)
{
    RunnerPool pool;
    (void)pool.acquire();
    (void)pool.acquire();
    EXPECT_EQ(pool.size(), 1u);

    SystemConfig faulty;
    faulty.llc.faults.enabled = true;
    faulty.llc.faults.berScale = 8.0;
    (void)pool.acquire(faulty);
    EXPECT_EQ(pool.size(), 2u);
    (void)pool.acquire(faulty);
    EXPECT_EQ(pool.size(), 2u);
}

TEST(RunnerPoolT, AcquiredRunnersShareMemo)
{
    BenchmarkSpec spec = benchmark("lbm");
    spec.gen.totalAccesses = 50'000;
    const LlcModel llc =
        publishedLlcModel("Oh", CapacityMode::FixedCapacity);

    RunnerPool pool;
    ExperimentRunner first = pool.acquire();
    const SimStats cold = first.runOne(spec, llc);

    Counter &sims =
        MetricsRegistry::global().counter("runner.memo.simulations");
    const std::uint64_t before = sims.get();
    ExperimentRunner second = pool.acquire();
    const SimStats warm = second.runOne(spec, llc);
    EXPECT_EQ(sims.get(), before); // pure memo hit
    EXPECT_EQ(warm.detail, cold.detail);
}

// --- protocol -------------------------------------------------------

TEST(Protocol, OpDefaultsToRunWhenStudyPresent)
{
    const ServiceRequest req = parseServiceRequest(
        "{\"id\":\"r1\",\"study\":\"compare\","
        "\"params\":{\"scale\":\"0.1\"}}");
    EXPECT_EQ(req.op, "run");
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.study.kind, "compare");
    EXPECT_EQ(req.study.params.at("scale"), "0.1");
}

TEST(Protocol, MalformedRequestsThrow)
{
    EXPECT_THROW(parseServiceRequest("not json"), std::runtime_error);
    EXPECT_THROW(parseServiceRequest("[1,2]"), std::runtime_error);
    EXPECT_THROW(parseServiceRequest("{\"id\":\"x\"}"),
                 std::runtime_error); // no op, no study
}

TEST(Protocol, TraceIdAcceptsEchoedStringAndNumber)
{
    EXPECT_EQ(parseServiceRequest("{\"op\":\"trace\"}").traceId, 0u);
    EXPECT_EQ(parseServiceRequest(
                  "{\"op\":\"trace\",\"traceId\":\"t7\"}")
                  .traceId,
              7u);
    EXPECT_EQ(parseServiceRequest(
                  "{\"op\":\"trace\",\"traceId\":\"12\"}")
                  .traceId,
              12u);
    EXPECT_EQ(parseServiceRequest("{\"op\":\"trace\",\"traceId\":3}")
                  .traceId,
              3u);
    EXPECT_THROW(
        parseServiceRequest("{\"op\":\"trace\",\"traceId\":\"x9\"}"),
        std::runtime_error);
    EXPECT_THROW(
        parseServiceRequest("{\"op\":\"trace\",\"traceId\":\"t\"}"),
        std::runtime_error);
    EXPECT_THROW(
        parseServiceRequest("{\"op\":\"trace\",\"traceId\":true}"),
        std::runtime_error);
}

TEST(Protocol, ErrorResponseShape)
{
    const JsonValue v = errorResponse("r9", "boom", true);
    EXPECT_EQ(v.at("id").asString(), "r9");
    EXPECT_FALSE(v.at("ok").asBool());
    EXPECT_EQ(v.at("error").asString(), "boom");
    EXPECT_TRUE(v.boolOr("rejected", false));
    EXPECT_FALSE(errorResponse("", "e").find("rejected"));
}

TEST(Protocol, SnapshotToJsonFlattensAndFilters)
{
    StatsSnapshot snap;
    snap.setCounter("runner.memo.hits", 3);
    snap.setGauge("service.queueDepth", 2.0);
    Distribution d;
    d.add(1.0);
    d.add(3.0);
    snap.set("service.runSeconds", d.value());

    const JsonValue all = snapshotToJson(snap);
    EXPECT_DOUBLE_EQ(all.at("runner.memo.hits").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(all.at("service.queueDepth").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(all.at("service.runSeconds").at("count")
                         .asNumber(),
                     2.0);
    EXPECT_DOUBLE_EQ(all.at("service.runSeconds").at("sum").asNumber(),
                     4.0);

    const JsonValue runner = snapshotToJson(snap, "runner.");
    EXPECT_TRUE(runner.find("runner.memo.hits"));
    EXPECT_FALSE(runner.find("service.queueDepth"));
}

// --- the server, end to end -----------------------------------------

namespace {

/**
 * ServiceClient wrapper that matches responses to requests by id, so
 * tests can hold several requests in flight on one connection.
 */
struct TestClient
{
    ServiceClient client;
    std::map<std::string, JsonValue> pending;

    explicit TestClient(const std::string &socket) : client(socket) {}

    void
    sendRun(const StudyRequest &study, const std::string &id)
    {
        JsonValue req = study.toJson();
        req.set("op", JsonValue::makeString("run"));
        req.set("id", JsonValue::makeString(id));
        client.send(req);
    }

    void
    sendOp(const std::string &op, const std::string &id)
    {
        JsonValue req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString(op));
        req.set("id", JsonValue::makeString(id));
        client.send(req);
    }

    JsonValue
    waitFor(const std::string &id)
    {
        auto it = pending.find(id);
        if (it != pending.end()) {
            JsonValue v = it->second;
            pending.erase(it);
            return v;
        }
        for (;;) {
            JsonValue v = client.receive();
            if (v.stringOr("id", "") == id)
                return v;
            pending.emplace(v.stringOr("id", ""), std::move(v));
        }
    }

    /** Engine/service metric via the "metrics" op. */
    double
    metric(const std::string &path, int seq)
    {
        const std::string id = "metric-" + std::to_string(seq);
        sendOp("metrics", id);
        const JsonValue v = waitFor(id);
        return v.at("metrics").numberOr(path, 0.0);
    }
};

std::string
socketPathFor(const std::string &name)
{
    return ::testing::TempDir() + "nvmcache_" + name + ".sock";
}

/** Sub-second compare blocker: long enough to hold a 1-worker queue. */
StudyRequest
blockerRequest(const std::string &scale)
{
    return compareRequest(scale);
}

} // namespace

TEST(Service, PingStudiesAndMetricsOps)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("ops");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        ServiceClient client(cfg.socketPath);
        EXPECT_TRUE(client.ping());

        const JsonValue studies = client.studies();
        EXPECT_TRUE(studies.at("ok").asBool());
        EXPECT_EQ(studies.at("studies").items.size(), 6u);
        bool sawCompare = false, sawServerSuite = false;
        for (const JsonValue &s : studies.at("studies").items) {
            if (s.at("name").asString() == "compare") {
                sawCompare = true;
                EXPECT_EQ(s.at("defaults").at("workload").asString(),
                          "lbm");
            }
            sawServerSuite = sawServerSuite ||
                             s.at("name").asString() == "server-suite";
        }
        EXPECT_TRUE(sawCompare);
        EXPECT_TRUE(sawServerSuite);

        // The workload-registry listing mirrors "studies": every
        // kind, with the parameter schema for the server families.
        const JsonValue workloads = client.request(
            JsonValue::parse("{\"op\":\"workloads\"}"));
        EXPECT_TRUE(workloads.at("ok").asBool());
        bool sawKv = false, sawFixed = false;
        for (const JsonValue &w : workloads.at("workloads").items) {
            if (w.at("name").asString() == "kv") {
                sawKv = true;
                EXPECT_EQ(w.at("suite").asString(), "server");
                bool sawSkew = false;
                for (const JsonValue &p : w.at("params").items)
                    if (p.at("key").asString() == "skew") {
                        sawSkew = true;
                        EXPECT_EQ(p.at("default").asString(), "0.99");
                        EXPECT_EQ(p.at("type").asString(), "num");
                    }
                EXPECT_TRUE(sawSkew);
            }
            if (w.at("name").asString() == "lbm") {
                sawFixed = true;
                EXPECT_TRUE(w.at("params").items.empty());
            }
        }
        EXPECT_TRUE(sawKv);
        EXPECT_TRUE(sawFixed);

        const JsonValue metrics = client.metrics();
        EXPECT_TRUE(metrics.at("ok").asBool());
        EXPECT_TRUE(metrics.at("metrics").isObject());

        const JsonValue bad = client.request(JsonValue::parse(
            "{\"op\":\"run\",\"study\":\"compare\","
            "\"params\":{\"wrkload\":\"lbm\"}}"));
        EXPECT_FALSE(bad.at("ok").asBool());
        EXPECT_NE(bad.at("error").asString().find("wrkload"),
                  std::string::npos);
    }
    server.requestStop();
    server.wait();
}

TEST(Service, WarmRepeatIsMemoizedAndByteIdentical)
{
    const StudyRequest req = compareRequest("0.02");
    // The reference result through the direct (CLI `study`) path.
    const std::string direct = runStudyRequest(req).resultJson();

    ServeConfig cfg;
    cfg.socketPath = socketPathFor("warm");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendRun(req, "cold");
        const JsonValue cold = tc.waitFor("cold");
        ASSERT_TRUE(cold.at("ok").asBool()) << cold.dump();
        EXPECT_FALSE(cold.at("coalesced").asBool());
        // First execution actually simulates (NVM + SRAM baseline).
        EXPECT_GE(cold.at("metrics")
                      .numberOr("runner.memo.simulations", 0.0),
                  2.0);
        // Server result is byte-identical to the direct path.
        EXPECT_EQ(cold.at("result").dump(), direct);

        tc.sendRun(req, "hot");
        const JsonValue hot = tc.waitFor("hot");
        ASSERT_TRUE(hot.at("ok").asBool()) << hot.dump();
        // The warm request replays entirely from the pooled runner's
        // memo: zero fresh simulations, only hits.
        EXPECT_DOUBLE_EQ(hot.at("metrics")
                             .numberOr("runner.memo.simulations", 0.0),
                         0.0);
        EXPECT_GE(hot.at("metrics").numberOr("runner.memo.hits", 0.0),
                  2.0);
        EXPECT_EQ(hot.at("result").dump(), direct);
    }
    server.requestStop();
    server.wait();
}

TEST(Service, CoalescesIdenticalInflightRequests)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("coalesce");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        // Occupy the single worker, then make sure it has dequeued.
        tc.sendRun(blockerRequest("0.1"), "blocker");
        for (int i = 0; i < 2000; ++i) {
            if (tc.metric("service.enqueued", i) >= 1.0 &&
                tc.metric("service.queueDepth", i + 10000) == 0.0)
                break;
        }
        // Two identical requests: the first queues, the second must
        // attach to it instead of occupying another slot.
        const StudyRequest req = compareRequest("0.02");
        tc.sendRun(req, "first");
        tc.sendRun(req, "second");

        const JsonValue first = tc.waitFor("first");
        const JsonValue second = tc.waitFor("second");
        ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
        ASSERT_TRUE(second.at("ok").asBool()) << second.dump();
        EXPECT_FALSE(first.at("coalesced").asBool());
        EXPECT_TRUE(second.at("coalesced").asBool());
        EXPECT_EQ(first.at("result").dump(),
                  second.at("result").dump());
        // One shared execution: both responses carry the same
        // simulation count (the single cold run's), and the service
        // counted exactly one coalesce.
        EXPECT_EQ(first.at("metrics").dump(),
                  second.at("metrics").dump());
        EXPECT_GE(tc.metric("service.coalesced", 99001), 1.0);
        (void)tc.waitFor("blocker");
    }
    server.requestStop();
    server.wait();
}

TEST(Service, RejectsWhenQueueIsFull)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("full");
    cfg.execThreads = 1;
    cfg.queueDepth = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendRun(blockerRequest("0.1"), "blocker");
        for (int i = 0; i < 2000; ++i) {
            if (tc.metric("service.enqueued", i) >= 1.0 &&
                tc.metric("service.queueDepth", i + 10000) == 0.0)
                break;
        }
        // Distinct requests so coalescing cannot absorb them: one
        // fills the single queue slot, the next must be rejected.
        tc.sendRun(compareRequest("0.02"), "queued");
        tc.sendRun(compareRequest("0.03"), "rejected");

        const JsonValue rejected = tc.waitFor("rejected");
        EXPECT_FALSE(rejected.at("ok").asBool());
        EXPECT_TRUE(rejected.boolOr("rejected", false));
        EXPECT_NE(rejected.at("error").asString().find("queue full"),
                  std::string::npos);
        // Load shedding: the refusal tells the client how long a
        // polite retry should wait.
        EXPECT_GE(rejected.numberOr("retryAfterMs", -1.0), 50.0);

        const JsonValue queued = tc.waitFor("queued");
        EXPECT_TRUE(queued.at("ok").asBool()) << queued.dump();
        (void)tc.waitFor("blocker");
        EXPECT_GE(tc.metric("service.rejectedQueueFull", 99002), 1.0);
    }
    server.requestStop();
    server.wait();
}

TEST(Service, ShutdownDrainsQueuedWorkThenExits)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("drain");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendRun(compareRequest("0.04"), "a");
        tc.sendRun(compareRequest("0.05"), "b");
        tc.sendOp("shutdown", "bye");
        // The acknowledgement comes immediately; both queued studies
        // must still complete and respond before the server exits.
        EXPECT_TRUE(tc.waitFor("bye").at("ok").asBool());
        EXPECT_TRUE(tc.waitFor("a").at("ok").asBool());
        EXPECT_TRUE(tc.waitFor("b").at("ok").asBool());

        server.wait();
        EXPECT_FALSE(server.running());
        // The socket node is gone; new connections must fail.
        EXPECT_THROW(ServiceClient{cfg.socketPath},
                     std::runtime_error);
        // A request sent while draining is rejected with a reason.
        // (Connection is already torn down here, so just check the
        // counters saw both studies complete.)
        EXPECT_GE(MetricsRegistry::global()
                      .counter("service.completed")
                      .get(),
                  2u);
    }
}

TEST(Service, HealthAndStatsVerbsExposeLiveState)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("health");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendOp("ping", "p1");
        EXPECT_TRUE(tc.waitFor("p1").at("ok").asBool());

        tc.sendOp("health", "h1");
        const JsonValue h = tc.waitFor("h1");
        ASSERT_TRUE(h.at("ok").asBool()) << h.dump();
        const JsonValue &health = h.at("health");
        EXPECT_GE(health.at("uptimeSeconds").asNumber(), 0.0);
        EXPECT_EQ(health.at("queueDepth").asNumber(), 0.0);
        EXPECT_EQ(health.at("queueCapacity").asNumber(), 16.0);
        EXPECT_EQ(health.at("workers").asNumber(), 0.0);
        EXPECT_EQ(health.at("execThreads").asNumber(), 1.0);
        EXPECT_FALSE(health.at("draining").asBool());
        EXPECT_FALSE(health.at("tracing").asBool()); // default off
        // Per-verb request counters: the ping above and this health
        // request itself have both been counted.
        const JsonValue &reqs = health.at("requests");
        EXPECT_GE(reqs.numberOr("service.requests.ping", 0.0), 1.0);
        EXPECT_GE(reqs.numberOr("service.requests.health", 0.0), 1.0);

        tc.sendOp("stats", "s1");
        const JsonValue s = tc.waitFor("s1");
        ASSERT_TRUE(s.at("ok").asBool()) << s.dump();
        EXPECT_NE(s.at("contentType").asString().find("text/plain"),
                  std::string::npos);
        const std::string text = s.at("stats").asString();
        EXPECT_NE(text.find("# TYPE nvmcache_service_requests_ping "
                            "counter"),
                  std::string::npos);
        EXPECT_NE(text.find("nvmcache_service_uptimeSeconds"),
                  std::string::npos);

        // Unknown verbs are counted in their own bucket and fail.
        tc.sendOp("frobnicate", "u1");
        EXPECT_FALSE(tc.waitFor("u1").at("ok").asBool());
        tc.sendOp("health", "h2");
        EXPECT_GE(tc.waitFor("h2")
                      .at("health")
                      .at("requests")
                      .numberOr("service.requests.unknown", 0.0),
                  1.0);
    }
    server.requestStop();
    server.wait();
}

TEST(Service, TracedRunEchoesIdAndServesFilteredTrace)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("trace");
    cfg.execThreads = 1;
    cfg.trace = true;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendRun(compareRequest("0.02"), "r1");
        const JsonValue run = tc.waitFor("r1");
        ASSERT_TRUE(run.at("ok").asBool()) << run.dump();
        const std::string tag = run.at("traceId").asString();
        ASSERT_GT(tag.size(), 1u);
        EXPECT_EQ(tag[0], 't');

        // Filtered dump: only this request's events, which must
        // include its service.run span and the engine work under it.
        JsonValue req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString("trace"));
        req.set("id", JsonValue::makeString("t1"));
        req.set("traceId", JsonValue::makeString(tag));
        tc.client.send(req);
        const JsonValue traced = tc.waitFor("t1");
        ASSERT_TRUE(traced.at("ok").asBool()) << traced.dump();
        EXPECT_TRUE(traced.at("tracing").asBool());
        const JsonValue &evs = traced.at("trace").at("traceEvents");
        bool sawServiceRun = false, sawSimulate = false;
        for (const JsonValue &e : evs.items) {
            if (e.stringOr("name", "") == "service.run")
                sawServiceRun = true;
            if (e.stringOr("name", "") == "runner.simulate")
                sawSimulate = true;
            if (e.stringOr("ph", "") != "M")
                EXPECT_EQ(e.at("args").stringOr("trace", ""), tag)
                    << e.dump();
        }
        EXPECT_TRUE(sawServiceRun);
        EXPECT_TRUE(sawSimulate);

        // The unfiltered dump is a superset.
        tc.sendOp("trace", "t2");
        const JsonValue all = tc.waitFor("t2");
        EXPECT_GE(all.at("trace").at("traceEvents").items.size(),
                  evs.items.size());
    }
    server.requestStop();
    server.wait();
    setTracingEnabled(false);
    clearTraceEvents();
}

TEST(Service, ResultsAreByteIdenticalAcrossJobCounts)
{
    const StudyRequest req = compareRequest("0.02", "tonto");
    std::string results[2];
    const unsigned jobCounts[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        ServeConfig cfg;
        cfg.socketPath = socketPathFor("jobs" +
                                       std::to_string(jobCounts[i]));
        cfg.execThreads = 1;
        cfg.jobs = jobCounts[i];
        EvalServer server(cfg);
        server.start();
        {
            ServiceClient client(cfg.socketPath);
            const JsonValue response = client.run(req, "r");
            ASSERT_TRUE(response.at("ok").asBool())
                << response.dump();
            results[i] = response.at("result").dump();
        }
        server.requestStop();
        server.wait();
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_FALSE(results[0].empty());
}

// --- multi-worker shard dispatch ------------------------------------

namespace {

/** Fresh (wiped) store directory under the test tempdir. */
std::string
freshStoreDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "nvmcache_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Run @p req through a front server dispatching to @p workers
 * in-process worker servers over a fresh shared store, and return
 * the front's full response. All servers live in this process, so
 * they share the MetricsRegistry and the global ResultStore exactly
 * like forked workers share the store directory.
 */
JsonValue
runThroughFleet(const StudyRequest &req, unsigned workers,
                unsigned jobs, const std::string &tag)
{
    ResultStore::setGlobal(freshStoreDir("store_" + tag));

    std::vector<std::unique_ptr<EvalServer>> fleet;
    std::vector<std::string> sockets;
    for (unsigned i = 0; i < workers; ++i) {
        ServeConfig wcfg;
        wcfg.socketPath =
            socketPathFor(tag + "_w" + std::to_string(i));
        wcfg.execThreads = 1;
        wcfg.jobs = jobs;
        sockets.push_back(wcfg.socketPath);
        fleet.push_back(std::make_unique<EvalServer>(wcfg));
        fleet.back()->start();
    }

    ServeConfig cfg;
    cfg.socketPath = socketPathFor(tag + "_front");
    cfg.execThreads = 1;
    cfg.jobs = jobs;
    cfg.workerSockets = sockets;
    EvalServer front(cfg);
    front.start();

    JsonValue response;
    {
        ServiceClient client(cfg.socketPath);
        response = client.run(req, "r");
    }
    front.requestStop();
    front.wait();
    for (auto &w : fleet) {
        w->requestStop();
        w->wait();
    }
    ResultStore::setGlobal("");
    return response;
}

} // namespace

TEST(WorkerShard, MergedCompareIsByteIdenticalAtAnyFleetShape)
{
    const StudyRequest req = compareRequest("0.02");
    const std::string reference = runStudyRequest(req).resultJson();

    for (unsigned workers : {1u, 2u}) {
        for (unsigned jobs : {1u, 2u}) {
            const std::string tag = "ws" + std::to_string(workers) +
                                    "j" + std::to_string(jobs);
            const JsonValue response =
                runThroughFleet(req, workers, jobs, tag);
            ASSERT_TRUE(response.boolOr("ok", false))
                << response.dump();
            EXPECT_EQ(response.at("result").dump(), reference)
                << "workers=" << workers << " jobs=" << jobs;
            // The front's local pass replayed entirely from the
            // worker-primed store: zero fresh simulations, only
            // disk hits.
            const JsonValue &metrics = response.at("metrics");
            EXPECT_DOUBLE_EQ(
                metrics.numberOr("runner.memo.simulations", 0.0), 0.0)
                << metrics.dump();
            EXPECT_GE(metrics.numberOr("runner.store.hits", 0.0), 2.0)
                << metrics.dump();
            // The fleet actually carried the shards.
            EXPECT_GE(MetricsRegistry::global()
                          .counter("service.worker.completed")
                          .get(),
                      1u);
        }
    }
}

TEST(WorkerShard, ReliabilityGridShardsAcrossWorkers)
{
    StudyRequest req;
    req.kind = "reliability";
    req.params["workload"] = "lbm";
    req.params["scale"] = "0.02";
    req.params["ber-scale"] = "1,4";
    req.params["wear-leveling"] = "1";

    const std::string reference = runStudyRequest(req).resultJson();
    const JsonValue response =
        runThroughFleet(req, 2, 1, "wsrel");
    ASSERT_TRUE(response.boolOr("ok", false)) << response.dump();
    EXPECT_EQ(response.at("result").dump(), reference);
    EXPECT_DOUBLE_EQ(response.at("metrics")
                         .numberOr("runner.memo.simulations", 0.0),
                     0.0);
}

// --- failure handling: deadlines, timeouts, retries, recovery --------

TEST(Protocol, RunRequestsCarryRelativeDeadlines)
{
    const ServiceRequest req = parseServiceRequest(
        "{\"op\":\"run\",\"study\":\"compare\",\"deadlineMs\":250}");
    EXPECT_DOUBLE_EQ(req.deadlineMs, 250.0);

    // Absent means none.
    EXPECT_DOUBLE_EQ(parseServiceRequest(
                         "{\"op\":\"run\",\"study\":\"compare\"}")
                         .deadlineMs,
                     0.0);

    // Negative or non-numeric deadlines are malformed, not ignored.
    EXPECT_THROW(parseServiceRequest("{\"op\":\"run\",\"study\":"
                                     "\"compare\",\"deadlineMs\":-5}"),
                 std::runtime_error);
    EXPECT_THROW(
        parseServiceRequest("{\"op\":\"run\",\"study\":\"compare\","
                            "\"deadlineMs\":\"soon\"}"),
        std::runtime_error);
}

TEST(Protocol, ErrorResponsesCarryOptionalRetryHint)
{
    const JsonValue hinted = errorResponse("r1", "queue full", true, 250);
    EXPECT_TRUE(hinted.boolOr("rejected", false));
    EXPECT_DOUBLE_EQ(hinted.numberOr("retryAfterMs", -1.0), 250.0);
    // A negative hint is omitted entirely, not serialized as -1.
    EXPECT_FALSE(errorResponse("r1", "bad study").find("retryAfterMs"));
}

TEST(Protocol, LineReaderDistinguishesTimeoutFromEof)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    LineReader reader(fds[1]);
    std::string line;

    // Silent peer: expiry, flagged as a timeout.
    EXPECT_FALSE(reader.readLine(line, 50));
    EXPECT_TRUE(reader.timedOut());

    // Data arrives: the same reader recovers.
    ASSERT_TRUE(writeLine(fds[0], "hello"));
    ASSERT_TRUE(reader.readLine(line, 1000));
    EXPECT_EQ(line, "hello");
    EXPECT_FALSE(reader.timedOut());

    // Peer closes: EOF, explicitly not a timeout.
    ::close(fds[0]);
    EXPECT_FALSE(reader.readLine(line, 1000));
    EXPECT_FALSE(reader.timedOut());
    ::close(fds[1]);
}

namespace {
void
ignoreSignal(int)
{
}
} // namespace

TEST(Protocol, SignalDuringBlockedReadIsNotEof)
{
    // Regression for the EINTR audit: a signal delivered to a thread
    // blocked in readLine must restart the read, not report EOF.
    struct sigaction sa = {};
    sa.sa_handler = ignoreSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // deliberately no SA_RESTART
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string line;
    bool got = false;
    std::thread blocked([&] {
        LineReader reader(fds[1]);
        got = reader.readLine(line);
    });

    // Let the reader block, interrupt it twice, then deliver a line.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(pthread_kill(blocked.native_handle(), SIGUSR1), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(pthread_kill(blocked.native_handle(), SIGUSR1), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(writeLine(fds[0], "survived"));
    blocked.join();

    EXPECT_TRUE(got);
    EXPECT_EQ(line, "survived");
    ::close(fds[0]);
    ::close(fds[1]);
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(Service, QueuedRunPastItsDeadlineIsRejectedNotRun)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("deadline");
    cfg.execThreads = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendRun(blockerRequest("0.1"), "blocker");
        for (int i = 0; i < 2000; ++i) {
            if (tc.metric("service.enqueued", i) >= 1.0 &&
                tc.metric("service.queueDepth", i + 10000) == 0.0)
                break;
        }
        // A distinct request with a 1 ms deadline: it expires while
        // the blocker holds the only exec thread, so the server must
        // reject it at dequeue instead of running stale work.
        JsonValue doomed = compareRequest("0.03").toJson();
        doomed.set("op", JsonValue::makeString("run"));
        doomed.set("id", JsonValue::makeString("doomed"));
        doomed.set("deadlineMs", JsonValue::makeNumber(1));
        tc.client.send(doomed);

        const JsonValue rejected = tc.waitFor("doomed");
        EXPECT_FALSE(rejected.at("ok").asBool()) << rejected.dump();
        EXPECT_TRUE(rejected.boolOr("rejected", false));
        EXPECT_NE(rejected.at("error").asString().find(
                      "deadlineMs expired"),
                  std::string::npos)
            << rejected.dump();

        EXPECT_TRUE(tc.waitFor("blocker").at("ok").asBool());
        EXPECT_GE(tc.metric("service.deadlineExpired", 99100), 1.0);
        // The expired run never executed: it was skipped wholesale.
        EXPECT_GE(tc.metric("service.deadlineSkipped", 99101), 1.0);
    }
    server.requestStop();
    server.wait();
}

TEST(Service, ClientTimeoutNamesTheKnobThatFired)
{
    // A bound-and-listening socket whose owner never accepts or
    // responds: connect() succeeds via the backlog, then the daemon
    // stays silent forever.
    const std::string path = socketPathFor("mute");
    ::unlink(path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(fd, 4), 0);

    ClientConfig ccfg;
    ccfg.timeoutMs = 100;
    ServiceClient client(path, ccfg);
    try {
        client.ping();
        FAIL() << "expected a timeout";
    } catch (const std::runtime_error &e) {
        // The diagnostic names the CLI knob and the socket.
        EXPECT_NE(std::string(e.what()).find("--timeout-ms"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << e.what();
    }
    ::close(fd);
    ::unlink(path.c_str());
}

TEST(Service, RunWithRetrySurvivesLateDaemonAndExhaustsHonestly)
{
    const std::string path = socketPathFor("late");
    ::unlink(path.c_str());

    // Exhaustion first: no daemon, small budget. The error summarizes
    // every attempt and names --retries.
    ClientConfig ccfg;
    ccfg.timeoutMs = 200;
    ccfg.retries = 1;
    ccfg.backoffBaseMs = 10;
    ccfg.backoffMaxMs = 20;
    try {
        runWithRetry(path, compareRequest("0.02"), ccfg, "nobody");
        FAIL() << "expected exhaustion";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--retries"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("2 attempt"),
                  std::string::npos)
            << e.what();
    }

    // Now the daemon appears mid-retry: the budgeted client wins.
    const double retriesBefore =
        MetricsRegistry::global().counter("client.retries").get();
    ServeConfig cfg;
    cfg.socketPath = path;
    cfg.execThreads = 1;
    EvalServer server(cfg);
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        server.start();
    });
    ccfg.retries = 20;
    ccfg.timeoutMs = 10000;
    ccfg.backoffBaseMs = 50;
    ccfg.backoffMaxMs = 200;
    const JsonValue response =
        runWithRetry(path, compareRequest("0.02"), ccfg, "patient");
    late.join();
    ASSERT_TRUE(response.boolOr("ok", false)) << response.dump();
    EXPECT_GT(
        MetricsRegistry::global().counter("client.retries").get(),
        retriesBefore);
    server.requestStop();
    server.wait();
}

TEST(Service, HealthStateTracksLoadAndDrain)
{
    ServeConfig cfg;
    cfg.socketPath = socketPathFor("hstate");
    cfg.execThreads = 1;
    cfg.queueDepth = 1;
    EvalServer server(cfg);
    server.start();
    {
        TestClient tc(cfg.socketPath);
        tc.sendOp("health", "h-idle");
        EXPECT_EQ(tc.waitFor("h-idle").at("health").at("state")
                      .asString(),
                  "ok");

        // Saturate: one running, one filling the only queue slot.
        tc.sendRun(blockerRequest("0.1"), "blocker");
        for (int i = 0; i < 2000; ++i) {
            if (tc.metric("service.enqueued", i) >= 1.0 &&
                tc.metric("service.queueDepth", i + 10000) == 0.0)
                break;
        }
        tc.sendRun(compareRequest("0.05"), "queued");
        tc.sendOp("health", "h-busy");
        EXPECT_EQ(tc.waitFor("h-busy").at("health").at("state")
                      .asString(),
                  "degraded");

        // Probe the draining state while the blocker still holds the
        // exec thread, so the connection outlives the probe.
        tc.sendOp("shutdown", "bye");
        EXPECT_TRUE(tc.waitFor("bye").at("ok").asBool());
        tc.sendOp("health", "h-drain");
        EXPECT_EQ(tc.waitFor("h-drain").at("health").at("state")
                      .asString(),
                  "draining");

        EXPECT_TRUE(tc.waitFor("queued").at("ok").asBool());
        EXPECT_TRUE(tc.waitFor("blocker").at("ok").asBool());
    }
    server.wait();
}

TEST(Service, ResumesJournaledInflightRunsAfterRestart)
{
    // Simulate a front daemon that died with a run in flight: its
    // journal survives, and the next daemon finishes the work without
    // being asked again.
    const std::string dir =
        ::testing::TempDir() + "nvmcache_journal_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string journal = dir + "/inflight.v1.json";
    {
        JsonValue doc = JsonValue::makeObject();
        doc.set("version", JsonValue::makeNumber(1));
        JsonValue inflight = JsonValue::makeArray();
        inflight.items.push_back(compareRequest("0.02").toJson());
        doc.set("inflight", inflight);
        std::ofstream out(journal);
        out << doc.dump() << "\n";
    }

    const double resumedBefore =
        MetricsRegistry::global().counter("service.resumed").get();
    const double completedBefore =
        MetricsRegistry::global().counter("service.completed").get();

    ServeConfig cfg;
    cfg.socketPath = socketPathFor("resume");
    cfg.execThreads = 1;
    cfg.journalPath = journal;
    EvalServer server(cfg);
    server.start();

    EXPECT_EQ(MetricsRegistry::global()
                      .counter("service.resumed")
                      .get() -
                  resumedBefore,
              1.0);
    // The resumed run completes with no client attached...
    for (int i = 0; i < 500; ++i) {
        if (MetricsRegistry::global()
                .counter("service.completed")
                .get() > completedBefore)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GT(
        MetricsRegistry::global().counter("service.completed").get(),
        completedBefore);
    // ...and the journal is rewritten empty: nothing left to resume.
    for (int i = 0; i < 100; ++i) {
        std::ifstream in(journal);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (text.find("\"inflight\":[]") != std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    {
        std::ifstream in(journal);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_NE(text.find("\"inflight\":[]"), std::string::npos)
            << text;
    }
    server.requestStop();
    server.wait();
}
