/**
 * @file
 * Tests for the WorkloadRegistry redesign: spec-string resolution and
 * canonicalization, parameterized server families (kv / phased /
 * tenants), runKey sensitivity to every workload parameter, warm-up
 * exclusion, per-tenant statistics, and bit-identity of the new
 * families across jobs and shard counts.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "nvsim/published.hh"
#include "prism/metrics.hh"
#include "workload/generators.hh"
#include "workload/suite.hh"
#include "workload/workload_registry.hh"

using namespace nvmcache;

namespace {

const LlcModel &
sram()
{
    return publishedLlcModel("SRAM", CapacityMode::FixedCapacity);
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.llc.demandReads, b.llc.demandReads);
    EXPECT_EQ(a.llc.demandMisses, b.llc.demandMisses);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.llcLeakageEnergy, b.llcLeakageEnergy);
    EXPECT_EQ(a.llcDynamicEnergy, b.llcDynamicEnergy);
    EXPECT_TRUE(a.detail == b.detail);
}

std::uint64_t
detailCounter(const StatsSnapshot &snap, const std::string &path)
{
    for (const auto &[p, v] : snap.entries)
        if (p == path)
            return std::uint64_t(v.scalar);
    ADD_FAILURE() << "missing stats entry " << path;
    return 0;
}

bool
hasEntryWithPrefix(const StatsSnapshot &snap, const std::string &prefix)
{
    for (const auto &[p, v] : snap.entries) {
        (void)v;
        if (p.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

} // namespace

// --- resolution and canonicalization --------------------------------

TEST(WorkloadRegistry, EveryTableVWorkloadIsRegistered)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    for (const BenchmarkSpec &b : benchmarkSuite()) {
        ASSERT_TRUE(reg.contains(b.name)) << b.name;
        // A fixed kind resolves to the suite's spec unchanged.
        const BenchmarkSpec &r = reg.resolve(b.name);
        EXPECT_EQ(r.name, b.name);
        EXPECT_EQ(r.suite, b.suite);
        EXPECT_EQ(r.defaultThreads, b.defaultThreads);
    }
    for (const BenchmarkSpec &b : extraBenchmarks())
        EXPECT_TRUE(reg.contains(b.name)) << b.name;
}

TEST(WorkloadRegistry, ServerFamiliesAreRegistered)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    for (const char *kind : {"kv", "phased", "tenants"}) {
        ASSERT_TRUE(reg.contains(kind)) << kind;
        EXPECT_EQ(reg.kind(kind).suite, "server");
        EXPECT_FALSE(reg.kind(kind).params.empty());
    }
}

TEST(WorkloadRegistry, EquivalentSpellingsInternIdentically)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    // "64M" and its digit spelling are the same canonical value, so
    // both resolve to the identical interned spec object.
    const BenchmarkSpec &a = reg.resolve("kv:keys=64M");
    const BenchmarkSpec &b = reg.resolve("kv:keys=67108864");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.name, "kv:keys=64M");

    // Overrides equal to the default canonicalize away entirely.
    const BenchmarkSpec &c = reg.resolve("kv");
    const BenchmarkSpec &d = reg.resolve("kv:skew=0.99,readRatio=0.95");
    EXPECT_EQ(&c, &d);
    EXPECT_EQ(c.name, "kv");
}

TEST(WorkloadRegistry, CanonicalNameSortsAndNormalizes)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    EXPECT_EQ(reg.canonicalName("kv", {{"skew", "1.20"},
                                       {"keys", "1024"}}),
              "kv:keys=1K,skew=1.2");
    EXPECT_EQ(reg.canonicalName("tenants", {{"n", "2"}}),
              "tenants:n=2");
}

TEST(WorkloadRegistry, ListValuedParamsKeepTheirCommas)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    // A comma-token without '=' continues the previous value, so
    // list-typed parameters parse inside the flat spec string.
    const BenchmarkSpec &a =
        reg.resolve("phased:readRatios=0.9,0.6,warm=0.1");
    EXPECT_EQ(a.name, "phased:readRatios=0.9,0.6,warm=0.1");
    ASSERT_EQ(a.gen.phases.size(), 2u);
    EXPECT_DOUBLE_EQ(a.gen.phases[0].loadFraction, 0.9);
    EXPECT_DOUBLE_EQ(a.gen.phases[1].loadFraction, 0.6);
    EXPECT_DOUBLE_EQ(a.gen.warmupFraction, 0.1);
}

TEST(WorkloadRegistry, UnknownTokensThrowNamedErrors)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    try {
        reg.resolve("nosuch");
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("valid kinds"),
                  std::string::npos);
    }
    try {
        reg.resolve("kv:bogus=1");
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unknown parameter "
                                             "'bogus'"),
                  std::string::npos);
    }
    // Fixed Table V kinds accept no parameter section.
    EXPECT_THROW(reg.resolve("lbm:foo=1"), std::runtime_error);
    // Semantic range errors are named too.
    EXPECT_THROW(reg.resolve("kv:readRatio=1.5"), std::runtime_error);
    EXPECT_THROW(reg.resolve("kv:skew=0"), std::runtime_error);
    EXPECT_THROW(reg.resolve("kv:warm=1"), std::runtime_error);
    EXPECT_THROW(reg.resolve("kv:keys=0"), std::runtime_error);
    EXPECT_THROW(reg.resolve("tenants:n=0"), std::runtime_error);
    EXPECT_THROW(reg.resolve("tenants:n=3,readRatios=0.9,0.5"),
                 std::runtime_error);
}

TEST(WorkloadRegistry, CountParsingRoundTrips)
{
    EXPECT_EQ(parseCount("t", "64"), 64u);
    EXPECT_EQ(parseCount("t", "4K"), 4096u);
    EXPECT_EQ(parseCount("t", "64M"), 67108864u);
    EXPECT_EQ(parseCount("t", "2G"), 2147483648u);
    EXPECT_THROW(parseCount("t", "12Q"), std::runtime_error);
    EXPECT_THROW(parseCount("t", ""), std::runtime_error);
    EXPECT_EQ(renderCount(4096), "4K");
    EXPECT_EQ(renderCount(67108864), "64M");
    EXPECT_EQ(renderCount(100), "100");
}

TEST(WorkloadRegistryDeath, BenchmarkWrapperStillDiesOnUnknownNames)
{
    // The deprecated free function must keep its historical contract:
    // process exit with a diagnostic, now listing registry kinds.
    EXPECT_DEATH(benchmark("nosuch"), "unknown benchmark");
    EXPECT_DEATH(benchmark("kv:bogus=1"), "unknown benchmark");
}

TEST(WorkloadRegistryDeath, StreamConfigValidationNamesTheStream)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = 1000;

    StreamConfig bad;
    bad.kind = StreamConfig::Kind::Zipf;
    bad.regionBytes = 1 << 20;
    bad.zipfSkew = 0.0;
    cfg.loads.streams = {bad};
    EXPECT_DEATH(SyntheticTrace(cfg, 0, 1),
                 "loads\\[0\\].*zipfSkew must be > 0");

    bad.zipfSkew = 0.9;
    bad.weight = 0.0;
    cfg.loads.streams = {bad};
    EXPECT_DEATH(SyntheticTrace(cfg, 0, 1),
                 "loads\\[0\\].*weight must be > 0");

    bad.weight = 1.0;
    bad.regionBytes = 32;
    cfg.loads.streams = {bad};
    EXPECT_DEATH(SyntheticTrace(cfg, 0, 1),
                 "loads\\[0\\].*regionBytes must be >= 64");
}

// --- warm-up phase ---------------------------------------------------

TEST(WorkloadRegistry, WarmupSplitCountsLeadingAccesses)
{
    const BenchmarkSpec &spec =
        WorkloadRegistry::global().resolve("kv:keys=1K,ops=40K,"
                                           "warm=0.5");
    // ops=40K is binary: 40960 accesses, half of them warm-up.
    const std::vector<std::uint64_t> split =
        warmupSplit(spec.gen, 1);
    ASSERT_EQ(split.size(), 1u);
    EXPECT_EQ(split[0], 20480u);

    SyntheticTrace t(spec.gen, 0, 1);
    EXPECT_EQ(t.warmupAccesses(), 20480u);

    // Multi-thread split follows the generator's length split.
    const std::vector<std::uint64_t> four =
        warmupSplit(spec.gen, 4);
    ASSERT_EQ(four.size(), 4u);
    EXPECT_EQ(four[0], 5120u);
    EXPECT_EQ(four[1], 5120u);
}

TEST(WorkloadRegistry, WarmupIsExcludedFromFeaturesOnly)
{
    const BenchmarkSpec &spec =
        WorkloadRegistry::global().resolve("kv:keys=1K,ops=40K,"
                                           "warm=0.5");
    SyntheticTrace t(spec.gen, 0, 1);
    std::vector<TraceSource *> threads{&t};

    WorkloadFeatures all = characterize(threads);
    WorkloadFeatures tail =
        characterize(threads, 10, warmupSplit(spec.gen, 1));
    EXPECT_EQ(all.reads.total + all.writes.total, 40960u);
    EXPECT_EQ(tail.reads.total + tail.writes.total, 20480u);
    EXPECT_LE(tail.reads.unique, all.reads.unique);

    // The simulation, by contrast, sees every access: warm-up shapes
    // cache state and must stay inside the run.
    ExperimentRunner runner;
    runner.setJobs(1);
    SimStats s = runner.runOne(spec, sram());
    EXPECT_GT(s.llc.demandReads, 0u);
}

// --- runKey / memo sensitivity ---------------------------------------

TEST(WorkloadRegistry, EveryParamChangesTheRunKey)
{
    // Each spec differs from the base in exactly one parameter; if
    // any were missing from the engine's genKey folding, the memo
    // would serve a stale result and `simulations` would fall short.
    const std::vector<std::string> specs = {
        "kv:keys=1K,ops=30K",
        "kv:keys=2K,ops=30K",
        "kv:keys=1K,ops=36K",
        "kv:keys=1K,ops=30K,readRatio=0.5",
        "kv:keys=1K,ops=30K,skew=0.7",
        "kv:keys=1K,ops=30K,seed=7",
        "kv:keys=1K,ops=30K,warm=0.4",
        "phased:keys=1K,ops=30K",
        "phased:keys=1K,ops=30K,readRatios=0.9,0.6",
        "phased:keys=1K,ops=30K,skews=1,0.5",
        "tenants:n=2,keys=1K,ops=30K",
        "tenants:n=2,keys=1K,ops=30K,readRatios=0.9",
        "tenants:n=2,keys=1K,ops=30K,skews=0.7",
        "tenants:n=3,keys=1K,ops=30K",
    };
    ExperimentRunner runner;
    runner.setJobs(1);
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    for (const std::string &s : specs)
        runner.runOne(reg.resolve(s), sram());
    EXPECT_EQ(runner.runnerStats().simulations, specs.size());
    EXPECT_EQ(runner.runnerStats().memoHits, 0u);

    // Identical parameterization (different spelling) IS a memo hit.
    runner.runOne(reg.resolve("kv:keys=1024,ops=30720"), sram());
    EXPECT_EQ(runner.runnerStats().simulations, specs.size());
    EXPECT_EQ(runner.runnerStats().memoHits, 1u);
}

TEST(WorkloadRegistry, PerThreadStatsFlagChangesTheRunKey)
{
    BenchmarkSpec spec =
        WorkloadRegistry::global().resolve("tenants:n=2,keys=1K,"
                                           "ops=30K");
    ExperimentRunner runner;
    runner.setJobs(1);
    SimStats with = runner.runOne(spec, sram());
    spec.gen.perThreadStats = false;
    spec.name += "#noTenantStats";
    SimStats without = runner.runOne(spec, sram());
    EXPECT_EQ(runner.runnerStats().simulations, 2u);
    EXPECT_EQ(runner.runnerStats().memoHits, 0u);
    EXPECT_TRUE(hasEntryWithPrefix(with.detail, "sim.tenant0."));
    EXPECT_FALSE(hasEntryWithPrefix(without.detail, "sim.tenant0."));
    // The flag only adds reporting; the simulation is unchanged.
    EXPECT_EQ(with.llc.demandReads, without.llc.demandReads);
    EXPECT_EQ(with.seconds, without.seconds);
}

// --- per-tenant statistics -------------------------------------------

TEST(WorkloadRegistry, TenantStatsSumToGlobalLlcTraffic)
{
    const BenchmarkSpec &spec =
        WorkloadRegistry::global().resolve("tenants:n=3,keys=1K,"
                                           "ops=45K");
    ExperimentRunner runner;
    runner.setJobs(1);
    SimStats s = runner.runOne(spec, sram());

    std::uint64_t reads = 0, hits = 0, misses = 0;
    for (int i = 0; i < 3; ++i) {
        const std::string p = "sim.tenant" + std::to_string(i) + ".";
        ASSERT_TRUE(hasEntryWithPrefix(s.detail, p)) << p;
        reads += detailCounter(s.detail, p + "llc.demandReads");
        hits += detailCounter(s.detail, p + "llc.demandHits");
        misses += detailCounter(s.detail, p + "llc.demandMisses");
    }
    EXPECT_FALSE(hasEntryWithPrefix(s.detail, "sim.tenant3."));
    EXPECT_EQ(reads, s.llc.demandReads);
    EXPECT_EQ(hits, s.llc.demandHits);
    EXPECT_EQ(misses, s.llc.demandMisses);
    EXPECT_EQ(hits + misses, reads);
}

// --- determinism ------------------------------------------------------

TEST(WorkloadRegistry, ServerFamiliesBitIdenticalAcrossJobs)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    for (const char *s : {"kv:keys=1K,ops=30K",
                          "phased:keys=1K,ops=30K",
                          "tenants:n=2,keys=1K,ops=30K"}) {
        const BenchmarkSpec &spec = reg.resolve(s);
        ExperimentRunner serial;
        serial.setJobs(1);
        ExperimentRunner parallel;
        parallel.setJobs(8);
        TechSweep a =
            serial.sweepTechs(spec, CapacityMode::FixedCapacity);
        TechSweep b =
            parallel.sweepTechs(spec, CapacityMode::FixedCapacity);
        ASSERT_EQ(a.results.size(), b.results.size()) << s;
        for (std::size_t i = 0; i < a.results.size(); ++i) {
            EXPECT_EQ(a.results[i].tech, b.results[i].tech);
            EXPECT_EQ(a.results[i].speedup, b.results[i].speedup);
            EXPECT_EQ(a.results[i].normEnergy,
                      b.results[i].normEnergy);
            expectSameStats(a.results[i].stats, b.results[i].stats);
        }
    }
}

TEST(WorkloadRegistry, ServerFamiliesBitIdenticalAcrossShards)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    for (const char *s : {"kv:keys=1K,ops=30K",
                          "tenants:n=2,keys=1K,ops=30K"}) {
        const BenchmarkSpec &spec = reg.resolve(s);
        ExperimentRunner one;
        one.setJobs(1);
        one.setShards(1);
        ExperimentRunner four;
        four.setJobs(1);
        four.setShards(4);
        expectSameStats(one.runOne(spec, sram()),
                        four.runOne(spec, sram()));
    }
}

// --- generator structure ----------------------------------------------

TEST(WorkloadRegistry, TenantsInterleaveDeterministically)
{
    // All tenants walk the same arena layout, so two builds of the
    // same thread are identical, and different tenants with distinct
    // regionIds never alias each other's key space.
    const BenchmarkSpec &spec =
        WorkloadRegistry::global().resolve("tenants:n=2,keys=1K,"
                                           "ops=20K");
    SyntheticTrace a0(spec.gen, 0, 2), b0(spec.gen, 0, 2);
    SyntheticTrace a1(spec.gen, 1, 2);
    MemAccess x, y;
    std::set<std::uint64_t> t0, t1;
    while (a0.next(x)) {
        ASSERT_TRUE(b0.next(y));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(int(x.kind), int(y.kind));
        t0.insert(x.addr);
    }
    EXPECT_FALSE(b0.next(y));
    while (a1.next(x))
        t1.insert(x.addr);
    for (std::uint64_t addr : t0)
        EXPECT_EQ(t1.count(addr), 0u) << std::hex << addr;
}
