# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cell[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_heuristics[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_model_library[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nvsim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cache[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_generators[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_prism[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_correlate[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_suite[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_experiment[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_endurance[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_golden[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_parallel[1]_include.cmake")
