file(REMOVE_RECURSE
  "CMakeFiles/test_model_library.dir/test_model_library.cc.o"
  "CMakeFiles/test_model_library.dir/test_model_library.cc.o.d"
  "test_model_library"
  "test_model_library.pdb"
  "test_model_library[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
