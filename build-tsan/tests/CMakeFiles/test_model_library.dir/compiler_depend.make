# Empty compiler generated dependencies file for test_model_library.
# This may be replaced when dependencies are built.
