# Empty dependencies file for test_nvsim.
# This may be replaced when dependencies are built.
