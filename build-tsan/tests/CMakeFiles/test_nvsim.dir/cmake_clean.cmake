file(REMOVE_RECURSE
  "CMakeFiles/test_nvsim.dir/test_nvsim.cc.o"
  "CMakeFiles/test_nvsim.dir/test_nvsim.cc.o.d"
  "test_nvsim"
  "test_nvsim.pdb"
  "test_nvsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
