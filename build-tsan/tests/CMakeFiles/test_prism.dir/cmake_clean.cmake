file(REMOVE_RECURSE
  "CMakeFiles/test_prism.dir/test_prism.cc.o"
  "CMakeFiles/test_prism.dir/test_prism.cc.o.d"
  "test_prism"
  "test_prism.pdb"
  "test_prism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
