# Empty dependencies file for test_prism.
# This may be replaced when dependencies are built.
