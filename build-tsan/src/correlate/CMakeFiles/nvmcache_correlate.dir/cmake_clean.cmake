file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_correlate.dir/framework.cc.o"
  "CMakeFiles/nvmcache_correlate.dir/framework.cc.o.d"
  "libnvmcache_correlate.a"
  "libnvmcache_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
