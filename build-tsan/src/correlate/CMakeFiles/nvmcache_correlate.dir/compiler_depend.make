# Empty compiler generated dependencies file for nvmcache_correlate.
# This may be replaced when dependencies are built.
