file(REMOVE_RECURSE
  "libnvmcache_correlate.a"
)
