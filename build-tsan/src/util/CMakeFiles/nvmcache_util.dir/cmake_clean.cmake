file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_util.dir/logging.cc.o"
  "CMakeFiles/nvmcache_util.dir/logging.cc.o.d"
  "CMakeFiles/nvmcache_util.dir/parallel.cc.o"
  "CMakeFiles/nvmcache_util.dir/parallel.cc.o.d"
  "CMakeFiles/nvmcache_util.dir/rng.cc.o"
  "CMakeFiles/nvmcache_util.dir/rng.cc.o.d"
  "CMakeFiles/nvmcache_util.dir/stats.cc.o"
  "CMakeFiles/nvmcache_util.dir/stats.cc.o.d"
  "CMakeFiles/nvmcache_util.dir/table.cc.o"
  "CMakeFiles/nvmcache_util.dir/table.cc.o.d"
  "libnvmcache_util.a"
  "libnvmcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
