# Empty compiler generated dependencies file for nvmcache_util.
# This may be replaced when dependencies are built.
