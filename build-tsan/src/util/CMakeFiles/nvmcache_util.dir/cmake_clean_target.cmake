file(REMOVE_RECURSE
  "libnvmcache_util.a"
)
