file(REMOVE_RECURSE
  "libnvmcache_nvsim.a"
)
