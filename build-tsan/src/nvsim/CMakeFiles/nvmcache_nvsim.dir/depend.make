# Empty dependencies file for nvmcache_nvsim.
# This may be replaced when dependencies are built.
