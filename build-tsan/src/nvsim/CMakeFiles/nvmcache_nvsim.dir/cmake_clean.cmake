file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_nvsim.dir/area_solver.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/area_solver.cc.o.d"
  "CMakeFiles/nvmcache_nvsim.dir/array.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/array.cc.o.d"
  "CMakeFiles/nvmcache_nvsim.dir/estimator.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/estimator.cc.o.d"
  "CMakeFiles/nvmcache_nvsim.dir/htree.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/htree.cc.o.d"
  "CMakeFiles/nvmcache_nvsim.dir/published.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/published.cc.o.d"
  "CMakeFiles/nvmcache_nvsim.dir/tech.cc.o"
  "CMakeFiles/nvmcache_nvsim.dir/tech.cc.o.d"
  "libnvmcache_nvsim.a"
  "libnvmcache_nvsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_nvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
