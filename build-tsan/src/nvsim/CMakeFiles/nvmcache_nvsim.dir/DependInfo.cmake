
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvsim/area_solver.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/area_solver.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/area_solver.cc.o.d"
  "/root/repo/src/nvsim/array.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/array.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/array.cc.o.d"
  "/root/repo/src/nvsim/estimator.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/estimator.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/estimator.cc.o.d"
  "/root/repo/src/nvsim/htree.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/htree.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/htree.cc.o.d"
  "/root/repo/src/nvsim/published.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/published.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/published.cc.o.d"
  "/root/repo/src/nvsim/tech.cc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/tech.cc.o" "gcc" "src/nvsim/CMakeFiles/nvmcache_nvsim.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nvm/CMakeFiles/nvmcache_nvm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/nvmcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
