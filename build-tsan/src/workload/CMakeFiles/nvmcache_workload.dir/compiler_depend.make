# Empty compiler generated dependencies file for nvmcache_workload.
# This may be replaced when dependencies are built.
