file(REMOVE_RECURSE
  "libnvmcache_workload.a"
)
