file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_workload.dir/generators.cc.o"
  "CMakeFiles/nvmcache_workload.dir/generators.cc.o.d"
  "CMakeFiles/nvmcache_workload.dir/suite.cc.o"
  "CMakeFiles/nvmcache_workload.dir/suite.cc.o.d"
  "CMakeFiles/nvmcache_workload.dir/trace_io.cc.o"
  "CMakeFiles/nvmcache_workload.dir/trace_io.cc.o.d"
  "libnvmcache_workload.a"
  "libnvmcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
