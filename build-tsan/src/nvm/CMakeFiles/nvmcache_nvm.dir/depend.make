# Empty dependencies file for nvmcache_nvm.
# This may be replaced when dependencies are built.
