file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_nvm.dir/cell.cc.o"
  "CMakeFiles/nvmcache_nvm.dir/cell.cc.o.d"
  "CMakeFiles/nvmcache_nvm.dir/endurance.cc.o"
  "CMakeFiles/nvmcache_nvm.dir/endurance.cc.o.d"
  "CMakeFiles/nvmcache_nvm.dir/heuristics.cc.o"
  "CMakeFiles/nvmcache_nvm.dir/heuristics.cc.o.d"
  "CMakeFiles/nvmcache_nvm.dir/model_library.cc.o"
  "CMakeFiles/nvmcache_nvm.dir/model_library.cc.o.d"
  "libnvmcache_nvm.a"
  "libnvmcache_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
