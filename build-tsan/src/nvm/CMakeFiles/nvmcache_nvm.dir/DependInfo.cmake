
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/cell.cc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/cell.cc.o" "gcc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/cell.cc.o.d"
  "/root/repo/src/nvm/endurance.cc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/endurance.cc.o" "gcc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/endurance.cc.o.d"
  "/root/repo/src/nvm/heuristics.cc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/heuristics.cc.o" "gcc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/heuristics.cc.o.d"
  "/root/repo/src/nvm/model_library.cc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/model_library.cc.o" "gcc" "src/nvm/CMakeFiles/nvmcache_nvm.dir/model_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/nvmcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
