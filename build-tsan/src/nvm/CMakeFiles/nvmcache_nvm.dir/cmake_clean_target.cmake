file(REMOVE_RECURSE
  "libnvmcache_nvm.a"
)
