# Empty dependencies file for nvmcache_sim.
# This may be replaced when dependencies are built.
