file(REMOVE_RECURSE
  "libnvmcache_sim.a"
)
