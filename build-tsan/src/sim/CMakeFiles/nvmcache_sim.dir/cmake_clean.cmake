file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_sim.dir/cache.cc.o"
  "CMakeFiles/nvmcache_sim.dir/cache.cc.o.d"
  "CMakeFiles/nvmcache_sim.dir/core.cc.o"
  "CMakeFiles/nvmcache_sim.dir/core.cc.o.d"
  "CMakeFiles/nvmcache_sim.dir/dram.cc.o"
  "CMakeFiles/nvmcache_sim.dir/dram.cc.o.d"
  "CMakeFiles/nvmcache_sim.dir/nvm_llc.cc.o"
  "CMakeFiles/nvmcache_sim.dir/nvm_llc.cc.o.d"
  "CMakeFiles/nvmcache_sim.dir/system.cc.o"
  "CMakeFiles/nvmcache_sim.dir/system.cc.o.d"
  "libnvmcache_sim.a"
  "libnvmcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
