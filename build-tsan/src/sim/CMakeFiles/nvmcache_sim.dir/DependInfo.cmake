
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/nvmcache_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/nvmcache_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/nvmcache_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/nvmcache_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/nvmcache_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/nvmcache_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/nvm_llc.cc" "src/sim/CMakeFiles/nvmcache_sim.dir/nvm_llc.cc.o" "gcc" "src/sim/CMakeFiles/nvmcache_sim.dir/nvm_llc.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/nvmcache_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/nvmcache_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nvsim/CMakeFiles/nvmcache_nvsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/nvmcache_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nvm/CMakeFiles/nvmcache_nvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
