# Empty compiler generated dependencies file for nvmcache_core.
# This may be replaced when dependencies are built.
