file(REMOVE_RECURSE
  "libnvmcache_core.a"
)
