file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_core.dir/experiment.cc.o"
  "CMakeFiles/nvmcache_core.dir/experiment.cc.o.d"
  "CMakeFiles/nvmcache_core.dir/study.cc.o"
  "CMakeFiles/nvmcache_core.dir/study.cc.o.d"
  "libnvmcache_core.a"
  "libnvmcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
