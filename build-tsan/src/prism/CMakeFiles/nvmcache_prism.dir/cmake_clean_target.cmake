file(REMOVE_RECURSE
  "libnvmcache_prism.a"
)
