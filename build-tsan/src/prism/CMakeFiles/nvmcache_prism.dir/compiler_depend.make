# Empty compiler generated dependencies file for nvmcache_prism.
# This may be replaced when dependencies are built.
