file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_prism.dir/metrics.cc.o"
  "CMakeFiles/nvmcache_prism.dir/metrics.cc.o.d"
  "libnvmcache_prism.a"
  "libnvmcache_prism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_prism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
