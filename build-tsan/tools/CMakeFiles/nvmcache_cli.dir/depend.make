# Empty dependencies file for nvmcache_cli.
# This may be replaced when dependencies are built.
