file(REMOVE_RECURSE
  "CMakeFiles/nvmcache_cli.dir/nvmcache_cli.cc.o"
  "CMakeFiles/nvmcache_cli.dir/nvmcache_cli.cc.o.d"
  "nvmcache"
  "nvmcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmcache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
