# Empty dependencies file for heuristic_completion.
# This may be replaced when dependencies are built.
