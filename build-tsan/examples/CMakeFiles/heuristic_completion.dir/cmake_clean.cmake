file(REMOVE_RECURSE
  "CMakeFiles/heuristic_completion.dir/heuristic_completion.cpp.o"
  "CMakeFiles/heuristic_completion.dir/heuristic_completion.cpp.o.d"
  "heuristic_completion"
  "heuristic_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
