file(REMOVE_RECURSE
  "CMakeFiles/ai_domain_selector.dir/ai_domain_selector.cpp.o"
  "CMakeFiles/ai_domain_selector.dir/ai_domain_selector.cpp.o.d"
  "ai_domain_selector"
  "ai_domain_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_domain_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
