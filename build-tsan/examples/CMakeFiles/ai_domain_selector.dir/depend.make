# Empty dependencies file for ai_domain_selector.
# This may be replaced when dependencies are built.
