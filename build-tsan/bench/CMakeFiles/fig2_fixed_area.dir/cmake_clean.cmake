file(REMOVE_RECURSE
  "CMakeFiles/fig2_fixed_area.dir/fig2_fixed_area.cc.o"
  "CMakeFiles/fig2_fixed_area.dir/fig2_fixed_area.cc.o.d"
  "fig2_fixed_area"
  "fig2_fixed_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fixed_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
