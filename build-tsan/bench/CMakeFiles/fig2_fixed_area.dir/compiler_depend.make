# Empty compiler generated dependencies file for fig2_fixed_area.
# This may be replaced when dependencies are built.
