# Empty dependencies file for table6_features.
# This may be replaced when dependencies are built.
