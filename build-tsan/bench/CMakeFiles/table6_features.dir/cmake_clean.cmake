file(REMOVE_RECURSE
  "CMakeFiles/table6_features.dir/table6_features.cc.o"
  "CMakeFiles/table6_features.dir/table6_features.cc.o.d"
  "table6_features"
  "table6_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
