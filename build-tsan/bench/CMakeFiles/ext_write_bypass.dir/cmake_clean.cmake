file(REMOVE_RECURSE
  "CMakeFiles/ext_write_bypass.dir/ext_write_bypass.cc.o"
  "CMakeFiles/ext_write_bypass.dir/ext_write_bypass.cc.o.d"
  "ext_write_bypass"
  "ext_write_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_write_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
