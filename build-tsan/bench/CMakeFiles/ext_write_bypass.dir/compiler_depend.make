# Empty compiler generated dependencies file for ext_write_bypass.
# This may be replaced when dependencies are built.
