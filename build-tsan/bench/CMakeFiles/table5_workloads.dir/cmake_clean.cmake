file(REMOVE_RECURSE
  "CMakeFiles/table5_workloads.dir/table5_workloads.cc.o"
  "CMakeFiles/table5_workloads.dir/table5_workloads.cc.o.d"
  "table5_workloads"
  "table5_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
