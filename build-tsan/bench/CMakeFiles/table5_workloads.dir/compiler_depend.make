# Empty compiler generated dependencies file for table5_workloads.
# This may be replaced when dependencies are built.
