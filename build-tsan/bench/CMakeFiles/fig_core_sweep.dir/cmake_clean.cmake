file(REMOVE_RECURSE
  "CMakeFiles/fig_core_sweep.dir/fig_core_sweep.cc.o"
  "CMakeFiles/fig_core_sweep.dir/fig_core_sweep.cc.o.d"
  "fig_core_sweep"
  "fig_core_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_core_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
