# Empty compiler generated dependencies file for fig_core_sweep.
# This may be replaced when dependencies are built.
