file(REMOVE_RECURSE
  "CMakeFiles/ext_org_sensitivity.dir/ext_org_sensitivity.cc.o"
  "CMakeFiles/ext_org_sensitivity.dir/ext_org_sensitivity.cc.o.d"
  "ext_org_sensitivity"
  "ext_org_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_org_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
