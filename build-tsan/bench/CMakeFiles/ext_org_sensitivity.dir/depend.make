# Empty dependencies file for ext_org_sensitivity.
# This may be replaced when dependencies are built.
