file(REMOVE_RECURSE
  "CMakeFiles/fig1_fixed_capacity.dir/fig1_fixed_capacity.cc.o"
  "CMakeFiles/fig1_fixed_capacity.dir/fig1_fixed_capacity.cc.o.d"
  "fig1_fixed_capacity"
  "fig1_fixed_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fixed_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
