# Empty dependencies file for fig1_fixed_capacity.
# This may be replaced when dependencies are built.
