
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_fixed_capacity.cc" "bench/CMakeFiles/fig1_fixed_capacity.dir/fig1_fixed_capacity.cc.o" "gcc" "bench/CMakeFiles/fig1_fixed_capacity.dir/fig1_fixed_capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/nvmcache_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/nvmcache_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prism/CMakeFiles/nvmcache_prism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/nvmcache_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/correlate/CMakeFiles/nvmcache_correlate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nvsim/CMakeFiles/nvmcache_nvsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nvm/CMakeFiles/nvmcache_nvm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/nvmcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
