file(REMOVE_RECURSE
  "CMakeFiles/table3_llc_models.dir/table3_llc_models.cc.o"
  "CMakeFiles/table3_llc_models.dir/table3_llc_models.cc.o.d"
  "table3_llc_models"
  "table3_llc_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_llc_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
