# Empty compiler generated dependencies file for table3_llc_models.
# This may be replaced when dependencies are built.
