file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_path.dir/ablation_write_path.cc.o"
  "CMakeFiles/ablation_write_path.dir/ablation_write_path.cc.o.d"
  "ablation_write_path"
  "ablation_write_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
