# Empty dependencies file for ablation_write_path.
# This may be replaced when dependencies are built.
