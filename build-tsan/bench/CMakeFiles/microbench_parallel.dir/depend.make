# Empty dependencies file for microbench_parallel.
# This may be replaced when dependencies are built.
