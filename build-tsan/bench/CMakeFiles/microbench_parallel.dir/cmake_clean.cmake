file(REMOVE_RECURSE
  "CMakeFiles/microbench_parallel.dir/microbench_parallel.cc.o"
  "CMakeFiles/microbench_parallel.dir/microbench_parallel.cc.o.d"
  "microbench_parallel"
  "microbench_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
