file(REMOVE_RECURSE
  "CMakeFiles/table2_cell_models.dir/table2_cell_models.cc.o"
  "CMakeFiles/table2_cell_models.dir/table2_cell_models.cc.o.d"
  "table2_cell_models"
  "table2_cell_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cell_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
