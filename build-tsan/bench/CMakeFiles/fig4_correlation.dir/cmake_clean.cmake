file(REMOVE_RECURSE
  "CMakeFiles/fig4_correlation.dir/fig4_correlation.cc.o"
  "CMakeFiles/fig4_correlation.dir/fig4_correlation.cc.o.d"
  "fig4_correlation"
  "fig4_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
