# Empty dependencies file for fig4_correlation.
# This may be replaced when dependencies are built.
