/**
 * @file
 * The paper's §VI scenario: a designer is building a domain-specific
 * architecture for statistical inference (AI) and must pick an LLC
 * memory technology.
 *
 * This example runs the workload-characterization framework (Fig 3)
 * over the cpu2017 AI trio, reports which architecture-agnostic
 * features actually predict energy and speedup (Fig 4), and then acts
 * on the paper's conclusion — if working-set structure dominates and
 * totals do not, pick the density-targeted NVM.
 *
 *   ./build/examples/ai_domain_selector
 */

#include <algorithm>
#include <cstdio>

#include "core/study.hh"
#include "util/units.hh"

using namespace nvmcache;

int
main()
{
    ExperimentRunner runner;
    const std::vector<std::string> techs{"Jan", "Xue", "Hayakawa"};

    std::printf("characterizing the AI workloads "
                "(deepsjeng, leela, exchange2)...\n");
    CorrelationStudy study = runCorrelationStudy(
        true, techs, {CapacityMode::FixedArea}, runner);

    for (std::size_t i = 0; i < study.workloads.size(); ++i) {
        const WorkloadFeatures &f = study.features[i];
        std::printf("  %-10s H_wg=%5.2f  w_uniq=%8llu  90%%ft_w=%8llu"
                    "  w_total=%9llu\n",
                    study.workloads[i].c_str(),
                    f.writes.globalEntropy,
                    (unsigned long long)f.writes.unique,
                    (unsigned long long)f.writes.footprint90,
                    (unsigned long long)f.writes.total);
    }

    std::printf("\nfeature correlation with LLC energy "
                "(fixed-area):\n");
    for (const TechCorrelation &tc : study.perTech) {
        auto rank = tc.result.rankByEnergy();
        std::printf("  %-9s top predictors: ", tc.tech.c_str());
        for (std::size_t i = 0; i < 3; ++i)
            std::printf("%s(%+.2f) ",
                        tc.result.featureNames[rank[i]].c_str(),
                        tc.result.energyCorr[rank[i]]);
        // Where do the raw totals land?
        double total_r = 0.0;
        for (std::size_t f = 0; f < tc.result.featureNames.size();
             ++f)
            if (tc.result.featureNames[f] == "r_total" ||
                tc.result.featureNames[f] == "w_total")
                total_r = std::max(total_r,
                                   std::abs(tc.result.energyCorr[f]));
        std::printf(" | totals max |r| = %.2f\n", total_r);
    }

    // Act on the paper's conclusion: pick for density.
    std::printf("\npaper conclusion: for AI use cases, energy/speedup "
                "track working-set structure,\nnot access totals -> "
                "pick the density-targeted NVM.\n\n");
    const LlcModel *densest = nullptr;
    for (const std::string &t : techs) {
        const LlcModel &m =
            publishedLlcModel(t, CapacityMode::FixedArea);
        std::printf("  %-12s %4.0f MB in the area budget\n",
                    m.citationName().c_str(), toMB(m.capacityBytes));
        if (!densest || m.capacityBytes > densest->capacityBytes)
            densest = &m;
    }
    std::printf("\nselected LLC technology: %s (%.0f MB at "
                "6.55 mm^2)\n",
                densest->citationName().c_str(),
                toMB(densest->capacityBytes));
    return 0;
}
