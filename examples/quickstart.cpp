/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 *  1. pick an NVM cell model from the released library (Table II);
 *  2. get its LLC model (Table III) for the Gainestown 2 MB LLC;
 *  3. simulate one workload against it and against the SRAM baseline;
 *  4. report speedup, LLC energy, and ED^2P, paper-style.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [tech]
 */

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "nvm/model_library.hh"
#include "nvsim/published.hh"
#include "util/units.hh"
#include "workload/suite.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "leela";
    const std::string tech = argc > 2 ? argv[2] : "Chung";

    // 1. The cell-level model (one column of Table II).
    const CellSpec &cell = publishedCell(tech);
    std::printf("cell model %s: %s, %d, %.0f nm, %.1f F^2\n",
                cell.citationName().c_str(),
                toString(cell.klass).c_str(), cell.year,
                cell.processNode.get() * 1e9, cell.cellSizeF2.get());

    // 2. The architectural LLC model (one column of Table III).
    const LlcModel &llc =
        publishedLlcModel(tech, CapacityMode::FixedCapacity);
    std::printf("LLC model  %s: read %.2f ns, write %.2f ns, "
                "E_write %.2f nJ, leak %.3f W\n",
                llc.citationName().c_str(), toNs(llc.readLatency),
                toNs(llc.writeLatency()), toNJ(llc.eWrite),
                llc.leakage);

    // 3. Simulate the workload on NVM and on the SRAM baseline.
    const BenchmarkSpec &spec = benchmark(workload);
    ExperimentRunner runner;
    std::printf("\nsimulating '%s' (%s, %u thread(s))...\n",
                spec.name.c_str(), spec.description.c_str(),
                spec.defaultThreads);
    SimStats nvm = runner.runOne(spec, llc);
    SimStats sram = runner.runOne(spec, sramBaselineLlc());

    // 4. Paper-style normalized results.
    std::printf("\n%-22s %12s %12s\n", "", "SRAM", tech.c_str());
    std::printf("%-22s %12.3f %12.3f\n", "runtime [ms]",
                sram.seconds * 1e3, nvm.seconds * 1e3);
    std::printf("%-22s %12.1f %12.1f\n", "LLC mpki", sram.llcMpki(),
                nvm.llcMpki());
    std::printf("%-22s %12.3f %12.3f\n", "LLC energy [mJ]",
                sram.llcEnergy() * 1e3, nvm.llcEnergy() * 1e3);
    std::printf("%-22s %12s %12.3f\n", "speedup vs SRAM", "1.000",
                sram.seconds / nvm.seconds);
    std::printf("%-22s %12s %12.3f\n", "energy vs SRAM", "1.000",
                nvm.llcEnergy() / sram.llcEnergy());
    std::printf("%-22s %12s %12.3f\n", "ED^2P vs SRAM", "1.000",
                nvm.ed2p() / sram.ed2p());
    return 0;
}
