/**
 * @file
 * Design-space exploration: "which LLC technology should my system
 * use for this workload?" — the question the paper's evaluation
 * answers per use case.
 *
 * Sweeps all ten NVM LLCs plus SRAM in both capacity strategies for
 * one workload, then recommends a winner for each of three design
 * targets: performance, energy, and balanced (ED^2P).
 *
 *   ./build/examples/design_space_explorer [workload]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "util/units.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

void
recommend(const TechSweep &sweep)
{
    const RunResult *best_perf = nullptr;
    const RunResult *best_energy = nullptr;
    const RunResult *best_ed2p = nullptr;
    for (const RunResult &r : sweep.results) {
        if (!best_perf || r.speedup > best_perf->speedup)
            best_perf = &r;
        if (!best_energy || r.normEnergy < best_energy->normEnergy)
            best_energy = &r;
        if (!best_ed2p || r.normEd2p < best_ed2p->normEd2p)
            best_ed2p = &r;
    }
    std::printf("  performance : %-10s (%.2fx speedup)\n",
                best_perf->tech.c_str(), best_perf->speedup);
    std::printf("  energy      : %-10s (%.2fx SRAM energy)\n",
                best_energy->tech.c_str(), best_energy->normEnergy);
    std::printf("  balanced    : %-10s (%.3fx SRAM ED^2P)\n",
                best_ed2p->tech.c_str(), best_ed2p->normEd2p);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gobmk";
    const BenchmarkSpec &spec = benchmark(workload);
    ExperimentRunner runner;

    std::printf("design-space exploration for '%s' (%s)\n\n",
                spec.name.c_str(), spec.description.c_str());

    for (CapacityMode mode : {CapacityMode::FixedCapacity,
                              CapacityMode::FixedArea}) {
        TechSweep sweep = runner.sweepTechs(spec, mode);
        std::printf("%s (%s):\n", toString(mode).c_str(),
                    mode == CapacityMode::FixedCapacity
                        ? "cost-limited: every LLC is 2 MB"
                        : "capacity-limited: 6.55 mm^2 budget");
        std::printf("  %-10s %8s %8s %8s %8s %10s\n", "tech",
                    "cap[MB]", "speedup", "energy", "ED^2P", "mpki");
        for (const RunResult &r : sweep.results) {
            const LlcModel &m = publishedLlcModel(r.tech, mode);
            std::printf("  %-10s %8.0f %8.3f %8.3f %8.3f %10.1f\n",
                        m.citationName().c_str(),
                        toMB(m.capacityBytes), r.speedup,
                        r.normEnergy, r.normEd2p, r.stats.llcMpki());
        }
        std::printf("\nrecommendations:\n");
        recommend(sweep);
        std::printf("\n");
    }
    return 0;
}
