/**
 * @file
 * Modeling a brand-new NVM from an incomplete VLSI publication — the
 * paper's contribution 1 as a user workflow.
 *
 * Suppose a 2019 VLSI paper introduces a 28 nm STTRAM macro but, as
 * usual, reports only some of the parameters NVSim needs. This
 * example:
 *  1. enters the reported numbers into a CellSpec;
 *  2. completes the gaps with the heuristic engine (against the
 *     released Table II library as references), printing the ledger;
 *  3. pushes the completed cell through the circuit estimator to get
 *     an LLC model;
 *  4. simulates a workload to see whether the new device would beat
 *     the library's best STTRAM.
 *
 *   ./build/examples/heuristic_completion
 */

#include <cstdio>

#include "core/experiment.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "nvsim/estimator.hh"
#include "util/units.hh"
#include "workload/suite.hh"

using namespace nvmcache;

int
main()
{
    // 1. What the (hypothetical) publication reports.
    CellSpec novel;
    novel.name = "NovelMacro19";
    novel.klass = NvmClass::STTRAM;
    novel.year = 2019;
    novel.processNode = CellParam::reported(28e-9);
    novel.cellSizeF2 = CellParam::reported(34.0);
    novel.cellLevels = CellParam::reported(1);
    novel.readVoltage = CellParam::reported(0.45);
    novel.resetCurrent = CellParam::reported(65e-6);
    novel.resetPulse = CellParam::reported(3e-9);
    novel.setCurrent = CellParam::reported(48e-6);
    novel.setPulse = CellParam::reported(3.5e-9);
    // Missing: read power, set energy, reset energy.

    std::printf("reported spec is missing %zu NVSim parameters\n",
                missingFields(novel).size());

    // 2. Complete with the heuristics, Table II library as reference.
    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);
    CompletionResult result = engine.complete(novel);
    for (const CompletionStep &step : result.steps)
        std::printf("  filled %-14s = %.4g  via %s\n",
                    toString(step.field).c_str(), step.value,
                    step.rationale.c_str());
    if (!result.complete()) {
        std::printf("engine could not complete the spec\n");
        return 1;
    }

    // 3. Circuit-level LLC model at the Gainestown organization.
    Estimator estimator;
    CacheOrgConfig org; // 2 MB, 16-way, 64 B lines
    LlcModel llc = estimator.estimate(result.spec, org);
    llc.name = novel.name;
    std::printf("\nestimated LLC model: area %.2f mm^2, read %.2f ns,"
                " write %.2f ns,\n  E_hit %.3f nJ, E_write %.3f nJ, "
                "leakage %.3f W\n",
                toMm2(llc.area), toNs(llc.readLatency),
                toNs(llc.writeLatency()), toNJ(llc.eHit),
                toNJ(llc.eWrite), llc.leakage);

    // 4. Head-to-head against the library's best STTRAM (Xue_S) and
    //    the SRAM baseline on an AI workload.
    const BenchmarkSpec &spec = benchmark("deepsjeng");
    ExperimentRunner runner;
    SimStats sram = runner.runOne(spec, sramBaselineLlc());
    SimStats mine = runner.runOne(spec, llc);
    SimStats xue = runner.runOne(
        spec, publishedLlcModel("Xue", CapacityMode::FixedCapacity));

    auto report = [&](const char *name, const SimStats &s) {
        std::printf("  %-14s speedup %.3f  energy %.3f  ED^2P %.3f\n",
                    name, sram.seconds / s.seconds,
                    s.llcEnergy() / sram.llcEnergy(),
                    s.ed2p() / sram.ed2p());
    };
    std::printf("\n'%s' vs the 2 MB SRAM baseline:\n",
                spec.name.c_str());
    report("SRAM", sram);
    report("Xue_S", xue);
    report(novel.name.c_str(), mine);
    return 0;
}
