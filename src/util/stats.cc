#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace nvmcache {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / double(xs.size());
}

double
stdevPop(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / double(xs.size()));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean: non-positive input");
        logsum += std::log(x);
    }
    return std::exp(logsum / double(xs.size()));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("pearson: size mismatch");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    double r = sxy / std::sqrt(sxx * syy);
    return std::clamp(r, -1.0, 1.0);
}

namespace {

std::vector<double>
averageRanks(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t(0));
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]])
            ++j;
        double avg = 0.5 * double(i + j) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[idx[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

} // namespace

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("spearman: size mismatch");
    return pearson(averageRanks(xs), averageRanks(ys));
}

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("linearFit: size mismatch");
    LinearFit fit;
    const std::size_t n = xs.size();
    if (n == 0)
        return fit;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    return fit;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = double(n_), nb = double(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
Accumulator::stdev() const
{
    return std::sqrt(variance());
}

Accumulator
Accumulator::fromState(std::size_t n, double sum, double min, double max,
                       double mean, double m2)
{
    Accumulator acc;
    acc.n_ = n;
    acc.sum_ = sum;
    acc.min_ = min;
    acc.max_ = max;
    acc.mean_ = mean;
    acc.m2_ = m2;
    return acc;
}

} // namespace nvmcache
