/**
 * @file
 * End-to-end tracing subsystem: span timelines and simulated-time
 * event channels, exported as Chrome-trace-event JSON (loadable in
 * Perfetto / chrome://tracing).
 *
 * Three event kinds cover the framework's needs:
 *
 *  - TraceSpan:     RAII wall-clock span ("X" complete event) around
 *                   a phase — study dispatch, a memoized simulation,
 *                   a parallelMap job, a replay block.
 *  - traceInstant:  a point event ("i"), e.g. a memo hit.
 *  - traceSimCounter: a counter sample ("C") on the *simulated-time*
 *                   axis — LLC misses/writebacks/scrubs/retirements
 *                   against simulated cycles, the temporal substrate
 *                   the reliability and lifetime studies need.
 *
 * Events carry a deterministic id (a hierarchical path such as
 * "run/lbm/STT-1/c8/t1") assigned by the emitter, never by timing.
 * The exporter sorts events by content, so the trace's *semantic*
 * content is byte-identical (modulo wall-clock ts/dur/tid fields) at
 * any --jobs count; events in category "replay" additionally describe
 * the host-side shard fan-out and are the only category whose content
 * varies with --shards. Wall-clock events live under pid 1,
 * simulated-time counter tracks under pid 2.
 *
 * Threading model: every thread appends to its own lock-free chunked
 * buffer (an atomic count published with release ordering; the chunk
 * list mutex is touched only on chunk allocation), so the enabled
 * path never contends. The whole subsystem is a runtime toggle that
 * is OFF by default; when disabled every emission site reduces to one
 * relaxed atomic load.
 *
 * TraceContext is a thread-local (path, traceId) pair: TraceScope
 * installs one for a dynamic extent, TraceTaskScope derives the
 * per-job child context that parallelMap installs in its workers, and
 * the daemon assigns a fresh traceId per request so `trace` protocol
 * queries can filter one request's spans out of the shared collector.
 */

#ifndef NVMCACHE_UTIL_TRACE_EVENTS_HH
#define NVMCACHE_UTIL_TRACE_EVENTS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nvmcache {

class JsonValue;

namespace trace_detail {
extern std::atomic<bool> g_enabled;
} // namespace trace_detail

/** Globally enable/disable event collection (default off). */
void setTracingEnabled(bool on);

/** Cheap hot-path check: one relaxed atomic load. */
inline bool
tracingEnabled()
{
    return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/** Kind of one collected event. */
enum class TraceEventKind : std::uint8_t
{
    Span,    ///< "X" complete event (ts + dur)
    Instant, ///< "i" instant event
    Counter  ///< "C" counter sample
};

/** One collected event (the exporter's unit). */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Instant;
    bool simTime = false;      ///< Counter on the simulated-time axis
    std::uint32_t tid = 0;     ///< buffer registration order
    std::uint64_t traceId = 0; ///< 0 = no request association
    std::int64_t ts = 0;  ///< µs since collector epoch, or sim cycles
    std::int64_t dur = 0; ///< spans only, µs
    double value = 0.0;   ///< counters only
    std::string name;     ///< event name ("study.run", "llc.misses")
    std::string cat;      ///< category ("study","engine","replay","sim","service")
    std::string id;       ///< deterministic hierarchical id
};

/**
 * Thread-local tracing context: the hierarchical id prefix under
 * which this thread currently emits, plus the active request trace
 * id. Copyable value type; install with TraceScope.
 */
struct TraceContext
{
    std::string path;
    std::uint64_t traceId = 0;

    /** The calling thread's current context. */
    static const TraceContext &current();

    /** This context extended by "/@p segment" ("seg" when empty). */
    TraceContext child(const std::string &segment) const;
};

/**
 * RAII install of a TraceContext for the current thread. No-op while
 * tracing is disabled (toggle before running, not mid-extent).
 */
class TraceScope
{
  public:
    explicit TraceScope(TraceContext ctx);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    bool active_ = false;
    TraceContext saved_;
};

/**
 * RAII wall-clock span: records an "X" event over its lifetime.
 * @p id is the full deterministic id (callers compose it from
 * TraceContext::current().path or use a self-contained id when the
 * emitting thread is raced over, e.g. memoized simulations).
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat, std::string id);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool live_ = false;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    std::string id_;
    std::uint64_t traceId_ = 0;
    std::int64_t start_ = 0;
};

/**
 * One parallelMap job: emits a "parallel.job" span with id
 * "<parent>/job<index>" and installs that child context for the
 * job's dynamic extent, on the inline and pooled paths identically —
 * which is what keeps traces byte-identical at any job count.
 */
class TraceTaskScope
{
  public:
    TraceTaskScope(const TraceContext &parent, std::size_t index);
    ~TraceTaskScope();

    TraceTaskScope(const TraceTaskScope &) = delete;
    TraceTaskScope &operator=(const TraceTaskScope &) = delete;

  private:
    bool live_ = false;
    TraceContext saved_;
    std::string id_;
    std::uint64_t traceId_ = 0;
    std::int64_t start_ = 0;
};

/** Emit an instant event (no-op while disabled). */
void traceInstant(const char *name, const char *cat, std::string id);

/** Emit a wall-clock counter sample (no-op while disabled). */
void traceCounter(const char *name, const char *cat, std::string id,
                  double value);

/**
 * Emit a simulated-time counter sample: @p simCycles is the simulated
 * cycle of the sample, the event lands on the sim-time track (pid 2,
 * category "sim"). Deterministic: both axis and value derive from
 * simulation state only.
 */
void traceSimCounter(const char *name, std::string id,
                     std::uint64_t simCycles, double value);

/** 16-hex-digit FNV-1a hash of @p bytes, for compact stable ids. */
std::string traceHashId(const std::string &bytes);

/** Fresh nonzero trace id (monotonic; the daemon's per-request ids). */
std::uint64_t newTraceId();

// --- collector inspection / export ----------------------------------

/** Events collected so far (all threads, published prefixes). */
std::size_t traceEventCount();

/** Events discarded because a thread hit its buffer cap. */
std::uint64_t traceDroppedCount();

/**
 * Reset the collector (all buffers, the dropped counter). Callers
 * must ensure no thread is emitting concurrently — between runs, not
 * during one.
 */
void clearTraceEvents();

/**
 * Copy out collected events, content-sorted (category, id, name,
 * kind, sim-ts, value — never wall-clock), optionally filtered to
 * @p traceId (0 keeps everything).
 */
std::vector<TraceEvent> snapshotTraceEvents(std::uint64_t traceId = 0);

/**
 * Chrome-trace-event JSON document: {"traceEvents":[...]} with
 * process_name metadata for the wall-clock (pid 1) and simulated-time
 * (pid 2) tracks, events content-sorted. Adds "droppedEvents" at the
 * root when the cap was hit.
 */
JsonValue traceEventsToJson(std::uint64_t traceId = 0);

/** traceEventsToJson().dump() — deterministic modulo ts/dur/tid. */
std::string exportTraceJson(std::uint64_t traceId = 0);

/**
 * Write the trace document to @p path, creating missing parent
 * directories (fatal with the named path on failure).
 */
void writeTraceFile(const std::string &path,
                    std::uint64_t traceId = 0);

} // namespace nvmcache

#endif // NVMCACHE_UTIL_TRACE_EVENTS_HH
