#include "util/parallel.hh"

#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace nvmcache {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("NVMCACHE_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return unsigned(n);
        warn("NVMCACHE_JOBS='", env,
             "' is not a positive integer; ignoring");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> thunk)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            panic("ThreadPool: submit after shutdown");
        queue_.push_back(std::move(thunk));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this]() {
                return stopping_ || head_ < queue_.size();
            });
            if (head_ >= queue_.size()) // stopping, queue drained
                return;
            task = std::move(queue_[head_++]);
            if (head_ == queue_.size()) {
                queue_.clear();
                head_ = 0;
            }
        }
        task(); // packaged_task captures any exception in its future
    }
}

} // namespace nvmcache
