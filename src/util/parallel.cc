#include "util/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace nvmcache {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("NVMCACHE_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return unsigned(n);
        warn("NVMCACHE_JOBS='", env,
             "' is not a positive integer; ignoring");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
defaultShards()
{
    if (const char *env = std::getenv("NVMCACHE_SHARDS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return unsigned(n);
        warn("NVMCACHE_SHARDS='", env,
             "' is not a positive integer; ignoring");
    }
    return 1;
}

std::string
describeException(std::exception_ptr e)
{
    try {
        std::rethrow_exception(e);
    } catch (const std::exception &ex) {
        return ex.what();
    } catch (...) {
        return "(non-standard exception)";
    }
}

void
throwJobFailures(const std::vector<std::exception_ptr> &failed,
                 std::size_t totalJobs)
{
    if (failed.empty())
        return;
    if (failed.size() == 1)
        std::rethrow_exception(failed.front());

    // Several jobs failed: one exception carrying every diagnostic
    // (capped so a mass failure stays readable).
    constexpr std::size_t kMaxMessages = 4;
    std::string msg = "parallelMap: " + std::to_string(failed.size()) +
                      " of " + std::to_string(totalJobs) +
                      " jobs failed:";
    const std::size_t shown =
        std::min(failed.size(), kMaxMessages);
    for (std::size_t i = 0; i < shown; ++i)
        msg += "\n  [" + std::to_string(i + 1) + "] " +
               describeException(failed[i]);
    if (failed.size() > shown)
        msg += "\n  ... and " +
               std::to_string(failed.size() - shown) + " more";
    throw std::runtime_error(msg);
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> thunk)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            panic("ThreadPool: submit after shutdown");
        queue_.push_back(std::move(thunk));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this]() {
                return stopping_ || head_ < queue_.size();
            });
            if (head_ >= queue_.size()) // stopping, queue drained
                return;
            task = std::move(queue_[head_++]);
            if (head_ == queue_.size()) {
                queue_.clear();
                head_ = 0;
            }
        }
        task(); // packaged_task captures any exception in its future
    }
}

} // namespace nvmcache
