/**
 * @file
 * ASCII table renderer used by the bench harnesses to regenerate the
 * paper's tables, including the per-row / per-column heatmap shading
 * that Tables III and VI use to flag extrema.
 */

#ifndef NVMCACHE_UTIL_TABLE_HH
#define NVMCACHE_UTIL_TABLE_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace nvmcache {

/**
 * A rectangular table of cells. Cells are stored as strings plus an
 * optional numeric value; heatmap shading operates on the numeric
 * values only and is rendered with ANSI 256-colour backgrounds (or
 * suppressed entirely when colour is disabled, e.g. for CSV export or
 * non-TTY output).
 */
class Table
{
  public:
    enum class Heatmap { None, PerRow, PerColumn };

    explicit Table(std::string title = "");

    /** Set the column headers; fixes the column count. */
    void setHeader(std::vector<std::string> header);

    /** Begin a new row with a leading label cell. */
    void startRow(const std::string &label);

    /** Append a text cell to the current row. */
    void addCell(const std::string &text);

    /** Append a numeric cell, formatted with the given precision. */
    void addCell(double value, int precision = 3);

    /** Append a numeric cell with explicit text (value used for shading). */
    void addCell(const std::string &text, double value);

    /** Append an empty (not-applicable) cell, excluded from shading. */
    void addBlank();

    void setHeatmap(Heatmap mode) { heatmap_ = mode; }
    void setColor(bool on) { color_ = on; }

    std::size_t rows() const { return cells_.size(); }
    std::size_t cols() const { return header_.size(); }

    /** Render to a stream with box-drawing separators. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (no shading, no separators). */
    std::string toCsv() const;

  private:
    struct Cell
    {
        std::string text;
        std::optional<double> value;
    };

    /** Shade intensity in [0,1] for cell (r,c), or nullopt. */
    std::optional<double> shade(std::size_t r, std::size_t c) const;

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::string> rowLabels_;
    std::vector<std::vector<Cell>> cells_;
    Heatmap heatmap_ = Heatmap::None;
    bool color_ = true;
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_TABLE_HH
