#include "util/args.hh"

#include <limits>
#include <stdexcept>

namespace nvmcache {

ArgParser::ArgParser(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i)
        tokens_.emplace_back(argv[i]);
    consumed_.assign(tokens_.size(), false);
}

ArgParser::ArgParser(std::vector<std::string> tokens)
    : tokens_(std::move(tokens))
{
    consumed_.assign(tokens_.size(), false);
}

std::size_t
ArgParser::findFlag(const std::string &name)
{
    for (std::size_t i = 0; i < tokens_.size(); ++i)
        if (!consumed_[i] && tokens_[i] == name)
            return i;
    return std::string::npos;
}

bool
ArgParser::flag(const std::string &name)
{
    bool seen = false;
    for (std::size_t i; (i = findFlag(name)) != std::string::npos;) {
        consumed_[i] = true;
        seen = true;
    }
    return seen;
}

const std::string *
ArgParser::valueToken(const std::string &name)
{
    const std::size_t i = findFlag(name);
    if (i == std::string::npos)
        return nullptr;
    consumed_[i] = true;
    if (i + 1 >= tokens_.size())
        throw std::runtime_error(name + " needs a value");
    consumed_[i + 1] = true;
    return &tokens_[i + 1];
}

std::string
ArgParser::str(const std::string &name, std::string fallback)
{
    const std::string *token = valueToken(name);
    return token ? *token : std::move(fallback);
}

std::uint32_t
ArgParser::u32(const std::string &name, std::uint32_t fallback)
{
    const std::string *token = valueToken(name);
    return token ? parseU32(name, *token) : fallback;
}

double
ArgParser::num(const std::string &name, double fallback)
{
    const std::string *token = valueToken(name);
    return token ? parseNum(name, *token) : fallback;
}

std::vector<double>
ArgParser::numList(const std::string &name,
                   std::vector<double> fallback)
{
    const std::string *token = valueToken(name);
    return token ? parseNumList(name, *token) : std::move(fallback);
}

std::vector<std::string>
ArgParser::strList(const std::string &name,
                   std::vector<std::string> fallback)
{
    const std::string *token = valueToken(name);
    return token ? parseStrList(*token) : std::move(fallback);
}

std::vector<std::string>
ArgParser::positionals() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < tokens_.size(); ++i)
        if (!consumed_[i])
            out.push_back(tokens_[i]);
    return out;
}

void
ArgParser::rejectUnknown(const std::string &context) const
{
    for (std::size_t i = 0; i < tokens_.size(); ++i)
        if (!consumed_[i] && tokens_[i].size() >= 2 &&
            tokens_[i][0] == '-' && tokens_[i][1] == '-')
            throw std::runtime_error("unknown flag '" + tokens_[i] +
                                     "' for " + context);
}

std::uint32_t
ArgParser::parseU32(const std::string &what, const std::string &token)
{
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(token, &pos);
        if (pos != token.size() ||
            v > std::numeric_limits<std::uint32_t>::max())
            throw std::invalid_argument(token);
        return std::uint32_t(v);
    } catch (const std::exception &) {
        throw std::runtime_error("bad value '" + token + "' for " +
                                 what +
                                 " (expected a non-negative integer)");
    }
}

double
ArgParser::parseNum(const std::string &what, const std::string &token)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(token, &pos);
        if (pos != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception &) {
        throw std::runtime_error("bad value '" + token + "' for " +
                                 what + " (expected a number)");
    }
}

std::vector<double>
ArgParser::parseNumList(const std::string &what,
                        const std::string &token)
{
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= token.size()) {
        std::size_t comma = token.find(',', start);
        if (comma == std::string::npos)
            comma = token.size();
        values.push_back(
            parseNum(what, token.substr(start, comma - start)));
        start = comma + 1;
    }
    return values;
}

std::vector<std::string>
ArgParser::parseStrList(const std::string &token)
{
    std::vector<std::string> values;
    std::size_t start = 0;
    while (start <= token.size()) {
        std::size_t comma = token.find(',', start);
        if (comma == std::string::npos)
            comma = token.size();
        values.push_back(token.substr(start, comma - start));
        start = comma + 1;
    }
    return values;
}

} // namespace nvmcache
