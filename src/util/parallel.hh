/**
 * @file
 * Parallel execution engine for the experiment layer.
 *
 * A fixed-size thread pool with a shared task queue plus a
 * futures-based parallelMap() that fans a job vector out across the
 * pool and reassembles the results in input order, so callers get
 * deterministic, order-stable output regardless of which worker
 * finishes first. Exceptions thrown by a job are captured in its
 * future and rethrown from parallelMap() on the calling thread.
 *
 * Concurrency is selected once per process by defaultJobs()
 * (the NVMCACHE_JOBS environment variable, falling back to
 * std::thread::hardware_concurrency()) and can be overridden per
 * call; jobs <= 1 runs every task inline on the calling thread with
 * no pool at all, which keeps the serial path zero-overhead and
 * trivially deterministic.
 */

#ifndef NVMCACHE_UTIL_PARALLEL_HH
#define NVMCACHE_UTIL_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/trace_events.hh"

namespace nvmcache {

/**
 * Concurrency to use when the caller does not specify one:
 * NVMCACHE_JOBS if set to a positive integer, otherwise
 * std::thread::hardware_concurrency(), never less than 1.
 */
unsigned defaultJobs();

/**
 * LLC set shards to use when a replay run does not specify a count:
 * NVMCACHE_SHARDS if set to a positive integer, otherwise 1. The
 * conservative fallback (unlike defaultJobs()) keeps intra-run
 * threading opt-in: shards multiply the experiment layer's cross-run
 * jobs fan-out, so turning both on by default would oversubscribe.
 */
unsigned defaultShards();

/** what() of @p e, or a placeholder for non-std exceptions. */
std::string describeException(std::exception_ptr e);

/**
 * Terminal failure handling shared by parallelMap instantiations:
 * rethrow a lone failure unchanged, aggregate several into one
 * runtime_error carrying the count and the first few messages.
 * @p failed holds the failures in input order; no-op when empty.
 */
void throwJobFailures(const std::vector<std::exception_ptr> &failed,
                      std::size_t totalJobs);

/**
 * Fixed pool of worker threads draining one shared task queue.
 *
 * Work items are type-erased thunks; submit() wraps any callable in a
 * packaged task and returns the matching future. The pool joins its
 * workers on destruction after finishing all queued tasks.
 */
class ThreadPool
{
  public:
    /** @param jobs  worker count; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned jobs() const { return unsigned(workers_.size()); }

    /** Queue one callable; the future reports its result/exception. */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

  private:
    void enqueue(std::function<void()> thunk);
    void workerLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::function<void()>> queue_; ///< FIFO via head index
    std::size_t head_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Apply @p fn to every element of @p items, running up to @p jobs
 * applications concurrently, and return the results in input order.
 *
 * Failures surface after all jobs finish: a single failed job
 * rethrows its original exception unchanged; multiple failures throw
 * one std::runtime_error aggregating the failure count and the first
 * few messages (in input order), so no job's diagnostic is silently
 * dropped. jobs <= 1 executes inline with no threads, so the first
 * failure propagates immediately.
 */
template <typename T, typename Fn>
auto
parallelMap(unsigned jobs, const std::vector<T> &items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    using R = std::invoke_result_t<Fn, const T &>;
    std::vector<R> results;
    results.reserve(items.size());

    // Jobs run under the caller's trace context on both paths below:
    // TraceTaskScope installs the identical per-index child context
    // inline and on the pool, so a trace's semantic content does not
    // depend on the job count.
    const TraceContext traceParent = TraceContext::current();

    if (jobs <= 1 || items.size() <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i) {
            TraceTaskScope task(traceParent, i);
            results.push_back(fn(items[i]));
        }
        return results;
    }

    std::vector<std::exception_ptr> failed;
    {
        ThreadPool pool(std::min<std::size_t>(jobs, items.size()));
        std::vector<std::future<R>> futures;
        futures.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i)
            futures.push_back(
                pool.submit([&fn, &item = items[i], traceParent, i]() {
                    TraceTaskScope task(traceParent, i);
                    return fn(item);
                }));
        // Drain every future (in order) even if one throws, so the
        // pool never destructs with tasks still touching caller
        // state; every failure is collected and reported together.
        for (std::future<R> &fut : futures) {
            try {
                results.push_back(fut.get());
            } catch (...) {
                failed.push_back(std::current_exception());
            }
        }
        // The pool joins its workers here, before any captured
        // exception is inspected: a worker releases its task state
        // (and with it a shared exception-message buffer) after the
        // future becomes ready, so reading messages while workers
        // still run would race with that teardown.
    }
    throwJobFailures(failed, items.size());
    return results;
}

/** parallelMap() at the process-default concurrency. */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    return parallelMap(defaultJobs(), items, fn);
}

} // namespace nvmcache

#endif // NVMCACHE_UTIL_PARALLEL_HH
