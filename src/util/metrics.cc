#include "util/metrics.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace nvmcache {

std::string
toString(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Distribution:
        return "distribution";
    }
    panic("bad StatKind");
}

double
DistributionSnapshot::stdev() const
{
    if (count < 2)
        return 0.0;
    return std::sqrt(std::max(0.0, m2) / double(count));
}

double
DistributionSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return minimum;
    if (q >= 1.0)
        return maximum;
    // Rank of the requested quantile among the count samples, then a
    // cumulative walk to the bucket holding that rank.
    const double rank = q * double(count);
    double below = 0.0;
    for (const auto &[bucket, n] : buckets) {
        const double above = below + double(n);
        if (rank <= above) {
            const double low = Distribution::bucketLow(bucket);
            const double high = Distribution::bucketHigh(bucket);
            const double frac = (rank - below) / double(n);
            const double est = low + frac * (high - low);
            return std::min(maximum, std::max(minimum, est));
        }
        below = above;
    }
    return maximum;
}

StatValue
StatValue::counter(std::uint64_t v)
{
    StatValue sv;
    sv.kind = StatKind::Counter;
    sv.scalar = double(v);
    return sv;
}

StatValue
StatValue::gauge(double v)
{
    StatValue sv;
    sv.kind = StatKind::Gauge;
    sv.scalar = v;
    return sv;
}

StatValue
Counter::value() const
{
    return StatValue::counter(get());
}

void
Gauge::add(double delta)
{
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
}

StatValue
Gauge::value() const
{
    return StatValue::gauge(get());
}

// --- Distribution ----------------------------------------------------

Distribution::Distribution(const Distribution &other)
{
    *this = other;
}

Distribution &
Distribution::operator=(const Distribution &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    acc_ = other.acc_;
    buckets_ = other.buckets_;
    return *this;
}

double
Distribution::bucketLow(int b)
{
    return b <= 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

double
Distribution::bucketHigh(int b)
{
    return b <= 0 ? 1.0 : std::ldexp(1.0, b);
}

void
Distribution::add(double x)
{
    std::lock_guard<std::mutex> lock(mu_);
    acc_.add(x);
    ++buckets_[std::size_t(bucketOf(x))];
}

void
Distribution::merge(const Distribution &other)
{
    merge(other.snapshot());
}

void
Distribution::merge(const DistributionSnapshot &snap)
{
    if (snap.count == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    acc_.merge(Accumulator::fromState(snap.count, snap.sum,
                                      snap.minimum, snap.maximum,
                                      snap.mean, snap.m2));
    for (const auto &[bucket, n] : snap.buckets)
        if (bucket >= 0 && bucket < kBuckets)
            buckets_[std::size_t(bucket)] += n;
}

DistributionSnapshot
Distribution::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    DistributionSnapshot snap;
    snap.count = acc_.count();
    snap.sum = acc_.total();
    snap.minimum = acc_.minimum();
    snap.maximum = acc_.maximum();
    snap.mean = acc_.welfordMean();
    snap.m2 = acc_.sumSquaredDev();
    for (int b = 0; b < kBuckets; ++b)
        if (buckets_[std::size_t(b)])
            snap.buckets[b] = buckets_[std::size_t(b)];
    return snap;
}

DistributionSnapshot
LocalDistribution::snapshot() const
{
    DistributionSnapshot snap;
    snap.count = acc_.count();
    snap.sum = acc_.total();
    snap.minimum = acc_.minimum();
    snap.maximum = acc_.maximum();
    snap.mean = acc_.welfordMean();
    snap.m2 = acc_.sumSquaredDev();
    for (int b = 0; b < Distribution::kBuckets; ++b)
        if (buckets_[std::size_t(b)])
            snap.buckets[b] = buckets_[std::size_t(b)];
    return snap;
}

StatValue
Distribution::value() const
{
    StatValue sv;
    sv.kind = StatKind::Distribution;
    sv.dist = snapshot();
    return sv;
}

// --- snapshot / export ----------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

StatsFormat
parseStatsFormat(const std::string &name)
{
    if (name == "json")
        return StatsFormat::Json;
    if (name == "csv")
        return StatsFormat::Csv;
    fatal("unknown stats format '", name, "' (expected json or csv)");
}

namespace {

/** Shortest decimal form that round-trips a double. */
std::string
numberToJson(double v)
{
    if (!std::isfinite(v))
        // JSON has no Inf/NaN literals; null keeps the document valid.
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) {
        // Try shorter forms for readability.
        for (int prec = 1; prec <= 16; ++prec) {
            char shorter[40];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
            std::sscanf(shorter, "%lf", &back);
            if (back == v)
                return shorter;
        }
    }
    return buf;
}

std::string
scalarToJson(const StatValue &v)
{
    if (v.kind == StatKind::Counter) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)(v.scalar));
        return buf;
    }
    return numberToJson(v.scalar);
}

void
distToJson(std::ostringstream &os, const DistributionSnapshot &d,
           const std::string &indent)
{
    const std::string in2 = indent + "  ";
    os << "{\n";
    os << in2 << "\"count\": " << d.count << ",\n";
    os << in2 << "\"sum\": " << numberToJson(d.sum) << ",\n";
    os << in2 << "\"min\": " << numberToJson(d.minimum) << ",\n";
    os << in2 << "\"max\": " << numberToJson(d.maximum) << ",\n";
    os << in2 << "\"mean\": " << numberToJson(d.mean) << ",\n";
    os << in2 << "\"stdev\": " << numberToJson(d.stdev()) << ",\n";
    os << in2 << "\"p50\": " << numberToJson(d.percentile(0.50))
       << ",\n";
    os << in2 << "\"p95\": " << numberToJson(d.percentile(0.95))
       << ",\n";
    os << in2 << "\"p99\": " << numberToJson(d.percentile(0.99))
       << ",\n";
    os << in2 << "\"buckets\": [";
    bool first = true;
    for (const auto &[bucket, n] : d.buckets) {
        if (!first)
            os << ",";
        first = false;
        os << "\n"
           << in2 << "  {\"low\": "
           << numberToJson(Distribution::bucketLow(bucket))
           << ", \"high\": "
           << numberToJson(Distribution::bucketHigh(bucket))
           << ", \"count\": " << n << "}";
    }
    if (!first)
        os << "\n" << in2;
    os << "]\n" << indent << "}";
}

/** Path-tree node rebuilt from the flat dotted entries. */
struct TreeNode
{
    const StatValue *value = nullptr;
    std::map<std::string, TreeNode> children;
};

TreeNode
buildTree(const std::map<std::string, StatValue> &entries)
{
    TreeNode root;
    for (const auto &[path, value] : entries) {
        TreeNode *node = &root;
        std::size_t start = 0;
        while (true) {
            const std::size_t dot = path.find('.', start);
            const std::string seg =
                path.substr(start, dot == std::string::npos
                                       ? std::string::npos
                                       : dot - start);
            node = &node->children[seg];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        node->value = &value;
    }
    return root;
}

void
nodeToJson(std::ostringstream &os, const TreeNode &node,
           const std::string &indent)
{
    // A node that is only a leaf prints its value in place; a node
    // that is both a leaf and a subtree keeps its value under the
    // reserved "_self" key.
    if (node.value && node.children.empty()) {
        if (node.value->kind == StatKind::Distribution)
            distToJson(os, node.value->dist, indent);
        else
            os << scalarToJson(*node.value);
        return;
    }
    const std::string in2 = indent + "  ";
    os << "{";
    bool first = true;
    auto key = [&](const std::string &name) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << in2 << "\"" << jsonEscape(name) << "\": ";
    };
    if (node.value) {
        key("_self");
        if (node.value->kind == StatKind::Distribution)
            distToJson(os, node.value->dist, in2);
        else
            os << scalarToJson(*node.value);
    }
    for (const auto &[name, child] : node.children) {
        key(name);
        nodeToJson(os, child, in2);
    }
    if (!first)
        os << "\n" << indent;
    os << "}";
}

void
nodeToTree(std::ostringstream &os, const TreeNode &node, int depth)
{
    for (const auto &[name, child] : node.children) {
        os << std::string(std::size_t(depth) * 2, ' ') << name;
        if (child.value) {
            const StatValue &v = *child.value;
            os << ": ";
            if (v.kind == StatKind::Distribution) {
                const DistributionSnapshot &d = v.dist;
                os << "count=" << d.count
                   << " mean=" << numberToJson(d.mean)
                   << " stdev=" << numberToJson(d.stdev())
                   << " min=" << numberToJson(d.minimum)
                   << " max=" << numberToJson(d.maximum);
            } else {
                os << scalarToJson(v);
            }
        }
        os << "\n";
        nodeToTree(os, child, depth + 1);
    }
}

/** CSV-quote a field if it contains separators or quotes. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
StatsSnapshot::set(const std::string &path, StatValue value)
{
    entries[path] = std::move(value);
}

void
StatsSnapshot::setCounter(const std::string &path, std::uint64_t v)
{
    entries[path] = StatValue::counter(v);
}

void
StatsSnapshot::setGauge(const std::string &path, double v)
{
    entries[path] = StatValue::gauge(v);
}

void
StatsSnapshot::merge(const StatsSnapshot &other)
{
    for (const auto &[path, value] : other.entries)
        entries[path] = value;
}

void
StatsSnapshot::mergeSum(const StatsSnapshot &other)
{
    for (const auto &[path, value] : other.entries) {
        auto [it, inserted] = entries.try_emplace(path, value);
        if (inserted)
            continue;
        StatValue &mine = it->second;
        if (mine.kind != value.kind)
            panic("StatsSnapshot::mergeSum: kind mismatch at '", path,
                  "'");
        switch (value.kind) {
          case StatKind::Counter:
          case StatKind::Gauge:
            mine.scalar += value.scalar;
            break;
          case StatKind::Distribution: {
            Distribution combined;
            combined.merge(mine.dist);
            combined.merge(value.dist);
            mine.dist = combined.snapshot();
            break;
          }
        }
    }
}

StatsSnapshot
StatsSnapshot::withPrefix(const std::string &prefix) const
{
    StatsSnapshot out;
    for (const auto &[path, value] : entries)
        out.entries[prefix + "." + path] = value;
    return out;
}

StatsSnapshot
StatsSnapshot::diff(const StatsSnapshot &before) const
{
    StatsSnapshot out;
    for (const auto &[path, value] : entries) {
        auto it = before.entries.find(path);
        if (it == before.entries.end() ||
            it->second.kind != value.kind) {
            out.entries[path] = value;
            continue;
        }
        const StatValue &prev = it->second;
        StatValue delta = value;
        switch (value.kind) {
          case StatKind::Counter:
            delta.scalar = value.scalar - prev.scalar;
            break;
          case StatKind::Gauge:
            // Gauges are instantaneous readings: keep the latest.
            break;
          case StatKind::Distribution: {
            const DistributionSnapshot &all = value.dist;
            const DistributionSnapshot &old = prev.dist;
            DistributionSnapshot d;
            if (all.count >= old.count && old.count > 0) {
                d.count = all.count - old.count;
                if (d.count == 0) {
                    delta.dist = DistributionSnapshot();
                    break;
                }
                d.sum = all.sum - old.sum;
                // Invert Chan's combination: with A = old, B = delta,
                //   mean = meanA + (nB/n)(meanB - meanA)
                //   m2   = m2A + m2B + (meanB-meanA)^2 nA nB / n
                const double n = double(all.count);
                const double na = double(old.count);
                const double nb = double(d.count);
                d.mean = old.mean + (all.mean - old.mean) * n / nb;
                const double dm = d.mean - old.mean;
                d.m2 = all.m2 - old.m2 - dm * dm * na * nb / n;
                if (d.m2 < 0.0)
                    d.m2 = 0.0;
                // Extrema are not invertible; report the full-window
                // extrema as the best available bound.
                d.minimum = all.minimum;
                d.maximum = all.maximum;
                d.buckets = all.buckets;
                for (const auto &[bucket, cnt] : old.buckets) {
                    auto bit = d.buckets.find(bucket);
                    if (bit == d.buckets.end())
                        continue;
                    if (bit->second <= cnt)
                        d.buckets.erase(bit);
                    else
                        bit->second -= cnt;
                }
            } else {
                d = all;
            }
            delta.dist = d;
            break;
          }
        }
        out.entries[path] = delta;
    }
    return out;
}

std::string
StatsSnapshot::toJson() const
{
    std::ostringstream os;
    TreeNode root = buildTree(entries);
    if (root.children.empty() && !root.value) {
        os << "{}";
    } else {
        nodeToJson(os, root, "");
    }
    os << "\n";
    return os.str();
}

std::string
StatsSnapshot::toCsv() const
{
    std::ostringstream os;
    os << "path,kind,value,count,sum,min,max,mean,stdev,p50,p95,p99\n";
    for (const auto &[path, value] : entries) {
        os << csvField(path) << "," << toString(value.kind) << ",";
        if (value.kind == StatKind::Distribution) {
            const DistributionSnapshot &d = value.dist;
            os << "," << d.count << "," << numberToJson(d.sum) << ","
               << numberToJson(d.minimum) << ","
               << numberToJson(d.maximum) << ","
               << numberToJson(d.mean) << ","
               << numberToJson(d.stdev()) << ","
               << numberToJson(d.percentile(0.50)) << ","
               << numberToJson(d.percentile(0.95)) << ","
               << numberToJson(d.percentile(0.99));
        } else {
            os << scalarToJson(value) << ",,,,,,,,,";
        }
        os << "\n";
    }
    return os.str();
}

std::string
StatsSnapshot::toPrettyTree() const
{
    std::ostringstream os;
    TreeNode root = buildTree(entries);
    nodeToTree(os, root, 0);
    return os.str();
}

namespace {

/** Dotted path -> Prometheus metric name under @p prefix. */
std::string
promName(const std::string &prefix, const std::string &path)
{
    std::string out = prefix.empty() ? "" : prefix + "_";
    for (char c : path) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

/** Sample value in Prometheus syntax (Inf/NaN have literals here). */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return numberToJson(v);
}

} // namespace

std::string
StatsSnapshot::toPrometheus(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[path, value] : entries) {
        const std::string name = promName(prefix, path);
        switch (value.kind) {
          case StatKind::Counter:
            os << "# TYPE " << name << " counter\n";
            os << name << " " << scalarToJson(value) << "\n";
            break;
          case StatKind::Gauge:
            os << "# TYPE " << name << " gauge\n";
            os << name << " " << promNumber(value.scalar) << "\n";
            break;
          case StatKind::Distribution: {
            const DistributionSnapshot &d = value.dist;
            os << "# TYPE " << name << " summary\n";
            for (double q : {0.5, 0.95, 0.99})
                os << name << "{quantile=\"" << numberToJson(q)
                   << "\"} " << promNumber(d.percentile(q)) << "\n";
            os << name << "_sum " << promNumber(d.sum) << "\n";
            os << name << "_count " << d.count << "\n";
            break;
          }
        }
    }
    return os.str();
}

void
ensureParentDir(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec)
        fatal("cannot create directory '", parent.string(),
              "' for output file '", path, "': ", ec.message());
}

void
writeStatsFile(const std::string &path, const StatsSnapshot &snap,
               StatsFormat format)
{
    ensureParentDir(path);
    std::ofstream out(path);
    if (!out)
        fatal("cannot open stats output file '", path, "'");
    out << (format == StatsFormat::Json ? snap.toJson()
                                        : snap.toCsv());
    if (!out)
        fatal("failed writing stats output file '", path, "'");
}

// --- registry --------------------------------------------------------

namespace {

void
validatePath(const std::string &path)
{
    if (path.empty())
        panic("metrics: empty stat path");
    if (path.front() == '.' || path.back() == '.' ||
        path.find("..") != std::string::npos)
        panic("metrics: malformed stat path '", path, "'");
}

} // namespace

template <typename T>
T &
MetricsRegistry::get(const std::string &path)
{
    validatePath(path);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stats_.find(path);
    if (it == stats_.end())
        it = stats_.emplace(path, std::make_unique<T>()).first;
    T *stat = dynamic_cast<T *>(it->second.get());
    if (!stat)
        panic("metrics: stat '", path, "' already registered as ",
              toString(it->second->kind()));
    return *stat;
}

Counter &
MetricsRegistry::counter(const std::string &path)
{
    return get<Counter>(path);
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    return get<Gauge>(path);
}

Distribution &
MetricsRegistry::distribution(const std::string &path)
{
    return get<Distribution>(path);
}

StatsSnapshot
MetricsRegistry::snapshot() const
{
    StatsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[path, stat] : stats_)
        snap.entries[path] = stat->value();
    return snap;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.size();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// --- phase timer -----------------------------------------------------

PhaseTimer::PhaseTimer(std::string path, MetricsRegistry &registry)
    : path_(std::move(path)), registry_(registry),
      start_(std::chrono::steady_clock::now())
{
}

double
PhaseTimer::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

PhaseTimer::~PhaseTimer()
{
    registry_.distribution(path_).add(elapsedSeconds());
}

// --- progress reporting ----------------------------------------------

namespace {

struct ProgressState
{
    std::mutex mu;
    bool enabled = false;
    bool active = false;
    std::string label;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
};

ProgressState &
progressState()
{
    static ProgressState state;
    return state;
}

void
redrawLocked(ProgressState &st)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "[%s] %llu/%llu runs",
                  st.label.c_str(), (unsigned long long)st.done,
                  (unsigned long long)st.total);
    statusLine(buf);
}

} // namespace

void
setProgressEnabled(bool on)
{
    ProgressState &st = progressState();
    std::lock_guard<std::mutex> lock(st.mu);
    st.enabled = on;
}

bool
progressEnabled()
{
    ProgressState &st = progressState();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.enabled;
}

void
progressBegin(const std::string &label, std::uint64_t total)
{
    ProgressState &st = progressState();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.enabled)
        return;
    st.active = true;
    st.label = label;
    st.total = total;
    st.done = 0;
    redrawLocked(st);
}

void
progressTick(std::uint64_t n)
{
    ProgressState &st = progressState();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.enabled || !st.active)
        return;
    st.done += n;
    redrawLocked(st);
}

void
progressEnd()
{
    ProgressState &st = progressState();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.enabled || !st.active)
        return;
    st.active = false;
    redrawLocked(st);
    statusEnd();
}

} // namespace nvmcache
