/**
 * @file
 * LEB128 varint and zigzag coding shared by the packed trace stores
 * (workload/recorded_trace, sim/private_trace).
 *
 * Streams are sequences of varints appended with putVarint and read
 * back with getVarint / getVarintFast. The fast decoder reads one
 * unaligned 8-byte window per varint, so any buffer it decodes must
 * keep kVarintPad readable (zero) bytes after the last varint.
 */

#ifndef NVMCACHE_UTIL_VARINT_HH
#define NVMCACHE_UTIL_VARINT_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace nvmcache {

/**
 * Zero bytes to append after a varint stream so getVarintFast may
 * always load a full 8-byte window at any varint start.
 */
constexpr std::size_t kVarintPad = 8;

/** LEB128: 7 value bits per byte, high bit = continuation. */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(std::uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(std::uint8_t(v));
}

/** Byte-loop decode; needs no padding past the varint's own bytes. */
inline std::uint64_t
getVarint(const std::uint8_t *&p)
{
    std::uint8_t byte = *p++;
    std::uint64_t v = byte & 0x7f;
    unsigned shift = 7;
    while (byte & 0x80) {
        byte = *p++;
        v |= std::uint64_t(byte & 0x7f) << shift;
        shift += 7;
    }
    return v;
}

/**
 * Branch-light decode: load one 8-byte window (safe under kVarintPad
 * padding), locate the terminator byte with one bit scan, and
 * compress the 7-bit groups with straight-line shifts. Little-endian
 * only — the window load must place the first stream byte in the low
 * lane — and varints of 9+ bytes take the byte-loop fallback.
 * Decodes the same bytes to the same value as getVarint.
 */
inline std::uint64_t
getVarintFast(const std::uint8_t *&p)
{
    if constexpr (std::endian::native != std::endian::little)
        return getVarint(p);
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    if (!(w & 0x80)) { // 1-byte varint: the common case by far
        ++p;
        return w & 0x7f;
    }
    const std::uint64_t stops = ~w & 0x8080808080808080ull;
    if (stops == 0) // 9+ byte varint
        return getVarint(p);
    const unsigned nbytes =
        unsigned(std::countr_zero(stops) >> 3) + 1;
    p += nbytes;
    w &= ~std::uint64_t(0) >> (64 - 8 * nbytes);
    std::uint64_t v = w & 0x7f;
    v |= (w >> 1) & (std::uint64_t(0x7f) << 7);
    v |= (w >> 2) & (std::uint64_t(0x7f) << 14);
    v |= (w >> 3) & (std::uint64_t(0x7f) << 21);
    v |= (w >> 4) & (std::uint64_t(0x7f) << 28);
    v |= (w >> 5) & (std::uint64_t(0x7f) << 35);
    v |= (w >> 6) & (std::uint64_t(0x7f) << 42);
    v |= (w >> 7) & (std::uint64_t(0x7f) << 49);
    return v;
}

/** Map signed deltas to small unsigned values (zigzag). */
inline std::uint64_t
zigzag(std::int64_t d)
{
    return (std::uint64_t(d) << 1) ^ std::uint64_t(d >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t z)
{
    return std::int64_t(z >> 1) ^ -std::int64_t(z & 1);
}

} // namespace nvmcache

#endif // NVMCACHE_UTIL_VARINT_HH
