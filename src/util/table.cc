#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace nvmcache {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::startRow(const std::string &label)
{
    rowLabels_.push_back(label);
    cells_.emplace_back();
}

void
Table::addCell(const std::string &text)
{
    if (cells_.empty())
        panic("Table::addCell before startRow");
    cells_.back().push_back({text, std::nullopt});
}

void
Table::addCell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    if (cells_.empty())
        panic("Table::addCell before startRow");
    cells_.back().push_back({buf, value});
}

void
Table::addCell(const std::string &text, double value)
{
    if (cells_.empty())
        panic("Table::addCell before startRow");
    cells_.back().push_back({text, value});
}

void
Table::addBlank()
{
    if (cells_.empty())
        panic("Table::addBlank before startRow");
    cells_.back().push_back({"", std::nullopt});
}

std::optional<double>
Table::shade(std::size_t r, std::size_t c) const
{
    if (heatmap_ == Heatmap::None)
        return std::nullopt;
    const auto &cell = cells_[r][c];
    if (!cell.value)
        return std::nullopt;

    double lo = 0.0, hi = 0.0;
    bool first = true;
    auto scan = [&](const Cell &other) {
        if (!other.value)
            return;
        if (first) {
            lo = hi = *other.value;
            first = false;
        } else {
            lo = std::min(lo, *other.value);
            hi = std::max(hi, *other.value);
        }
    };
    if (heatmap_ == Heatmap::PerRow) {
        for (const auto &other : cells_[r])
            scan(other);
    } else {
        for (const auto &row : cells_)
            if (c < row.size())
                scan(row[c]);
    }
    if (first || hi == lo)
        return std::nullopt;
    return (*cell.value - lo) / (hi - lo);
}

void
Table::print(std::ostream &os) const
{
    // Column widths: label column + data columns.
    std::size_t label_w = 0;
    for (const auto &l : rowLabels_)
        label_w = std::max(label_w, l.size());
    if (!header_.empty())
        label_w = std::max(label_w, header_.front().size());

    std::size_t ncols = 0;
    for (const auto &row : cells_)
        ncols = std::max(ncols, row.size());
    std::vector<std::size_t> widths(ncols, 0);
    for (std::size_t c = 0; c < ncols; ++c) {
        if (c + 1 < header_.size())
            widths[c] = header_[c + 1].size();
        for (const auto &row : cells_)
            if (c < row.size())
                widths[c] = std::max(widths[c], row[c].text.size());
    }

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto pad = [&](const std::string &s, std::size_t w) {
        std::string out = s;
        while (out.size() < w)
            out.push_back(' ');
        return out;
    };

    if (!header_.empty()) {
        os << pad(header_.empty() ? "" : header_.front(), label_w);
        for (std::size_t c = 0; c < ncols; ++c)
            os << " | "
               << pad(c + 1 < header_.size() ? header_[c + 1] : "",
                      widths[c]);
        os << "\n";
        os << std::string(label_w, '-');
        for (std::size_t c = 0; c < ncols; ++c)
            os << "-+-" << std::string(widths[c], '-');
        os << "\n";
    }

    for (std::size_t r = 0; r < cells_.size(); ++r) {
        os << pad(rowLabels_[r], label_w);
        for (std::size_t c = 0; c < ncols; ++c) {
            std::string text =
                c < cells_[r].size() ? cells_[r][c].text : "";
            os << " | ";
            auto s = color_ ? shade(r, c) : std::nullopt;
            if (s) {
                // Coloured backgrounds hurt readability; use a
                // blue->red foreground ramp instead.
                int idx = int(std::lround(*s * 4.0)); // 0..4
                static const int ramp[5] = {39, 75, 250, 208, 196};
                os << "\x1b[38;5;" << ramp[idx] << "m"
                   << pad(text, widths[c]) << "\x1b[0m";
            } else {
                os << pad(text, widths[c]);
            }
        }
        os << "\n";
    }
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out.push_back(ch);
        }
        out += "\"";
        return out;
    };

    std::ostringstream os;
    if (!header_.empty()) {
        for (std::size_t i = 0; i < header_.size(); ++i)
            os << (i ? "," : "") << escape(header_[i]);
        os << "\n";
    }
    for (std::size_t r = 0; r < cells_.size(); ++r) {
        os << escape(rowLabels_[r]);
        for (const auto &cell : cells_[r])
            os << "," << escape(cell.text);
        os << "\n";
    }
    return os.str();
}

} // namespace nvmcache
