#include "util/logging.hh"

#include <cstdio>
#include <mutex>

namespace nvmcache {
namespace detail {

namespace {

/**
 * One process-wide sink guard so messages from concurrent experiment
 * jobs never interleave mid-line. Each emit is a single formatted
 * write under the lock; fatal/panic keep holding it while the process
 * dies so their last words stay intact.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

void
statusLine(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(detail::sinkMutex());
    std::fprintf(stderr, "\r\x1b[2K%s", msg.c_str());
    std::fflush(stderr);
}

void
statusEnd()
{
    std::lock_guard<std::mutex> lock(detail::sinkMutex());
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace nvmcache
