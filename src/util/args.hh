/**
 * @file
 * Typed command-line flag parsing, shared by the nvmcache CLI and the
 * bench harness binaries (this consolidates the previously duplicated
 * helpers in tools/nvmcache_cli.cc and bench/bench_util.hh).
 *
 * ArgParser wraps the raw token list: each accessor consumes the
 * named flag (and its value, for valued flags) and every parse
 * failure throws std::runtime_error naming the flag and the offending
 * token — the same diagnostics the CLI has always printed. After all
 * known flags are consumed, positionals() returns the remaining
 * non-flag tokens in order and rejectUnknown() turns any leftover
 * "--flag" into a diagnostic, so misspelled options fail loudly
 * instead of being silently ignored.
 */

#ifndef NVMCACHE_UTIL_ARGS_HH
#define NVMCACHE_UTIL_ARGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvmcache {

class ArgParser
{
  public:
    ArgParser(int argc, char **argv, int first = 1);
    explicit ArgParser(std::vector<std::string> tokens);

    /** True (and consumed) when "--name" appears anywhere. */
    bool flag(const std::string &name);

    /** Value of "--name VALUE"; @p fallback when absent. */
    std::string str(const std::string &name, std::string fallback);
    std::uint32_t u32(const std::string &name, std::uint32_t fallback);
    double num(const std::string &name, double fallback);

    /** Comma-separated list value, e.g. "--ber-scale 1,8,64". */
    std::vector<double> numList(const std::string &name,
                                std::vector<double> fallback);
    std::vector<std::string> strList(const std::string &name,
                                     std::vector<std::string> fallback);

    /** Unconsumed non-flag tokens, in order. */
    std::vector<std::string> positionals() const;

    /**
     * Throws listing any unconsumed "--flag" token, naming
     * @p context (typically the subcommand). Call after all known
     * flags have been consumed.
     */
    void rejectUnknown(const std::string &context) const;

    // Token-level parsers, reusable outside flag context (e.g. for
    // "key=value" study parameters). All throw std::runtime_error
    // naming @p what on garbage.
    static std::uint32_t parseU32(const std::string &what,
                                  const std::string &token);
    static double parseNum(const std::string &what,
                           const std::string &token);
    static std::vector<double> parseNumList(const std::string &what,
                                            const std::string &token);
    static std::vector<std::string>
    parseStrList(const std::string &token);

  private:
    /** Index of the first unconsumed "--name"; npos when absent. */
    std::size_t findFlag(const std::string &name);
    /** Value token following flag @p name; nullptr when flag absent. */
    const std::string *valueToken(const std::string &name);

    std::vector<std::string> tokens_;
    std::vector<bool> consumed_;
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_ARGS_HH
