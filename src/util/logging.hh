/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * fatal() is for user error (bad configuration, impossible request):
 * it prints and exits with code 1. panic() is for internal invariant
 * violations (a bug in this library): it prints and aborts. warn() and
 * inform() never stop execution.
 */

#ifndef NVMCACHE_UTIL_LOGGING_HH
#define NVMCACHE_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace nvmcache {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Redraw the transient console status line (carriage-return rewrite,
 * no trailing newline). Serialized against every other sink write, so
 * concurrent jobs never shred the line. Used by the metrics layer's
 * progress reporter.
 */
void statusLine(const std::string &msg);

/** Release the status line (terminates it with a newline). */
void statusEnd();

/** Terminate due to a user-caused condition (exit(1)). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(__builtin_FILE(), __builtin_LINE(),
                      detail::concat(std::forward<Args>(args)...));
}

/** Terminate due to an internal bug (abort()). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(__builtin_FILE(), __builtin_LINE(),
                      detail::concat(std::forward<Args>(args)...));
}

/** Alert the user to questionable-but-survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Plain status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace nvmcache

#endif // NVMCACHE_UTIL_LOGGING_HH
