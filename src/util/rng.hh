/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** rather than std::mt19937 because (a) it is faster
 * for the trace-generation inner loop and (b) its output is identical
 * across standard library implementations, which keeps experiment
 * results bit-reproducible on any platform.
 */

#ifndef NVMCACHE_UTIL_RNG_HH
#define NVMCACHE_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace nvmcache {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator so it can also be plugged into
 * <random> distributions when convenient.
 */
/**
 * Derive a statistically independent seed for sub-stream @p stream of
 * a generator family seeded with @p base (splitmix64 over the pair).
 *
 * This is the one sanctioned way to seed per-thread / per-job
 * generators: every (base, stream) pair maps to a well-mixed seed, so
 * parallel experiment jobs can each own an Rng whose output is
 * independent of job scheduling and identical across reruns.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/**
 * Map raw 64-bit randomness onto [0, 1) with full double precision
 * (53 high bits). This is the shared uniform-mapping used by
 * Rng::uniform() and by counter-based draw schemes (sim/faults.hh)
 * that hash an event index instead of advancing generator state.
 */
inline double
toUnitInterval(std::uint64_t bits)
{
    return double(bits >> 11) * 0x1.0p-53;
}

class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed deterministically; two Rng(seed) instances always agree. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) with rejection to avoid bias. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t inRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Geometric-ish gap: 1 + floor of exponential with given mean. */
    std::uint64_t exponentialGap(double mean);

  private:
    std::uint64_t state_[4];
};

/**
 * O(1) Zipf(s) sampler over {0, ..., n-1} using the rejection-inversion
 * method of Hormann and Derflinger. Rank 0 is the most popular item.
 *
 * Used to draw "hot set" addresses whose popularity skew (and hence
 * address entropy) is controlled by the exponent: s -> 0 approaches
 * uniform (maximum entropy), larger s concentrates mass on few
 * addresses (low entropy).
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items; must be >= 1.
     * @param s Skew exponent; s >= 0, s == 1 handled specially.
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one rank in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t items() const { return n_; }
    double skew() const { return s_; }

    /** Shannon entropy (bits) of the exact Zipf pmf (O(n), for tests). */
    double exactEntropyBits() const;

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double s_;
    double hx0_; ///< h(0.5), left edge of the envelope support
    double hn_;  ///< h(n + 0.5), right edge
};

/**
 * Sampler over an arbitrary discrete distribution via the alias method.
 * Construction is O(n); each draw is O(1).
 */
class DiscreteSampler
{
  public:
    /** Weights need not be normalized; all must be >= 0, sum > 0. */
    explicit DiscreteSampler(const std::vector<double> &weights);

    std::size_t operator()(Rng &rng) const;

    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_RNG_HH
