/**
 * @file
 * Small numerical-statistics helpers shared by the characterization and
 * correlation frameworks.
 */

#ifndef NVMCACHE_UTIL_STATS_HH
#define NVMCACHE_UTIL_STATS_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace nvmcache {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stdevPop(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive inputs. */
double geomean(const std::vector<double> &xs);

/**
 * Pearson linear correlation coefficient in [-1, 1].
 *
 * Returns 0 when either series is constant (the correlation is
 * undefined there; 0 keeps downstream heatmaps well-behaved, matching
 * how the paper's framework treats degenerate feature columns).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Spearman rank correlation (Pearson over ranks, average-tie ranks). */
double spearman(const std::vector<double> &xs, const std::vector<double> &ys);

/** Linear least squares fit y = a + b x. Returns {a, b}. */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;
};
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/**
 * Streaming min/max/mean/count accumulator used by simulator stats.
 *
 * Variance is maintained with Welford's online algorithm (numerically
 * stable regardless of the magnitude of the samples), so the same
 * accumulator backs both quick min/max summaries and the metrics
 * layer's Distribution without a second mean implementation.
 */
class Accumulator
{
  public:
    void
    add(double x)
    {
        if (n_ == 0) {
            min_ = max_ = x;
        } else {
            min_ = std::min(min_, x);
            max_ = std::max(max_, x);
        }
        sum_ += x;
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / double(n_);
        m2_ += delta * (x - mean_);
    }

    /** Fold another accumulator in (Chan's parallel combination). */
    void merge(const Accumulator &other);

    std::size_t count() const { return n_; }
    double total() const { return sum_; }
    double average() const { return n_ ? sum_ / double(n_) : 0.0; }
    double minimum() const { return min_; }
    double maximum() const { return max_; }

    /** Population variance; 0 for fewer than 2 samples. */
    double variance() const { return n_ < 2 ? 0.0 : m2_ / double(n_); }
    /** Population standard deviation; 0 for fewer than 2 samples. */
    double stdev() const;

    /** Welford running mean (exactly the mean used for variance). */
    double welfordMean() const { return mean_; }
    /** Sum of squared deviations from the running mean. */
    double sumSquaredDev() const { return m2_; }

    /**
     * Rebuild an accumulator from exported summary state (used when
     * merging or diffing StatsSnapshot distribution entries).
     */
    static Accumulator fromState(std::size_t n, double sum, double min,
                                 double max, double mean, double m2);

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0; ///< Welford running mean
    double m2_ = 0.0;   ///< Welford sum of squared deviations
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_STATS_HH
