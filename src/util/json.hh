/**
 * @file
 * Minimal JSON value model for the service wire protocol and the
 * structured study results.
 *
 * JsonValue is a small tagged union over the six JSON kinds. Objects
 * are std::map (sorted keys) and numbers serialize via the shortest
 * round-trip representation (std::to_chars), so dump() is fully
 * deterministic: two equal values always produce byte-identical text.
 * That determinism is load-bearing — the batch service's acceptance
 * check compares server-returned study results byte-for-byte against
 * the direct CLI path.
 *
 * parse() accepts standard JSON (RFC 8259): nested containers,
 * string escapes including \uXXXX (encoded to UTF-8), and the usual
 * number grammar. Errors throw std::runtime_error naming the byte
 * offset, because protocol lines come from untrusted clients.
 */

#ifndef NVMCACHE_UTIL_JSON_HH
#define NVMCACHE_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvmcache {

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;          ///< Array elements
    std::map<std::string, JsonValue> members; ///< Object (sorted)

    JsonValue() = default;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member, or nullptr when absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object member; throws naming @p key when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Typed accessors; throw std::runtime_error on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Member of @p key as a string, or @p fallback when absent. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    /** Member of @p key as a number, or @p fallback when absent. */
    double numberOr(const std::string &key, double fallback) const;
    /** Member of @p key as a bool, or @p fallback when absent. */
    bool boolOr(const std::string &key, bool fallback) const;

    /** Set (insert or replace) an object member. */
    void set(const std::string &key, JsonValue v);

    /** Append an array element. */
    void push(JsonValue v);

    /**
     * Compact, deterministic serialization: sorted object keys, no
     * whitespace, shortest round-trip numbers. Never contains a
     * newline, so one dump() is always one protocol line.
     */
    std::string dump() const;

    /** Parse @p text; throws std::runtime_error with a byte offset. */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &) const = default;
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_JSON_HH
