/**
 * @file
 * Little-endian byte-stream primitives for binary record payloads
 * (the persistent result store's SimStats and trace codecs).
 *
 * WireWriter appends fixed-width little-endian fields to a string;
 * WireReader walks one back with bounds checking, throwing
 * std::runtime_error naming the defect on truncation. Doubles travel
 * as their raw IEEE-754 bit pattern (via uint64), so every value
 * round-trips bit-exactly — the store's warm-loaded results must be
 * byte-identical to freshly simulated ones.
 */

#ifndef NVMCACHE_UTIL_WIRE_HH
#define NVMCACHE_UTIL_WIRE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace nvmcache {

class WireWriter
{
  public:
    void
    putU8(std::uint8_t v)
    {
        out_.push_back(char(v));
    }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(char((v >> (8 * i)) & 0xFF));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(char((v >> (8 * i)) & 0xFF));
    }

    void
    putI64(std::int64_t v)
    {
        putU64(std::uint64_t(v));
    }

    /** Raw IEEE-754 bit pattern; bit-exact round trip, NaNs included. */
    void
    putF64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(bits);
    }

    void
    putBytes(const void *data, std::size_t n)
    {
        out_.append(static_cast<const char *>(data), n);
    }

    /** Length-prefixed string/blob. */
    void
    putStr(const std::string &s)
    {
        putU64(s.size());
        out_.append(s);
    }

    std::string take() { return std::move(out_); }
    const std::string &buffer() const { return out_; }

  private:
    std::string out_;
};

class WireReader
{
  public:
    explicit WireReader(const std::string &data) : data_(data) {}

    std::uint8_t
    getU8()
    {
        need(1);
        return std::uint8_t(data_[pos_++]);
    }

    std::uint32_t
    getU32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(data_[pos_++])) << (8 * i);
        return v;
    }

    std::uint64_t
    getU64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(data_[pos_++])) << (8 * i);
        return v;
    }

    std::int64_t getI64() { return std::int64_t(getU64()); }

    double
    getF64()
    {
        const std::uint64_t bits = getU64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    getStr()
    {
        const std::uint64_t n = getU64();
        need(n);
        std::string s(data_, pos_, std::size_t(n));
        pos_ += std::size_t(n);
        return s;
    }

    /** Bytes left unread (0 after a fully-consumed payload). */
    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throws unless the whole payload was consumed. */
    void
    expectEnd() const
    {
        if (remaining() != 0)
            throw std::runtime_error(
                "wire payload has " + std::to_string(remaining()) +
                " trailing bytes");
    }

  private:
    void
    need(std::uint64_t n) const
    {
        if (pos_ + n > data_.size())
            throw std::runtime_error(
                "wire payload truncated (want " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + " of " +
                std::to_string(data_.size()) + ")");
    }

    const std::string &data_;
    std::size_t pos_ = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_UTIL_WIRE_HH
