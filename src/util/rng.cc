#include "util/rng.hh"

#include <cmath>
#include <cstddef>

#include "util/logging.hh"

namespace nvmcache {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Two dependent splitmix64 steps: mix the stream id into the base
    // state, then mix again so adjacent (base, stream) pairs land far
    // apart. Collisions between distinct pairs are as unlikely as for
    // any 64-bit hash.
    std::uint64_t x = base ^ (stream * 0xbf58476d1ce4e5b9ull);
    std::uint64_t s = splitmix64(x);
    x ^= s;
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    return toUnitInterval((*this)());
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below(0)");
    // Lemire-style rejection.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::inRange(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo)
        panic("Rng::inRange: hi < lo");
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::exponentialGap(double mean)
{
    if (mean <= 0.0)
        return 1;
    double u = uniform();
    // Guard log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return 1 + std::uint64_t(-mean * std::log(u));
}

// --- ZipfSampler -----------------------------------------------------

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
    : n_(n), s_(s)
{
    if (n == 0)
        panic("ZipfSampler: n must be >= 1");
    if (s < 0.0)
        panic("ZipfSampler: negative skew");
    // Envelope: a continuous density over [0.5, n+0.5] whose mass on
    // [k-0.5, k+0.5] is h(k+0.5) - h(k-0.5) >= k^-s (x^-s is convex),
    // so plain rejection against the true pmf is valid.
    hx0_ = h(0.5);
    hn_ = h(double(n_) + 0.5);
}

double
ZipfSampler::h(double x) const
{
    // Antiderivative of x^{-s}.
    if (s_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double
ZipfSampler::hInv(double x) const
{
    if (s_ == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    if (s_ == 0.0)
        return rng.below(n_);
    // Rejection-inversion over the continuous envelope.
    for (;;) {
        double u = hx0_ + rng.uniform() * (hn_ - hx0_);
        double x = hInv(u);
        std::uint64_t k = std::uint64_t(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        // The envelope assigns k a mass of h(k+0.5) - h(k-0.5); the
        // true (unnormalized) pmf is k^-s. Since x^-s is convex, the
        // envelope mass is always >= k^-s, so the acceptance ratio
        // pmf/envelope lies in (0, 1].
        double envelope = h(double(k) + 0.5) - h(double(k) - 0.5);
        double accept = std::pow(double(k), -s_) / envelope;
        if (rng.uniform() <= accept)
            return k - 1;
    }
}

double
ZipfSampler::exactEntropyBits() const
{
    double z = 0.0;
    for (std::uint64_t k = 1; k <= n_; ++k)
        z += std::pow(double(k), -s_);
    double hbits = 0.0;
    for (std::uint64_t k = 1; k <= n_; ++k) {
        double p = std::pow(double(k), -s_) / z;
        if (p > 0.0)
            hbits -= p * std::log2(p);
    }
    return hbits;
}

// --- DiscreteSampler -------------------------------------------------

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    if (n == 0)
        panic("DiscreteSampler: empty weights");
    double sum = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("DiscreteSampler: negative weight");
        sum += w;
    }
    if (sum <= 0.0)
        panic("DiscreteSampler: zero total weight");

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * double(n) / sum;
        (scaled[i] < 1.0 ? small : large).push_back(std::uint32_t(i));
    }
    while (!small.empty() && !large.empty()) {
        std::uint32_t s = small.back();
        small.pop_back();
        std::uint32_t l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::uint32_t i : large)
        prob_[i] = 1.0;
    for (std::uint32_t i : small)
        prob_[i] = 1.0;
}

std::size_t
DiscreteSampler::operator()(Rng &rng) const
{
    std::size_t i = rng.below(prob_.size());
    return rng.uniform() < prob_[i] ? i : alias_[i];
}

} // namespace nvmcache
