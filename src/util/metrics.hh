/**
 * @file
 * Hierarchical statistics registry in the gem5/Sniper idiom.
 *
 * Every subsystem publishes named stats under dotted paths
 * ("sim.llc.writeHits", "runner.memo.hits") instead of growing ad-hoc
 * struct fields. Three stat kinds cover the simulator's needs:
 *
 *  - Counter:      monotonic event count (atomic, lock-free).
 *  - Gauge:        last-written / accumulated double (atomic).
 *  - Distribution: log-2 bucketed histogram with min/max/mean/stdev
 *                  maintained by the Welford Accumulator (stats.hh).
 *
 * A MetricsRegistry maps dotted paths to stats with stable addresses,
 * so hot paths hold a reference and never re-look a path up. The
 * process-wide MetricsRegistry::global() carries cross-run stats
 * (runner.*, estimator.*, phase.*); per-run simulation stats are
 * exported into a fresh local registry and carried in SimStats, which
 * keeps them bit-identical at any experiment-engine concurrency.
 *
 * StatsSnapshot freezes a registry into plain values that can be
 * diffed against an earlier snapshot (exact per-run deltas even when
 * components are reused), merged across runs, and exported as JSON, as
 * CSV, or as a pretty console tree.
 *
 * PhaseTimer is an RAII wall-clock scope timer recording seconds into
 * a Distribution ("phase.<name>"), and a small opt-in progress
 * reporter shows live run counts during long sweeps, serialized
 * through the logging sinks so concurrent jobs never shred the line.
 */

#ifndef NVMCACHE_UTIL_METRICS_HH
#define NVMCACHE_UTIL_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.hh"

namespace nvmcache {

/** Kind of one stat / exported snapshot entry. */
enum class StatKind
{
    Counter,
    Gauge,
    Distribution
};

std::string toString(StatKind kind);

/** Frozen state of one Distribution. */
struct DistributionSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double minimum = 0.0;
    double maximum = 0.0;
    double mean = 0.0; ///< Welford running mean
    double m2 = 0.0;   ///< Welford sum of squared deviations
    /** log-2 bucket index -> sample count (only non-empty buckets). */
    std::map<int, std::uint64_t> buckets;

    double stdev() const;

    /**
     * Estimated @p q-quantile (q in [0,1]) by cumulative walk of the
     * log-2 buckets with linear interpolation inside the crossing
     * bucket, clamped to the observed [minimum, maximum]. 0 when the
     * distribution is empty.
     */
    double percentile(double q) const;

    bool operator==(const DistributionSnapshot &) const = default;
};

/** Frozen value of one stat. */
struct StatValue
{
    StatKind kind = StatKind::Counter;
    double scalar = 0.0;       ///< Counter/Gauge value
    DistributionSnapshot dist; ///< Distribution only

    static StatValue counter(std::uint64_t v);
    static StatValue gauge(double v);

    bool operator==(const StatValue &) const = default;
};

/** Base of every registry-owned stat. */
class Stat
{
  public:
    virtual ~Stat() = default;
    virtual StatKind kind() const = 0;
    virtual StatValue value() const = 0;
};

/** Monotonic event counter; lock-free and thread-safe. */
class Counter : public Stat
{
  public:
    void inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t get() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    StatKind kind() const override { return StatKind::Counter; }
    StatValue value() const override;

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written / accumulated double; thread-safe. */
class Gauge : public Stat
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double delta);
    double get() const { return v_.load(std::memory_order_relaxed); }

    StatKind kind() const override { return StatKind::Gauge; }
    StatValue value() const override;

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Log-2 bucketed histogram with streaming moments.
 *
 * Bucket 0 holds samples < 1 (including 0); bucket k >= 1 holds
 * [2^(k-1), 2^k). Samples are expected non-negative (cycle counts,
 * depths, seconds); negative samples land in bucket 0 but still feed
 * the moment accumulator faithfully.
 */
class Distribution : public Stat
{
  public:
    static constexpr int kBuckets = 64;

    Distribution() = default;
    Distribution(const Distribution &other);
    Distribution &operator=(const Distribution &other);

    void add(double x);
    /** Fold another distribution in (exact under Chan combination). */
    void merge(const Distribution &other);
    void merge(const DistributionSnapshot &snap);

    DistributionSnapshot snapshot() const;

    /** Bucket index a sample lands in. */
    static int
    bucketOf(double x)
    {
        if (!(x >= 1.0)) // < 1, zero, negative, NaN
            return 0;
        const int b = std::ilogb(x) + 1;
        return b >= kBuckets ? kBuckets - 1 : b;
    }
    /** Inclusive lower edge of bucket @p b. */
    static double bucketLow(int b);
    /** Exclusive upper edge of bucket @p b. */
    static double bucketHigh(int b);

    StatKind kind() const override { return StatKind::Distribution; }
    StatValue value() const override;

  private:
    mutable std::mutex mu_;
    Accumulator acc_;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

/**
 * Unsynchronized twin of Distribution for single-owner hot paths
 * (per-access simulator histograms): identical sample semantics —
 * the same Welford accumulator and the same buckets, fed in the same
 * order, reach the same state bit for bit — without the per-sample
 * mutex round trip. Publish it by merging its snapshot() into a
 * registry Distribution at export time.
 */
class LocalDistribution
{
  public:
    void
    add(double x)
    {
        acc_.add(x);
        ++buckets_[std::size_t(Distribution::bucketOf(x))];
    }

    DistributionSnapshot snapshot() const;

  private:
    Accumulator acc_;
    std::array<std::uint64_t, Distribution::kBuckets> buckets_{};
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** On-disk format of an exported stats report. */
enum class StatsFormat
{
    Json,
    Csv
};

/**
 * Parse "json"/"csv" (fatal on anything else: it is a user-supplied
 * CLI value).
 */
StatsFormat parseStatsFormat(const std::string &name);

/**
 * A frozen, path-sorted stats report.
 *
 * Entries are flat dotted paths; the JSON exporter rebuilds the tree
 * by splitting on dots. Snapshots compose: diff() yields exact
 * per-interval deltas of counters and distributions, merge() overlays
 * another report (path collision keeps the other's entry), and
 * mergeSum() accumulates another report into this one (counters and
 * gauges add, distributions combine), which is how a study aggregates
 * per-run SimStats details into one figure-level report.
 */
class StatsSnapshot
{
  public:
    std::map<std::string, StatValue> entries;

    bool empty() const { return entries.empty(); }

    void set(const std::string &path, StatValue value);
    void setCounter(const std::string &path, std::uint64_t v);
    void setGauge(const std::string &path, double v);

    /** Overlay @p other; colliding paths take other's entry. */
    void merge(const StatsSnapshot &other);
    /** Accumulate @p other (counters/gauges add, distributions merge). */
    void mergeSum(const StatsSnapshot &other);
    /** Copy with every path prefixed by "@p prefix.". */
    StatsSnapshot withPrefix(const std::string &prefix) const;

    /**
     * Exact delta since @p before: counters subtract, distributions
     * invert the Chan combination (count/sum/mean/m2/buckets are
     * exact; min/max keep this snapshot's values since extrema are not
     * invertible). Gauges and entries absent from @p before pass
     * through unchanged.
     */
    StatsSnapshot diff(const StatsSnapshot &before) const;

    /** Nested pretty-printed JSON tree. */
    std::string toJson() const;
    /** Flat CSV: path,kind,value,count,sum,min,max,mean,stdev,p50,p95,p99. */
    std::string toCsv() const;
    /** Indented console tree. */
    std::string toPrettyTree() const;
    /**
     * Prometheus text exposition (text/plain version 0.0.4): dotted
     * paths become underscore-joined metric names under @p prefix,
     * counters/gauges one sample each, distributions a summary
     * (quantile-labeled samples plus _sum and _count).
     */
    std::string toPrometheus(const std::string &prefix = "nvmcache") const;

    bool operator==(const StatsSnapshot &) const = default;
};

/**
 * Create @p path's missing parent directories, fatal with both the
 * directory and the requested file named when creation fails. Shared
 * by every --stats-out / --trace-out style writer.
 */
void ensureParentDir(const std::string &path);

/** Write a report to @p path in @p format (fatal on I/O failure). */
void writeStatsFile(const std::string &path, const StatsSnapshot &snap,
                    StatsFormat format);

/**
 * Thread-safe hierarchical stats registry.
 *
 * Stats are created on first request and live as long as the registry;
 * returned references are stable, so hot paths resolve a path once.
 * Requesting an existing path with a different kind is a programming
 * error (panic).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    Distribution &distribution(const std::string &path);

    StatsSnapshot snapshot() const;

    std::size_t size() const;

    /** Process-wide registry (runner.*, estimator.*, phase.*). */
    static MetricsRegistry &global();

  private:
    template <typename T>
    T &get(const std::string &path);

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Stat>> stats_;
};

/**
 * RAII wall-clock scope timer: records elapsed seconds into
 * @p registry's Distribution at @p path on destruction.
 */
class PhaseTimer
{
  public:
    explicit PhaseTimer(std::string path,
                        MetricsRegistry &registry =
                            MetricsRegistry::global());
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    double elapsedSeconds() const;

  private:
    std::string path_;
    MetricsRegistry &registry_;
    std::chrono::steady_clock::time_point start_;
};

// --- progress reporting (opt-in, console) ---------------------------

/** Globally enable/disable the live progress line (default off). */
void setProgressEnabled(bool on);
bool progressEnabled();

/**
 * Start a progress phase of @p total work items. No-op while
 * reporting is disabled. Thread-safe; the line is redrawn through the
 * logging sink lock so it never interleaves with warn()/inform().
 */
void progressBegin(const std::string &label, std::uint64_t total);
/** Mark @p n items of the current phase done and redraw. */
void progressTick(std::uint64_t n = 1);
/** Finish the current phase and release the console line. */
void progressEnd();

} // namespace nvmcache

#endif // NVMCACHE_UTIL_METRICS_HH
