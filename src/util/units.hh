/**
 * @file
 * Unit conventions and conversion helpers used across the library.
 *
 * All physical quantities are stored in a single canonical unit per
 * dimension and converted only at I/O boundaries:
 *   - time:     seconds      (double)
 *   - energy:   joules       (double)
 *   - power:    watts        (double)
 *   - current:  amperes      (double)
 *   - voltage:  volts        (double)
 *   - area:     square metres(double)
 *   - capacity: bytes        (uint64_t)
 *
 * The literal helpers below make call sites self-documenting, e.g.
 * `20_ns`, `0.6_mA`, `2_MB`.
 */

#ifndef NVMCACHE_UTIL_UNITS_HH
#define NVMCACHE_UTIL_UNITS_HH

#include <cstdint>

namespace nvmcache {

// Scale factors (multiply literal -> canonical unit).
inline constexpr double kPico = 1e-12;
inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline namespace literals {

// --- time -> seconds ---
constexpr double operator""_ps(long double v) { return double(v) * kPico; }
constexpr double operator""_ns(long double v) { return double(v) * kNano; }
constexpr double operator""_us(long double v) { return double(v) * kMicro; }
constexpr double operator""_ms(long double v) { return double(v) * kMilli; }
constexpr double operator""_s(long double v) { return double(v); }
constexpr double operator""_ns(unsigned long long v)
{
    return double(v) * kNano;
}

// --- energy -> joules ---
constexpr double operator""_pJ(long double v) { return double(v) * kPico; }
constexpr double operator""_nJ(long double v) { return double(v) * kNano; }
constexpr double operator""_uJ(long double v) { return double(v) * kMicro; }
constexpr double operator""_J(long double v) { return double(v); }

// --- power -> watts ---
constexpr double operator""_uW(long double v) { return double(v) * kMicro; }
constexpr double operator""_mW(long double v) { return double(v) * kMilli; }
constexpr double operator""_W(long double v) { return double(v); }

// --- current -> amperes ---
constexpr double operator""_uA(long double v) { return double(v) * kMicro; }
constexpr double operator""_mA(long double v) { return double(v) * kMilli; }

// --- voltage -> volts ---
constexpr double operator""_V(long double v) { return double(v); }
constexpr double operator""_mV(long double v) { return double(v) * kMilli; }

// --- area -> square metres ---
constexpr double operator""_mm2(long double v) { return double(v) * 1e-6; }
constexpr double operator""_um2(long double v) { return double(v) * 1e-12; }

// --- frequency -> hertz ---
constexpr double operator""_GHz(long double v) { return double(v) * kGiga; }
constexpr double operator""_MHz(long double v) { return double(v) * kMega; }

// --- capacity -> bytes ---
constexpr std::uint64_t operator""_KB(unsigned long long v)
{
    return v * 1024ull;
}
constexpr std::uint64_t operator""_MB(unsigned long long v)
{
    return v * 1024ull * 1024ull;
}
constexpr std::uint64_t operator""_GB(unsigned long long v)
{
    return v * 1024ull * 1024ull * 1024ull;
}

} // namespace literals

/** Convert canonical seconds to nanoseconds for display. */
constexpr double toNs(double seconds) { return seconds / kNano; }
/** Convert canonical joules to nanojoules for display. */
constexpr double toNJ(double joules) { return joules / kNano; }
/** Convert canonical square metres to mm^2 for display. */
constexpr double toMm2(double m2) { return m2 * 1e6; }
/** Convert bytes to mebibytes for display. */
constexpr double toMB(std::uint64_t bytes)
{
    return double(bytes) / double(1024ull * 1024ull);
}

} // namespace nvmcache

#endif // NVMCACHE_UTIL_UNITS_HH
