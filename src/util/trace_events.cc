#include "util/trace_events.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace nvmcache {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
} // namespace trace_detail

namespace {

/**
 * Per-thread chunked event storage. The owning thread is the only
 * writer: it fills slot count_ of the chunk list and then publishes
 * with a release store, so a concurrent exporter reading count_ with
 * acquire ordering sees fully constructed events. Chunks never
 * reallocate (fixed arrays), so published element addresses are
 * stable; the chunk-list vector itself is guarded by chunkMu_, taken
 * only when a chunk is allocated (once per kChunkSize events) and by
 * readers.
 */
class TraceBuffer
{
  public:
    static constexpr std::size_t kChunkSize = 4096;
    /** Soft cap per thread; beyond it events count as dropped. */
    static constexpr std::size_t kMaxEvents = std::size_t(1) << 20;

    explicit TraceBuffer(std::uint32_t tid) : tid_(tid) {}

    std::uint32_t tid() const { return tid_; }

    bool
    append(TraceEvent &&ev)
    {
        const std::size_t idx = count_.load(std::memory_order_relaxed);
        if (idx >= kMaxEvents)
            return false;
        const std::size_t chunk = idx / kChunkSize;
        {
            std::lock_guard<std::mutex> lock(chunkMu_);
            while (chunks_.size() <= chunk)
                chunks_.push_back(
                    std::make_unique<TraceEvent[]>(kChunkSize));
        }
        ev.tid = tid_;
        chunks_[chunk][idx % kChunkSize] = std::move(ev);
        count_.store(idx + 1, std::memory_order_release);
        return true;
    }

    std::size_t
    published() const
    {
        return count_.load(std::memory_order_acquire);
    }

    void
    collect(std::vector<TraceEvent> &out, std::uint64_t traceId) const
    {
        const std::size_t n = published();
        std::lock_guard<std::mutex> lock(chunkMu_);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &ev = chunks_[i / kChunkSize]
                                          [i % kChunkSize];
            if (traceId == 0 || ev.traceId == traceId)
                out.push_back(ev);
        }
    }

    void
    clear()
    {
        count_.store(0, std::memory_order_release);
    }

  private:
    std::uint32_t tid_;
    std::atomic<std::size_t> count_{0};
    mutable std::mutex chunkMu_;
    std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
};

struct Collector
{
    std::mutex mu;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> nextTraceId{1};
};

Collector &
collector()
{
    static Collector c;
    return c;
}

TraceBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<TraceBuffer> buf = [] {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mu);
        auto b = std::make_shared<TraceBuffer>(
            std::uint32_t(c.buffers.size()));
        c.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

/** Microseconds on the shared steady clock since the process epoch. */
std::int64_t
nowMicros()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
emit(TraceEvent &&ev)
{
    if (!threadBuffer().append(std::move(ev)))
        collector().dropped.fetch_add(1, std::memory_order_relaxed);
}

TraceContext &
threadContext()
{
    thread_local TraceContext ctx;
    return ctx;
}

} // namespace

void
setTracingEnabled(bool on)
{
    trace_detail::g_enabled.store(on, std::memory_order_relaxed);
}

const TraceContext &
TraceContext::current()
{
    return threadContext();
}

TraceContext
TraceContext::child(const std::string &segment) const
{
    TraceContext c;
    c.path = path.empty() ? segment : path + "/" + segment;
    c.traceId = traceId;
    return c;
}

TraceScope::TraceScope(TraceContext ctx)
{
    if (!tracingEnabled())
        return;
    active_ = true;
    saved_ = threadContext();
    threadContext() = std::move(ctx);
}

TraceScope::~TraceScope()
{
    if (active_)
        threadContext() = std::move(saved_);
}

TraceSpan::TraceSpan(const char *name, const char *cat, std::string id)
{
    if (!tracingEnabled())
        return;
    live_ = true;
    name_ = name;
    cat_ = cat;
    id_ = std::move(id);
    traceId_ = threadContext().traceId;
    start_ = nowMicros();
}

TraceSpan::~TraceSpan()
{
    if (!live_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Span;
    ev.traceId = traceId_;
    ev.ts = start_;
    ev.dur = nowMicros() - start_;
    ev.name = name_;
    ev.cat = cat_;
    ev.id = std::move(id_);
    emit(std::move(ev));
}

TraceTaskScope::TraceTaskScope(const TraceContext &parent,
                               std::size_t index)
{
    if (!tracingEnabled())
        return;
    live_ = true;
    saved_ = threadContext();
    TraceContext job = parent.child("job" + std::to_string(index));
    id_ = job.path;
    traceId_ = job.traceId;
    threadContext() = std::move(job);
    start_ = nowMicros();
}

TraceTaskScope::~TraceTaskScope()
{
    if (!live_)
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Span;
    ev.traceId = traceId_;
    ev.ts = start_;
    ev.dur = nowMicros() - start_;
    ev.name = "parallel.job";
    ev.cat = "engine";
    ev.id = std::move(id_);
    threadContext() = std::move(saved_);
    emit(std::move(ev));
}

void
traceInstant(const char *name, const char *cat, std::string id)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Instant;
    ev.traceId = threadContext().traceId;
    ev.ts = nowMicros();
    ev.name = name;
    ev.cat = cat;
    ev.id = std::move(id);
    emit(std::move(ev));
}

void
traceCounter(const char *name, const char *cat, std::string id,
             double value)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Counter;
    ev.traceId = threadContext().traceId;
    ev.ts = nowMicros();
    ev.value = value;
    ev.name = name;
    ev.cat = cat;
    ev.id = std::move(id);
    emit(std::move(ev));
}

void
traceSimCounter(const char *name, std::string id,
                std::uint64_t simCycles, double value)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.kind = TraceEventKind::Counter;
    ev.simTime = true;
    ev.traceId = threadContext().traceId;
    ev.ts = std::int64_t(simCycles);
    ev.value = value;
    ev.name = name;
    ev.cat = "sim";
    ev.id = std::move(id);
    emit(std::move(ev));
}

std::string
traceHashId(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    static const char *hex = "0123456789abcdef";
    for (int i = 15; i >= 0; --i) {
        buf[i] = hex[h & 0xf];
        h >>= 4;
    }
    buf[16] = '\0';
    return buf;
}

std::uint64_t
newTraceId()
{
    return collector().nextTraceId.fetch_add(
        1, std::memory_order_relaxed);
}

std::size_t
traceEventCount()
{
    Collector &c = collector();
    std::vector<std::shared_ptr<TraceBuffer>> bufs;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        bufs = c.buffers;
    }
    std::size_t n = 0;
    for (const auto &b : bufs)
        n += b->published();
    return n;
}

std::uint64_t
traceDroppedCount()
{
    return collector().dropped.load(std::memory_order_relaxed);
}

void
clearTraceEvents()
{
    Collector &c = collector();
    std::vector<std::shared_ptr<TraceBuffer>> bufs;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        bufs = c.buffers;
    }
    for (const auto &b : bufs)
        b->clear();
    c.dropped.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent>
snapshotTraceEvents(std::uint64_t traceId)
{
    Collector &c = collector();
    std::vector<std::shared_ptr<TraceBuffer>> bufs;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        bufs = c.buffers;
    }
    std::vector<TraceEvent> out;
    for (const auto &b : bufs)
        b->collect(out, traceId);

    // Content order, never wall-clock order: the simulated-time axis
    // (sim counters) participates, the host clock does not, so two
    // runs of the same configuration sort identically.
    std::stable_sort(
        out.begin(), out.end(),
        [](const TraceEvent &a, const TraceEvent &b) {
            if (a.cat != b.cat)
                return a.cat < b.cat;
            if (a.id != b.id)
                return a.id < b.id;
            if (a.name != b.name)
                return a.name < b.name;
            if (a.kind != b.kind)
                return a.kind < b.kind;
            const std::int64_t ats = a.simTime ? a.ts : 0;
            const std::int64_t bts = b.simTime ? b.ts : 0;
            if (ats != bts)
                return ats < bts;
            if (a.value != b.value)
                return a.value < b.value;
            return a.traceId < b.traceId;
        });
    return out;
}

namespace {

JsonValue
eventToJson(const TraceEvent &ev)
{
    JsonValue e = JsonValue::makeObject();
    e.set("name", JsonValue::makeString(ev.name));
    e.set("cat", JsonValue::makeString(ev.cat));
    e.set("pid", JsonValue::makeNumber(ev.simTime ? 2.0 : 1.0));
    e.set("tid", JsonValue::makeNumber(double(ev.tid)));
    e.set("ts", JsonValue::makeNumber(double(ev.ts)));
    JsonValue args = JsonValue::makeObject();
    switch (ev.kind) {
      case TraceEventKind::Span:
        e.set("ph", JsonValue::makeString("X"));
        e.set("dur", JsonValue::makeNumber(double(ev.dur)));
        args.set("id", JsonValue::makeString(ev.id));
        break;
      case TraceEventKind::Instant:
        e.set("ph", JsonValue::makeString("i"));
        e.set("s", JsonValue::makeString("t"));
        args.set("id", JsonValue::makeString(ev.id));
        break;
      case TraceEventKind::Counter:
        e.set("ph", JsonValue::makeString("C"));
        // Chrome/Perfetto key counter tracks on (pid, name, id): the
        // top-level id keeps each run's series separate.
        e.set("id", JsonValue::makeString(ev.id));
        args.set("value", JsonValue::makeNumber(ev.value));
        break;
    }
    if (ev.traceId)
        args.set("trace", JsonValue::makeString(
                              "t" + std::to_string(ev.traceId)));
    e.set("args", std::move(args));
    return e;
}

} // namespace

JsonValue
traceEventsToJson(std::uint64_t traceId)
{
    JsonValue doc = JsonValue::makeObject();
    JsonValue events = JsonValue::makeArray();

    JsonValue wall = JsonValue::makeObject();
    wall.set("name", JsonValue::makeString("process_name"));
    wall.set("ph", JsonValue::makeString("M"));
    wall.set("pid", JsonValue::makeNumber(1.0));
    JsonValue wallArgs = JsonValue::makeObject();
    wallArgs.set("name",
                 JsonValue::makeString("nvmcache wall-clock"));
    wall.set("args", std::move(wallArgs));
    events.push(std::move(wall));

    JsonValue sim = JsonValue::makeObject();
    sim.set("name", JsonValue::makeString("process_name"));
    sim.set("ph", JsonValue::makeString("M"));
    sim.set("pid", JsonValue::makeNumber(2.0));
    JsonValue simArgs = JsonValue::makeObject();
    simArgs.set("name", JsonValue::makeString(
                            "nvmcache simulated-time (cycles)"));
    sim.set("args", std::move(simArgs));
    events.push(std::move(sim));

    for (const TraceEvent &ev : snapshotTraceEvents(traceId))
        events.push(eventToJson(ev));
    doc.set("traceEvents", std::move(events));
    const std::uint64_t dropped = traceDroppedCount();
    if (dropped)
        doc.set("droppedEvents",
                JsonValue::makeNumber(double(dropped)));
    return doc;
}

std::string
exportTraceJson(std::uint64_t traceId)
{
    return traceEventsToJson(traceId).dump();
}

void
writeTraceFile(const std::string &path, std::uint64_t traceId)
{
    ensureParentDir(path);
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '", path, "'");
    out << exportTraceJson(traceId) << "\n";
    if (!out)
        fatal("failed writing trace output file '", path, "'");
}

} // namespace nvmcache
