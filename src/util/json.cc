#include "util/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/metrics.hh" // jsonEscape

namespace nvmcache {

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double x)
{
    JsonValue v;
    v.kind = Kind::Number;
    v.number = x;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind = Kind::String;
    v.string = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::runtime_error("json: missing member '" + key + "'");
    return *v;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        throw std::runtime_error("json: value is not a bool");
    return boolean;
}

double
JsonValue::asNumber() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("json: value is not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw std::runtime_error("json: value is not a string");
    return string;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean : fallback;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    kind = Kind::Object;
    members[key] = std::move(v);
}

void
JsonValue::push(JsonValue v)
{
    kind = Kind::Array;
    items.push_back(std::move(v));
}

namespace {

/** Shortest round-trip double; JSON has no NaN/Inf, emit null. */
void
dumpNumber(std::string &out, double x)
{
    if (!std::isfinite(x)) {
        out += "null";
        return;
    }
    char buf[40];
    auto r = std::to_chars(buf, buf + sizeof(buf), x);
    out.append(buf, r.ptr);
}

void
dumpValue(std::string &out, const JsonValue &v)
{
    switch (v.kind) {
    case JsonValue::Kind::Null:
        out += "null";
        return;
    case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        return;
    case JsonValue::Kind::Number:
        dumpNumber(out, v.number);
        return;
    case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.string);
        out += '"';
        return;
    case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &e : v.items) {
            if (!first)
                out += ',';
            first = false;
            dumpValue(out, e);
        }
        out += ']';
        return;
    }
    case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, member] : v.members) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            dumpValue(out, member);
        }
        out += '}';
        return;
    }
    }
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    value()
    {
        skipSpace();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return JsonValue::makeString(stringLiteral());
        case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return JsonValue::makeBool(true);
        case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return JsonValue::makeBool(false);
        case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return JsonValue::makeNull();
        default:
            return numberLiteral();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v = JsonValue::makeObject();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipSpace();
            std::string key = stringLiteral();
            skipSpace();
            expect(':');
            v.members[std::move(key)] = value();
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v = JsonValue::makeArray();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    unsigned
    hex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++pos_;
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= unsigned(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return code;
    }

    void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += char(code);
        } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
        } else {
            out += char(0xF0 | (code >> 18));
            out += char(0x80 | ((code >> 12) & 0x3F));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
        }
    }

    std::string
    stringLiteral()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = peek();
            ++pos_;
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                unsigned code = hex4();
                // Surrogate pair -> one code point.
                if (code >= 0xD800 && code <= 0xDBFF &&
                    pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                    text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    unsigned low = hex4();
                    if (low >= 0xDC00 && low <= 0xDFFF)
                        code = 0x10000 + ((code - 0xD800) << 10) +
                               (low - 0xDC00);
                    else
                        fail("bad surrogate pair");
                }
                appendUtf8(out, code);
                break;
            }
            default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    numberLiteral()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        double out = 0.0;
        auto r = std::from_chars(text_.data() + start,
                                 text_.data() + pos_, out);
        if (r.ec != std::errc() || r.ptr != text_.data() + pos_ ||
            pos_ == start)
            fail("bad number");
        return JsonValue::makeNumber(out);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
JsonValue::dump() const
{
    std::string out;
    dumpValue(out, *this);
    return out;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace nvmcache
