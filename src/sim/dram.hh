/**
 * @file
 * Main-memory model: 4 address-interleaved DRAM controllers, each
 * with a fixed device latency and a 7.6 GB/s bandwidth limit served
 * through a FIFO queue (paper Table IV).
 */

#ifndef NVMCACHE_SIM_DRAM_HH
#define NVMCACHE_SIM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.hh"

namespace nvmcache {

/** DRAM configuration (defaults mirror Table IV). */
struct DramConfig
{
    std::uint32_t numControllers = 4;
    double deviceLatency = 45e-9;        ///< s, closed-page access
    double bandwidthPerController = 7.6e9; ///< B/s
    std::uint32_t blockBytes = 64;
};

/**
 * Bandwidth-queued main memory. Time is carried in core cycles of the
 * caller's clock; the model converts internally using the configured
 * core frequency.
 */
class DramModel
{
  public:
    DramModel(const DramConfig &cfg, double coreFrequency);

    /**
     * A demand read of one block arriving at global cycle @p now.
     * @return total cycles until data returns (queueing + device).
     */
    std::uint64_t read(std::uint64_t addr, std::uint64_t now);

    /**
     * A posted write (LLC dirty eviction). Consumes bandwidth but the
     * caller does not wait for it.
     */
    void write(std::uint64_t addr, std::uint64_t now);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    /** Aggregate cycles requests spent waiting in controller queues. */
    std::uint64_t queueCycles() const { return queueCycles_; }

    /**
     * Publish read/write counters plus the per-request queueing-delay
     * and queue-depth (outstanding requests at arrival) distributions
     * under "<prefix>.*".
     */
    void exportStats(MetricsRegistry &reg,
                     const std::string &prefix) const;

  private:
    std::uint32_t controllerOf(std::uint64_t addr) const;
    /** Occupy the controller; returns service-start cycle. */
    std::uint64_t enqueue(std::uint32_t ctl, std::uint64_t now);

    DramConfig cfg_;
    std::uint64_t serviceCycles_; ///< bandwidth cost of one block
    std::uint64_t deviceCycles_;  ///< device access latency
    std::vector<std::uint64_t> freeAt_; ///< per-controller

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t queueCycles_ = 0;
    LocalDistribution queueDelayDist_; ///< wait cycles per request
    LocalDistribution queueDepthDist_; ///< backlogged requests at arrival
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_DRAM_HH
