/**
 * @file
 * Vectorized batch-replay kernel with set-sharded LLC classification.
 *
 * A single-source replay run fixes the global LLC operation order
 * upfront: the trace dictates every demand read and every recorded
 * L2 victim, and nothing the LLC decides feeds back into which
 * operation comes next. That splits the simulation into
 *
 *  1. a decode pass expanding the packed trace + private recording
 *     into SoA blocks (no per-access virtual dispatch or varint
 *     pointer chasing in the simulation loops),
 *  2. a classification pass running every operation's tag walk and
 *     fault draws — per-set state only — over K disjoint set shards,
 *     each on its own SharedLlc instance and thread, with the
 *     known-future addresses prefetched ahead of the walk, and
 *  3. a timing pass on the driving thread applying the precomputed
 *     decisions in global access order: core issue/stall arithmetic,
 *     bank reservations, DRAM queueing, energies and histograms.
 *
 * Determinism: per-set tag state and the counter-based per-line
 * fault draws only depend on the per-set operation subsequence,
 * which every shard processes in global order; all order-sensitive
 * accumulation (floating-point energies, Welford histograms, the
 * capacity-over-time sampler) happens in pass 3 in exactly the
 * fused demandRead/writeback order. SimStats are therefore
 * bit-identical to the per-access scheduler at any shard count.
 *
 * Multi-source runs interleave cores by local time, so shared-LLC
 * timing feeds back into the per-set operation order; they fall back
 * to the min-local-time scheduler (System::run).
 */

#include "sim/system.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

/** One LLC operation of a decoded block, in global access order. */
struct ReplayOp
{
    std::uint64_t addr = 0;
    LlcDecision d;
    bool isRead = false;
};

/**
 * Classification lookahead: the op list is known, so each tag walk
 * prefetches the set metadata this many ops ahead, converting the
 * latency-bound host-memory walk into a throughput-bound one.
 */
constexpr std::size_t kClassifyPrefetch = 16;

/**
 * Serial fast-path lookaheads: demand addresses far enough ahead to
 * cover a full access's simulation cost (matches the per-access
 * scheduler's tuned distance), recorded L2 victims a few writebacks
 * ahead.
 */
constexpr std::size_t kSerialPrefetch = 24;
constexpr std::size_t kWbPrefetch = 6;

/**
 * Resource guard on the shard count: each shard owns a full tag
 * array, fault state and worker thread, so an absurd request (say,
 * NVMCACHE_SHARDS=10000) clamps instead of exhausting memory.
 * Results are bit-identical at any clamp, so this is safe.
 */
constexpr std::uint32_t kMaxShards = 64;

/** Classify one shard's ops (in-order) on its SharedLlc instance. */
void
classifyOps(SharedLlc &llc, std::vector<ReplayOp> &ops,
            const std::uint32_t *index, std::size_t count)
{
    for (std::size_t k = 0; k < count; ++k) {
        if (k + kClassifyPrefetch < count)
            llc.prefetchTag(ops[index[k + kClassifyPrefetch]].addr);
        ReplayOp &op = ops[index[k]];
        op.d = op.isRead ? llc.classifyRead(op.addr)
                         : llc.classifyWriteback(op.addr);
    }
}

} // namespace

SimStats
System::runReplay(const std::vector<ReplaySource *> &sources,
                  const PrivateTrace *privateTrace)
{
    if (sources.empty())
        fatal("System::runReplay: no threads");
    MetricsRegistry &greg = MetricsRegistry::global();

    if (sources.size() != 1 || privateTrace == nullptr ||
        privateTrace->threads() != sources.size() ||
        !cfg_.batchReplay) {
        // Multi-source interleaving feeds shared-resource timing
        // back into the per-set operation order, so decisions cannot
        // be precomputed; the min-local-time scheduler handles it
        // (and reports any source/recording mismatch).
        greg.counter("sim.replay.runs.fallback").inc(1);
        if (tracingEnabled())
            traceInstant("replay.fallback", "engine",
                         TraceContext::current().path + "/replay");
        std::vector<BatchSource *> batch(sources.begin(),
                                         sources.end());
        return run(batch, privateTrace);
    }

    const auto t0 = std::chrono::steady_clock::now();

    // One "replay.run" span covers the whole kernel; the per-block
    // classify/timing spans below (category "replay") exist only on
    // the sharded path — they describe host-side execution structure
    // and are the single shard-dependent trace category.
    const TraceContext traceCtx = TraceContext::current();
    const std::string traceBase = traceCtx.path + "/replay";
    TraceSpan runSpan("replay.run", "engine", traceBase);

    const std::uint64_t numSets = llc_->geometry().numSets();
    std::uint32_t S = cfg_.shards ? cfg_.shards : defaultShards();
    S = std::min(S, kMaxShards);
    S = std::uint32_t(std::min<std::uint64_t>(S, numSets));
    if (llc_->geometry().replacement == ReplacementPolicy::Random)
        S = 1; // random victim picks draw from one whole-cache stream
    const std::uint32_t setBits =
        std::uint32_t(std::countr_zero(numSets));

    // Shard s owns sets [begin(s), begin(s+1)) with begin(s) =
    // ceil(s * numSets / S); its inverse for any S <= numSets is
    // shardOf(set) = set * S / numSets (both are monotone and exact
    // at the range ends).
    auto shardBegin = [&](std::uint32_t s) {
        return (std::uint64_t(s) * numSets + S - 1) / S;
    };

    std::vector<std::unique_ptr<SharedLlc>> shardLlcs;
    std::vector<SharedLlc *> classifier;
    std::unique_ptr<ThreadPool> pool;
    if (S > 1) {
        shardLlcs.reserve(S);
        classifier.reserve(S);
        for (std::uint32_t s = 0; s < S; ++s) {
            shardLlcs.push_back(std::make_unique<SharedLlc>(
                llc_->model(), llc_->config(), cfg_.frequency));
            classifier.push_back(shardLlcs.back().get());
        }
        pool = std::make_unique<ThreadPool>(S);
    }

    PrivateCore &core = cores_[0];
    PrivateCursor pcur = privateTrace->cursor(0);
    ReplaySource *src = sources[0];
    const bool faults = llc_->faultsEnabled();
    std::uint64_t liveLines = llc_->geometry().numLines();

    TraceBlock tb;
    PrivateBlock pb;
    std::vector<ReplayOp> ops(3 * TraceBlock::kCapacity);
    std::vector<std::vector<std::uint32_t>> shardOps(S);
    for (auto &v : shardOps)
        v.reserve(ops.size());

    std::uint64_t totalAccesses = 0;
    std::uint64_t blocks = 0;

    std::uint32_t n;
    while ((n = src->fillBlock(tb)) != 0) {
        ++blocks;
        totalAccesses += n;
        pcur.fillBlock(n, pb);

        if (S == 1) {
            // Serial fast path: no decision staging — each access
            // runs the fused tick+classify+finish entry points
            // directly off the decoded SoA block. The block gives
            // the same future-address lookahead the sharded path
            // prefetches from, without materializing an op list.
            std::uint32_t w1 = 0;
            for (std::uint32_t i = 0; i < n; ++i) {
                if (i + kSerialPrefetch < n)
                    llc_->prefetchTag(
                        tb.addr[i + kSerialPrefetch]);
                // The recorded L2-victim stream is known too; pull
                // its tag sets ahead of the writeback walks (the
                // per-access scheduler can't — it learns victims
                // one access at a time).
                if (w1 + kWbPrefetch < pb.wbTotal)
                    llc_->prefetchTag(pb.wbAddr[w1 + kWbPrefetch]);
                core.advanceIssue(tb.gap[i]);
                const std::uint8_t outcome = pb.outcome[i];
                const std::uint8_t nwb = pb.wbCount[i];
                if (outcome == PrivateEvent::kL1Hit && nwb == 0)
                    continue;
                const std::uint64_t now =
                    std::uint64_t(core.cycle());
                if (outcome != PrivateEvent::kL1Hit)
                    ++l1Misses_;

                for (std::uint8_t j = 0; j < nwb; ++j) {
                    const std::uint64_t addr = pb.wbAddr[w1++];
                    const LlcWritebackOutcome wbo =
                        llc_->writeback(addr, now);
                    if (wbo.stallCycles)
                        core.applyRawStall(wbo.stallCycles);
                    if (wbo.forwardedToDram)
                        dram_->write(addr, now);
                    if (wbo.victimDirty)
                        dram_->write(wbo.victimAddr, now);
                }

                if (outcome == PrivateEvent::kL1Hit)
                    continue;
                if (outcome == PrivateEvent::kL2Hit) {
                    core.applyStall(AccessKind(tb.kind[i]),
                                    cfg_.core.l2Cycles);
                    continue;
                }

                ++l2Misses_;
                std::uint64_t latency = cfg_.core.l2Cycles;
                const LlcReadOutcome rd =
                    llc_->demandRead(tb.addr[i], now + latency);
                latency += rd.latencyCycles;
                if (!rd.hit) {
                    latency += dram_->read(tb.addr[i], now + latency);
                    if (rd.victimDirty)
                        dram_->write(rd.victimAddr, now + latency);
                }
                core.applyStall(AccessKind(tb.kind[i]), latency);
            }
            continue;
        }

        // Expand the block into its LLC operation list: per access,
        // the recorded L2 victims then (on a private miss) the
        // demand read — the exact order replayStep issues them.
        std::uint32_t numOps = 0;
        std::uint32_t w = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint8_t c = pb.wbCount[i];
            for (std::uint8_t j = 0; j < c; ++j) {
                ops[numOps].addr = pb.wbAddr[w++];
                ops[numOps].isRead = false;
                ++numOps;
            }
            if (pb.outcome[i] == PrivateEvent::kMiss) {
                ops[numOps].addr = tb.addr[i];
                ops[numOps].isRead = true;
                ++numOps;
            }
        }

        for (auto &v : shardOps)
            v.clear();
        for (std::uint32_t k = 0; k < numOps; ++k)
            shardOps[std::size_t(
                         (llc_->setIndexOf(ops[k].addr) * S) >>
                         setBits)]
                .push_back(k);
        const std::string blockId =
            tracingEnabled()
                ? traceBase + "/b" + std::to_string(blocks - 1)
                : std::string();
        {
            TraceSpan classifySpan("replay.classify", "replay",
                                   blockId);
            std::vector<std::future<void>> done;
            done.reserve(S);
            for (std::uint32_t s = 0; s < S; ++s)
                done.push_back(pool->submit([&, s]() {
                    TraceScope scope(TraceContext{
                        blockId + "/s" + std::to_string(s),
                        traceCtx.traceId});
                    TraceSpan span("replay.classify.shard", "replay",
                                   TraceContext::current().path);
                    classifyOps(*classifier[s], ops,
                                shardOps[s].data(),
                                shardOps[s].size());
                }));
            for (std::future<void> &f : done)
                f.get();
        }

        // Timing pass, in global access order: replayStep's exact
        // arithmetic with the classification verdicts precomputed.
        TraceSpan timingSpan("replay.timing", "replay", blockId);
        std::uint32_t opIdx = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            core.advanceIssue(tb.gap[i]);
            const std::uint8_t outcome = pb.outcome[i];
            const std::uint8_t nwb = pb.wbCount[i];
            if (outcome == PrivateEvent::kL1Hit && nwb == 0)
                continue; // private hit, nothing reaches the LLC
            const std::uint64_t now = std::uint64_t(core.cycle());
            if (outcome != PrivateEvent::kL1Hit)
                ++l1Misses_;

            for (std::uint8_t j = 0; j < nwb; ++j) {
                const ReplayOp &op = ops[opIdx++];
                if (faults) {
                    llc_->tickFaults(liveLines);
                    liveLines -= op.d.retirements;
                }
                const LlcWritebackOutcome wbo =
                    llc_->finishWriteback(op.d, op.addr, now);
                if (wbo.stallCycles)
                    core.applyRawStall(wbo.stallCycles);
                if (wbo.forwardedToDram)
                    dram_->write(op.addr, now);
                if (wbo.victimDirty)
                    dram_->write(wbo.victimAddr, now);
            }

            if (outcome == PrivateEvent::kL1Hit)
                continue;
            if (outcome == PrivateEvent::kL2Hit) {
                core.applyStall(AccessKind(tb.kind[i]),
                                cfg_.core.l2Cycles);
                continue;
            }

            ++l2Misses_;
            const ReplayOp &op = ops[opIdx++];
            if (faults) {
                llc_->tickFaults(liveLines);
                liveLines -= op.d.retirements;
            }
            std::uint64_t latency = cfg_.core.l2Cycles;
            const LlcReadOutcome rd =
                llc_->finishRead(op.d, op.addr, now + latency);
            latency += rd.latencyCycles;
            if (!rd.hit) {
                latency += dram_->read(op.addr, now + latency);
                if (rd.victimDirty)
                    dram_->write(rd.victimAddr, now + latency);
            }
            core.applyStall(AccessKind(tb.kind[i]), latency);
        }
    }

    if (S > 1) {
        for (std::uint32_t s = 0; s < S; ++s)
            llc_->absorbShard(*shardLlcs[s], shardBegin(s),
                              shardBegin(s + 1));
        greg.counter("sim.replay.runs.sharded").inc(1);
    } else {
        greg.counter("sim.replay.runs.serial").inc(1);
    }

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    greg.counter("sim.replay.accesses").inc(totalAccesses);
    if (seconds > 0.0)
        greg.gauge("sim.replay.accessesPerSecond")
            .set(double(totalAccesses) / seconds);
    if (blocks > 0)
        greg.gauge("sim.replay.blockFillRatio")
            .set(double(totalAccesses) /
                 double(blocks * TraceBlock::kCapacity));

    return collectStats(1, privateTrace);
}

} // namespace nvmcache
