/**
 * @file
 * Shared, banked, possibly-NVM last-level cache (the paper's modified
 * Sniper LLC).
 *
 * Timing and energy come from an LlcModel (a Table III column):
 * asymmetric read/write latency, per-event dynamic energies (eqs 6-8)
 * and leakage. The LLC sees two request kinds from the private
 * levels: demand reads (L2 misses, regardless of whether the original
 * core op was a load, store or ifetch) and writebacks (L2 dirty
 * evictions). Array writes additionally happen on every miss fill.
 *
 * Write timing policy (paper §V-A-7 discusses exactly this):
 *  - Posted: writes are fully off the critical path and never delay
 *    anything (the paper's/Sniper's assumption; our default).
 *  - BankContention: writes occupy their bank, delaying later reads
 *    to the same bank; the requester stalls only when the bank's
 *    write backlog exceeds the write-queue depth.
 *  - Blocking: writes are on the critical path (ablation worst case).
 */

#ifndef NVMCACHE_SIM_NVM_LLC_HH
#define NVMCACHE_SIM_NVM_LLC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nvsim/llc_model.hh"
#include "sim/cache.hh"
#include "sim/faults.hh"

namespace nvmcache {

/** LLC write-path timing policy. */
enum class WritePolicy
{
    Posted,
    BankContention,
    Blocking
};

/** Counters and energy accumulated by the LLC. */
struct LlcStats
{
    std::uint64_t demandReads = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t fills = 0;
    std::uint64_t writebacksIn = 0;   ///< dirty evictions from L2
    std::uint64_t dirtyEvictions = 0; ///< dirty LLC victims -> DRAM
    std::uint64_t writeBypasses = 0;  ///< writebacks forwarded to DRAM
    std::uint64_t readWaitCycles = 0; ///< bank-conflict wait on reads
    std::uint64_t writeStallCycles = 0; ///< queue-full stalls charged

    double hitEnergy = 0.0;   ///< J
    double missEnergy = 0.0;  ///< J
    double writeEnergy = 0.0; ///< J

    double dynamicEnergy() const
    {
        return hitEnergy + missEnergy + writeEnergy;
    }
};

/** Outcome of one LLC demand read. */
struct LlcReadOutcome
{
    bool hit = false;
    std::uint64_t latencyCycles = 0; ///< LLC-side latency incl. waits
    bool victimDirty = false;        ///< fill displaced a dirty line
    std::uint64_t victimAddr = 0;
};

/** Outcome of one incoming writeback. */
struct LlcWritebackOutcome
{
    std::uint64_t stallCycles = 0; ///< charged to the evicting core
    bool victimDirty = false;
    std::uint64_t victimAddr = 0;
    /** Line was bypassed to DRAM instead of installed. */
    bool forwardedToDram = false;
};

/**
 * Timing-independent verdict of one LLC operation: everything the
 * tag walk and the fault draws decide, with no cycle arithmetic and
 * no floating-point statistics. classifyRead/classifyWriteback
 * produce one; finishRead/finishWriteback consume it later (possibly
 * on a different thread) to apply the order-sensitive half —
 * latencies, bank accounting, energies and histograms — in global
 * access order, so a sharded classification pass composes into
 * bit-identical SimStats.
 */
struct LlcDecision
{
    std::uint64_t victimAddr = 0;
    std::uint8_t retries = 0;     ///< write verify-retry attempts
    std::uint8_t retirements = 0; ///< lines retired during the op
    bool hit = false;             ///< tag hit (reads only)
    bool lineLost = false;     ///< read hit lost to multi-bit error
    bool noWay = false;        ///< whole target set is retired
    bool bypassed = false;     ///< writeback bypassed on probe miss
    bool writeScrubbed = false; ///< post-retry single-bit fix
    bool readScrubbed = false;  ///< on-read single-bit fix
    bool retiredOnWrite = false; ///< array write retired the line
    bool victimDirty = false;    ///< displaced a dirty line
};

class SharedLlc
{
  public:
    struct Config
    {
        std::uint32_t associativity = 16;
        std::uint32_t blockBytes = 64;
        std::uint32_t numBanks = 16;
        std::uint32_t writeQueueDepth = 8; ///< per bank
        /** Fixed pipeline/controller overhead added to reads, cycles. */
        std::uint32_t controllerCycles = 8;
        WritePolicy writePolicy = WritePolicy::Posted;
        /**
         * NVM write-bypass (paper SII related-work category 2,
         * refs [14][16][17][21]): a writeback that misses in the LLC
         * is forwarded to DRAM instead of being installed, trading
         * later re-fetches for avoided NVM array writes (energy and
         * wear).
         */
        bool bypassWritebackMiss = false;
        /**
         * Fault-injection layer (sim/faults.hh): write-verify-retry,
         * SECDED scrubs, and wear-driven line retirement. Disabled by
         * default; when disabled the LLC's behaviour and statistics
         * are byte-identical to a build without the layer.
         */
        FaultConfig faults;
    };

    /**
     * @param model         Table III column (timing/energy/capacity).
     * @param coreFrequency Hz; model latencies are converted once.
     */
    SharedLlc(const LlcModel &model, const Config &cfg,
              double coreFrequency);

    /** Demand read at global cycle @p now (fills state on miss). */
    LlcReadOutcome demandRead(std::uint64_t addr, std::uint64_t now);

    /** Writeback (dirty L2 eviction) at global cycle @p now. */
    LlcWritebackOutcome writeback(std::uint64_t addr, std::uint64_t now);

    // --- split demand path (set-sharded replay) ----------------------
    //
    // demandRead == tickFaults + classifyRead + finishRead, and
    // writeback == tickFaults + classifyWriteback + finishWriteback,
    // by construction (the fused entry points above are implemented
    // as exactly that composition). classify* mutates only per-set
    // tag state, per-line fault state and integer counters, so a
    // disjoint set partition may run its classifications on separate
    // SharedLlc instances concurrently; finish* applies the
    // order-sensitive remainder and must run in global access order
    // on the instance that reports statistics.

    /** Tag walk + fault draws of one demand read (no timing). */
    LlcDecision classifyRead(std::uint64_t addr);

    /** Tag walk + fault draws of one writeback (no timing). */
    LlcDecision classifyWriteback(std::uint64_t addr);

    /** Timing/energy/histograms of a classified demand read. */
    LlcReadOutcome finishRead(const LlcDecision &d, std::uint64_t addr,
                              std::uint64_t now);

    /** Timing/energy/histograms of a classified writeback. */
    LlcWritebackOutcome finishWriteback(const LlcDecision &d,
                                        std::uint64_t addr,
                                        std::uint64_t now);

    /** The fault layer's per-access heartbeat (no-op when off). */
    void
    tickFaults(std::uint64_t liveLines)
    {
        if (injector_)
            injector_->tick(liveLines);
    }

    bool faultsEnabled() const { return injector_ != nullptr; }

    /** Set index @p addr maps to in the tag array. */
    std::uint64_t setIndexOf(std::uint64_t addr) const
    {
        return tags_.setIndexOf(addr);
    }

    /** Tag-array geometry (set count, line count, replacement). */
    const CacheGeometry &geometry() const { return tags_.geometry(); }

    /**
     * Fold a set-shard's classification state back in: tag array and
     * fault state of sets [@p setBegin, @p setEnd) plus the integer
     * counters the classify pass accumulates. The shard must share
     * this LLC's model/config and must only have classified accesses
     * of that set range; its timing-side state (banks, energies,
     * histograms) is provably untouched and is not transferred.
     */
    void absorbShard(const SharedLlc &shard, std::uint64_t setBegin,
                     std::uint64_t setEnd);

    /** Host prefetch of @p addr's tag set (perf hint, no effect). */
    void prefetchTag(std::uint64_t addr) const
    {
        tags_.prefetchSet(addr);
    }

    const LlcStats &stats() const { return stats_; }
    const LlcModel &model() const { return model_; }
    const Config &config() const { return cfg_; }

    /** Demand miss rate so far (0 when no accesses). */
    double missRate() const;

    /**
     * Publish LLC counters, energies, the write-latency stall and
     * read bank-wait histograms, and the tag array's per-set
     * conflict / per-line endurance distributions under "<prefix>.*".
     */
    void exportStats(MetricsRegistry &reg,
                     const std::string &prefix) const;

    /**
     * Emit the simulated-time channel's closing counter samples at
     * cycle @p now (no-op when tracing was off at construction).
     */
    void traceSimFinal(std::uint64_t now);

  private:
    /**
     * Simulated-time trace channel (present only when tracing was
     * enabled at construction): periodic counter samples of LLC
     * events against simulated cycles. Keeps its own cumulative
     * counters fed exclusively from the finish* entry points —
     * during sharded replay the stats_ counters accumulate on the
     * shard instances until absorbShard(), so sampling them here
     * would undercount; finish* always runs in global order on the
     * reporting instance with identical decisions on every path,
     * which keeps the channel deterministic at any shard count.
     */
    struct SimChannel
    {
        std::string runId;         ///< counter-track id (run path)
        std::uint64_t traceId = 0;
        std::uint64_t nextSample = 0;
        std::uint64_t reads = 0;
        std::uint64_t misses = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t retries = 0;
        std::uint64_t scrubs = 0;
        std::uint64_t retirements = 0;
        std::uint64_t arrayWrites = 0;
    };

    void simChannelRead(const LlcDecision &d, std::uint64_t now);
    void simChannelWriteback(const LlcDecision &d, std::uint64_t now);
    void simChannelSample(std::uint64_t now);
    std::uint32_t bankOf(std::uint64_t addr) const;

    /**
     * Reserve the bank for a read starting no earlier than @p now;
     * returns wait cycles.
     */
    std::uint64_t reserveRead(std::uint32_t bank, std::uint64_t now);

    /**
     * Account an array write occupying its bank for @p cycles
     * beginning at @p now; returns stall cycles chargeable to the
     * requester under the active policy. @p cycles exceeds the base
     * writeCycles_ when the fault layer added retry pulses or scrubs.
     */
    std::uint64_t accountWrite(std::uint32_t bank, std::uint64_t now,
                               std::uint64_t cycles);

    /**
     * Charge the cost side of one classified array write: retry
     * pulses and a possible scrub (cycles + write energy), plus the
     * retries-per-write histogram sample. Returns the extra
     * bank-busy cycles beyond the base pulse. Caller must hold a
     * live injector_.
     */
    std::uint64_t finishArrayWrite(const LlcDecision &d);

    LlcModel model_;
    Config cfg_;
    SetAssocCache tags_;

    std::uint64_t tagCycles_;
    std::uint64_t readCycles_;
    std::uint64_t writeCycles_;

    std::vector<std::uint64_t> bankFreeAt_;

    /** Present only when cfg_.faults.enabled. */
    std::unique_ptr<FaultInjector> injector_;

    /** Present only when tracing was enabled at construction. */
    std::unique_ptr<SimChannel> simChan_;

    LlcStats stats_;
    LocalDistribution writeStallDist_; ///< stall cycles/writeback
    LocalDistribution readWaitDist_; ///< bank-wait cycles/read
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_NVM_LLC_HH
