#include "sim/private_trace.hh"

#include <stdexcept>

#include "util/logging.hh"
#include "util/wire.hh"

namespace nvmcache {

void
PrivateTrace::CachePortrait::capture(const SetAssocCache &cache)
{
    hits = cache.hits();
    misses = cache.misses();
    writebacks = cache.writebacks();
    setEvictions = cache.setEvictionsBySet();
    lineWrites = cache.lineWritesByWay();
}

void
PrivateTrace::CachePortrait::exportInto(MetricsRegistry &reg,
                                        const std::string &prefix) const
{
    // Mirror SetAssocCache::exportStats stat for stat and element for
    // element: the distributions' Welford state depends on add order,
    // and a replay run's registry must match a live run's bit for bit.
    reg.counter(prefix + ".hits").inc(hits);
    reg.counter(prefix + ".misses").inc(misses);
    reg.counter(prefix + ".writebacks").inc(writebacks);

    Distribution &evictions =
        reg.distribution(prefix + ".evictionsPerSet");
    for (std::uint32_t e : setEvictions)
        evictions.add(double(e));

    Distribution &writes = reg.distribution(prefix + ".writesPerLine");
    for (std::uint32_t w : lineWrites)
        writes.add(double(w));
}

std::shared_ptr<const PrivateTrace>
PrivateTrace::record(const std::vector<BatchSource *> &sources,
                     const CoreParams &params)
{
    if (sources.empty())
        fatal("PrivateTrace: need at least one source");

    std::shared_ptr<PrivateTrace> trace(new PrivateTrace());
    trace->lanes_.resize(sources.size());

    std::array<MemAccess, 256> batch;
    for (std::size_t t = 0; t < sources.size(); ++t) {
        PrivateCore core(params);
        Lane &lane = trace->lanes_[t];
        std::uint64_t prevWb = 0;
        std::size_t n;
        while ((n = sources[t]->fill(batch)) > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                PrivateAccessOutcome out =
                    core.accessPrivate(batch[i]);
                const std::uint8_t outcome =
                    out.satisfied ? (out.latencyCycles
                                         ? PrivateEvent::kL2Hit
                                         : PrivateEvent::kL1Hit)
                                  : PrivateEvent::kMiss;
                const std::uint8_t nib = std::uint8_t(
                    outcome | (out.writebacks.count << 2));
                if ((lane.count & 1) == 0)
                    lane.events.push_back(0);
                lane.events.back() |=
                    std::uint8_t(nib << ((lane.count & 1) * 4));
                for (std::uint32_t w = 0; w < out.writebacks.count;
                     ++w) {
                    const std::uint64_t a = out.writebacks.addr[w];
                    putVarint(lane.wbStream,
                              zigzag(std::int64_t(a - prevWb)));
                    prevWb = a;
                }
                ++lane.count;
            }
        }
        lane.wbStream.insert(lane.wbStream.end(), kVarintPad, 0);
        lane.events.shrink_to_fit();
        lane.wbStream.shrink_to_fit();
        lane.l1i.capture(core.l1i());
        lane.l1d.capture(core.l1d());
        lane.l2.capture(core.l2());
    }
    return trace;
}

std::uint64_t
PrivateTrace::packedBytes() const
{
    std::uint64_t bytes = 0;
    for (const Lane &lane : lanes_)
        bytes += lane.events.size() + lane.wbStream.size();
    return bytes;
}

std::string
PrivateTrace::serialize() const
{
    const auto putPortrait = [](WireWriter &w,
                                const CachePortrait &c) {
        w.putU64(c.hits);
        w.putU64(c.misses);
        w.putU64(c.writebacks);
        w.putU64(c.setEvictions.size());
        for (std::uint32_t e : c.setEvictions)
            w.putU32(e);
        w.putU64(c.lineWrites.size());
        for (std::uint32_t v : c.lineWrites)
            w.putU32(v);
    };

    WireWriter w;
    w.putU32(std::uint32_t(lanes_.size()));
    for (const Lane &lane : lanes_) {
        w.putU64(lane.count);
        w.putU64(lane.events.size());
        w.putBytes(lane.events.data(), lane.events.size());
        w.putU64(lane.wbStream.size());
        w.putBytes(lane.wbStream.data(), lane.wbStream.size());
        for (const CachePortrait *c :
             {&lane.l1i, &lane.l1d, &lane.l2})
            putPortrait(w, *c);
    }
    return w.take();
}

std::shared_ptr<const PrivateTrace>
PrivateTrace::deserialize(const std::string &payload)
{
    const auto getPortrait = [](WireReader &r) {
        CachePortrait c;
        c.hits = r.getU64();
        c.misses = r.getU64();
        c.writebacks = r.getU64();
        const std::uint64_t sets = r.getU64();
        c.setEvictions.reserve(std::size_t(sets));
        for (std::uint64_t i = 0; i < sets; ++i)
            c.setEvictions.push_back(r.getU32());
        const std::uint64_t lines = r.getU64();
        c.lineWrites.reserve(std::size_t(lines));
        for (std::uint64_t i = 0; i < lines; ++i)
            c.lineWrites.push_back(r.getU32());
        return c;
    };

    WireReader r(payload);
    const std::uint32_t numLanes = r.getU32();
    std::shared_ptr<PrivateTrace> trace(new PrivateTrace());
    trace->lanes_.resize(numLanes);
    for (std::uint32_t t = 0; t < numLanes; ++t) {
        Lane &lane = trace->lanes_[t];
        lane.count = r.getU64();
        const std::string events = r.getStr();
        lane.events.assign(events.begin(), events.end());
        const std::string wbStream = r.getStr();
        lane.wbStream.assign(wbStream.begin(), wbStream.end());
        // Two nibble-packed events per byte; replay must never read
        // past the end of the column.
        if (lane.events.size() * 2 < lane.count)
            throw std::runtime_error(
                "PrivateTrace payload: event column too short");
        lane.l1i = getPortrait(r);
        lane.l1d = getPortrait(r);
        lane.l2 = getPortrait(r);
    }
    r.expectEnd();
    return trace;
}

PrivateCursor
PrivateTrace::cursor(std::uint32_t thread) const
{
    if (thread >= lanes_.size())
        fatal("PrivateTrace: bad thread index ", thread);
    return PrivateCursor(&lanes_[thread]);
}

void
PrivateTrace::exportCaches(MetricsRegistry &reg,
                           const std::string &prefix,
                           std::uint32_t thread) const
{
    if (thread >= lanes_.size())
        fatal("PrivateTrace: bad thread index ", thread);
    const Lane &lane = lanes_[thread];
    lane.l1i.exportInto(reg, prefix + ".l1i");
    lane.l1d.exportInto(reg, prefix + ".l1d");
    lane.l2.exportInto(reg, prefix + ".l2");
}

} // namespace nvmcache
