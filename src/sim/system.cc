#include "sim/system.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace nvmcache {

System::System(const SystemConfig &cfg, const LlcModel &llcModel)
    : cfg_(cfg)
{
    if (cfg_.numCores == 0)
        fatal("System: need at least one core");
    cores_.reserve(cfg_.numCores);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i)
        cores_.emplace_back(cfg_.core);
    llc_ = std::make_unique<SharedLlc>(llcModel, cfg_.llc,
                                       cfg_.frequency);
    dram_ = std::make_unique<DramModel>(cfg_.dram, cfg_.frequency);
}

bool
System::step(std::uint32_t coreIdx, TraceSource &trace)
{
    MemAccess access;
    if (!trace.next(access))
        return false;

    PrivateCore &core = cores_[coreIdx];
    PrivateAccessOutcome out = core.accessPrivate(access);
    const std::uint64_t now = std::uint64_t(core.cycle());

    const bool l1_hit = out.satisfied && out.latencyCycles == 0;
    if (!l1_hit)
        ++l1Misses_;

    // Dirty L2 victims stream down to the LLC regardless of whether
    // the demand access was satisfied privately.
    for (std::uint32_t i = 0; i < out.writebacks.count; ++i) {
        LlcWritebackOutcome wb =
            llc_->writeback(out.writebacks.addr[i], now);
        if (wb.stallCycles)
            core.applyRawStall(wb.stallCycles);
        if (wb.forwardedToDram)
            dram_->write(out.writebacks.addr[i], now);
        if (wb.victimDirty)
            dram_->write(wb.victimAddr, now);
    }

    if (out.satisfied) {
        if (out.latencyCycles) // L2 hit
            core.applyStall(access.kind, out.latencyCycles);
        return true;
    }

    ++l2Misses_;

    // Demand read reaches the shared LLC.
    std::uint64_t latency = out.latencyCycles;
    LlcReadOutcome rd = llc_->demandRead(access.addr, now + latency);
    latency += rd.latencyCycles;
    if (!rd.hit) {
        latency += dram_->read(access.addr, now + latency);
        if (rd.victimDirty)
            dram_->write(rd.victimAddr, now + latency);
    }
    core.applyStall(access.kind, latency);
    return true;
}

SimStats
System::run(const std::vector<TraceSource *> &threads)
{
    if (threads.empty())
        fatal("System::run: no threads");
    if (threads.size() > cores_.size())
        fatal("System::run: more threads (", threads.size(),
              ") than cores (", cores_.size(), ")");

    // threads[i] runs on core i (round-robin is the identity while
    // threads <= cores, which the check above guarantees).
    std::vector<bool> active(threads.size(), true);
    std::size_t remaining = threads.size();

    while (remaining > 0) {
        // Min-local-time scheduling keeps shared-resource timestamps
        // approximately globally ordered.
        std::size_t pick = threads.size();
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < threads.size(); ++i) {
            if (active[i] && cores_[i].cycle() < best) {
                best = cores_[i].cycle();
                pick = i;
            }
        }
        if (!step(std::uint32_t(pick), *threads[pick])) {
            active[pick] = false;
            --remaining;
        }
    }

    SimStats stats;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        stats.instructions += cores_[i].instructions();
        stats.coreCycles.push_back(cores_[i].cycle());
        stats.cycles = std::max(stats.cycles, cores_[i].cycle());
    }
    stats.seconds = stats.cycles / cfg_.frequency;
    stats.llc = llc_->stats();
    stats.dramReads = dram_->reads();
    stats.dramWrites = dram_->writes();
    stats.dramQueueCycles = dram_->queueCycles();
    stats.l1Misses = l1Misses_;
    stats.l2Misses = l2Misses_;
    stats.llcDynamicEnergy = stats.llc.dynamicEnergy();
    stats.llcLeakageEnergy = llc_->model().leakage * stats.seconds;

    // Export the whole hierarchy into a per-run registry; the
    // snapshot rides along with the (possibly memoized) SimStats.
    MetricsRegistry reg;
    llc_->exportStats(reg, "sim.llc");
    dram_->exportStats(reg, "sim.dram");
    Distribution &core_cycles = reg.distribution("sim.cores.cycles");
    double min_cycles = stats.cycles;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        cores_[i].exportStats(reg, "sim.core");
        core_cycles.add(cores_[i].cycle());
        min_cycles = std::min(min_cycles, cores_[i].cycle());
    }
    // Load imbalance: fraction of the finish time the earliest core
    // sat idle (0 = perfectly balanced or single-threaded).
    reg.gauge("sim.cores.cycleImbalance")
        .set(stats.cycles > 0.0
                 ? (stats.cycles - min_cycles) / stats.cycles
                 : 0.0);
    reg.counter("sim.instructions").inc(stats.instructions);
    reg.counter("sim.l1Misses").inc(l1Misses_);
    reg.counter("sim.l2Misses").inc(l2Misses_);
    reg.gauge("sim.seconds").set(stats.seconds);
    reg.gauge("sim.llc.leakageEnergy").set(stats.llcLeakageEnergy);
    reg.gauge("sim.llc.dynamicEnergy").set(stats.llcDynamicEnergy);
    reg.gauge("sim.mpki").set(stats.llcMpki());
    stats.detail = reg.snapshot();
    return stats;
}

} // namespace nvmcache
