#include "sim/system.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace nvmcache {

namespace {

/** References a core prefetches from its source at a time. */
constexpr std::size_t kBatch = 128;

/** BatchSource view of a virtual per-access TraceSource. */
class SourceBatcher final : public BatchSource
{
  public:
    explicit SourceBatcher(TraceSource *src) : src_(src) {}

    std::size_t
    fill(std::span<MemAccess> out) override
    {
        std::size_t n = 0;
        while (n < out.size() && src_->next(out[n]))
            ++n;
        return n;
    }

  private:
    TraceSource *src_;
};

} // namespace

System::System(const SystemConfig &cfg, const LlcModel &llcModel)
    : cfg_(cfg)
{
    if (cfg_.numCores == 0)
        fatal("System: need at least one core");
    cores_.reserve(cfg_.numCores);
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i)
        cores_.emplace_back(cfg_.core);
    llc_ = std::make_unique<SharedLlc>(llcModel, cfg_.llc,
                                       cfg_.frequency);
    dram_ = std::make_unique<DramModel>(cfg_.dram, cfg_.frequency);
    coreLlc_.resize(cfg_.numCores);
}

void
System::step(std::uint32_t coreIdx, const MemAccess &access)
{
    PrivateCore &core = cores_[coreIdx];
    PrivateAccessOutcome out = core.accessPrivate(access);
    const std::uint64_t now = std::uint64_t(core.cycle());

    const bool l1_hit = out.satisfied && out.latencyCycles == 0;
    if (!l1_hit)
        ++l1Misses_;

    // Dirty L2 victims stream down to the LLC regardless of whether
    // the demand access was satisfied privately.
    coreLlc_[coreIdx].writebacks += out.writebacks.count;
    for (std::uint32_t i = 0; i < out.writebacks.count; ++i) {
        LlcWritebackOutcome wb =
            llc_->writeback(out.writebacks.addr[i], now);
        if (wb.stallCycles)
            core.applyRawStall(wb.stallCycles);
        if (wb.forwardedToDram)
            dram_->write(out.writebacks.addr[i], now);
        if (wb.victimDirty)
            dram_->write(wb.victimAddr, now);
    }

    if (out.satisfied) {
        if (out.latencyCycles) // L2 hit
            core.applyStall(access.kind, out.latencyCycles);
        return;
    }

    ++l2Misses_;

    // Demand read reaches the shared LLC.
    std::uint64_t latency = out.latencyCycles;
    LlcReadOutcome rd = llc_->demandRead(access.addr, now + latency);
    ++coreLlc_[coreIdx].demandReads;
    ++(rd.hit ? coreLlc_[coreIdx].demandHits
              : coreLlc_[coreIdx].demandMisses);
    latency += rd.latencyCycles;
    if (!rd.hit) {
        latency += dram_->read(access.addr, now + latency);
        if (rd.victimDirty)
            dram_->write(rd.victimAddr, now + latency);
    }
    core.applyStall(access.kind, latency);
}

SimStats
System::run(const std::vector<TraceSource *> &threads)
{
    if (threads.empty())
        fatal("System::run: no threads");
    std::vector<SourceBatcher> batchers;
    batchers.reserve(threads.size());
    for (TraceSource *t : threads)
        batchers.emplace_back(t);
    std::vector<BatchSource *> sources;
    sources.reserve(threads.size());
    for (SourceBatcher &b : batchers)
        sources.push_back(&b);
    return run(sources);
}

SimStats
System::run(const std::vector<BatchSource *> &sources)
{
    return run(sources, nullptr);
}

SimStats
System::run(const std::vector<BatchSource *> &sources,
            const PrivateTrace *privateTrace)
{
    if (sources.empty())
        fatal("System::run: no threads");
    if (sources.size() > cores_.size())
        fatal("System::run: more threads (", sources.size(),
              ") than cores (", cores_.size(), ")");
    if (privateTrace && privateTrace->threads() != sources.size())
        fatal("System::run: private trace has ",
              privateTrace->threads(), " lanes for ", sources.size(),
              " sources");

    std::vector<PrivateCursor> privateCursors;
    if (privateTrace) {
        privateCursors.reserve(sources.size());
        for (std::uint32_t i = 0; i < sources.size(); ++i)
            privateCursors.push_back(privateTrace->cursor(i));
    }

    // sources[i] runs on core i (round-robin is the identity while
    // threads <= cores, which the check above guarantees).
    struct Lane
    {
        std::array<MemAccess, kBatch> buf;
        std::uint32_t pos = 0;
        std::uint32_t count = 0;
    };
    std::vector<Lane> lanes(sources.size());

    // Min-local-time scheduling keeps shared-resource timestamps
    // approximately globally ordered. Active cores live in a binary
    // min-heap keyed on (local cycle, core index) — the same pick
    // order as a linear scan taking the first strict minimum, at
    // O(log cores) per step. A core's key only grows, so after each
    // step the root is re-sunk in place.
    struct Entry
    {
        double cycle;
        std::uint32_t core;
    };
    std::vector<Entry> heap(sources.size());
    for (std::uint32_t i = 0; i < sources.size(); ++i)
        heap[i] = {0.0, i}; // equal keys in index order: a valid heap

    auto before = [](const Entry &a, const Entry &b) {
        return a.cycle < b.cycle ||
               (a.cycle == b.cycle && a.core < b.core);
    };
    auto siftDown = [&] {
        std::size_t i = 0;
        const std::size_t n = heap.size();
        Entry e = heap[0];
        while (true) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap[child + 1], heap[child]))
                ++child;
            if (!before(heap[child], e))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = e;
    };

    while (!heap.empty()) {
        const std::uint32_t i = heap[0].core;
        Lane &lane = lanes[i];
        if (lane.pos == lane.count) {
            lane.count = std::uint32_t(
                sources[i]->fill({lane.buf.data(), kBatch}));
            lane.pos = 0;
            if (lane.count == 0) { // trace drained: retire the core
                heap[0] = heap.back();
                heap.pop_back();
                if (!heap.empty())
                    siftDown();
                continue;
            }
        }
        // The lane's future is already decoded, so pull the LLC tag
        // set of a near-future access toward the host caches while
        // this access simulates (hides the host-memory latency that
        // otherwise dominates large-cache tag walks). The distance
        // covers the full simulation cost of the accesses in between;
        // shorter lookaheads leave part of the tag-walk miss exposed.
        const std::uint32_t ahead = lane.pos + 24;
        if (ahead < lane.count)
            llc_->prefetchTag(lane.buf[ahead].addr);
        if (privateTrace)
            replayStep(i, lane.buf[lane.pos++], privateCursors[i]);
        else
            step(i, lane.buf[lane.pos++]);
        heap[0].cycle = cores_[i].cycle();
        siftDown();
    }

    return collectStats(sources.size(), privateTrace);
}

void
System::replayStep(std::uint32_t coreIdx, const MemAccess &access,
                   PrivateCursor &cursor)
{
    // Mirrors step() operation for operation; only the private-level
    // outcome comes from the recording instead of the L1/L2 walk.
    PrivateCore &core = cores_[coreIdx];
    core.advanceIssue(access.nonMemInstrs);
    const PrivateEvent ev = cursor.next();
    const std::uint64_t now = std::uint64_t(core.cycle());

    if (ev.outcome != PrivateEvent::kL1Hit)
        ++l1Misses_;

    coreLlc_[coreIdx].writebacks += ev.wbCount;
    for (std::uint8_t i = 0; i < ev.wbCount; ++i) {
        LlcWritebackOutcome wb = llc_->writeback(ev.wb[i], now);
        if (wb.stallCycles)
            core.applyRawStall(wb.stallCycles);
        if (wb.forwardedToDram)
            dram_->write(ev.wb[i], now);
        if (wb.victimDirty)
            dram_->write(wb.victimAddr, now);
    }

    if (ev.outcome == PrivateEvent::kL1Hit)
        return;
    if (ev.outcome == PrivateEvent::kL2Hit) {
        core.applyStall(access.kind, cfg_.core.l2Cycles);
        return;
    }

    ++l2Misses_;

    std::uint64_t latency = cfg_.core.l2Cycles;
    LlcReadOutcome rd = llc_->demandRead(access.addr, now + latency);
    ++coreLlc_[coreIdx].demandReads;
    ++(rd.hit ? coreLlc_[coreIdx].demandHits
              : coreLlc_[coreIdx].demandMisses);
    latency += rd.latencyCycles;
    if (!rd.hit) {
        latency += dram_->read(access.addr, now + latency);
        if (rd.victimDirty)
            dram_->write(rd.victimAddr, now + latency);
    }
    core.applyStall(access.kind, latency);
}

SimStats
System::collectStats(std::size_t numThreads,
                     const PrivateTrace *privateTrace)
{
    SimStats stats;
    for (std::size_t i = 0; i < numThreads; ++i) {
        stats.instructions += cores_[i].instructions();
        stats.coreCycles.push_back(cores_[i].cycle());
        stats.cycles = std::max(stats.cycles, cores_[i].cycle());
    }
    stats.seconds = stats.cycles / cfg_.frequency;
    // Close the simulated-time trace channel with a final sample at
    // the run's end cycle (no-op when tracing is off).
    llc_->traceSimFinal(std::uint64_t(stats.cycles));
    stats.llc = llc_->stats();
    stats.dramReads = dram_->reads();
    stats.dramWrites = dram_->writes();
    stats.dramQueueCycles = dram_->queueCycles();
    stats.l1Misses = l1Misses_;
    stats.l2Misses = l2Misses_;
    stats.llcDynamicEnergy = stats.llc.dynamicEnergy();
    stats.llcLeakageEnergy = llc_->model().leakage * stats.seconds;

    // Export the whole hierarchy into a per-run registry; the
    // snapshot rides along with the (possibly memoized) SimStats.
    MetricsRegistry reg;
    llc_->exportStats(reg, "sim.llc");
    dram_->exportStats(reg, "sim.dram");
    Distribution &core_cycles = reg.distribution("sim.cores.cycles");
    double min_cycles = stats.cycles;
    for (std::size_t i = 0; i < numThreads; ++i) {
        if (privateTrace) {
            // A replay run never touched the cores' caches; the core
            // counters are live, the cache stats come from the
            // recording, in exactly PrivateCore::exportStats's order.
            reg.counter("sim.core.instructions")
                .inc(cores_[i].instructions());
            reg.counter("sim.core.stallCycles")
                .inc(cores_[i].stallCycles());
            privateTrace->exportCaches(reg, "sim.core",
                                       std::uint32_t(i));
        } else {
            cores_[i].exportStats(reg, "sim.core");
        }
        core_cycles.add(cores_[i].cycle());
        min_cycles = std::min(min_cycles, cores_[i].cycle());
    }
    // Load imbalance: fraction of the finish time the earliest core
    // sat idle (0 = perfectly balanced or single-threaded).
    reg.gauge("sim.cores.cycleImbalance")
        .set(stats.cycles > 0.0
                 ? (stats.cycles - min_cycles) / stats.cycles
                 : 0.0);
    reg.counter("sim.instructions").inc(stats.instructions);
    reg.counter("sim.l1Misses").inc(l1Misses_);
    reg.counter("sim.l2Misses").inc(l2Misses_);
    reg.gauge("sim.seconds").set(stats.seconds);
    reg.gauge("sim.llc.leakageEnergy").set(stats.llcLeakageEnergy);
    reg.gauge("sim.llc.dynamicEnergy").set(stats.llcDynamicEnergy);
    reg.gauge("sim.mpki").set(stats.llcMpki());
    stats.detail = reg.snapshot();

    // Per-tenant LLC traffic split (tenants workload family). The
    // batch kernel path never runs step()/replayStep(), but it is
    // single-source only — there core 0 carries the entire LlcStats,
    // so deriving that case keeps the kernel and the per-access
    // scheduler byte-identical.
    if (cfg_.perCoreLlcStats) {
        for (std::size_t i = 0; i < numThreads; ++i) {
            CoreLlcCounters c = coreLlc_[i];
            if (numThreads == 1)
                c = {stats.llc.demandReads, stats.llc.demandHits,
                     stats.llc.demandMisses, stats.llc.writebacksIn};
            MetricsRegistry treg;
            treg.counter("llc.demandReads").inc(c.demandReads);
            treg.counter("llc.demandHits").inc(c.demandHits);
            treg.counter("llc.demandMisses").inc(c.demandMisses);
            treg.counter("llc.writebacks").inc(c.writebacks);
            stats.detail.merge(treg.snapshot().withPrefix(
                "sim.tenant" + std::to_string(i)));
        }
    }
    return stats;
}

} // namespace nvmcache
