#include "sim/nvm_llc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

std::uint64_t
toCycles(double seconds, double freq)
{
    return std::uint64_t(std::max(1.0, std::ceil(seconds * freq)));
}

/**
 * Simulated cycles between sim-channel counter samples: coarse
 * enough that traces of multi-million-cycle runs stay small, fine
 * enough to show wear/retirement progression within one run.
 */
constexpr std::uint64_t kSimSampleInterval = std::uint64_t(1) << 18;

} // namespace

SharedLlc::SharedLlc(const LlcModel &model, const Config &cfg,
                     double coreFrequency)
    : model_(model), cfg_(cfg),
      tags_(CacheGeometry{model.capacityBytes, cfg.associativity,
                          cfg.blockBytes})
{
    if (coreFrequency <= 0.0)
        fatal("SharedLlc: bad core frequency");
    if (cfg_.numBanks == 0 ||
        (cfg_.numBanks & (cfg_.numBanks - 1)) != 0)
        fatal("SharedLlc: bank count must be a power of two");
    tagCycles_ = toCycles(model_.tagLatency, coreFrequency);
    readCycles_ = toCycles(model_.readLatency, coreFrequency);
    writeCycles_ = toCycles(model_.writeLatency(), coreFrequency);
    bankFreeAt_.assign(cfg_.numBanks, 0);
    if (cfg_.faults.enabled)
        injector_ = std::make_unique<FaultInjector>(
            cfg_.faults, model_.klass, tags_.geometry().numLines(),
            cfg_.blockBytes);
    if (tracingEnabled()) {
        simChan_ = std::make_unique<SimChannel>();
        // The constructing thread runs under the owning run's scope
        // (ExperimentRunner installs it before simulating), so the
        // ambient context names this LLC's counter tracks.
        simChan_->runId = TraceContext::current().path + "/llc";
        simChan_->traceId = TraceContext::current().traceId;
    }
}

std::uint32_t
SharedLlc::bankOf(std::uint64_t addr) const
{
    return std::uint32_t((addr / cfg_.blockBytes) % cfg_.numBanks);
}

std::uint64_t
SharedLlc::reserveRead(std::uint32_t bank, std::uint64_t now)
{
    const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
    bankFreeAt_[bank] = start + readCycles_;
    return start - now;
}

std::uint64_t
SharedLlc::accountWrite(std::uint32_t bank, std::uint64_t now,
                        std::uint64_t cycles)
{
    switch (cfg_.writePolicy) {
      case WritePolicy::Posted:
        // Array write absorbed by the write buffer; serviced during
        // idle bank cycles, never visible to the system.
        return 0;
      case WritePolicy::BankContention: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + cycles;
        // The requester only stalls once the backlog exceeds the
        // write queue: it must wait for the backlog to drain down to
        // queue depth (sized in base write pulses — retry pulses
        // consume queue slots' worth of bank time like any others).
        const std::uint64_t backlog = bankFreeAt_[bank] - now;
        const std::uint64_t budget =
            std::uint64_t(cfg_.writeQueueDepth) * writeCycles_;
        return backlog > budget ? backlog - budget : 0;
      }
      case WritePolicy::Blocking: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + cycles;
        return (start - now) + cycles;
      }
    }
    panic("bad WritePolicy");
}

std::uint64_t
SharedLlc::finishArrayWrite(const LlcDecision &d)
{
    FaultStats &st = injector_->stats();
    std::uint64_t extra = 0;
    if (d.retries > 0) {
        // Escalated pulses: total cost 2^(retries+1)-1 base pulses,
        // of which one is already charged by the caller.
        const std::uint64_t mult = retryCostMultiplier(d.retries);
        const std::uint64_t cycles = (mult - 1) * writeCycles_;
        extra += cycles;
        st.retryCycles += cycles;
        stats_.writeEnergy += model_.eWrite * double(mult - 1);
    }
    if (d.writeScrubbed) {
        // SECDED corrected the residual single-bit error; the scrub
        // rewrites the corrected line.
        extra += cfg_.faults.scrubCycles;
        st.scrubCycles += cfg_.faults.scrubCycles;
        stats_.writeEnergy += model_.eWrite;
    }
    injector_->noteRetries(d.retries);
    return extra;
}

LlcDecision
SharedLlc::classifyRead(std::uint64_t addr)
{
    LlcDecision d;
    ++stats_.demandReads;

    CacheAccessResult res = tags_.access(addr, false);
    d.hit = res.hit;

    if (res.hit) {
        if (injector_) {
            const FaultInjector::ReadOutcome ro =
                injector_->onRead(res.lineIndex);
            if (ro.scrubbed) {
                // SECDED corrected a single-bit error under the
                // read; the scrub rewrites the corrected line.
                d.readScrubbed = true;
            } else if (ro.retired) {
                // Multi-bit error: the line's data is gone and its
                // way is withdrawn; the request falls through to
                // DRAM with no refill (there is nowhere to put it).
                tags_.retireLine(res.lineIndex);
                ++d.retirements;
                d.lineLost = true;
            }
        }
        if (!d.lineLost)
            ++stats_.demandHits;
        else
            ++stats_.demandMisses;
        return d;
    }

    ++stats_.demandMisses;
    if (res.noWay) {
        // Every way of the set is retired: the read is serviced by
        // DRAM and nothing is installed. noWay is only reachable
        // through retirements, so injector_ is live here.
        injector_->noteNoWay();
        d.noWay = true;
        return d;
    }

    ++stats_.fills;
    if (injector_) {
        const FaultInjector::WriteOutcome wo =
            injector_->classifyArrayWrite(res.lineIndex);
        d.retries = std::uint8_t(wo.retries);
        d.writeScrubbed = wo.scrubbed;
        if (wo.retired()) {
            // The freshly filled line is clean; dropping it costs
            // nothing beyond the lost way.
            tags_.retireLine(res.lineIndex);
            ++d.retirements;
            d.retiredOnWrite = true;
        }
    }
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        d.victimDirty = true;
        d.victimAddr = res.evictedAddr;
    }
    return d;
}

LlcReadOutcome
SharedLlc::finishRead(const LlcDecision &d, std::uint64_t addr,
                      std::uint64_t now)
{
    if (simChan_)
        simChannelRead(d, now);
    LlcReadOutcome out;
    const std::uint32_t bank = bankOf(addr);

    if (d.hit) {
        std::uint64_t scrubExtra = 0;
        if (d.readScrubbed) {
            scrubExtra = cfg_.faults.scrubCycles;
            injector_->stats().scrubCycles += scrubExtra;
            stats_.writeEnergy += model_.eWrite;
        }
        if (!d.lineLost) {
            out.hit = true;
            stats_.hitEnergy += model_.eHit;
            const std::uint64_t wait = reserveRead(bank, now);
            stats_.readWaitCycles += wait;
            readWaitDist_.add(double(wait));
            out.latencyCycles = wait + cfg_.controllerCycles +
                                tagCycles_ + readCycles_ + scrubExtra;
            return out;
        }
        stats_.missEnergy += model_.eMiss;
        out.latencyCycles = cfg_.controllerCycles + tagCycles_;
        return out;
    }

    stats_.missEnergy += model_.eMiss;
    // Miss detection costs the tag probe; the fill happens when DRAM
    // returns (state updated at classify time, timing accounted via
    // accountWrite).
    out.latencyCycles = cfg_.controllerCycles + tagCycles_;

    if (d.noWay)
        return out;

    stats_.writeEnergy += model_.eWrite;
    std::uint64_t writeBusy = writeCycles_;
    if (injector_)
        writeBusy += finishArrayWrite(d);
    out.latencyCycles += accountWrite(bank, now, writeBusy);
    if (d.victimDirty) {
        out.victimDirty = true;
        out.victimAddr = d.victimAddr;
    }
    return out;
}

LlcReadOutcome
SharedLlc::demandRead(std::uint64_t addr, std::uint64_t now)
{
    if (injector_)
        injector_->tick(tags_.liveLines());
    const LlcDecision d = classifyRead(addr);
    return finishRead(d, addr, now);
}

LlcDecision
SharedLlc::classifyWriteback(std::uint64_t addr)
{
    LlcDecision d;
    ++stats_.writebacksIn;

    if (cfg_.bypassWritebackMiss && !tags_.probe(addr)) {
        // Bypass: pay only the tag probe, never touch the NVM array.
        ++stats_.writeBypasses;
        d.bypassed = true;
        return d;
    }

    CacheAccessResult res = tags_.installWriteback(addr);
    if (res.noWay) {
        // Every way of the set is retired: the dirty line continues
        // to DRAM unmodified, paying only the tag probe.
        injector_->noteNoWay();
        ++stats_.writeBypasses;
        d.noWay = true;
        return d;
    }

    if (injector_) {
        const FaultInjector::WriteOutcome wo =
            injector_->classifyArrayWrite(res.lineIndex);
        d.retries = std::uint8_t(wo.retries);
        d.writeScrubbed = wo.scrubbed;
        if (wo.retired()) {
            // The just-installed dirty line is lost with its way;
            // its data carries on to DRAM.
            tags_.retireLine(res.lineIndex);
            ++d.retirements;
            d.retiredOnWrite = true;
        }
    }
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        d.victimDirty = true;
        d.victimAddr = res.evictedAddr;
    }
    return d;
}

LlcWritebackOutcome
SharedLlc::finishWriteback(const LlcDecision &d, std::uint64_t addr,
                           std::uint64_t now)
{
    if (simChan_)
        simChannelWriteback(d, now);
    LlcWritebackOutcome out;
    if (d.bypassed || d.noWay) {
        stats_.missEnergy += model_.eMiss;
        out.forwardedToDram = true;
        return out;
    }

    const std::uint32_t bank = bankOf(addr);
    stats_.writeEnergy += model_.eWrite;
    std::uint64_t writeBusy = writeCycles_;
    if (injector_)
        writeBusy += finishArrayWrite(d);
    if (d.retiredOnWrite)
        out.forwardedToDram = true;
    out.stallCycles = accountWrite(bank, now, writeBusy);
    stats_.writeStallCycles += out.stallCycles;
    writeStallDist_.add(double(out.stallCycles));
    if (d.victimDirty) {
        out.victimDirty = true;
        out.victimAddr = d.victimAddr;
    }
    return out;
}

LlcWritebackOutcome
SharedLlc::writeback(std::uint64_t addr, std::uint64_t now)
{
    if (injector_)
        injector_->tick(tags_.liveLines());
    const LlcDecision d = classifyWriteback(addr);
    return finishWriteback(d, addr, now);
}

// --- simulated-time trace channel ------------------------------------

void
SharedLlc::simChannelRead(const LlcDecision &d, std::uint64_t now)
{
    SimChannel &ch = *simChan_;
    ++ch.reads;
    if (!d.hit || d.lineLost)
        ++ch.misses;
    ch.retries += d.retries;
    ch.scrubs += (d.writeScrubbed ? 1u : 0u) +
                 (d.readScrubbed ? 1u : 0u);
    ch.retirements += d.retirements;
    if (!d.hit && !d.noWay)
        ++ch.arrayWrites; // miss fill
    if (now >= ch.nextSample)
        simChannelSample(now);
}

void
SharedLlc::simChannelWriteback(const LlcDecision &d, std::uint64_t now)
{
    SimChannel &ch = *simChan_;
    ++ch.writebacks;
    ch.retries += d.retries;
    ch.scrubs += d.writeScrubbed ? 1u : 0u;
    ch.retirements += d.retirements;
    if (!d.bypassed && !d.noWay)
        ++ch.arrayWrites;
    if (now >= ch.nextSample)
        simChannelSample(now);
}

void
SharedLlc::simChannelSample(std::uint64_t now)
{
    SimChannel &ch = *simChan_;
    traceSimCounter("llc.demandMisses", ch.runId, now,
                    double(ch.misses));
    traceSimCounter("llc.writebacks", ch.runId, now,
                    double(ch.writebacks));
    traceSimCounter("llc.writeRetries", ch.runId, now,
                    double(ch.retries));
    traceSimCounter("llc.scrubs", ch.runId, now, double(ch.scrubs));
    traceSimCounter("llc.retiredLines", ch.runId, now,
                    double(ch.retirements));
    traceSimCounter("llc.wearWritesPerLine", ch.runId, now,
                    double(ch.arrayWrites) /
                        double(tags_.geometry().numLines()));
    ch.nextSample = now + kSimSampleInterval;
}

void
SharedLlc::traceSimFinal(std::uint64_t now)
{
    if (simChan_)
        simChannelSample(now);
}

void
SharedLlc::absorbShard(const SharedLlc &shard, std::uint64_t setBegin,
                       std::uint64_t setEnd)
{
    tags_.absorbShard(shard.tags_, setBegin, setEnd);
    stats_.demandReads += shard.stats_.demandReads;
    stats_.demandHits += shard.stats_.demandHits;
    stats_.demandMisses += shard.stats_.demandMisses;
    stats_.fills += shard.stats_.fills;
    stats_.writebacksIn += shard.stats_.writebacksIn;
    stats_.dirtyEvictions += shard.stats_.dirtyEvictions;
    stats_.writeBypasses += shard.stats_.writeBypasses;
    if (injector_)
        injector_->absorbShard(
            *shard.injector_,
            setBegin * cfg_.associativity,
            setEnd * cfg_.associativity);
}

double
SharedLlc::missRate() const
{
    if (stats_.demandReads == 0)
        return 0.0;
    return double(stats_.demandMisses) / double(stats_.demandReads);
}

void
SharedLlc::exportStats(MetricsRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + ".demandReads").inc(stats_.demandReads);
    reg.counter(prefix + ".readHits").inc(stats_.demandHits);
    reg.counter(prefix + ".readMisses").inc(stats_.demandMisses);
    reg.counter(prefix + ".fills").inc(stats_.fills);
    reg.counter(prefix + ".writeHits")
        .inc(stats_.writebacksIn - stats_.writeBypasses);
    reg.counter(prefix + ".writebacksIn").inc(stats_.writebacksIn);
    reg.counter(prefix + ".dirtyEvictions").inc(stats_.dirtyEvictions);
    reg.counter(prefix + ".writeBypasses").inc(stats_.writeBypasses);
    reg.counter(prefix + ".readWaitCycles").inc(stats_.readWaitCycles);
    reg.counter(prefix + ".writeStallCycles")
        .inc(stats_.writeStallCycles);
    reg.gauge(prefix + ".hitEnergy").add(stats_.hitEnergy);
    reg.gauge(prefix + ".missEnergy").add(stats_.missEnergy);
    reg.gauge(prefix + ".writeEnergy").add(stats_.writeEnergy);
    reg.gauge(prefix + ".missRate").set(missRate());

    reg.distribution(prefix + ".writeStall").merge(writeStallDist_.snapshot());
    reg.distribution(prefix + ".readWait").merge(readWaitDist_.snapshot());
    reg.gauge(prefix + ".maxLineWrites")
        .set(double(tags_.maxLineWrites()));
    tags_.exportStats(reg, prefix + ".tags");

    // The faults section exists only when injection is enabled, so a
    // faults-off run's snapshot stays byte-identical to the
    // pre-fault-layer simulator's.
    if (injector_)
        injector_->exportStats(reg, prefix + ".faults",
                               tags_.liveLines(),
                               tags_.geometry().numLines());
}

} // namespace nvmcache
