#include "sim/nvm_llc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

namespace {

std::uint64_t
toCycles(double seconds, double freq)
{
    return std::uint64_t(std::max(1.0, std::ceil(seconds * freq)));
}

} // namespace

SharedLlc::SharedLlc(const LlcModel &model, const Config &cfg,
                     double coreFrequency)
    : model_(model), cfg_(cfg),
      tags_(CacheGeometry{model.capacityBytes, cfg.associativity,
                          cfg.blockBytes})
{
    if (coreFrequency <= 0.0)
        fatal("SharedLlc: bad core frequency");
    if (cfg_.numBanks == 0 ||
        (cfg_.numBanks & (cfg_.numBanks - 1)) != 0)
        fatal("SharedLlc: bank count must be a power of two");
    tagCycles_ = toCycles(model_.tagLatency, coreFrequency);
    readCycles_ = toCycles(model_.readLatency, coreFrequency);
    writeCycles_ = toCycles(model_.writeLatency(), coreFrequency);
    bankFreeAt_.assign(cfg_.numBanks, 0);
}

std::uint32_t
SharedLlc::bankOf(std::uint64_t addr) const
{
    return std::uint32_t((addr / cfg_.blockBytes) % cfg_.numBanks);
}

std::uint64_t
SharedLlc::reserveRead(std::uint32_t bank, std::uint64_t now)
{
    const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
    bankFreeAt_[bank] = start + readCycles_;
    return start - now;
}

std::uint64_t
SharedLlc::accountWrite(std::uint32_t bank, std::uint64_t now)
{
    switch (cfg_.writePolicy) {
      case WritePolicy::Posted:
        // Array write absorbed by the write buffer; serviced during
        // idle bank cycles, never visible to the system.
        return 0;
      case WritePolicy::BankContention: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + writeCycles_;
        // The requester only stalls once the backlog exceeds the
        // write queue: it must wait for the backlog to drain down to
        // queue depth.
        const std::uint64_t backlog = bankFreeAt_[bank] - now;
        const std::uint64_t budget =
            std::uint64_t(cfg_.writeQueueDepth) * writeCycles_;
        return backlog > budget ? backlog - budget : 0;
      }
      case WritePolicy::Blocking: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + writeCycles_;
        return (start - now) + writeCycles_;
      }
    }
    panic("bad WritePolicy");
}

LlcReadOutcome
SharedLlc::demandRead(std::uint64_t addr, std::uint64_t now)
{
    LlcReadOutcome out;
    const std::uint32_t bank = bankOf(addr);
    ++stats_.demandReads;

    CacheAccessResult res = tags_.access(addr, false);
    out.hit = res.hit;

    if (res.hit) {
        ++stats_.demandHits;
        stats_.hitEnergy += model_.eHit;
        const std::uint64_t wait = reserveRead(bank, now);
        stats_.readWaitCycles += wait;
        readWaitDist_.add(double(wait));
        out.latencyCycles =
            wait + cfg_.controllerCycles + tagCycles_ + readCycles_;
        return out;
    }

    ++stats_.demandMisses;
    stats_.missEnergy += model_.eMiss;
    // Miss detection costs the tag probe; the fill happens when DRAM
    // returns (state updated now, timing accounted via accountWrite).
    out.latencyCycles = cfg_.controllerCycles + tagCycles_;

    ++stats_.fills;
    stats_.writeEnergy += model_.eWrite;
    out.latencyCycles += accountWrite(bank, now);
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        out.victimDirty = true;
        out.victimAddr = res.evictedAddr;
    }
    return out;
}

LlcWritebackOutcome
SharedLlc::writeback(std::uint64_t addr, std::uint64_t now)
{
    LlcWritebackOutcome out;
    const std::uint32_t bank = bankOf(addr);
    ++stats_.writebacksIn;

    if (cfg_.bypassWritebackMiss && !tags_.probe(addr)) {
        // Bypass: pay only the tag probe, never touch the NVM array.
        ++stats_.writeBypasses;
        stats_.missEnergy += model_.eMiss;
        out.forwardedToDram = true;
        return out;
    }

    stats_.writeEnergy += model_.eWrite;
    CacheAccessResult res = tags_.installWriteback(addr);
    out.stallCycles = accountWrite(bank, now);
    stats_.writeStallCycles += out.stallCycles;
    writeStallDist_.add(double(out.stallCycles));
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        out.victimDirty = true;
        out.victimAddr = res.evictedAddr;
    }
    return out;
}

double
SharedLlc::missRate() const
{
    if (stats_.demandReads == 0)
        return 0.0;
    return double(stats_.demandMisses) / double(stats_.demandReads);
}

void
SharedLlc::exportStats(MetricsRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + ".demandReads").inc(stats_.demandReads);
    reg.counter(prefix + ".readHits").inc(stats_.demandHits);
    reg.counter(prefix + ".readMisses").inc(stats_.demandMisses);
    reg.counter(prefix + ".fills").inc(stats_.fills);
    reg.counter(prefix + ".writeHits")
        .inc(stats_.writebacksIn - stats_.writeBypasses);
    reg.counter(prefix + ".writebacksIn").inc(stats_.writebacksIn);
    reg.counter(prefix + ".dirtyEvictions").inc(stats_.dirtyEvictions);
    reg.counter(prefix + ".writeBypasses").inc(stats_.writeBypasses);
    reg.counter(prefix + ".readWaitCycles").inc(stats_.readWaitCycles);
    reg.counter(prefix + ".writeStallCycles")
        .inc(stats_.writeStallCycles);
    reg.gauge(prefix + ".hitEnergy").add(stats_.hitEnergy);
    reg.gauge(prefix + ".missEnergy").add(stats_.missEnergy);
    reg.gauge(prefix + ".writeEnergy").add(stats_.writeEnergy);
    reg.gauge(prefix + ".missRate").set(missRate());

    reg.distribution(prefix + ".writeStall").merge(writeStallDist_.snapshot());
    reg.distribution(prefix + ".readWait").merge(readWaitDist_.snapshot());
    reg.gauge(prefix + ".maxLineWrites")
        .set(double(tags_.maxLineWrites()));
    tags_.exportStats(reg, prefix + ".tags");
}

} // namespace nvmcache
