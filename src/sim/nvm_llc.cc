#include "sim/nvm_llc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

namespace {

std::uint64_t
toCycles(double seconds, double freq)
{
    return std::uint64_t(std::max(1.0, std::ceil(seconds * freq)));
}

} // namespace

SharedLlc::SharedLlc(const LlcModel &model, const Config &cfg,
                     double coreFrequency)
    : model_(model), cfg_(cfg),
      tags_(CacheGeometry{model.capacityBytes, cfg.associativity,
                          cfg.blockBytes})
{
    if (coreFrequency <= 0.0)
        fatal("SharedLlc: bad core frequency");
    if (cfg_.numBanks == 0 ||
        (cfg_.numBanks & (cfg_.numBanks - 1)) != 0)
        fatal("SharedLlc: bank count must be a power of two");
    tagCycles_ = toCycles(model_.tagLatency, coreFrequency);
    readCycles_ = toCycles(model_.readLatency, coreFrequency);
    writeCycles_ = toCycles(model_.writeLatency(), coreFrequency);
    bankFreeAt_.assign(cfg_.numBanks, 0);
    if (cfg_.faults.enabled)
        injector_ = std::make_unique<FaultInjector>(
            cfg_.faults, model_.klass, tags_.geometry().numLines(),
            cfg_.blockBytes);
}

std::uint32_t
SharedLlc::bankOf(std::uint64_t addr) const
{
    return std::uint32_t((addr / cfg_.blockBytes) % cfg_.numBanks);
}

std::uint64_t
SharedLlc::reserveRead(std::uint32_t bank, std::uint64_t now)
{
    const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
    bankFreeAt_[bank] = start + readCycles_;
    return start - now;
}

std::uint64_t
SharedLlc::accountWrite(std::uint32_t bank, std::uint64_t now,
                        std::uint64_t cycles)
{
    switch (cfg_.writePolicy) {
      case WritePolicy::Posted:
        // Array write absorbed by the write buffer; serviced during
        // idle bank cycles, never visible to the system.
        return 0;
      case WritePolicy::BankContention: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + cycles;
        // The requester only stalls once the backlog exceeds the
        // write queue: it must wait for the backlog to drain down to
        // queue depth (sized in base write pulses — retry pulses
        // consume queue slots' worth of bank time like any others).
        const std::uint64_t backlog = bankFreeAt_[bank] - now;
        const std::uint64_t budget =
            std::uint64_t(cfg_.writeQueueDepth) * writeCycles_;
        return backlog > budget ? backlog - budget : 0;
      }
      case WritePolicy::Blocking: {
        const std::uint64_t start = std::max(now, bankFreeAt_[bank]);
        bankFreeAt_[bank] = start + cycles;
        return (start - now) + cycles;
      }
    }
    panic("bad WritePolicy");
}

std::uint64_t
SharedLlc::applyWriteFaults(std::uint64_t lineIndex, bool &retired)
{
    const FaultInjector::WriteOutcome wo =
        injector_->onArrayWrite(lineIndex);
    FaultStats &st = injector_->stats();
    std::uint64_t extra = 0;
    if (wo.retries > 0) {
        // Escalated pulses: total cost 2^(retries+1)-1 base pulses,
        // of which one is already charged by the caller.
        const std::uint64_t mult = retryCostMultiplier(wo.retries);
        const std::uint64_t cycles = (mult - 1) * writeCycles_;
        extra += cycles;
        st.retryCycles += cycles;
        stats_.writeEnergy += model_.eWrite * double(mult - 1);
    }
    if (wo.scrubbed) {
        // SECDED corrected the residual single-bit error; the scrub
        // rewrites the corrected line.
        extra += cfg_.faults.scrubCycles;
        st.scrubCycles += cfg_.faults.scrubCycles;
        stats_.writeEnergy += model_.eWrite;
    }
    retired = wo.retired();
    return extra;
}

LlcReadOutcome
SharedLlc::demandRead(std::uint64_t addr, std::uint64_t now)
{
    LlcReadOutcome out;
    const std::uint32_t bank = bankOf(addr);
    ++stats_.demandReads;
    if (injector_)
        injector_->tick(tags_.liveLines());

    CacheAccessResult res = tags_.access(addr, false);
    out.hit = res.hit;

    if (res.hit) {
        std::uint64_t scrubExtra = 0;
        bool lineLost = false;
        if (injector_) {
            const FaultInjector::ReadOutcome ro =
                injector_->onRead(res.lineIndex);
            if (ro.scrubbed) {
                // SECDED corrected a single-bit error under the read;
                // the scrub rewrites the corrected line.
                scrubExtra = cfg_.faults.scrubCycles;
                injector_->stats().scrubCycles += scrubExtra;
                stats_.writeEnergy += model_.eWrite;
            } else if (ro.retired) {
                // Multi-bit error: the line's data is gone and its
                // way is withdrawn; the request falls through to DRAM
                // with no refill (there is nowhere to put it).
                tags_.retireLine(res.lineIndex);
                lineLost = true;
            }
        }
        if (!lineLost) {
            ++stats_.demandHits;
            stats_.hitEnergy += model_.eHit;
            const std::uint64_t wait = reserveRead(bank, now);
            stats_.readWaitCycles += wait;
            readWaitDist_.add(double(wait));
            out.latencyCycles = wait + cfg_.controllerCycles +
                                tagCycles_ + readCycles_ + scrubExtra;
            return out;
        }
        out.hit = false;
        ++stats_.demandMisses;
        stats_.missEnergy += model_.eMiss;
        out.latencyCycles = cfg_.controllerCycles + tagCycles_;
        return out;
    }

    ++stats_.demandMisses;
    stats_.missEnergy += model_.eMiss;
    // Miss detection costs the tag probe; the fill happens when DRAM
    // returns (state updated now, timing accounted via accountWrite).
    out.latencyCycles = cfg_.controllerCycles + tagCycles_;

    if (res.noWay) {
        // Every way of the set is retired: the read is serviced by
        // DRAM and nothing is installed. noWay is only reachable
        // through retirements, so injector_ is live here.
        injector_->noteNoWay();
        return out;
    }

    ++stats_.fills;
    stats_.writeEnergy += model_.eWrite;
    std::uint64_t writeBusy = writeCycles_;
    if (injector_) {
        bool retired = false;
        writeBusy += applyWriteFaults(res.lineIndex, retired);
        if (retired) {
            // The freshly filled line is clean; dropping it costs
            // nothing beyond the lost way.
            tags_.retireLine(res.lineIndex);
        }
    }
    out.latencyCycles += accountWrite(bank, now, writeBusy);
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        out.victimDirty = true;
        out.victimAddr = res.evictedAddr;
    }
    return out;
}

LlcWritebackOutcome
SharedLlc::writeback(std::uint64_t addr, std::uint64_t now)
{
    LlcWritebackOutcome out;
    const std::uint32_t bank = bankOf(addr);
    ++stats_.writebacksIn;
    if (injector_)
        injector_->tick(tags_.liveLines());

    if (cfg_.bypassWritebackMiss && !tags_.probe(addr)) {
        // Bypass: pay only the tag probe, never touch the NVM array.
        ++stats_.writeBypasses;
        stats_.missEnergy += model_.eMiss;
        out.forwardedToDram = true;
        return out;
    }

    CacheAccessResult res = tags_.installWriteback(addr);
    if (res.noWay) {
        // Every way of the set is retired: the dirty line continues
        // to DRAM unmodified, paying only the tag probe.
        injector_->noteNoWay();
        ++stats_.writeBypasses;
        stats_.missEnergy += model_.eMiss;
        out.forwardedToDram = true;
        return out;
    }

    stats_.writeEnergy += model_.eWrite;
    std::uint64_t writeBusy = writeCycles_;
    if (injector_) {
        bool retired = false;
        writeBusy += applyWriteFaults(res.lineIndex, retired);
        if (retired) {
            // The just-installed dirty line is lost with its way;
            // its data carries on to DRAM.
            tags_.retireLine(res.lineIndex);
            out.forwardedToDram = true;
        }
    }
    out.stallCycles = accountWrite(bank, now, writeBusy);
    stats_.writeStallCycles += out.stallCycles;
    writeStallDist_.add(double(out.stallCycles));
    if (res.evictedValid && res.evictedDirty) {
        ++stats_.dirtyEvictions;
        out.victimDirty = true;
        out.victimAddr = res.evictedAddr;
    }
    return out;
}

double
SharedLlc::missRate() const
{
    if (stats_.demandReads == 0)
        return 0.0;
    return double(stats_.demandMisses) / double(stats_.demandReads);
}

void
SharedLlc::exportStats(MetricsRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + ".demandReads").inc(stats_.demandReads);
    reg.counter(prefix + ".readHits").inc(stats_.demandHits);
    reg.counter(prefix + ".readMisses").inc(stats_.demandMisses);
    reg.counter(prefix + ".fills").inc(stats_.fills);
    reg.counter(prefix + ".writeHits")
        .inc(stats_.writebacksIn - stats_.writeBypasses);
    reg.counter(prefix + ".writebacksIn").inc(stats_.writebacksIn);
    reg.counter(prefix + ".dirtyEvictions").inc(stats_.dirtyEvictions);
    reg.counter(prefix + ".writeBypasses").inc(stats_.writeBypasses);
    reg.counter(prefix + ".readWaitCycles").inc(stats_.readWaitCycles);
    reg.counter(prefix + ".writeStallCycles")
        .inc(stats_.writeStallCycles);
    reg.gauge(prefix + ".hitEnergy").add(stats_.hitEnergy);
    reg.gauge(prefix + ".missEnergy").add(stats_.missEnergy);
    reg.gauge(prefix + ".writeEnergy").add(stats_.writeEnergy);
    reg.gauge(prefix + ".missRate").set(missRate());

    reg.distribution(prefix + ".writeStall").merge(writeStallDist_.snapshot());
    reg.distribution(prefix + ".readWait").merge(readWaitDist_.snapshot());
    reg.gauge(prefix + ".maxLineWrites")
        .set(double(tags_.maxLineWrites()));
    tags_.exportStats(reg, prefix + ".tags");

    // The faults section exists only when injection is enabled, so a
    // faults-off run's snapshot stays byte-identical to the
    // pre-fault-layer simulator's.
    if (injector_)
        injector_->exportStats(reg, prefix + ".faults",
                               tags_.liveLines(),
                               tags_.geometry().numLines());
}

} // namespace nvmcache
