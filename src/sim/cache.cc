#include "sim/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace nvmcache {

SetAssocCache::SetAssocCache(const CacheGeometry &geom) : geom_(geom)
{
    if (geom_.blockBytes == 0 ||
        (geom_.blockBytes & (geom_.blockBytes - 1)) != 0)
        fatal("cache block size must be a power of two");
    if (geom_.associativity == 0)
        fatal("cache associativity must be >= 1");
    const std::uint64_t sets = geom_.numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache set count must be a power of two (capacity ",
              geom_.capacityBytes, ", assoc ", geom_.associativity, ")");
    blockBits_ = std::uint32_t(
        std::countr_zero(std::uint64_t(geom_.blockBytes)));
    tagShift_ = blockBits_ + std::uint32_t(std::countr_zero(sets));
    setMask_ = sets - 1;
    lines_.resize(sets * geom_.associativity);
    setEvictions_.resize(sets);
    lineWrites_.resize(lines_.size());
}

SetAssocCache::Line *
SetAssocCache::selectVictim(Line *base)
{
    // An invalid way always wins.
    for (std::uint32_t w = 0; w < geom_.associativity; ++w)
        if (!base[w].valid)
            return &base[w];

    switch (geom_.replacement) {
      case ReplacementPolicy::LRU:
      case ReplacementPolicy::FIFO: {
        // Both pick the smallest timestamp; they differ in whether
        // hits refresh it (see accessImpl).
        Line *victim = base;
        for (std::uint32_t w = 1; w < geom_.associativity; ++w)
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        return victim;
      }
      case ReplacementPolicy::Random: {
        // xorshift64*: deterministic per cache instance.
        randState_ ^= randState_ >> 12;
        randState_ ^= randState_ << 25;
        randState_ ^= randState_ >> 27;
        return &base[(randState_ * 0x2545f4914f6cdd1dull) %
                     geom_.associativity];
      }
    }
    panic("bad ReplacementPolicy");
}

CacheAccessResult
SetAssocCache::accessImpl(std::uint64_t addr, bool write)
{
    CacheAccessResult result;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *const base = &lines_[set * geom_.associativity];
    const std::uint32_t assoc = geom_.associativity;

    // One pass finds a hit while tracking the fill candidate (first
    // invalid way, else the smallest-timestamp way in scan order —
    // identical to the two-pass policy this replaces).
    Line *invalid = nullptr;
    Line *oldest = base;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        Line &line = base[w];
        if (line.valid) {
            if (line.tag == tag) {
                if (geom_.replacement == ReplacementPolicy::LRU)
                    line.lastUse = ++useClock_;
                line.dirty |= write;
                if (write)
                    ++lineWrites_[std::size_t(&line - lines_.data())];
                result.hit = true;
                return result;
            }
            if (line.lastUse < oldest->lastUse)
                oldest = &line;
        } else if (!invalid) {
            invalid = &line;
        }
    }

    // Miss: evict the policy's victim (or an invalid way) and fill.
    Line *victim;
    if (invalid)
        victim = invalid;
    else if (geom_.replacement == ReplacementPolicy::Random)
        victim = selectVictim(base);
    else
        victim = oldest;
    if (victim->valid) {
        result.evictedValid = true;
        result.evictedDirty = victim->dirty;
        result.evictedAddr = lineAddr(victim->tag, set);
        if (victim->dirty)
            ++writebacks_;
        ++setEvictions_[set];
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    // Every fill rewrites the victim way's data array.
    ++lineWrites_[std::size_t(victim - lines_.data())];
    return result;
}

CacheAccessResult
SetAssocCache::access(std::uint64_t addr, bool write)
{
    CacheAccessResult result = accessImpl(addr, write);
    if (result.hit)
        ++hits_;
    else
        ++misses_;
    return result;
}

bool
SetAssocCache::probe(std::uint64_t addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

CacheAccessResult
SetAssocCache::installWriteback(std::uint64_t addr)
{
    // Same replacement behaviour as a demand write, but not counted as
    // a demand hit/miss: writebacks are not on the demand path.
    return accessImpl(addr, true);
}

bool
SetAssocCache::invalidate(std::uint64_t addr)
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return line.dirty;
        }
    }
    return false;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
    std::fill(setEvictions_.begin(), setEvictions_.end(), 0u);
    std::fill(lineWrites_.begin(), lineWrites_.end(), 0u);
}

std::uint64_t
SetAssocCache::maxLineWrites() const
{
    std::uint32_t best = 0;
    for (std::uint32_t w : lineWrites_)
        best = std::max(best, w);
    return best;
}

void
SetAssocCache::exportStats(MetricsRegistry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + ".hits").inc(hits_);
    reg.counter(prefix + ".misses").inc(misses_);
    reg.counter(prefix + ".writebacks").inc(writebacks_);

    Distribution &evictions =
        reg.distribution(prefix + ".evictionsPerSet");
    for (std::uint32_t e : setEvictions_)
        evictions.add(double(e));

    Distribution &writes = reg.distribution(prefix + ".writesPerLine");
    for (std::uint32_t w : lineWrites_)
        writes.add(double(w));
}

} // namespace nvmcache
