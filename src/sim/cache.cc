#include "sim/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace nvmcache {

SetAssocCache::SetAssocCache(const CacheGeometry &geom) : geom_(geom)
{
    if (geom_.blockBytes == 0 ||
        (geom_.blockBytes & (geom_.blockBytes - 1)) != 0)
        fatal("cache block size must be a power of two");
    if (geom_.associativity == 0)
        fatal("cache associativity must be >= 1");
    if (geom_.associativity > 64)
        fatal("cache associativity must be <= 64 (way masks are one "
              "64-bit word)");
    const std::uint64_t sets = geom_.numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache set count must be a power of two (capacity ",
              geom_.capacityBytes, ", assoc ", geom_.associativity, ")");
    blockBits_ = std::uint32_t(
        std::countr_zero(std::uint64_t(geom_.blockBytes)));
    tagShift_ = blockBits_ + std::uint32_t(std::countr_zero(sets));
    setMask_ = sets - 1;
    lruHits_ = geom_.replacement == ReplacementPolicy::LRU;
    meta_.resize(sets * geom_.associativity);
    ranked_ = geom_.associativity <= 16;
    if (ranked_) {
        // Way w starts at rank w: a valid permutation per set.
        rankFieldMask_ =
            geom_.associativity == 16
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << (4 * geom_.associativity)) - 1;
        ranks_.assign(sets, 0xFEDCBA9876543210ull & rankFieldMask_);
    } else {
        lastUse_.resize(meta_.size());
    }
    retired_.assign(sets, 0);
    setEvictions_.resize(sets);
    lineWrites_.resize(meta_.size());
}

template <std::uint32_t A>
CacheAccessResult
SetAssocCache::accessImplFixed(std::uint64_t addr, bool write)
{
    CacheAccessResult result;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const std::size_t base = std::size_t(set) * geom_.associativity;
    std::uint64_t *const meta = &meta_[base];
    const std::uint32_t assoc = A ? A : geom_.associativity;

    // Hit scan over the dense metadata only: a valid match satisfies
    // (m | dirty) == want regardless of the line's dirtiness, and an
    // invalid way (m == 0) can never match since want has the valid
    // bit set. Tags are unique within a set, so at most one way hits.
    // The early exit keeps the common case touching as few host
    // cache lines as possible; with A fixed at compile time the loop
    // unrolls completely.
    const std::uint64_t want = (tag << 2) | kDirty | kValid;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if ((meta[w] | kDirty) == want) {
            if (lruHits_)
                touch(set, base, w);
            if (write) {
                meta[w] |= kDirty;
                ++lineWrites_[base + w];
            }
            result.hit = true;
            result.lineIndex = base + w;
            return result;
        }
    }

    // Miss: fill the first invalid live way, else the policy's victim.
    // Retired ways are masked out of both scans; with no retirements
    // (dead == 0, the only state reachable without fault injection)
    // the masks are no-ops and this is the historical behaviour bit
    // for bit.
    const std::uint64_t dead = retired_[set];
    std::uint32_t victim = assoc;
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (!((meta[w] & kValid) | ((dead >> w) & 1))) {
            victim = w;
            break;
        }
    if (victim == assoc) {
        if (dead == 0) [[likely]] {
            switch (geom_.replacement) {
              case ReplacementPolicy::LRU:
              case ReplacementPolicy::FIFO:
                // Both take the oldest entry; they differ in whether
                // hits refresh recency above.
                victim = oldestWay(set, base);
                break;
              case ReplacementPolicy::Random:
                // xorshift64*: deterministic per cache instance.
                randState_ ^= randState_ >> 12;
                randState_ ^= randState_ << 25;
                randState_ ^= randState_ >> 27;
                victim = std::uint32_t(
                    (randState_ * 0x2545f4914f6cdd1dull) % assoc);
                break;
            }
        } else {
            victim = victimAmongLive(set, base, dead);
            if (victim == assoc) {
                // Whole set retired: nothing to install or displace.
                result.noWay = true;
                return result;
            }
        }
        const std::uint64_t m = meta[victim];
        result.evictedValid = true;
        result.evictedDirty = (m & kDirty) != 0;
        result.evictedAddr = lineAddr(m >> 2, set);
        if (m & kDirty)
            ++writebacks_;
        ++setEvictions_[set];
    }
    meta[victim] = (tag << 2) | (write ? kDirty : 0) | kValid;
    touch(set, base, victim);
    // Every fill rewrites the victim way's data array.
    ++lineWrites_[base + victim];
    result.lineIndex = base + victim;
    return result;
}

CacheAccessResult
SetAssocCache::accessImpl(std::uint64_t addr, bool write)
{
    // Fixed-associativity instantiations let the scans unroll; every
    // configured geometry (L1 4/8-way, L2 8-way, LLC 16-way) takes
    // one of the specialized paths.
    switch (geom_.associativity) {
      case 4:
        return accessImplFixed<4>(addr, write);
      case 8:
        return accessImplFixed<8>(addr, write);
      case 16:
        return accessImplFixed<16>(addr, write);
      default:
        return accessImplFixed<0>(addr, write);
    }
}

CacheAccessResult
SetAssocCache::access(std::uint64_t addr, bool write)
{
    CacheAccessResult result = accessImpl(addr, write);
    if (result.hit)
        ++hits_;
    else
        ++misses_;
    return result;
}

bool
SetAssocCache::probe(std::uint64_t addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t want = (tagOf(addr) << 2) | kDirty | kValid;
    const std::uint64_t *meta =
        &meta_[std::size_t(set) * geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w)
        if ((meta[w] | kDirty) == want)
            return true;
    return false;
}

CacheAccessResult
SetAssocCache::installWriteback(std::uint64_t addr)
{
    // Same replacement behaviour as a demand write, but not counted as
    // a demand hit/miss: writebacks are not on the demand path.
    return accessImpl(addr, true);
}

bool
SetAssocCache::retireLine(std::uint64_t lineIndex)
{
    const std::uint64_t set = lineIndex / geom_.associativity;
    const std::uint32_t way =
        std::uint32_t(lineIndex % geom_.associativity);
    const std::uint64_t bit = std::uint64_t(1) << way;
    if (retired_[set] & bit)
        return false;
    retired_[set] |= bit;
    ++retiredCount_;
    std::uint64_t &m = meta_[lineIndex];
    const bool dirty = (m & (kDirty | kValid)) == (kDirty | kValid);
    // meta == 0 can never match the hit scan's want (valid bit set),
    // so a retired way is invisible there without any extra test.
    m = 0;
    return dirty;
}

std::uint32_t
SetAssocCache::victimAmongLive(std::uint64_t set, std::size_t base,
                               std::uint64_t dead)
{
    const std::uint32_t assoc = geom_.associativity;
    const std::uint64_t allWays =
        assoc == 64 ? ~std::uint64_t(0)
                    : (std::uint64_t(1) << assoc) - 1;
    const std::uint64_t live = allWays & ~dead;
    if (live == 0)
        return assoc;
    // The caller found no fillable way, so every live way is valid.
    switch (geom_.replacement) {
      case ReplacementPolicy::LRU:
      case ReplacementPolicy::FIFO:
        if (ranked_) {
            // Oldest live way = highest rank among live ways (the
            // permutation still covers retired ways; they simply
            // never win).
            const std::uint64_t r = ranks_[set];
            std::uint32_t victim = assoc;
            std::uint64_t best = 0;
            for (std::uint32_t w = 0; w < assoc; ++w) {
                if (!((live >> w) & 1))
                    continue;
                const std::uint64_t rank = (r >> (4 * w)) & 0xF;
                if (victim == assoc || rank > best) {
                    best = rank;
                    victim = w;
                }
            }
            return victim;
        } else {
            std::uint32_t victim = assoc;
            std::uint64_t oldest = 0;
            for (std::uint32_t w = 0; w < assoc; ++w) {
                if (!((live >> w) & 1))
                    continue;
                if (victim == assoc || lastUse_[base + w] < oldest) {
                    oldest = lastUse_[base + w];
                    victim = w;
                }
            }
            return victim;
        }
      case ReplacementPolicy::Random: {
        randState_ ^= randState_ >> 12;
        randState_ ^= randState_ << 25;
        randState_ ^= randState_ >> 27;
        std::uint32_t w = std::uint32_t(
            (randState_ * 0x2545f4914f6cdd1dull) % assoc);
        while (!((live >> w) & 1))
            w = (w + 1) % assoc;
        return w;
      }
    }
    return assoc; // unreachable: the switch is exhaustive
}

bool
SetAssocCache::invalidate(std::uint64_t addr)
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t want = (tagOf(addr) << 2) | kDirty | kValid;
    std::uint64_t *meta =
        &meta_[std::size_t(set) * geom_.associativity];
    for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
        if ((meta[w] | kDirty) == want) {
            const bool dirty = (meta[w] & kDirty) != 0;
            meta[w] = 0;
            return dirty;
        }
    }
    return false;
}

void
SetAssocCache::absorbShard(const SetAssocCache &shard,
                           std::uint64_t setBegin,
                           std::uint64_t setEnd)
{
    const std::uint32_t assoc = geom_.associativity;
    const std::size_t lineBegin = std::size_t(setBegin) * assoc;
    const std::size_t lineEnd = std::size_t(setEnd) * assoc;
    std::copy(shard.meta_.begin() + lineBegin,
              shard.meta_.begin() + lineEnd,
              meta_.begin() + lineBegin);
    if (ranked_) {
        std::copy(shard.ranks_.begin() + setBegin,
                  shard.ranks_.begin() + setEnd,
                  ranks_.begin() + setBegin);
    } else {
        // Clock values from different shards never mix within one
        // set, so per-set recency order is preserved verbatim.
        std::copy(shard.lastUse_.begin() + lineBegin,
                  shard.lastUse_.begin() + lineEnd,
                  lastUse_.begin() + lineBegin);
        useClock_ = std::max(useClock_, shard.useClock_);
    }
    for (std::uint64_t s = setBegin; s < setEnd; ++s) {
        retiredCount_ +=
            std::uint64_t(std::popcount(shard.retired_[s])) -
            std::uint64_t(std::popcount(retired_[s]));
        retired_[s] = shard.retired_[s];
    }
    std::copy(shard.setEvictions_.begin() + setBegin,
              shard.setEvictions_.begin() + setEnd,
              setEvictions_.begin() + setBegin);
    std::copy(shard.lineWrites_.begin() + lineBegin,
              shard.lineWrites_.begin() + lineEnd,
              lineWrites_.begin() + lineBegin);
    hits_ += shard.hits_;
    misses_ += shard.misses_;
    writebacks_ += shard.writebacks_;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
    std::fill(setEvictions_.begin(), setEvictions_.end(), 0u);
    std::fill(lineWrites_.begin(), lineWrites_.end(), 0u);
}

std::uint64_t
SetAssocCache::maxLineWrites() const
{
    std::uint32_t best = 0;
    for (std::uint32_t w : lineWrites_)
        best = std::max(best, w);
    return best;
}

void
SetAssocCache::exportStats(MetricsRegistry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + ".hits").inc(hits_);
    reg.counter(prefix + ".misses").inc(misses_);
    reg.counter(prefix + ".writebacks").inc(writebacks_);

    Distribution &evictions =
        reg.distribution(prefix + ".evictionsPerSet");
    for (std::uint32_t e : setEvictions_)
        evictions.add(double(e));

    Distribution &writes = reg.distribution(prefix + ".writesPerLine");
    for (std::uint32_t w : lineWrites_)
        writes.add(double(w));
}

} // namespace nvmcache
