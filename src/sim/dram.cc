#include "sim/dram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

DramModel::DramModel(const DramConfig &cfg, double coreFrequency)
    : cfg_(cfg)
{
    if (cfg_.numControllers == 0 || coreFrequency <= 0.0)
        fatal("DramModel: bad configuration");
    const double service_s =
        double(cfg_.blockBytes) / cfg_.bandwidthPerController;
    serviceCycles_ = std::uint64_t(
        std::max(1.0, std::ceil(service_s * coreFrequency)));
    deviceCycles_ = std::uint64_t(
        std::max(1.0, std::ceil(cfg_.deviceLatency * coreFrequency)));
    freeAt_.assign(cfg_.numControllers, 0);
}

std::uint32_t
DramModel::controllerOf(std::uint64_t addr) const
{
    // Interleave at block granularity across controllers.
    const std::uint64_t block = addr / cfg_.blockBytes;
    return std::uint32_t(block % cfg_.numControllers);
}

std::uint64_t
DramModel::enqueue(std::uint32_t ctl, std::uint64_t now)
{
    // Backlog at arrival, in whole outstanding requests.
    const std::uint64_t backlog =
        freeAt_[ctl] > now ? freeAt_[ctl] - now : 0;
    queueDepthDist_.add(double(backlog / serviceCycles_));

    std::uint64_t start = std::max(now, freeAt_[ctl]);
    freeAt_[ctl] = start + serviceCycles_;
    queueCycles_ += start - now;
    queueDelayDist_.add(double(start - now));
    return start;
}

std::uint64_t
DramModel::read(std::uint64_t addr, std::uint64_t now)
{
    ++reads_;
    const std::uint64_t start = enqueue(controllerOf(addr), now);
    return (start - now) + deviceCycles_;
}

void
DramModel::write(std::uint64_t addr, std::uint64_t now)
{
    ++writes_;
    enqueue(controllerOf(addr), now);
}

void
DramModel::exportStats(MetricsRegistry &reg,
                       const std::string &prefix) const
{
    reg.counter(prefix + ".reads").inc(reads_);
    reg.counter(prefix + ".writes").inc(writes_);
    reg.counter(prefix + ".queueCycles").inc(queueCycles_);
    reg.distribution(prefix + ".queueDelay").merge(queueDelayDist_.snapshot());
    reg.distribution(prefix + ".queueDepth").merge(queueDepthDist_.snapshot());
}

} // namespace nvmcache
