#include "sim/faults.hh"

#include <cmath>

#include "nvm/endurance.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nvmcache {

LineErrorProbs
lineErrorProbs(double perBitRate, std::uint32_t bits)
{
    if (perBitRate < 0.0 || perBitRate > 1.0)
        fatal("lineErrorProbs: per-bit rate must be in [0,1], got ",
              perBitRate);
    if (bits == 0)
        fatal("lineErrorProbs: need at least one bit");

    LineErrorProbs p;
    if (perBitRate == 0.0)
        return p; // pNone = 1: no errors, severity never consulted
    if (perBitRate == 1.0) {
        p.pNone = 0.0;
        p.pSingleGivenError = bits == 1 ? 1.0 : 0.0;
        return p;
    }
    const double q = 1.0 - perBitRate;
    p.pNone = std::pow(q, double(bits));
    const double p_single =
        double(bits) * perBitRate * std::pow(q, double(bits - 1));
    p.pSingleGivenError = p_single / (1.0 - p.pNone);
    return p;
}

FaultInjector::FaultInjector(const FaultConfig &cfg, NvmClass klass,
                             std::uint64_t numLines,
                             std::uint32_t blockBytes)
    : cfg_(cfg)
{
    if (numLines == 0 || blockBytes == 0)
        fatal("FaultInjector: empty cache geometry");
    if (cfg_.berScale < 0.0)
        fatal("FaultInjector: berScale must be >= 0");
    if (cfg_.wearLevelingFactor <= 0.0 ||
        cfg_.wearLevelingFactor > 1.0)
        fatal("FaultInjector: wear-leveling factor must be (0,1]");
    if (cfg_.wearScale < 0.0)
        fatal("FaultInjector: wearScale must be >= 0");
    if (cfg_.capacitySampleInterval == 0)
        fatal("FaultInjector: capacitySampleInterval must be >= 1");
    if (cfg_.maxWriteRetries > 20)
        fatal("FaultInjector: maxWriteRetries capped at 20 (the "
              "2^k pulse escalation overflows cycle math beyond)");

    const std::uint32_t bits = blockBytes * 8;
    const RawBitErrorRates raw = rawBitErrorRates(klass);
    const double p_w = std::min(1.0, raw.writeError * cfg_.berScale);
    const double p_r = std::min(1.0, raw.readError * cfg_.berScale);
    write_ = lineErrorProbs(p_w, bits);
    read_ = lineErrorProbs(p_r, bits);
    writeFaults_ = p_w > 0.0;
    readFaults_ = p_r > 0.0;

    wearPerAttempt_ = cfg_.wearScale * cfg_.wearLevelingFactor;
    wearBudget_ = writeEndurance(klass);

    lineSeed_.reserve(numLines);
    for (std::uint64_t i = 0; i < numLines; ++i)
        lineSeed_.push_back(deriveSeed(cfg_.seed, i));
    drawCount_.assign(numLines, 0);
    wear_.assign(numLines, 0.0);
}

double
FaultInjector::draw(std::uint64_t line)
{
    // Counter-based: hash (line seed, event index) instead of keeping
    // generator state, so a line's k-th draw is the same value no
    // matter what other lines did in between.
    return toUnitInterval(
        deriveSeed(lineSeed_[line], ++drawCount_[line]));
}

FaultInjector::WriteOutcome
FaultInjector::onArrayWrite(std::uint64_t line)
{
    const WriteOutcome out = classifyArrayWrite(line);
    noteRetries(out.retries);
    return out;
}

FaultInjector::WriteOutcome
FaultInjector::classifyArrayWrite(std::uint64_t line)
{
    WriteOutcome out;
    ++st_.injectedWrites;

    if (writeFaults_) {
        // Verify-retry: attempt 0 is the base pulse; each failed
        // verify escalates. Attempts draw independently — a stronger
        // pulse re-writes the whole line.
        while (draw(line) >= write_.pNone) {
            if (out.retries == cfg_.maxWriteRetries) {
                // Pulses exhausted: classify the residual error.
                if (draw(line) < write_.pSingleGivenError) {
                    out.scrubbed = true;
                    ++st_.writeScrubs;
                } else {
                    out.eccRetired = true;
                    ++st_.uncorrectable;
                    ++st_.eccRetirements;
                }
                break;
            }
            ++out.retries;
            ++st_.writeRetries;
        }
    }

    if (wearPerAttempt_ > 0.0 && !out.eccRetired) {
        wear_[line] += double(1 + out.retries) * wearPerAttempt_;
        if (wear_[line] >= wearBudget_) {
            out.wearRetired = true;
            ++st_.wearRetirements;
        }
    }
    return out;
}

void
FaultInjector::absorbShard(const FaultInjector &shard,
                           std::uint64_t lineBegin,
                           std::uint64_t lineEnd)
{
    for (std::uint64_t i = lineBegin; i < lineEnd; ++i) {
        drawCount_[i] = shard.drawCount_[i];
        wear_[i] = shard.wear_[i];
    }
    st_.injectedWrites += shard.st_.injectedWrites;
    st_.writeRetries += shard.st_.writeRetries;
    st_.retryCycles += shard.st_.retryCycles;
    st_.writeScrubs += shard.st_.writeScrubs;
    st_.readScrubs += shard.st_.readScrubs;
    st_.scrubCycles += shard.st_.scrubCycles;
    st_.uncorrectable += shard.st_.uncorrectable;
    st_.eccRetirements += shard.st_.eccRetirements;
    st_.wearRetirements += shard.st_.wearRetirements;
    st_.noWayBypasses += shard.st_.noWayBypasses;
}

FaultInjector::ReadOutcome
FaultInjector::onRead(std::uint64_t line)
{
    ReadOutcome out;
    if (!readFaults_)
        return out;
    if (draw(line) < read_.pNone)
        return out;
    if (draw(line) < read_.pSingleGivenError) {
        out.scrubbed = true;
        ++st_.readScrubs;
    } else {
        out.retired = true;
        ++st_.uncorrectable;
    }
    return out;
}

void
FaultInjector::exportStats(MetricsRegistry &reg,
                           const std::string &prefix,
                           std::uint64_t liveLines,
                           std::uint64_t totalLines) const
{
    reg.counter(prefix + ".injectedWrites").inc(st_.injectedWrites);
    reg.counter(prefix + ".writeRetries").inc(st_.writeRetries);
    reg.counter(prefix + ".retryCycles").inc(st_.retryCycles);
    reg.counter(prefix + ".writeScrubs").inc(st_.writeScrubs);
    reg.counter(prefix + ".readScrubs").inc(st_.readScrubs);
    reg.counter(prefix + ".scrubCycles").inc(st_.scrubCycles);
    reg.counter(prefix + ".uncorrectable").inc(st_.uncorrectable);
    reg.counter(prefix + ".eccRetirements").inc(st_.eccRetirements);
    reg.counter(prefix + ".wearRetirements").inc(st_.wearRetirements);
    reg.counter(prefix + ".retiredLines")
        .inc(totalLines - liveLines);
    reg.counter(prefix + ".noWayBypasses").inc(st_.noWayBypasses);
    reg.gauge(prefix + ".effectiveLines").set(double(liveLines));
    reg.gauge(prefix + ".effectiveCapacityFraction")
        .set(totalLines == 0 ? 0.0
                             : double(liveLines) / double(totalLines));
    reg.distribution(prefix + ".retriesPerWrite")
        .merge(retriesDist_.snapshot());
    reg.distribution(prefix + ".effectiveLinesOverTime")
        .merge(capacityDist_.snapshot());
}

} // namespace nvmcache
