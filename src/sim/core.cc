#include "sim/core.hh"

#include <algorithm>

namespace nvmcache {

PrivateCore::PrivateCore(const CoreParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d),
      l2_(params.l2)
{
}

PrivateAccessOutcome
PrivateCore::accessPrivate(const MemAccess &access)
{
    // Issue time: the gap instructions plus the memory instruction
    // itself at base CPI.
    advanceIssue(access.nonMemInstrs);

    PrivateAccessOutcome out;

    SetAssocCache &l1 =
        access.kind == AccessKind::IFetch ? l1i_ : l1d_;
    const bool is_store = access.kind == AccessKind::Store;

    CacheAccessResult l1res = l1.access(access.addr, is_store);
    if (l1res.hit) {
        out.satisfied = true;
        return out; // L1 hit latency folded into base CPI
    }

    // L1 victim writeback drains into L2 (full line, free allocate).
    if (l1res.evictedValid && l1res.evictedDirty) {
        CacheAccessResult wb = l2_.installWriteback(l1res.evictedAddr);
        if (wb.evictedValid && wb.evictedDirty)
            out.writebacks.push(wb.evictedAddr);
    }

    out.latencyCycles = params_.l2Cycles;
    CacheAccessResult l2res = l2_.access(access.addr, false);
    if (l2res.hit) {
        out.satisfied = true;
        return out;
    }

    // L2 demand fill may displace a dirty line toward the LLC.
    if (l2res.evictedValid && l2res.evictedDirty)
        out.writebacks.push(l2res.evictedAddr);

    out.satisfied = false;
    return out;
}

void
PrivateCore::applyStall(AccessKind kind, std::uint64_t latencyCycles)
{
    double stall = 0.0;
    switch (kind) {
      case AccessKind::Load:
        stall = std::max(0.0, double(latencyCycles) -
                                  double(params_.loadHide));
        break;
      case AccessKind::IFetch:
        stall = std::max(0.0, double(latencyCycles) -
                                  double(params_.ifetchHide));
        break;
      case AccessKind::Store:
        stall = std::max(0.0, double(latencyCycles) -
                                  double(params_.storeHide)) *
                params_.storeStallFactor;
        break;
    }
    cycle_ += stall;
    stallCycles_ += std::uint64_t(stall);
}

void
PrivateCore::applyRawStall(std::uint64_t cycles)
{
    cycle_ += double(cycles);
    stallCycles_ += cycles;
}

void
PrivateCore::exportStats(MetricsRegistry &reg,
                         const std::string &prefix) const
{
    reg.counter(prefix + ".instructions").inc(instructions_);
    reg.counter(prefix + ".stallCycles").inc(stallCycles_);
    l1i_.exportStats(reg, prefix + ".l1i");
    l1d_.exportStats(reg, prefix + ".l1d");
    l2_.exportStats(reg, prefix + ".l2");
}

} // namespace nvmcache
