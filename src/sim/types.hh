/**
 * @file
 * Fundamental types shared by the system simulator and the modules
 * that feed it (workload generation) or observe it (characterization).
 */

#ifndef NVMCACHE_SIM_TYPES_HH
#define NVMCACHE_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace nvmcache {

/** Kind of one memory reference. */
enum class AccessKind : std::uint8_t
{
    IFetch, ///< instruction fetch
    Load,   ///< data read
    Store   ///< data write
};

/**
 * One memory reference in a per-thread trace.
 *
 * `nonMemInstrs` is the number of non-memory instructions the thread
 * executed since its previous reference; the core model charges them
 * at the base CPI. Total instruction count therefore equals
 * sum(nonMemInstrs) + number of references.
 */
struct MemAccess
{
    std::uint64_t addr = 0;
    AccessKind kind = AccessKind::Load;
    std::uint32_t nonMemInstrs = 0;
};

/**
 * Pull-based per-thread trace source. Generators are deterministic:
 * after reset(), the same sequence is produced again.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next reference; false at end of trace. */
    virtual bool next(MemAccess &out) = 0;

    /** Rewind to the beginning (same deterministic sequence). */
    virtual void reset() = 0;
};

/**
 * Batched per-thread trace source: fills a caller-provided span
 * instead of paying a virtual call per access. Consumers (System's
 * run loop, the PRISM characterizer) drain local batches, so the
 * virtual dispatch is amortized over a whole batch; producers with a
 * non-virtual fill (TraceCursor) decode straight into the span.
 */
class BatchSource
{
  public:
    virtual ~BatchSource() = default;

    /**
     * Produce up to out.size() references; returns the count
     * produced. 0 means end of trace (sources never return a short
     * non-empty batch followed by more data for a non-empty request).
     */
    virtual std::size_t fill(std::span<MemAccess> out) = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_TYPES_HH
