/**
 * @file
 * Fundamental types shared by the system simulator and the modules
 * that feed it (workload generation) or observe it (characterization).
 */

#ifndef NVMCACHE_SIM_TYPES_HH
#define NVMCACHE_SIM_TYPES_HH

#include <cstdint>

namespace nvmcache {

/** Kind of one memory reference. */
enum class AccessKind : std::uint8_t
{
    IFetch, ///< instruction fetch
    Load,   ///< data read
    Store   ///< data write
};

/**
 * One memory reference in a per-thread trace.
 *
 * `nonMemInstrs` is the number of non-memory instructions the thread
 * executed since its previous reference; the core model charges them
 * at the base CPI. Total instruction count therefore equals
 * sum(nonMemInstrs) + number of references.
 */
struct MemAccess
{
    std::uint64_t addr = 0;
    AccessKind kind = AccessKind::Load;
    std::uint32_t nonMemInstrs = 0;
};

/**
 * Pull-based per-thread trace source. Generators are deterministic:
 * after reset(), the same sequence is produced again.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next reference; false at end of trace. */
    virtual bool next(MemAccess &out) = 0;

    /** Rewind to the beginning (same deterministic sequence). */
    virtual void reset() = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_TYPES_HH
