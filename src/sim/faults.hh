/**
 * @file
 * Deterministic fault-injection and resilience layer for the NVM LLC.
 *
 * The paper names endurance and write instability as each NVM class's
 * key drawback (Table I) and defers lifetime characterization to
 * future work (§VII); this module makes both a *simulated* dimension
 * of every experiment instead of a closed-form afterthought:
 *
 *  - Raw bit-error injection. Per-class per-bit write/read error
 *    rates (nvm/endurance.hh rawBitErrorRates) are folded into
 *    per-line, per-attempt error probabilities, scaled by the
 *    `berScale` knob. Draws are counter-based: each line owns an
 *    independent deriveSeed stream indexed by its event count, so the
 *    injected fault sequence depends only on the per-line access
 *    history — bit-identical at any `--jobs`, identical between live
 *    and PrivateTrace-replay runs.
 *
 *  - Write-verify-retry. Every array write is verified; a failed
 *    attempt is retried with an escalated (2x-per-attempt) pulse up
 *    to `maxWriteRetries` times, paying exponentially growing latency
 *    and energy (extending the asymmetric-access equations 4-8).
 *
 *  - SECDED ECC per line. A residual single-bit error (post-retry or
 *    on read) is corrected by a scrub (latency + rewrite energy); a
 *    multi-bit error is detected but uncorrectable.
 *
 *  - Wear-driven retirement. Each array write (including retries)
 *    charges `wearScale * wearLevelingFactor` wear units against the
 *    line's class endurance bound (nvm/endurance.hh). A worn-out or
 *    uncorrectable line is *retired* — removed from its set, shrinking
 *    effective associativity — so capacity degrades gracefully instead
 *    of aborting the simulation.
 *
 * The injector only decides fault outcomes and keeps the fault
 * counters; the owning SharedLlc applies the consequences (timing,
 * energy, tag-array retirement) so all cost accounting stays in one
 * place.
 */

#ifndef NVMCACHE_SIM_FAULTS_HH
#define NVMCACHE_SIM_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nvm/cell.hh"
#include "util/metrics.hh"

namespace nvmcache {

/** Knobs of the LLC fault-injection layer (all off by default). */
struct FaultConfig
{
    bool enabled = false;

    /** Multiplies both per-class raw bit-error rates. */
    double berScale = 1.0;

    /**
     * Residual write-imbalance factor in (0, 1] after wear-leveling
     * (1 = none deployed), matching estimateLifetime's parameter: the
     * leveled fraction of each write's wear is spread thin enough to
     * be negligible per line, so the written line is charged
     * `wearScale * wearLevelingFactor` wear units.
     */
    double wearLevelingFactor = 1.0;

    /**
     * Wear units charged per array write attempt. 1.0 models real
     * time; class endurance bounds (1e7..1e16 writes) are then far
     * beyond any minutes-long simulation, so wear studies accelerate
     * aging with wearScale >> 1 (each simulated write stands in for
     * wearScale real writes of an equally-imbalanced longer run).
     */
    double wearScale = 1.0;

    /** Verify-retry attempts after the initial write pulse. */
    std::uint32_t maxWriteRetries = 3;

    /** Cycles one ECC scrub (correct + rewrite) adds. */
    std::uint32_t scrubCycles = 32;

    /** Base of the per-line deriveSeed streams. */
    std::uint64_t seed = 0x5eed0fau;

    /** LLC accesses between effective-capacity samples. */
    std::uint32_t capacitySampleInterval = 4096;
};

/**
 * Per-attempt line error probabilities for a per-bit error rate @p
 * perBitRate over a @p bits -bit line, assuming independent bit
 * errors. SECDED ECC corrects exactly-one-bit errors and detects (but
 * cannot correct) multi-bit errors, so these two numbers fully
 * classify an attempt: clean, correctable, or uncorrectable.
 */
struct LineErrorProbs
{
    double pNone = 1.0;           ///< P(0 bit errors)
    double pSingleGivenError = 1.0; ///< P(exactly 1 | >= 1)
};

LineErrorProbs lineErrorProbs(double perBitRate, std::uint32_t bits);

/**
 * Total cost multiplier (vs one base write pulse) of a write that
 * needed @p retries extra attempts, with each attempt's pulse twice
 * the previous one's: sum of 2^0..2^retries = 2^(retries+1) - 1.
 * Applied to both the array-busy latency and the write energy.
 */
inline std::uint64_t
retryCostMultiplier(std::uint32_t retries)
{
    return (std::uint64_t(1) << (retries + 1)) - 1;
}

/** Event counters of the fault layer (exported as "llc.faults.*"). */
struct FaultStats
{
    std::uint64_t injectedWrites = 0; ///< array writes seen
    std::uint64_t writeRetries = 0;   ///< extra write attempts
    std::uint64_t retryCycles = 0;    ///< array-busy cycles from retries
    std::uint64_t writeScrubs = 0;    ///< post-retry single-bit fixes
    std::uint64_t readScrubs = 0;     ///< on-read single-bit fixes
    std::uint64_t scrubCycles = 0;    ///< cycles spent scrubbing
    std::uint64_t uncorrectable = 0;  ///< multi-bit (detect-only) events
    std::uint64_t eccRetirements = 0; ///< lines retired by ECC failure
    std::uint64_t wearRetirements = 0;///< lines retired by wear-out
    std::uint64_t noWayBypasses = 0;  ///< accesses to fully-retired sets
};

/**
 * Deterministic per-line fault injector for one SharedLlc instance.
 *
 * Determinism contract: outcome draws for line L are a pure function
 * of (seed, L, number of prior draws on L). The simulator is serial
 * within one System::run and the per-line draw order is fixed by the
 * access sequence, so every statistic below is bit-identical across
 * experiment-engine concurrency levels and between live and replay
 * runs of the same trace.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, NvmClass klass,
                  std::uint64_t numLines, std::uint32_t blockBytes);

    /** Verdict of the verify-retry loop on one array write. */
    struct WriteOutcome
    {
        std::uint32_t retries = 0; ///< extra attempts taken
        bool scrubbed = false;     ///< residual 1-bit error, ECC-fixed
        bool eccRetired = false;   ///< residual multi-bit error
        bool wearRetired = false;  ///< endurance bound crossed

        bool retired() const { return eccRetired || wearRetired; }
    };

    /** Run verify-retry + wear accounting for a write to @p line. */
    WriteOutcome onArrayWrite(std::uint64_t line);

    /**
     * The deterministic half of onArrayWrite: draws, event counters
     * and wear, but not the retries-per-write histogram. The sharded
     * replay engine classifies on per-shard injectors and adds the
     * histogram sample later in global order via noteRetries(), so
     * the histogram's (order-sensitive) accumulator state matches a
     * serial run bit for bit.
     */
    WriteOutcome classifyArrayWrite(std::uint64_t line);

    /** Record one write's retry count in the histogram. */
    void noteRetries(std::uint32_t retries)
    {
        retriesDist_.add(double(retries));
    }

    /** Verdict of the retention/read-disturb model on one read. */
    struct ReadOutcome
    {
        bool scrubbed = false; ///< 1-bit error, ECC-corrected
        bool retired = false;  ///< multi-bit error, line lost
    };

    ReadOutcome onRead(std::uint64_t line);

    /**
     * Per-access heartbeat: every capacitySampleInterval-th call
     * samples @p liveLines into the effective-capacity-over-time
     * distribution.
     */
    void
    tick(std::uint64_t liveLines)
    {
        if (++tick_ % cfg_.capacitySampleInterval == 0)
            capacityDist_.add(double(liveLines));
    }

    /** Record an access that found its whole set retired. */
    void noteNoWay() { ++st_.noWayBypasses; }

    FaultStats &stats() { return st_; }
    const FaultStats &stats() const { return st_; }

    /** Wear units a line absorbs before retirement. */
    double lineWearBudget() const { return wearBudget_; }

    /** Accumulated wear of @p line (for tests/inspection). */
    double lineWear(std::uint64_t line) const { return wear_[line]; }

    /**
     * Fold a set-shard's classification state back in: copy the
     * per-line draw counters and wear of lines [@p lineBegin,
     * @p lineEnd) — which only @p shard touched — and sum the event
     * counters. The shard never ticks, never notes retries, and
     * never reaches the cost-accounting fields (retryCycles,
     * scrubCycles stay 0 there), so this injector's histogram and
     * capacity samples remain the sole, serially-ordered copies.
     */
    void absorbShard(const FaultInjector &shard,
                     std::uint64_t lineBegin, std::uint64_t lineEnd);

    /**
     * Publish counters, the retries-per-write histogram, and the
     * effective-capacity-over-time distribution under "<prefix>.*".
     */
    void exportStats(MetricsRegistry &reg, const std::string &prefix,
                     std::uint64_t liveLines,
                     std::uint64_t totalLines) const;

  private:
    /** Next uniform [0,1) draw of @p line's stream. */
    double draw(std::uint64_t line);

    FaultConfig cfg_;
    LineErrorProbs write_;
    LineErrorProbs read_;
    bool writeFaults_ = false; ///< write error rate > 0
    bool readFaults_ = false;  ///< read error rate > 0
    double wearPerAttempt_ = 0.0;
    double wearBudget_ = 0.0;

    std::vector<std::uint64_t> lineSeed_;  ///< deriveSeed per line
    std::vector<std::uint32_t> drawCount_; ///< events drawn per line
    std::vector<double> wear_;             ///< wear units per line

    std::uint64_t tick_ = 0;
    FaultStats st_;
    LocalDistribution retriesDist_;  ///< retries per array write
    LocalDistribution capacityDist_; ///< live lines over time
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_FAULTS_HH
