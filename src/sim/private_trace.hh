/**
 * @file
 * Record-once / replay-many materialization of the private cache
 * levels (L1I / L1D / L2).
 *
 * The private hierarchy's behavior for one thread is a pure function
 * of that thread's access sequence and the CoreParams: the caches are
 * per-core, each core consumes its own trace in order, and nothing
 * below L2 feeds back into which level satisfies a reference. The LLC
 * model and the cross-core interleaving only affect *timing*. A tech
 * sweep therefore re-simulates identical L1/L2 walks once per LLC
 * model — by far the hottest loops in the simulator — to reach the
 * only part that differs.
 *
 * A PrivateTrace walks each thread's trace through a real PrivateCore
 * exactly once and freezes, per access, everything System::step needs
 * from the private levels:
 *
 *  - the outcome (L1 hit / L2 hit / miss that reaches the LLC),
 *    packed 2 bits, plus the dirty-L2-victim count, 2 bits;
 *  - the victim (writeback) addresses as zigzag-varint deltas;
 *  - and, per core, the final private-cache counter state
 *    (hits/misses/writebacks and the per-set / per-line vectors), so
 *    a replay run exports bit-identical "sim.core.*" stats.
 *
 * Replaying through PrivateCursor::next is bit-exact: System applies
 * the same cycle arithmetic in the same order with the same operands,
 * so SimStats — including every floating-point field — matches a live
 * simulation of the same traces. The recording is immutable after
 * record() and safely shared across concurrent simulations.
 */

#ifndef NVMCACHE_SIM_PRIVATE_TRACE_HH
#define NVMCACHE_SIM_PRIVATE_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/core.hh"
#include "sim/replay.hh"
#include "sim/types.hh"
#include "util/varint.hh"

namespace nvmcache {

class PrivateCursor;

/**
 * One decoded block of private-level outcomes, SoA layout, aligned
 * with the TraceBlock decoded from the same accesses: entry i here
 * describes access i of the paired block. Writeback addresses are
 * flattened in event order (access i's wbCount[i] victims are the
 * next entries of wbAddr after access i-1's).
 */
struct PrivateBlock
{
    static constexpr std::size_t kCapacity = TraceBlock::kCapacity;

    std::array<std::uint8_t, kCapacity> outcome; ///< PrivateEvent::k*
    std::array<std::uint8_t, kCapacity> wbCount; ///< dirty L2 victims
    std::array<std::uint64_t, 2 * kCapacity> wbAddr;
    std::uint32_t count = 0;   ///< events decoded
    std::uint32_t wbTotal = 0; ///< entries of wbAddr used
};

/** One access's recorded private-level outcome. */
struct PrivateEvent
{
    /** Values of outcome (order matters only for packing). */
    static constexpr std::uint8_t kL1Hit = 0;
    static constexpr std::uint8_t kL2Hit = 1;
    static constexpr std::uint8_t kMiss = 2; ///< demand reaches LLC

    std::uint8_t outcome = kL1Hit;
    std::uint8_t wbCount = 0;              ///< dirty L2 victims
    std::array<std::uint64_t, 2> wb{};     ///< ... their addresses
};

/**
 * All threads' private-level outcomes for one (trace, CoreParams)
 * pair, materialized once. Immutable after record().
 */
class PrivateTrace
{
  public:
    /**
     * Drive every source through a fresh PrivateCore with @p params
     * and record the outcomes. @p sources are consumed (drained);
     * callers pass fresh cursors.
     */
    static std::shared_ptr<const PrivateTrace>
    record(const std::vector<BatchSource *> &sources,
           const CoreParams &params);

    /**
     * Pack the recorded lanes (events, writeback streams, and the
     * per-core cache portraits) into a self-contained byte payload
     * for the persistent result store. Deterministic.
     */
    std::string serialize() const;

    /**
     * Rebuild a recording from serialize() output. Throws
     * std::runtime_error on any structural defect — callers treat
     * that as a store miss and re-record.
     */
    static std::shared_ptr<const PrivateTrace>
    deserialize(const std::string &payload);

    std::uint32_t threads() const
    {
        return std::uint32_t(lanes_.size());
    }

    /** Resident size of the packed per-access buffers, in bytes. */
    std::uint64_t packedBytes() const;

    /** Fresh replay cursor over one thread's lane. */
    PrivateCursor cursor(std::uint32_t thread) const;

    /**
     * Export thread @p thread's recorded private-cache stats under
     * "<prefix>.{l1i,l1d,l2}.*", replicating PrivateCore's cache
     * export exactly (same stat paths, same per-element distribution
     * add order), so a replay run's registry matches a live run's.
     */
    void exportCaches(MetricsRegistry &reg, const std::string &prefix,
                      std::uint32_t thread) const;

  private:
    friend class PrivateCursor;

    /** Final counter state of one private cache. */
    struct CachePortrait
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t writebacks = 0;
        std::vector<std::uint32_t> setEvictions;
        std::vector<std::uint32_t> lineWrites;

        void capture(const SetAssocCache &cache);
        void exportInto(MetricsRegistry &reg,
                        const std::string &prefix) const;
    };

    /** One thread's packed outcome columns. */
    struct Lane
    {
        /** outcome(2) | wbCount(2) nibbles, two accesses per byte. */
        std::vector<std::uint8_t> events;
        /** zigzag varint deltas of writeback addresses, in order. */
        std::vector<std::uint8_t> wbStream;
        std::uint64_t count = 0; ///< accesses recorded

        CachePortrait l1i;
        CachePortrait l1d;
        CachePortrait l2;
    };

    PrivateTrace() = default;

    std::vector<Lane> lanes_;
};

/**
 * Non-virtual decoder over one recorded lane. Holds only replay
 * position; the lane data stays in the (shared, const) PrivateTrace,
 * which must outlive the cursor.
 */
class PrivateCursor
{
  public:
    PrivateCursor() = default;

    /** Decode the next access's outcome; one call per trace access. */
    PrivateEvent
    next()
    {
        PrivateEvent ev;
        const std::uint8_t nib =
            (lane_->events[idx_ >> 1] >> ((idx_ & 1) * 4)) & 0xF;
        ++idx_;
        ev.outcome = nib & 3;
        ev.wbCount = nib >> 2;
        for (std::uint8_t i = 0; i < ev.wbCount; ++i) {
            wbAddr_ += std::uint64_t(unzigzag(getVarintFast(wbPos_)));
            ev.wb[i] = wbAddr_;
        }
        return ev;
    }

    /**
     * Decode exactly @p n events (the caller's paired TraceBlock
     * count; never past end of lane) into @p out's SoA arrays. Same
     * position and values as n calls to next().
     */
    std::uint32_t
    fillBlock(std::uint32_t n, PrivateBlock &out)
    {
        const std::uint8_t *events = lane_->events.data();
        const std::uint8_t *p = wbPos_;
        std::uint64_t idx = idx_;
        std::uint64_t wbAddr = wbAddr_;
        std::uint32_t wb = 0;
        for (std::uint32_t i = 0; i < n; ++i, ++idx) {
            const std::uint8_t nib =
                (events[idx >> 1] >> ((idx & 1) * 4)) & 0xF;
            out.outcome[i] = nib & 3;
            const std::uint8_t c = nib >> 2;
            out.wbCount[i] = c;
            for (std::uint8_t j = 0; j < c; ++j) {
                wbAddr +=
                    std::uint64_t(unzigzag(getVarintFast(p)));
                out.wbAddr[wb++] = wbAddr;
            }
        }
        wbPos_ = p;
        idx_ = idx;
        wbAddr_ = wbAddr;
        out.count = n;
        out.wbTotal = wb;
        return n;
    }

  private:
    friend class PrivateTrace;

    explicit PrivateCursor(const PrivateTrace::Lane *lane)
        : lane_(lane), wbPos_(lane->wbStream.data())
    {
    }

    const PrivateTrace::Lane *lane_ = nullptr;
    const std::uint8_t *wbPos_ = nullptr;
    std::uint64_t idx_ = 0;
    std::uint64_t wbAddr_ = 0; ///< delta-decoding state
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_PRIVATE_TRACE_HH
