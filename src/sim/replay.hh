/**
 * @file
 * Batched (SoA) trace-block interface of the vectorized replay
 * kernel.
 *
 * System::runReplay consumes a recorded trace in fixed-size blocks
 * instead of per-access pulls: the producer expands its packed
 * encoding (varint address deltas, 2-bit kinds, varint gaps) into
 * dense parallel arrays once per block, and the simulation kernel
 * then runs branch-light loops over the arrays with no per-access
 * virtual dispatch and no per-access varint pointer chasing. The one
 * virtual call per block is amortized over kCapacity accesses.
 *
 * The interface lives in the sim layer so the kernel (sim/replay.cc)
 * stays below the workload layer; workload/recorded_trace.hh's
 * TraceCursor is the canonical producer.
 */

#ifndef NVMCACHE_SIM_REPLAY_HH
#define NVMCACHE_SIM_REPLAY_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace nvmcache {

/** One decoded block of a per-thread trace, SoA layout. */
struct TraceBlock
{
    /** Accesses per block; sized so the block stays L2-resident. */
    static constexpr std::size_t kCapacity = 1024;

    std::array<std::uint64_t, kCapacity> addr;
    std::array<std::uint32_t, kCapacity> gap; ///< nonMemInstrs
    std::array<std::uint8_t, kCapacity> kind; ///< AccessKind values
    std::uint32_t count = 0;                  ///< accesses decoded
};

/**
 * BatchSource that can additionally decode whole SoA blocks. The
 * per-access fill() view stays available for the legacy scheduler
 * (multi-source runs) and generic consumers.
 */
class ReplaySource : public BatchSource
{
  public:
    /**
     * Decode up to TraceBlock::kCapacity accesses into @p out and
     * set out.count; returns out.count. 0 means end of trace.
     * Interleaving fillBlock with fill() on the same source is
     * allowed — both advance the same position.
     */
    virtual std::uint32_t fillBlock(TraceBlock &out) = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_REPLAY_HH
