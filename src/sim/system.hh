/**
 * @file
 * Full-system model: N Gainestown cores with private L1/L2, one
 * shared (possibly NVM) LLC, and bandwidth-queued DRAM — the paper's
 * Sniper configuration (Table IV).
 */

#ifndef NVMCACHE_SIM_SYSTEM_HH
#define NVMCACHE_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nvsim/llc_model.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/nvm_llc.hh"
#include "sim/types.hh"
#include "util/metrics.hh"

namespace nvmcache {

/** Whole-system configuration. */
struct SystemConfig
{
    std::uint32_t numCores = 4;
    double frequency = 2.66e9; ///< Hz (Xeon x5550)
    CoreParams core;
    SharedLlc::Config llc;
    DramConfig dram;
};

/** Results of one simulation run. */
struct SimStats
{
    std::uint64_t instructions = 0;
    double cycles = 0.0; ///< max over cores (the system finish time)
    double seconds = 0.0;

    LlcStats llc;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramQueueCycles = 0;

    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;

    std::vector<double> coreCycles;

    double llcLeakageEnergy = 0.0; ///< J, P_leak * seconds
    double llcDynamicEnergy = 0.0; ///< J

    /**
     * Full hierarchical stats report of this run ("sim.*": LLC,
     * DRAM, private-core and imbalance entries). Filled by
     * System::run from a per-run registry, so it is deterministic and
     * travels with memoized results unchanged at any experiment-engine
     * concurrency.
     */
    StatsSnapshot detail;

    /** Total LLC energy (the paper's "LLC energy" metric). */
    double llcEnergy() const
    {
        return llcLeakageEnergy + llcDynamicEnergy;
    }

    /** LLC demand misses per thousand instructions. */
    double
    llcMpki() const
    {
        return instructions == 0 ? 0.0
                                 : double(llc.demandMisses) * 1000.0 /
                                       double(instructions);
    }

    /** Energy * delay^2 (the paper's ED^2P, LLC energy based). */
    double ed2p() const { return llcEnergy() * seconds * seconds; }
};

/**
 * One simulation instance. Construct, then run() exactly once per
 * set of traces (construct a fresh System for a fresh run; cache
 * state is not reset between runs by design, matching how the
 * experiments use it).
 */
class System
{
  public:
    System(const SystemConfig &cfg, const LlcModel &llcModel);

    /**
     * Run the per-thread traces to completion. Threads are assigned
     * to cores round-robin; the usual case is one thread per core
     * (multi-threaded suites) or a single thread (cpu2006/2017).
     *
     * Cores are interleaved in min-local-time order so shared-LLC and
     * DRAM contention is observed in approximately global time.
     */
    SimStats run(const std::vector<TraceSource *> &threads);

    const SharedLlc &llc() const { return *llc_; }

  private:
    SystemConfig cfg_;
    std::vector<PrivateCore> cores_;
    std::unique_ptr<SharedLlc> llc_;
    std::unique_ptr<DramModel> dram_;
    std::uint64_t l1Misses_ = 0;
    std::uint64_t l2Misses_ = 0;

    /** Process one reference on @p coreIdx; false when trace ended. */
    bool step(std::uint32_t coreIdx, TraceSource &trace);
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_SYSTEM_HH
