/**
 * @file
 * Full-system model: N Gainestown cores with private L1/L2, one
 * shared (possibly NVM) LLC, and bandwidth-queued DRAM — the paper's
 * Sniper configuration (Table IV).
 */

#ifndef NVMCACHE_SIM_SYSTEM_HH
#define NVMCACHE_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nvsim/llc_model.hh"
#include "sim/core.hh"
#include "sim/dram.hh"
#include "sim/nvm_llc.hh"
#include "sim/private_trace.hh"
#include "sim/replay.hh"
#include "sim/types.hh"
#include "util/metrics.hh"

namespace nvmcache {

/** Whole-system configuration. */
struct SystemConfig
{
    std::uint32_t numCores = 4;
    double frequency = 2.66e9; ///< Hz (Xeon x5550)
    CoreParams core;
    SharedLlc::Config llc;
    DramConfig dram;

    /**
     * LLC set shards of a batch replay run (runReplay): 0 resolves
     * to defaultShards() (NVMCACHE_SHARDS, else 1). Results are
     * bit-identical at any value; >1 classifies the LLC's disjoint
     * set ranges on that many threads. Capped at the tag array's
     * set count.
     */
    std::uint32_t shards = 0;

    /**
     * Drive single-source replay runs through the batch-decode
     * kernel (runReplay's fast path). Off forces the per-access
     * min-local-time scheduler everywhere — same results, slower;
     * kept as the measured baseline for benches and oracle tests.
     */
    bool batchReplay = true;

    /**
     * Export per-core LLC demand/writeback counters into the run's
     * stats detail under "sim.tenant<i>." (multi-tenant workloads:
     * core i runs tenant i's thread). Off by default so existing
     * reports stay byte-stable.
     */
    bool perCoreLlcStats = false;
};

/** Results of one simulation run. */
struct SimStats
{
    std::uint64_t instructions = 0;
    double cycles = 0.0; ///< max over cores (the system finish time)
    double seconds = 0.0;

    LlcStats llc;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramQueueCycles = 0;

    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;

    std::vector<double> coreCycles;

    double llcLeakageEnergy = 0.0; ///< J, P_leak * seconds
    double llcDynamicEnergy = 0.0; ///< J

    /**
     * Full hierarchical stats report of this run ("sim.*": LLC,
     * DRAM, private-core and imbalance entries). Filled by
     * System::run from a per-run registry, so it is deterministic and
     * travels with memoized results unchanged at any experiment-engine
     * concurrency.
     */
    StatsSnapshot detail;

    /** Total LLC energy (the paper's "LLC energy" metric). */
    double llcEnergy() const
    {
        return llcLeakageEnergy + llcDynamicEnergy;
    }

    /** LLC demand misses per thousand instructions. */
    double
    llcMpki() const
    {
        return instructions == 0 ? 0.0
                                 : double(llc.demandMisses) * 1000.0 /
                                       double(instructions);
    }

    /** Energy * delay^2 (the paper's ED^2P, LLC energy based). */
    double ed2p() const { return llcEnergy() * seconds * seconds; }
};

/**
 * One simulation instance. Construct, then run() exactly once per
 * set of traces (construct a fresh System for a fresh run; cache
 * state is not reset between runs by design, matching how the
 * experiments use it).
 */
class System
{
  public:
    System(const SystemConfig &cfg, const LlcModel &llcModel);

    /**
     * Run the per-thread traces to completion. Threads are assigned
     * to cores round-robin; the usual case is one thread per core
     * (multi-threaded suites) or a single thread (cpu2006/2017).
     *
     * Cores are interleaved in min-local-time order so shared-LLC and
     * DRAM contention is observed in approximately global time. Each
     * core prefetches its thread's references in batches; per-thread
     * sources must therefore be independent of each other (true of
     * every TraceSource in the tree), since a core may pull ahead of
     * the globally-interleaved consumption order.
     */
    SimStats run(const std::vector<TraceSource *> &threads);

    /**
     * Same simulation over batched sources (e.g. RecordedTrace
     * cursors). Produces bit-identical SimStats to the TraceSource
     * overload for the same access sequences: both feed one scheduler
     * that picks the min-local-time core (ties to the lowest index)
     * via an index-min heap, O(log cores) per step.
     */
    SimStats run(const std::vector<BatchSource *> &sources);

    /**
     * Replay run: @p privateTrace carries the recorded private-level
     * outcomes of exactly these sources under this system's
     * CoreParams, so the L1/L2 walks are skipped and only the shared
     * LLC and DRAM are simulated. Bit-identical SimStats to the other
     * overloads (see private_trace.hh); pass nullptr for a live run.
     */
    SimStats run(const std::vector<BatchSource *> &sources,
                 const PrivateTrace *privateTrace);

    /**
     * Replay run through the vectorized batch kernel (sim/replay.cc):
     * decode SoA blocks, classify every LLC operation over
     * cfg.shards disjoint set ranges (own tag array and fault state
     * per shard, simulated concurrently when shards > 1), then apply
     * timing in global access order from the precomputed decisions.
     * Bit-identical SimStats to run(sources, privateTrace) at every
     * shard count.
     *
     * The kernel requires a single source with a private-level
     * recording (the tech-sweep hot path); multi-source runs, runs
     * without @p privateTrace, and cfg.batchReplay == false fall
     * back to the per-access scheduler, with the fallback counted in
     * the global "sim.replay.runs.fallback" metric.
     */
    SimStats runReplay(const std::vector<ReplaySource *> &sources,
                       const PrivateTrace *privateTrace);

    const SharedLlc &llc() const { return *llc_; }

  private:
    SystemConfig cfg_;
    std::vector<PrivateCore> cores_;
    std::unique_ptr<SharedLlc> llc_;
    std::unique_ptr<DramModel> dram_;
    std::uint64_t l1Misses_ = 0;
    std::uint64_t l2Misses_ = 0;

    /**
     * Per-core share of the shared-LLC traffic (demand reads split
     * into hits/misses, plus L2 writebacks reaching the LLC), counted
     * in step()/replayStep(). The batch kernel bypasses those, but it
     * only runs single-source — where core 0's share is the whole
     * LlcStats — so collectStats derives that case exactly.
     */
    struct CoreLlcCounters
    {
        std::uint64_t demandReads = 0;
        std::uint64_t demandHits = 0;
        std::uint64_t demandMisses = 0;
        std::uint64_t writebacks = 0;
    };
    std::vector<CoreLlcCounters> coreLlc_;

    /** Process one reference on @p coreIdx. */
    void step(std::uint32_t coreIdx, const MemAccess &access);

    /**
     * step() with the private-level outcome replayed from @p cursor
     * instead of simulated (same shared-level effects, same cycle
     * arithmetic, in the same order).
     */
    void replayStep(std::uint32_t coreIdx, const MemAccess &access,
                    PrivateCursor &cursor);

    /** Gather SimStats after all cores drained their sources. */
    SimStats collectStats(std::size_t numThreads,
                          const PrivateTrace *privateTrace);
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_SYSTEM_HH
