/**
 * @file
 * Private per-core model: the Gainestown out-of-order core (Table IV)
 * approximated with an interval-style timing model, plus its private
 * L1I / L1D / L2 caches.
 *
 * The interval approximation: instructions retire at a base CPI while
 * the backend hides memory latency up to a kind-dependent overlap
 * window (sized from the 128-entry ROB / 48-entry LQ / 32-entry SQ);
 * only latency beyond the window stalls the core. Stores drain
 * through the store queue and stall only on sustained backpressure.
 */

#ifndef NVMCACHE_SIM_CORE_HH
#define NVMCACHE_SIM_CORE_HH

#include <array>
#include <cstdint>

#include "sim/cache.hh"
#include "sim/types.hh"

namespace nvmcache {

/** Core and private-cache parameters (defaults mirror Table IV). */
struct CoreParams
{
    double baseCpi = 0.5; ///< 4-wide OoO steady-state CPI

    CacheGeometry l1i{32 * 1024, 4, 64};
    CacheGeometry l1d{32 * 1024, 8, 64};
    CacheGeometry l2{256 * 1024, 8, 64};

    std::uint32_t l2Cycles = 12; ///< L1-miss-to-L2-hit latency

    /** Overlap windows (cycles of latency the backend hides). */
    std::uint32_t loadHide = 40;
    std::uint32_t ifetchHide = 32;
    std::uint32_t storeHide = 120;
    /** Fraction of beyond-window store latency that stalls retire. */
    double storeStallFactor = 0.3;
};

/** Addresses the private levels push down to the LLC as writebacks. */
struct WritebackSet
{
    std::array<std::uint64_t, 2> addr{};
    std::uint32_t count = 0;

    void
    push(std::uint64_t a)
    {
        addr[count++] = a;
    }
};

/** Result of walking the private levels for one reference. */
struct PrivateAccessOutcome
{
    bool satisfied = false;         ///< hit in L1 or L2
    std::uint64_t latencyCycles = 0;///< latency accrued so far
    WritebackSet writebacks;        ///< dirty L2 victims for the LLC
};

/**
 * One core's private state: timing plus L1I/L1D/L2. The shared
 * hierarchy below L2 is driven by System.
 */
class PrivateCore
{
  public:
    explicit PrivateCore(const CoreParams &params);

    /**
     * Walk L1 and L2 for @p access. Advances the local clock by the
     * instruction-issue time (base CPI); memory stall is applied
     * separately via applyStall once the full latency is known.
     */
    PrivateAccessOutcome accessPrivate(const MemAccess &access);

    /**
     * The instruction-issue half of accessPrivate alone: advance the
     * local clock and instruction count for a reference with @p
     * nonMemInstrs gap instructions, without touching the caches.
     * Used when replaying a PrivateTrace, where the cache outcome is
     * already recorded; the arithmetic is identical to
     * accessPrivate's, so the clock evolves bit-identically.
     */
    void
    advanceIssue(std::uint32_t nonMemInstrs)
    {
        cycle_ += double(nonMemInstrs + 1) * params_.baseCpi;
        instructions_ += nonMemInstrs + 1;
    }

    /**
     * Charge the post-overlap stall for a reference of @p kind whose
     * total hierarchy latency was @p latencyCycles.
     */
    void applyStall(AccessKind kind, std::uint64_t latencyCycles);

    /** Charge raw stall cycles (e.g. LLC write-queue backpressure). */
    void applyRawStall(std::uint64_t cycles);

    double cycle() const { return cycle_; }
    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t stallCycles() const { return stallCycles_; }

    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }

    /**
     * Publish this core's counters and its private caches' stats
     * under "<prefix>.*". Exporting every core under one prefix
     * aggregates the private hierarchy across cores.
     */
    void exportStats(MetricsRegistry &reg,
                     const std::string &prefix) const;

  private:
    CoreParams params_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;

    double cycle_ = 0.0;
    std::uint64_t instructions_ = 0;
    std::uint64_t stallCycles_ = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_CORE_HH
