/**
 * @file
 * Set-associative write-back cache with true-LRU replacement, used
 * for the private L1/L2 levels and for the shared LLC's tag/data
 * bookkeeping.
 *
 * The cache tracks only presence and dirtiness (no data values); the
 * timing and energy consequences of each access are handled by the
 * levels' owners (core.hh, nvm_llc.hh).
 *
 * Every simulated reference walks L1 -> L2 -> LLC through this class,
 * so the demand path is kept branch-light: the geometry is asserted
 * power-of-two at construction and all set/tag/align math is
 * precomputed shifts and masks, and the lookup folds the hit scan and
 * the LRU victim scan into one pass over the set.
 */

#ifndef NVMCACHE_SIM_CACHE_HH
#define NVMCACHE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.hh"

namespace nvmcache {

/** Replacement policy of one cache level. */
enum class ReplacementPolicy
{
    LRU,    ///< true least-recently-used (default everywhere)
    FIFO,   ///< insertion-order victim
    Random  ///< pseudo-random victim (deterministic per cache)
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t capacityBytes = 32 * 1024;
    std::uint32_t associativity = 4;
    std::uint32_t blockBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;

    std::uint64_t numLines() const { return capacityBytes / blockBytes; }
    std::uint64_t numSets() const { return numLines() / associativity; }
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evictedValid = false;  ///< a victim line was displaced
    bool evictedDirty = false;  ///< ... and it was dirty (writeback)
    std::uint64_t evictedAddr = 0; ///< block-aligned victim address
};

/**
 * Presence/dirtiness model of one set-associative cache.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    /**
     * Demand access with allocate-on-miss.
     * @param addr   byte address
     * @param write  true marks the (present-or-filled) line dirty
     */
    CacheAccessResult access(std::uint64_t addr, bool write);

    /** Hit probe without any state change. */
    bool probe(std::uint64_t addr) const;

    /**
     * Install a full line without a backing fetch (used for
     * writebacks arriving from an upper level: write-allocate is free
     * because the whole line is supplied).
     */
    CacheAccessResult installWriteback(std::uint64_t addr);

    /** Invalidate a line if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t addr);

    const CacheGeometry &geometry() const { return geom_; }

    // --- stats -------------------------------------------------------
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    void resetStats();

    /** Most array writes absorbed by any single line (wear hot spot). */
    std::uint64_t maxLineWrites() const;

    /**
     * Publish this cache's counters and shape distributions under
     * "<prefix>.*": hit/miss/writeback counters, the per-set conflict
     * (valid-victim) eviction distribution, and the per-line
     * write-count distribution whose maximum bounds NVM endurance.
     * Counters accumulate and distributions merge, so exporting
     * several caches under one prefix aggregates them.
     */
    void exportStats(MetricsRegistry &reg,
                     const std::string &prefix) const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t
    setIndex(std::uint64_t addr) const
    {
        return (addr >> blockBits_) & setMask_;
    }

    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return addr >> tagShift_;
    }

    std::uint64_t blockAlign(std::uint64_t addr) const
    {
        return addr & ~std::uint64_t(geom_.blockBytes - 1);
    }

    /** Rebuild the block-aligned address of a resident line. */
    std::uint64_t
    lineAddr(std::uint64_t tag, std::uint64_t set) const
    {
        return (tag << tagShift_) | (set << blockBits_);
    }

    /** Core of access/installWriteback; @p fetch false = writeback. */
    CacheAccessResult accessImpl(std::uint64_t addr, bool write);

    /** Pick the victim way for a fill into @p base[0..assoc). */
    Line *selectVictim(Line *base);

    CacheGeometry geom_;
    std::uint32_t blockBits_ = 0;  ///< log2(blockBytes)
    std::uint32_t tagShift_ = 0;   ///< blockBits_ + log2(numSets)
    std::uint64_t setMask_ = 0;    ///< numSets - 1
    std::vector<Line> lines_; ///< sets * assoc, row-major by set
    std::uint64_t useClock_ = 0;
    std::uint64_t randState_ = 0x2545f4914f6cdd1dull;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::vector<std::uint32_t> setEvictions_; ///< conflict evictions/set
    std::vector<std::uint32_t> lineWrites_;   ///< array writes/way
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_CACHE_HH
