/**
 * @file
 * Set-associative write-back cache with true-LRU replacement, used
 * for the private L1/L2 levels and for the shared LLC's tag/data
 * bookkeeping.
 *
 * The cache tracks only presence and dirtiness (no data values); the
 * timing and energy consequences of each access are handled by the
 * levels' owners (core.hh, nvm_llc.hh).
 *
 * Every simulated reference walks L1 -> L2 -> LLC through this class,
 * so the demand path is kept branch-light: the geometry is asserted
 * power-of-two at construction and all set/tag/align math is
 * precomputed shifts and masks, and the lookup folds the hit scan and
 * the LRU victim scan into one pass over the set.
 */

#ifndef NVMCACHE_SIM_CACHE_HH
#define NVMCACHE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.hh"

namespace nvmcache {

/** Replacement policy of one cache level. */
enum class ReplacementPolicy
{
    LRU,    ///< true least-recently-used (default everywhere)
    FIFO,   ///< insertion-order victim
    Random  ///< pseudo-random victim (deterministic per cache)
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t capacityBytes = 32 * 1024;
    std::uint32_t associativity = 4;
    std::uint32_t blockBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;

    std::uint64_t numLines() const { return capacityBytes / blockBytes; }
    std::uint64_t numSets() const { return numLines() / associativity; }
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evictedValid = false;  ///< a victim line was displaced
    bool evictedDirty = false;  ///< ... and it was dirty (writeback)
    std::uint64_t evictedAddr = 0; ///< block-aligned victim address
    /**
     * Set-major index (set * assoc + way) of the line the access hit
     * or filled; the fault layer keys its per-line RNG streams and
     * wear counters on it. Meaningless when `noWay` is set.
     */
    std::uint64_t lineIndex = 0;
    /**
     * Every way of the target set is retired: nothing was installed
     * and no victim was displaced (the access degenerates to a probe).
     */
    bool noWay = false;
};

/**
 * Presence/dirtiness model of one set-associative cache.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    /**
     * Demand access with allocate-on-miss.
     * @param addr   byte address
     * @param write  true marks the (present-or-filled) line dirty
     */
    CacheAccessResult access(std::uint64_t addr, bool write);

    /** Hit probe without any state change. */
    bool probe(std::uint64_t addr) const;

    /**
     * Hint the host to pull the set metadata @p addr maps to into
     * its caches. Purely a performance hint (no simulated effect):
     * replay lanes know their future accesses, and a large cache's
     * tag array is the one structure whose set walk routinely misses
     * in host memory.
     */
    void
    prefetchSet(std::uint64_t addr) const
    {
        const std::uint64_t *p =
            &meta_[std::size_t(setIndex(addr)) * geom_.associativity];
        __builtin_prefetch(p);
        if (geom_.associativity > 8) // set spans two host lines
            __builtin_prefetch(p + 8);
    }

    /**
     * Install a full line without a backing fetch (used for
     * writebacks arriving from an upper level: write-allocate is free
     * because the whole line is supplied).
     */
    CacheAccessResult installWriteback(std::uint64_t addr);

    /** Invalidate a line if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t addr);

    /**
     * Permanently retire the line at set-major index @p lineIndex
     * (wear-out or uncorrectable error): the line is invalidated and
     * its way is excluded from all future fills and victim picks, so
     * the set's effective associativity shrinks by one. Returns true
     * if the line held dirty data (the caller must push it down).
     * Retiring an already-retired line is a no-op returning false.
     */
    bool retireLine(std::uint64_t lineIndex);

    /** Lines retired so far. */
    std::uint64_t retiredLines() const { return retiredCount_; }

    /** Usable (non-retired) lines: the effective capacity. */
    std::uint64_t
    liveLines() const
    {
        return meta_.size() - retiredCount_;
    }

    /** Set index @p addr maps to (for set-sharded replay routing). */
    std::uint64_t setIndexOf(std::uint64_t addr) const
    {
        return setIndex(addr);
    }

    /**
     * Fold a set-shard's state back in: copy everything per-set /
     * per-line of sets [@p setBegin, @p setEnd) — which only
     * @p shard accessed — and sum the whole-cache counters. @p shard
     * must have identical geometry. After every shard of a disjoint
     * set partition is absorbed, this cache's state and statistics
     * equal a serial run's bit for bit.
     */
    void absorbShard(const SetAssocCache &shard,
                     std::uint64_t setBegin, std::uint64_t setEnd);

    const CacheGeometry &geometry() const { return geom_; }

    // --- stats -------------------------------------------------------
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    void resetStats();

    /** Most array writes absorbed by any single line (wear hot spot). */
    std::uint64_t maxLineWrites() const;

    /** Conflict (valid-victim) evictions per set, set order. */
    const std::vector<std::uint32_t> &setEvictionsBySet() const
    {
        return setEvictions_;
    }

    /** Array writes per line, set-major way order. */
    const std::vector<std::uint32_t> &lineWritesByWay() const
    {
        return lineWrites_;
    }

    /**
     * Publish this cache's counters and shape distributions under
     * "<prefix>.*": hit/miss/writeback counters, the per-set conflict
     * (valid-victim) eviction distribution, and the per-line
     * write-count distribution whose maximum bounds NVM endurance.
     * Counters accumulate and distributions merge, so exporting
     * several caches under one prefix aggregates them.
     */
    void exportStats(MetricsRegistry &reg,
                     const std::string &prefix) const;

  private:
    /**
     * Line metadata is split SoA-style so the hit scan — the hottest
     * loop in the whole simulator — touches one dense word per way:
     * meta_ packs tag<<2 | dirty<<1 | valid, and an 8-way set's
     * metadata spans exactly one 64 B host line (the old 24 B
     * array-of-struct Line spanned three). Packing the tag costs its
     * top two bits; addresses are bounded by 2^62 (the trace
     * format's limit), which loses nothing.
     *
     * Recency is rank-based for associativity <= 16 (every shipped
     * geometry): each set keeps a permutation of {0..assoc-1} packed
     * 4 bits per way in one word of ranks_, rank 0 = most recent.
     * A touch bumps every rank below the touched way's (one SWAR
     * add) and zeroes its own; the LRU/FIFO victim is the way of
     * rank assoc-1, found without loading any timestamp array. This
     * is order-identical to per-way timestamps — both maintain the
     * exact recency (or, for FIFO, insertion) permutation — but
     * costs 8 bytes per set instead of 8 per way, so the victim scan
     * never misses in the host cache. Wider caches fall back to the
     * timestamp arrays (lastUse_/useClock_).
     */
    static constexpr std::uint64_t kValid = 1;
    static constexpr std::uint64_t kDirty = 2;
    static constexpr std::uint64_t kLoNibbles = 0x0F0F0F0F0F0F0F0Full;
    static constexpr std::uint64_t kByteOnes = 0x0101010101010101ull;
    static constexpr std::uint64_t kByteHighs = 0x8080808080808080ull;

    std::uint64_t
    setIndex(std::uint64_t addr) const
    {
        return (addr >> blockBits_) & setMask_;
    }

    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return addr >> tagShift_;
    }

    std::uint64_t blockAlign(std::uint64_t addr) const
    {
        return addr & ~std::uint64_t(geom_.blockBytes - 1);
    }

    /** Rebuild the block-aligned address of a resident line. */
    std::uint64_t
    lineAddr(std::uint64_t tag, std::uint64_t set) const
    {
        return (tag << tagShift_) | (set << blockBits_);
    }

    /** Core of access/installWriteback; dispatches on associativity. */
    CacheAccessResult accessImpl(std::uint64_t addr, bool write);

    /**
     * accessImpl body with the associativity baked in at compile time
     * (A = 0 reads it from the geometry) so the way scans unroll.
     */
    template <std::uint32_t A>
    CacheAccessResult accessImplFixed(std::uint64_t addr, bool write);

    /** Make way @p w of @p set most recent (rank 0 / newest clock). */
    void
    touch(std::uint64_t set, std::size_t base, std::uint32_t w)
    {
        if (ranked_) {
            std::uint64_t r = ranks_[set];
            const std::uint64_t mine = (r >> (4 * w)) & 0xF;
            if (mine == 0) // already most recent: repeated hits on
                return;    // the same line are the common case
            // SWAR: +1 to every in-range nibble strictly below mine.
            // Nibbles are compared in byte lanes (even and odd
            // nibbles separately) so the subtraction can never
            // borrow across fields: each lane computes 0x80 + x -
            // mine with x, mine <= 15.
            const std::uint64_t even = r & kLoNibbles;
            const std::uint64_t odd = (r >> 4) & kLoNibbles;
            const std::uint64_t m = mine * kByteOnes;
            const std::uint64_t ltEven =
                ~((even | kByteHighs) - m) & kByteHighs;
            const std::uint64_t ltOdd =
                ~((odd | kByteHighs) - m) & kByteHighs;
            const std::uint64_t bump =
                ((ltEven >> 7) | ((ltOdd >> 7) << 4)) &
                rankFieldMask_;
            r += bump;
            r &= ~(0xFull << (4 * w));
            ranks_[set] = r;
        } else {
            lastUse_[base + w] = ++useClock_;
        }
    }

    /**
     * Policy victim among the set's non-retired ways (@p dead is the
     * set's retirement bitmask, known non-zero); returns the
     * associativity when every way is dead. Split from the dead == 0
     * fast paths so the no-faults hot loop stays untouched.
     */
    std::uint32_t victimAmongLive(std::uint64_t set, std::size_t base,
                                  std::uint64_t dead);

    /** Way holding the oldest (LRU/FIFO) line of a full set. */
    std::uint32_t
    oldestWay(std::uint64_t set, std::size_t base) const
    {
        const std::uint32_t assoc = geom_.associativity;
        if (ranked_) {
            const std::uint64_t r = ranks_[set];
            const std::uint64_t target = assoc - 1;
            for (std::uint32_t w = 0; w < assoc; ++w)
                if (((r >> (4 * w)) & 0xF) == target)
                    return w;
            return assoc - 1; // unreachable: ranks_ is a permutation
        }
        std::uint32_t victim = 0;
        std::uint64_t oldest = lastUse_[base];
        for (std::uint32_t w = 1; w < assoc; ++w)
            if (lastUse_[base + w] < oldest) {
                oldest = lastUse_[base + w];
                victim = w;
            }
        return victim;
    }

    CacheGeometry geom_;
    std::uint32_t blockBits_ = 0;  ///< log2(blockBytes)
    std::uint32_t tagShift_ = 0;   ///< blockBits_ + log2(numSets)
    std::uint64_t setMask_ = 0;    ///< numSets - 1
    bool lruHits_ = false;         ///< hits refresh recency (LRU)
    bool ranked_ = false;          ///< packed-rank recency in use
    std::uint64_t rankFieldMask_ = 0; ///< low 4*assoc bits
    std::vector<std::uint64_t> meta_;  ///< tag<<2|dirty|valid, by set
    std::vector<std::uint64_t> ranks_; ///< recency permutation per set
    std::vector<std::uint64_t> lastUse_; ///< assoc > 16 fallback
    std::uint64_t useClock_ = 0;
    std::uint64_t randState_ = 0x2545f4914f6cdd1dull;

    std::vector<std::uint64_t> retired_; ///< dead-way bitmask per set
    std::uint64_t retiredCount_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::vector<std::uint32_t> setEvictions_; ///< conflict evictions/set
    std::vector<std::uint32_t> lineWrites_;   ///< array writes/way
};

} // namespace nvmcache

#endif // NVMCACHE_SIM_CACHE_HH
