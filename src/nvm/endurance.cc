#include "nvm/endurance.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nvmcache {

double
writeEndurance(NvmClass klass)
{
    switch (klass) {
      case NvmClass::PCRAM:
        // "Stuck-at faults can occur after 1e7-1e8 writes" (SII-A);
        // use the geometric middle.
        return 3e7;
      case NvmClass::RRAM:
        // "issues occurring at 1e10 writes rather than 1e7-1e8"
        // (SII-C).
        return 1e10;
      case NvmClass::STTRAM:
        // MTJ endurance is effectively unbounded at cache lifetimes.
        return 1e15;
      case NvmClass::SRAM:
        return 1e16;
    }
    panic("bad NvmClass");
}

RawBitErrorRates
rawBitErrorRates(NvmClass klass)
{
    switch (klass) {
      case NvmClass::PCRAM:
        // Incomplete crystallization / melt-quench variation leaves a
        // cell between resistance bands on ~1e-5 of write pulses
        // (SII-A's "write instability"); resistance drift over time
        // shows up as a rare retention read error.
        return {1e-5, 1e-7};
      case NvmClass::STTRAM:
        // Thermally-assisted MTJ switching is inherently stochastic:
        // a nominal pulse fails to flip the free layer on ~1e-4 of
        // attempts — the dominant NVM write-error mechanism (SII-B).
        // Read disturb (the read current nudging the MTJ) is rare.
        return {1e-4, 1e-8};
      case NvmClass::RRAM:
        // Filament formation/rupture variability (SII-C) sits between
        // the other two classes.
        return {3e-5, 1e-8};
      case NvmClass::SRAM:
        // Volatile baseline: no analog state to miss; soft errors are
        // out of scope, so the fault layer is a no-op for SRAM.
        return {0.0, 0.0};
    }
    panic("bad NvmClass");
}

LifetimeEstimate
estimateLifetime(NvmClass klass, const LifetimeInputs &inputs,
                 double wearLevelingFactor)
{
    if (inputs.cacheLines == 0 || inputs.seconds <= 0.0)
        fatal("estimateLifetime: empty inputs");
    if (wearLevelingFactor <= 0.0 || wearLevelingFactor > 1.0)
        fatal("estimateLifetime: wear-leveling factor must be (0,1]");

    LifetimeEstimate est;
    est.meanLineWritesPerSecond = double(inputs.llcWrites) /
                                  double(inputs.cacheLines) /
                                  inputs.seconds;
    const double imbalance =
        std::max(1.0, inputs.writeImbalance * wearLevelingFactor);
    est.hottestLineWritesPerSecond =
        est.meanLineWritesPerSecond * imbalance;

    if (est.hottestLineWritesPerSecond <= 0.0) {
        est.lifetimeSeconds = 1e30; // no writes: never wears out
    } else {
        est.lifetimeSeconds =
            writeEndurance(klass) / est.hottestLineWritesPerSecond;
    }
    est.lifetimeYears = est.lifetimeSeconds / (365.25 * 24 * 3600);
    return est;
}

double
imbalanceFromFootprints(std::uint64_t uniqueWrites,
                        std::uint64_t footprint90,
                        std::uint64_t cacheLines)
{
    if (uniqueWrites == 0 || cacheLines == 0)
        return 1.0;
    // Two-tier model: 90% of traffic spreads over the f90 hot
    // destinations (folded onto the cache by the line mapping), the
    // remaining 10% over the rest. Hot-tier per-line share relative
    // to a level distribution:
    const double hot_lines = std::max<double>(
        1.0, std::min<double>(double(footprint90),
                              double(cacheLines)));
    const double level_share = 1.0 / double(cacheLines);
    const double hot_share = 0.9 / hot_lines;
    return std::max(1.0, hot_share / level_share);
}

} // namespace nvmcache
