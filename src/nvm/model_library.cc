#include "nvm/model_library.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace nvmcache {

namespace {

using P = Provenance;

CellParam
rep(double v)
{
    return CellParam(v, P::Reported);
}

/**
 * Build the published (completed) Table II library. Values are the
 * paper's, converted to canonical SI units; provenance mirrors the
 * table's dagger/star marks.
 */
std::vector<CellSpec>
buildPublished()
{
    std::vector<CellSpec> cells;

    { // Oh'05, 64 Mb PCRAM (ISSCC'05)
        CellSpec c;
        c.name = "Oh";
        c.klass = NvmClass::PCRAM;
        c.year = 2005;
        c.processNode = rep(120e-9);
        c.cellSizeF2 = {16.6, P::H3Similarity};
        c.cellLevels = rep(1);
        c.readCurrent = {40e-6, P::H3Similarity};
        c.readEnergy = {2e-12, P::H3Similarity};
        c.resetCurrent = rep(600e-6);
        c.resetPulse = rep(10e-9);
        c.setCurrent = rep(200e-6);
        c.setPulse = rep(180e-9);
        cells.push_back(c);
    }
    { // Chen'06, phase-change bridge (IEDM'06)
        CellSpec c;
        c.name = "Chen";
        c.klass = NvmClass::PCRAM;
        c.year = 2006;
        c.processNode = {60e-9, P::H3Similarity};
        c.cellSizeF2 = {10.0, P::H3Similarity};
        c.cellLevels = rep(1);
        c.readCurrent = {40e-6, P::H3Similarity};
        c.readEnergy = {2e-12, P::H3Similarity};
        c.resetCurrent = rep(90e-6);
        c.resetPulse = rep(60e-9);
        c.setCurrent = rep(55e-6);
        c.setPulse = rep(80e-9);
        cells.push_back(c);
    }
    { // Kang'06, 256 Mb synchronous-burst PRAM (ISSCC'06)
        CellSpec c;
        c.name = "Kang";
        c.klass = NvmClass::PCRAM;
        c.year = 2006;
        c.processNode = rep(100e-9);
        c.cellSizeF2 = rep(16.6);
        c.cellLevels = rep(1);
        c.readCurrent = {60e-6, P::H3Similarity};
        c.readEnergy = {2e-12, P::H3Similarity};
        c.resetCurrent = rep(600e-6);
        c.resetPulse = rep(50e-9);
        c.setCurrent = {200e-6, P::H3Similarity}; // paper's worked example
        c.setPulse = rep(300e-9);
        cells.push_back(c);
    }
    { // Close'13, 256 Mcell 2+ bit/cell PCM (TCAS-I'13)
        CellSpec c;
        c.name = "Close";
        c.klass = NvmClass::PCRAM;
        c.year = 2013;
        c.processNode = rep(90e-9);
        c.cellSizeF2 = rep(25.0);
        c.cellLevels = rep(2);
        c.readCurrent = {60e-6, P::H3Similarity};
        c.readEnergy = {2e-12, P::H3Similarity};
        c.resetCurrent = rep(400e-6);
        c.resetPulse = rep(20e-9);
        c.setCurrent = rep(400e-6);
        c.setPulse = rep(20e-9);
        cells.push_back(c);
    }
    { // Chung'10, 54 nm STT-RAM (IEDM'10)
        CellSpec c;
        c.name = "Chung";
        c.klass = NvmClass::STTRAM;
        c.year = 2010;
        c.processNode = rep(54e-9);
        c.cellSizeF2 = rep(14.0);
        c.cellLevels = rep(1);
        c.readVoltage = rep(0.65);
        c.readPower = {24.1e-6, P::H1Electrical};
        c.resetCurrent = rep(80e-6);
        c.resetPulse = rep(10e-9);
        c.resetEnergy = {0.52e-12, P::H1Electrical};
        c.setCurrent = {100e-6, P::H1Electrical};
        c.setPulse = rep(10e-9);
        c.setEnergy = {0.75e-12, P::H1Electrical};
        cells.push_back(c);
    }
    { // Jan'14, 8 Mb perpendicular STT-MRAM (VLSI'14)
        CellSpec c;
        c.name = "Jan";
        c.klass = NvmClass::STTRAM;
        c.year = 2014;
        c.processNode = rep(90e-9);
        c.cellSizeF2 = rep(50.0);
        c.cellLevels = rep(1);
        c.readVoltage = rep(0.08);
        c.readPower = {30e-6, P::H3Similarity};
        c.resetCurrent = rep(52e-6);
        c.resetPulse = rep(4e-9);
        c.resetEnergy = {1e-12, P::H3Similarity};
        c.setCurrent = rep(38e-6);
        c.setPulse = rep(4.5e-9);
        c.setEnergy = {1e-12, P::H3Similarity};
        cells.push_back(c);
    }
    { // Umeki'15, negative-resistance sense amp STT-MRAM (ASP-DAC'15)
        CellSpec c;
        c.name = "Umeki";
        c.klass = NvmClass::STTRAM;
        c.year = 2015;
        c.processNode = rep(65e-9);
        c.cellSizeF2 = {48.0, P::H1Electrical};
        c.cellLevels = rep(1);
        c.readVoltage = rep(0.38);
        c.readPower = rep(1.70e-6);
        c.resetCurrent = {255e-6, P::H1Electrical};
        c.resetPulse = rep(10e-9);
        c.resetEnergy = rep(1.12e-12);
        c.setCurrent = {255e-6, P::H1Electrical};
        c.setPulse = rep(10e-9);
        c.setEnergy = rep(1.12e-12);
        cells.push_back(c);
    }
    { // Xue'16, ODESY 3T-3MTJ (ICCAD'16)
        CellSpec c;
        c.name = "Xue";
        c.klass = NvmClass::STTRAM;
        c.year = 2016;
        c.processNode = rep(45e-9);
        c.cellSizeF2 = rep(63.0);
        c.cellLevels = rep(2);
        c.readVoltage = rep(1.2);
        c.readPower = rep(65e-6);
        c.resetCurrent = rep(150e-6);
        c.resetPulse = rep(2e-9);
        c.resetEnergy = rep(0.36e-12);
        c.setCurrent = rep(150e-6);
        c.setPulse = rep(2e-9);
        c.setEnergy = rep(0.36e-12);
        cells.push_back(c);
    }
    { // Hayakawa'15, TaOx ReRAM (VLSI'15)
        CellSpec c;
        c.name = "Hayakawa";
        c.klass = NvmClass::RRAM;
        c.year = 2015;
        c.processNode = rep(40e-9);
        c.cellSizeF2 = {4.0, P::H3Similarity};
        c.cellLevels = rep(1);
        c.readVoltage = {0.4, P::H3Similarity};
        c.readPower = {0.16e-6, P::H3Similarity};
        c.resetVoltage = {2.0, P::H3Similarity};
        c.resetPulse = {10e-9, P::H3Similarity};
        c.resetEnergy = {0.6e-12, P::H3Similarity};
        c.setVoltage = {2.0, P::H3Similarity};
        c.setPulse = {10e-9, P::H3Similarity};
        c.setEnergy = {0.6e-12, P::H3Similarity};
        cells.push_back(c);
    }
    { // Zhang'16, "Mellow Writes" RRAM (ISCA'16)
        CellSpec c;
        c.name = "Zhang";
        c.klass = NvmClass::RRAM;
        c.year = 2016;
        c.processNode = rep(22e-9);
        c.cellSizeF2 = {4.0, P::H3Similarity};
        c.cellLevels = rep(1);
        c.readVoltage = rep(0.2);
        c.readPower = rep(0.02e-6);
        c.resetVoltage = rep(1.0);
        c.resetPulse = rep(150e-9);
        c.resetEnergy = rep(0.4e-12);
        c.setVoltage = rep(1.0);
        c.setPulse = rep(150e-9);
        c.setEnergy = rep(0.4e-12);
        cells.push_back(c);
    }

    return cells;
}

/**
 * Strip every heuristic-derived value, leaving what the cited papers
 * actually report, and add the handful of prose-reported extras the
 * authors mined from the publications' text.
 */
std::vector<CellSpec>
buildRaw()
{
    std::vector<CellSpec> raw = buildPublished();
    for (CellSpec &c : raw) {
        static const CellField kAll[] = {
            CellField::ProcessNode, CellField::CellSizeF2,
            CellField::CellLevels, CellField::ReadCurrent,
            CellField::ReadVoltage, CellField::ReadPower,
            CellField::ReadEnergy, CellField::ResetCurrent,
            CellField::ResetVoltage, CellField::ResetPulse,
            CellField::ResetEnergy, CellField::SetCurrent,
            CellField::SetVoltage, CellField::SetPulse,
            CellField::SetEnergy,
        };
        for (CellField f : kAll)
            if (c.field(f).prov != P::Reported)
                c.field(f) = CellParam();
    }

    for (CellSpec &c : raw) {
        if (c.name == "Chung") {
            // The IEDM'10 paper reports the array read current in
            // prose; with V_read = 0.65 V it yields the published
            // 24.1 uW via eq (1).
            c.readCurrent = rep(37.08e-6);
        } else if (c.name == "Umeki") {
            // ASP-DAC'15 gives the bit-cell layout dimensions; eq (3)
            // at 65 nm yields the published 48 F^2.
            c.cellLength = 0.4505e-6;
            c.cellWidth = 0.4505e-6;
        }
    }
    return raw;
}

std::vector<CellSpec>
buildArchetypes()
{
    std::vector<CellSpec> seeds;

    { // Canonical mushroom-cell PCRAM array values from the broader
      // PCRAM literature (used when no in-class publication reports a
      // parameter, e.g. array read current / read energy).
        CellSpec c;
        c.name = "pcram-archetype";
        c.klass = NvmClass::PCRAM;
        c.year = 2008;
        c.processNode = rep(90e-9);
        c.cellSizeF2 = rep(16.0);
        c.cellLevels = rep(1);
        c.readCurrent = rep(40e-6);
        c.readEnergy = rep(2e-12);
        c.resetCurrent = rep(400e-6);
        c.resetPulse = rep(40e-9);
        c.setCurrent = rep(150e-6);
        c.setPulse = rep(120e-9);
        seeds.push_back(c);
    }
    { // Canonical CMOS-accessed TaOx/HfOx RRAM values; RRAM
      // publications with full cell-level data are scarce (paper
      // §III-A discusses exactly this for Hayakawa).
        CellSpec c;
        c.name = "rram-archetype";
        c.klass = NvmClass::RRAM;
        c.year = 2014;
        c.processNode = rep(40e-9);
        c.cellSizeF2 = rep(4.0);
        c.cellLevels = rep(1);
        c.readVoltage = rep(0.4);
        c.readPower = rep(0.16e-6);
        c.resetVoltage = rep(2.0);
        c.resetPulse = rep(10e-9);
        c.resetEnergy = rep(0.6e-12);
        c.setVoltage = rep(2.0);
        c.setPulse = rep(10e-9);
        c.setEnergy = rep(0.6e-12);
        seeds.push_back(c);
    }

    return seeds;
}

CellSpec
buildSram()
{
    CellSpec c;
    c.name = "SRAM";
    c.klass = NvmClass::SRAM;
    c.year = 2009;
    c.processNode = rep(45e-9);
    c.cellSizeF2 = rep(146.0); // standard-cell 6T at 45 nm
    c.cellLevels = rep(1);
    return c;
}

} // namespace

const std::vector<CellSpec> &
publishedCells()
{
    static const std::vector<CellSpec> cells = buildPublished();
    return cells;
}

const std::vector<CellSpec> &
rawCells()
{
    static const std::vector<CellSpec> cells = buildRaw();
    return cells;
}

const std::vector<CellSpec> &
archetypeSeeds()
{
    static const std::vector<CellSpec> seeds = buildArchetypes();
    return seeds;
}

const CellSpec &
sramBaselineCell()
{
    static const CellSpec sram = buildSram();
    return sram;
}

const CellSpec &
publishedCell(const std::string &name)
{
    for (const CellSpec &c : publishedCells())
        if (c.name == name)
            return c;
    if (name == "SRAM")
        return sramBaselineCell();
    fatal("unknown NVM cell model '", name, "'");
}

std::vector<CellSpec>
cellsOfClass(NvmClass klass)
{
    std::vector<CellSpec> out;
    for (const CellSpec &c : publishedCells())
        if (c.klass == klass)
            out.push_back(c);
    return out;
}

} // namespace nvmcache
