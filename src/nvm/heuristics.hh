/**
 * @file
 * The paper's first contribution: a consistent set of heuristics for
 * completing NVM cell models whose VLSI publications omit parameters
 * an architectural simulator needs (paper §III-A).
 *
 * Three strategies, in decreasing order of preference:
 *
 *  H1 "Electrical properties"  — derive unknowns from knowns via the
 *     identities of eqs (1)-(3):
 *        P_read  = I_read * V_read                      (1)
 *        E_{s/r} = I_{s/r} * V_access * t_{s/r}         (2)
 *        A[F^2]  = l_cell * w_cell / s_proc^2           (3)
 *     Marked "†" in Table II.
 *
 *  H2 "Interpolation" — fit the trend of a parameter across same-class
 *     cells that report it (vs. process node) and evaluate the fit at
 *     the target's node. Marked "*".
 *
 *  H3 "Similarity" — copy the parameter from the most similar
 *     same-class cell (the paper's example: Kang's set current copied
 *     from Oh because their reset currents are identical). Marked "*".
 *
 * The engine only ever reads *Reported* values from its reference
 * library, so one guess never seeds another. Every filled field is
 * recorded in a ledger with the heuristic used and a human-readable
 * rationale, which is what makes downstream comparisons
 * apples-to-apples.
 */

#ifndef NVMCACHE_NVM_HEURISTICS_HH
#define NVMCACHE_NVM_HEURISTICS_HH

#include <string>
#include <vector>

#include "nvm/cell.hh"

namespace nvmcache {

/** One field filled in by the engine. */
struct CompletionStep
{
    CellField field;
    Provenance method;
    double value;           ///< canonical SI units
    std::string rationale;  ///< e.g. "E = I*V*t with V_access = V_read"
};

/** A completed spec plus the ledger of how each gap was filled. */
struct CompletionResult
{
    CellSpec spec;
    std::vector<CompletionStep> steps;

    /** True iff every simulator-required field is now known. */
    bool complete() const { return missingFields(spec).empty(); }
};

/** Eq (3): cell area in F^2 from physical dimensions and process. */
double cellAreaF2(double length_m, double width_m, double process_m);

/**
 * Heuristic completion engine.
 *
 * Construct with a reference library (typically the other cells of the
 * model library, plus optional class-archetype seeds for parameters no
 * in-class publication reports, such as PCRAM read current).
 */
class HeuristicEngine
{
  public:
    struct Options
    {
        /**
         * Access voltage used in eq (2) when the cell's own read
         * voltage is unknown, per class. Indexed by NvmClass.
         */
        double defaultAccessVoltage[4] = {1.0, 1.0, 1.0, 1.0};

        /** Clamp H2 interpolation to the observed value range. */
        bool clampInterpolation = true;

        /** Minimum same-class reporters required to attempt H2. */
        std::size_t minInterpolationPoints = 2;
    };

    explicit HeuristicEngine(std::vector<CellSpec> refs);
    HeuristicEngine(std::vector<CellSpec> refs, Options opts);

    /**
     * Complete all simulator-required fields of @p raw. Never mutates
     * Reported fields. Fields that no heuristic can fill remain
     * Missing (CompletionResult::complete() reports this).
     */
    CompletionResult complete(const CellSpec &raw) const;

    // --- Individual heuristics, exposed for tests and the ablation
    // --- bench. Each returns true and fills @p step on success.

    /** H1 over all derivable identities for @p field. */
    bool tryElectrical(const CellSpec &spec, CellField field,
                       CompletionStep &step) const;

    /** H2 linear interpolation vs. process node. */
    bool tryInterpolation(const CellSpec &spec, CellField field,
                          CompletionStep &step) const;

    /** H3 most-similar same-class donor. */
    bool trySimilarity(const CellSpec &spec, CellField field,
                       CompletionStep &step) const;

    const Options &options() const { return opts_; }

  private:
    /** V_access for eq (2): own read voltage, else class default. */
    double accessVoltage(const CellSpec &spec) const;

    /** Same-class refs (excluding any ref with the same name). */
    std::vector<const CellSpec *> sameClassRefs(const CellSpec &spec)
        const;

    std::vector<CellSpec> refs_;
    Options opts_;
};

} // namespace nvmcache

#endif // NVMCACHE_NVM_HEURISTICS_HH
