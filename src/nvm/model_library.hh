/**
 * @file
 * The released NVM cell model library (paper Table II).
 *
 * Ten cells spanning three NVM classes and a decade of VLSI
 * publications:
 *   PCRAM : Oh'05, Chen'06, Kang'06, Close'13
 *   STTRAM: Chung'10, Jan'14, Umeki'15, Xue'16
 *   RRAM  : Hayakawa'15, Zhang'16
 *
 * Two views are provided:
 *
 *  - publishedCells(): the completed models exactly as released with
 *    the paper, including values the authors filled via heuristics
 *    (provenance preserved: H1 = "†", H2/H3 = "*").
 *
 *  - rawCells(): only the parameters the cited VLSI publications
 *    actually report (plus a few prose-reported extras such as
 *    Chung's read current and Umeki's physical cell dimensions).
 *    Feeding these through HeuristicEngine reproduces the published
 *    models; the ablation bench quantifies the residual error.
 *
 * archetypeSeeds() supplies class-typical literature values for
 * parameters *no* in-class publication reports (e.g. PCRAM array read
 * current); the engine falls back to them via H3 similarity.
 */

#ifndef NVMCACHE_NVM_MODEL_LIBRARY_HH
#define NVMCACHE_NVM_MODEL_LIBRARY_HH

#include <string>
#include <vector>

#include "nvm/cell.hh"

namespace nvmcache {

/** The ten completed Table II cell models, in table order. */
const std::vector<CellSpec> &publishedCells();

/** Reported-only versions of the same ten cells. */
const std::vector<CellSpec> &rawCells();

/** Class-archetype seed specs for HeuristicEngine reference use. */
const std::vector<CellSpec> &archetypeSeeds();

/** 45 nm 6T SRAM cell used for the baseline LLC. */
const CellSpec &sramBaselineCell();

/** Look up a published cell by citation name (e.g. "Chung"). */
const CellSpec &publishedCell(const std::string &name);

/** All published cells of one class. */
std::vector<CellSpec> cellsOfClass(NvmClass klass);

} // namespace nvmcache

#endif // NVMCACHE_NVM_MODEL_LIBRARY_HH
