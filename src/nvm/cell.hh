/**
 * @file
 * NVM cell-level model representation (paper Table II).
 *
 * A CellSpec mirrors one column of the paper's Table II: the set of
 * device parameters an architectural NVM simulator (NVSim in the
 * paper, our `nvsim` module here) needs to model a cache built from
 * that cell. Parameters are optional-valued because VLSI publications
 * rarely report the complete set; the heuristics engine
 * (heuristics.hh) fills the gaps and records the provenance of every
 * value so downstream comparisons stay apples-to-apples.
 */

#ifndef NVMCACHE_NVM_CELL_HH
#define NVMCACHE_NVM_CELL_HH

#include <optional>
#include <string>
#include <vector>

namespace nvmcache {

/** Technology class of a memory cell. */
enum class NvmClass
{
    PCRAM,  ///< phase-change RAM
    STTRAM, ///< spin-torque-transfer RAM
    RRAM,   ///< metal-oxide resistive RAM
    SRAM    ///< baseline (volatile)
};

/** Short human-readable class name ("PCRAM", ...). */
std::string toString(NvmClass klass);

/** Subscript letter used in the paper's citation names (P/S/R). */
char classSubscript(NvmClass klass);

/** Where the value of a cell parameter came from. */
enum class Provenance
{
    Reported,       ///< taken directly from the cited VLSI paper
    H1Electrical,   ///< derived via electrical identities (eqs 1-3); "†"
    H2Interpolated, ///< interpolated across same-class trends; "*"
    H3Similarity,   ///< copied from a similar same-class cell; "*"
    Missing         ///< not yet known
};

/** Mark used in Table II for a provenance ("", "†" or "*"). */
std::string provenanceMark(Provenance prov);

/**
 * One optional cell parameter plus provenance. Values use canonical
 * SI units (see util/units.hh).
 */
struct CellParam
{
    std::optional<double> value;
    Provenance prov = Provenance::Missing;

    CellParam() = default;
    CellParam(double v, Provenance p) : value(v), prov(p) {}

    bool known() const { return value.has_value(); }
    double get() const;

    /** Convenience: reported value. */
    static CellParam reported(double v)
    {
        return CellParam(v, Provenance::Reported);
    }
};

/** Identifier for each parameter field; used by the heuristics ledger. */
enum class CellField
{
    ProcessNode,
    CellSizeF2,
    CellLevels,
    ReadCurrent,
    ReadVoltage,
    ReadPower,
    ReadEnergy,
    ResetCurrent,
    ResetVoltage,
    ResetPulse,
    ResetEnergy,
    SetCurrent,
    SetVoltage,
    SetPulse,
    SetEnergy
};

/** Display name for a field ("read current [uA]" style). */
std::string toString(CellField field);

/**
 * A complete NVM (or SRAM) cell model: one column of Table II.
 */
struct CellSpec
{
    std::string name;      ///< citation name, e.g. "Chung"
    NvmClass klass = NvmClass::SRAM;
    int year = 0;
    std::string accessDevice = "CMOS";

    CellParam processNode;  ///< metres (e.g. 54e-9)
    CellParam cellSizeF2;   ///< dimensionless F^2
    CellParam cellLevels;   ///< 1 = SLC, 2 = MLC(2 bit)

    CellParam readCurrent;  ///< A      (PCRAM)
    CellParam readVoltage;  ///< V      (STTRAM, RRAM)
    CellParam readPower;    ///< W      (STTRAM, RRAM)
    CellParam readEnergy;   ///< J      (PCRAM)

    CellParam resetCurrent; ///< A      (PCRAM, STTRAM)
    CellParam resetVoltage; ///< V      (RRAM)
    CellParam resetPulse;   ///< s
    CellParam resetEnergy;  ///< J      (STTRAM, RRAM)

    CellParam setCurrent;   ///< A      (PCRAM, STTRAM)
    CellParam setVoltage;   ///< V      (RRAM)
    CellParam setPulse;     ///< s
    CellParam setEnergy;    ///< J      (STTRAM, RRAM)

    /**
     * Physical cell dimensions when the publication gives a die photo
     * or layout instead of an F^2 figure; input to eq (3).
     */
    std::optional<double> cellLength; ///< m
    std::optional<double> cellWidth;  ///< m

    /** Citation name plus class subscript, e.g. "Chung_S". */
    std::string citationName() const;

    /** Access a field by id (const and mutable). */
    const CellParam &field(CellField f) const;
    CellParam &field(CellField f);

    /** Bits stored per cell (levels -> log2 of resistance states). */
    int bitsPerCell() const;
};

/**
 * The parameter set NVSim-style simulators require for a class
 * (paper §III lists these explicitly per class).
 */
const std::vector<CellField> &requiredFields(NvmClass klass);

/** Fields that are inapplicable to the class (grayed out in Table II). */
bool fieldApplicable(NvmClass klass, CellField field);

/**
 * Check a spec for completeness: returns the required fields that are
 * still Missing. Empty result means the spec is simulator-ready.
 */
std::vector<CellField> missingFields(const CellSpec &spec);

} // namespace nvmcache

#endif // NVMCACHE_NVM_CELL_HH
