/**
 * @file
 * Write-endurance and cache-lifetime modeling.
 *
 * The paper lists endurance as each class's key drawback (Table I:
 * PCRAM 1e7-1e8 writes, RRAM ~1e10, STTRAM effectively unlimited) and
 * names lifetime characterization as future work (§VII): "Future work
 * will characterize the extent to which architecture-agnostic
 * features ... will affect the lifetime of different NVMs." This
 * module implements that extension.
 *
 * The model: a cache of N lines fails when its most-written cell
 * reaches the class's endurance bound. Given a simulation's LLC write
 * count and duration, the mean per-line write rate follows; the
 * *hottest* line's rate is the mean times a write-imbalance factor
 * that the caller measures from the trace (the ratio between the
 * hottest line's share and a perfectly level share — exactly what the
 * characterizer's 90% write footprint captures). Wear-leveling
 * techniques (paper refs [20], [38], [39]) reduce the imbalance
 * toward 1.
 */

#ifndef NVMCACHE_NVM_ENDURANCE_HH
#define NVMCACHE_NVM_ENDURANCE_HH

#include <cstdint>

#include "nvm/cell.hh"

namespace nvmcache {

/**
 * Class-level write endurance in writes/cell. Representative values
 * from the paper's background section (Table I and §II).
 */
double writeEndurance(NvmClass klass);

/**
 * Raw (pre-ECC) per-bit error rates of one LLC array operation, per
 * technology class. These drive the fault-injection layer
 * (sim/faults.hh): `writeError` is the probability that one bit of a
 * line lands in the wrong resistance state after a single write pulse
 * (the write-instability drawback Table I names per class), and
 * `readError` is the probability that one stored bit reads back wrong
 * (retention drift / read disturb). Values are class-representative
 * device figures; experiments scale them with the fault layer's
 * `berScale` knob rather than editing the table.
 */
struct RawBitErrorRates
{
    double writeError = 0.0; ///< P(bit wrong after one write pulse)
    double readError = 0.0;  ///< P(bit wrong on one array read)
};

RawBitErrorRates rawBitErrorRates(NvmClass klass);

/** Inputs to a lifetime estimate, all from one simulation run. */
struct LifetimeInputs
{
    std::uint64_t llcWrites = 0;   ///< fills + writebacks observed
    double seconds = 0.0;          ///< simulated duration
    std::uint64_t cacheLines = 0;  ///< LLC capacity in lines
    /**
     * Hottest-line imbalance: (writes to the most-written line) /
     * (llcWrites / cacheLines). 1.0 = perfectly level. Measured from
     * the trace or estimated from the 90% write footprint.
     */
    double writeImbalance = 1.0;
};

/** Result of a lifetime estimate. */
struct LifetimeEstimate
{
    double meanLineWritesPerSecond = 0.0;
    double hottestLineWritesPerSecond = 0.0;
    double lifetimeSeconds = 0.0; ///< time to first worn-out line
    double lifetimeYears = 0.0;
};

/**
 * Estimate LLC lifetime for a cell class under the observed write
 * traffic.
 *
 * @param wearLevelingFactor  in (0, 1]: residual imbalance after
 *        wear-leveling; 1 = none deployed, smaller = better leveling
 *        (intra-set wear-leveling in the paper's ref [20] achieves
 *        several-x).
 */
LifetimeEstimate estimateLifetime(NvmClass klass,
                                  const LifetimeInputs &inputs,
                                  double wearLevelingFactor = 1.0);

/**
 * Estimate the write imbalance from characterizer output: if 90% of
 * writes land on f90 of u unique destinations, the hottest line's
 * share is approximated by a two-tier (hot/cold) traffic split.
 * Returns >= 1.
 */
double imbalanceFromFootprints(std::uint64_t uniqueWrites,
                               std::uint64_t footprint90,
                               std::uint64_t cacheLines);

} // namespace nvmcache

#endif // NVMCACHE_NVM_ENDURANCE_HH
