#include "nvm/cell.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

std::string
toString(NvmClass klass)
{
    switch (klass) {
      case NvmClass::PCRAM: return "PCRAM";
      case NvmClass::STTRAM: return "STTRAM";
      case NvmClass::RRAM: return "RRAM";
      case NvmClass::SRAM: return "SRAM";
    }
    panic("bad NvmClass");
}

char
classSubscript(NvmClass klass)
{
    switch (klass) {
      case NvmClass::PCRAM: return 'P';
      case NvmClass::STTRAM: return 'S';
      case NvmClass::RRAM: return 'R';
      case NvmClass::SRAM: return ' ';
    }
    panic("bad NvmClass");
}

std::string
provenanceMark(Provenance prov)
{
    switch (prov) {
      case Provenance::Reported: return "";
      case Provenance::H1Electrical: return "+";   // paper's dagger
      case Provenance::H2Interpolated: return "*";
      case Provenance::H3Similarity: return "*";
      case Provenance::Missing: return "?";
    }
    panic("bad Provenance");
}

double
CellParam::get() const
{
    if (!value)
        panic("CellParam::get on missing value");
    return *value;
}

std::string
toString(CellField field)
{
    switch (field) {
      case CellField::ProcessNode: return "process";
      case CellField::CellSizeF2: return "cell size [F^2]";
      case CellField::CellLevels: return "cell levels";
      case CellField::ReadCurrent: return "read current";
      case CellField::ReadVoltage: return "read voltage";
      case CellField::ReadPower: return "read power";
      case CellField::ReadEnergy: return "read energy";
      case CellField::ResetCurrent: return "reset current";
      case CellField::ResetVoltage: return "reset voltage";
      case CellField::ResetPulse: return "reset pulse";
      case CellField::ResetEnergy: return "reset energy";
      case CellField::SetCurrent: return "set current";
      case CellField::SetVoltage: return "set voltage";
      case CellField::SetPulse: return "set pulse";
      case CellField::SetEnergy: return "set energy";
    }
    panic("bad CellField");
}

std::string
CellSpec::citationName() const
{
    if (klass == NvmClass::SRAM)
        return name;
    return name + "_" + classSubscript(klass);
}

const CellParam &
CellSpec::field(CellField f) const
{
    return const_cast<CellSpec *>(this)->field(f);
}

CellParam &
CellSpec::field(CellField f)
{
    switch (f) {
      case CellField::ProcessNode: return processNode;
      case CellField::CellSizeF2: return cellSizeF2;
      case CellField::CellLevels: return cellLevels;
      case CellField::ReadCurrent: return readCurrent;
      case CellField::ReadVoltage: return readVoltage;
      case CellField::ReadPower: return readPower;
      case CellField::ReadEnergy: return readEnergy;
      case CellField::ResetCurrent: return resetCurrent;
      case CellField::ResetVoltage: return resetVoltage;
      case CellField::ResetPulse: return resetPulse;
      case CellField::ResetEnergy: return resetEnergy;
      case CellField::SetCurrent: return setCurrent;
      case CellField::SetVoltage: return setVoltage;
      case CellField::SetPulse: return setPulse;
      case CellField::SetEnergy: return setEnergy;
    }
    panic("bad CellField");
}

int
CellSpec::bitsPerCell() const
{
    if (!cellLevels.known())
        return 1;
    // Table II's "cell levels" counts bits per cell directly (2 for
    // the 2+ bit/cell Close and Xue chips).
    return int(std::lround(cellLevels.get()));
}

const std::vector<CellField> &
requiredFields(NvmClass klass)
{
    // Per paper §III: NVSim's required parameters per class.
    static const std::vector<CellField> pcram = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::ReadCurrent, CellField::ReadEnergy,
        CellField::ResetCurrent, CellField::ResetPulse,
        CellField::SetCurrent, CellField::SetPulse,
    };
    static const std::vector<CellField> sttram = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::ReadVoltage, CellField::ReadPower,
        CellField::ResetCurrent, CellField::ResetPulse,
        CellField::ResetEnergy, CellField::SetCurrent,
        CellField::SetPulse, CellField::SetEnergy,
    };
    static const std::vector<CellField> rram = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::ReadVoltage, CellField::ReadPower,
        CellField::ResetVoltage, CellField::ResetPulse,
        CellField::ResetEnergy, CellField::SetVoltage,
        CellField::SetPulse, CellField::SetEnergy,
    };
    static const std::vector<CellField> sram = {
        CellField::ProcessNode, CellField::CellSizeF2,
    };
    switch (klass) {
      case NvmClass::PCRAM: return pcram;
      case NvmClass::STTRAM: return sttram;
      case NvmClass::RRAM: return rram;
      case NvmClass::SRAM: return sram;
    }
    panic("bad NvmClass");
}

bool
fieldApplicable(NvmClass klass, CellField field)
{
    switch (field) {
      case CellField::ProcessNode:
      case CellField::CellSizeF2:
      case CellField::CellLevels:
        return true;
      case CellField::ReadCurrent:
      case CellField::ReadEnergy:
        return klass == NvmClass::PCRAM;
      case CellField::ReadVoltage:
      case CellField::ReadPower:
        return klass == NvmClass::STTRAM || klass == NvmClass::RRAM;
      case CellField::ResetCurrent:
      case CellField::SetCurrent:
        return klass == NvmClass::PCRAM || klass == NvmClass::STTRAM;
      case CellField::ResetVoltage:
      case CellField::SetVoltage:
        return klass == NvmClass::RRAM;
      case CellField::ResetPulse:
      case CellField::SetPulse:
        return klass != NvmClass::SRAM;
      case CellField::ResetEnergy:
      case CellField::SetEnergy:
        return klass == NvmClass::STTRAM || klass == NvmClass::RRAM;
    }
    panic("bad CellField");
}

std::vector<CellField>
missingFields(const CellSpec &spec)
{
    std::vector<CellField> missing;
    for (CellField f : requiredFields(spec.klass))
        if (!spec.field(f).known())
            missing.push_back(f);
    return missing;
}

} // namespace nvmcache
