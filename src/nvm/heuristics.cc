#include "nvm/heuristics.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/stats.hh"

namespace nvmcache {

double
cellAreaF2(double length_m, double width_m, double process_m)
{
    if (length_m <= 0.0 || width_m <= 0.0 || process_m <= 0.0)
        panic("cellAreaF2: non-positive dimension");
    return (length_m * width_m) / (process_m * process_m);
}

HeuristicEngine::HeuristicEngine(std::vector<CellSpec> refs)
    : HeuristicEngine(std::move(refs), Options())
{
}

HeuristicEngine::HeuristicEngine(std::vector<CellSpec> refs, Options opts)
    : refs_(std::move(refs)), opts_(opts)
{
}

double
HeuristicEngine::accessVoltage(const CellSpec &spec) const
{
    if (spec.readVoltage.known())
        return spec.readVoltage.get();
    return opts_.defaultAccessVoltage[int(spec.klass)];
}

std::vector<const CellSpec *>
HeuristicEngine::sameClassRefs(const CellSpec &spec) const
{
    std::vector<const CellSpec *> out;
    for (const auto &ref : refs_)
        if (ref.klass == spec.klass && ref.name != spec.name)
            out.push_back(&ref);
    return out;
}

namespace {

/** Reported-only view of a reference field. */
std::optional<double>
reportedValue(const CellSpec &ref, CellField f)
{
    const CellParam &p = ref.field(f);
    if (p.known() && p.prov == Provenance::Reported)
        return p.value;
    return std::nullopt;
}

std::string
fmtEng(double v)
{
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
}

} // namespace

bool
HeuristicEngine::tryElectrical(const CellSpec &spec, CellField field,
                               CompletionStep &step) const
{
    auto known = [&](CellField f) { return spec.field(f).known(); };
    auto val = [&](CellField f) { return spec.field(f).get(); };

    auto fill = [&](double v, const std::string &why) {
        step = {field, Provenance::H1Electrical, v, why};
        return true;
    };

    switch (field) {
      case CellField::ReadPower:
        // Eq (1): P = I * V.
        if (known(CellField::ReadCurrent) && known(CellField::ReadVoltage))
            return fill(val(CellField::ReadCurrent) *
                            val(CellField::ReadVoltage),
                        "eq(1) P_read = I_read * V_read");
        return false;
      case CellField::ReadCurrent:
        if (known(CellField::ReadPower) && known(CellField::ReadVoltage) &&
            val(CellField::ReadVoltage) > 0.0)
            return fill(val(CellField::ReadPower) /
                            val(CellField::ReadVoltage),
                        "eq(1) inverted: I_read = P_read / V_read");
        return false;
      case CellField::ReadVoltage:
        if (known(CellField::ReadPower) && known(CellField::ReadCurrent) &&
            val(CellField::ReadCurrent) > 0.0)
            return fill(val(CellField::ReadPower) /
                            val(CellField::ReadCurrent),
                        "eq(1) inverted: V_read = P_read / I_read");
        return false;
      case CellField::SetEnergy:
        // Eq (2): E_s = I_s * V_access * t_s.
        if (known(CellField::SetCurrent) && known(CellField::SetPulse))
            return fill(val(CellField::SetCurrent) * accessVoltage(spec) *
                            val(CellField::SetPulse),
                        "eq(2) E_s = I_s * V_access(" +
                            fmtEng(accessVoltage(spec)) + "V) * t_s");
        return false;
      case CellField::ResetEnergy:
        if (known(CellField::ResetCurrent) && known(CellField::ResetPulse))
            return fill(val(CellField::ResetCurrent) *
                            accessVoltage(spec) *
                            val(CellField::ResetPulse),
                        "eq(2) E_r = I_r * V_access(" +
                            fmtEng(accessVoltage(spec)) + "V) * t_r");
        return false;
      case CellField::SetCurrent:
        if (known(CellField::SetEnergy) && known(CellField::SetPulse) &&
            val(CellField::SetPulse) > 0.0 && accessVoltage(spec) > 0.0)
            return fill(val(CellField::SetEnergy) /
                            (accessVoltage(spec) *
                             val(CellField::SetPulse)),
                        "eq(2) inverted: I_s = E_s / (V_access * t_s)");
        return false;
      case CellField::ResetCurrent:
        if (known(CellField::ResetEnergy) && known(CellField::ResetPulse) &&
            val(CellField::ResetPulse) > 0.0 && accessVoltage(spec) > 0.0)
            return fill(val(CellField::ResetEnergy) /
                            (accessVoltage(spec) *
                             val(CellField::ResetPulse)),
                        "eq(2) inverted: I_r = E_r / (V_access * t_r)");
        return false;
      case CellField::CellSizeF2:
        // Eq (3): A[F^2] = l * w / s^2.
        if (spec.cellLength && spec.cellWidth &&
            known(CellField::ProcessNode))
            return fill(cellAreaF2(*spec.cellLength, *spec.cellWidth,
                                   val(CellField::ProcessNode)),
                        "eq(3) A = l_cell * w_cell / s_proc^2");
        return false;
      default:
        return false;
    }
}

bool
HeuristicEngine::tryInterpolation(const CellSpec &spec, CellField field,
                                  CompletionStep &step) const
{
    if (!spec.processNode.known())
        return false;

    std::vector<double> xs, ys;
    for (const CellSpec *ref : sameClassRefs(spec)) {
        auto node = reportedValue(*ref, CellField::ProcessNode);
        auto v = reportedValue(*ref, field);
        if (node && v) {
            xs.push_back(*node);
            ys.push_back(*v);
        }
    }
    if (xs.size() < opts_.minInterpolationPoints)
        return false;

    // A trend is only usable when the reporters actually exhibit one;
    // otherwise fall through to H3 similarity (this is why the paper
    // takes Kang's set current from Oh rather than from a process
    // trend: the same-class set currents do not correlate with node).
    if (xs.size() > 2 && std::abs(pearson(xs, ys)) < 0.8)
        return false;
    if (xs.size() == 2 && xs[0] == xs[1])
        return false;

    LinearFit fit = linearFit(xs, ys);
    double v = fit.intercept + fit.slope * spec.processNode.get();
    if (opts_.clampInterpolation) {
        double lo = *std::min_element(ys.begin(), ys.end());
        double hi = *std::max_element(ys.begin(), ys.end());
        v = std::clamp(v, lo, hi);
    }
    if (v <= 0.0)
        return false;

    std::ostringstream why;
    why << "linear trend vs process over " << xs.size()
        << " same-class reporters";
    step = {field, Provenance::H2Interpolated, v, why.str()};
    return true;
}

bool
HeuristicEngine::trySimilarity(const CellSpec &spec, CellField field,
                               CompletionStep &step) const
{
    // Score each same-class donor that reports the field by how many
    // of its *other* reported parameters agree with the target's
    // reported parameters (within 10%), tie-broken by process-node
    // proximity. This generalizes the paper's worked example (Kang's
    // set current taken from Oh because their reset currents match).
    static const CellField kComparable[] = {
        CellField::ProcessNode, CellField::CellSizeF2,
        CellField::ReadCurrent, CellField::ReadVoltage,
        CellField::ReadPower, CellField::ReadEnergy,
        CellField::ResetCurrent, CellField::ResetVoltage,
        CellField::ResetPulse, CellField::ResetEnergy,
        CellField::SetCurrent, CellField::SetVoltage,
        CellField::SetPulse, CellField::SetEnergy,
    };

    const CellSpec *best = nullptr;
    int best_score = -1;
    double best_node_dist = 0.0;

    for (const CellSpec *ref : sameClassRefs(spec)) {
        auto donor = reportedValue(*ref, field);
        if (!donor)
            continue;
        int score = 0;
        for (CellField f : kComparable) {
            if (f == field)
                continue;
            const CellParam &mine = spec.field(f);
            if (!mine.known() || mine.prov != Provenance::Reported)
                continue;
            auto theirs = reportedValue(*ref, f);
            if (!theirs)
                continue;
            double denom = std::max(std::abs(mine.get()),
                                    std::abs(*theirs));
            double rel = denom == 0.0
                             ? 0.0
                             : std::abs(mine.get() - *theirs) / denom;
            // An identical parameter (the paper's Kang/Oh reset
            // current example) is far stronger evidence than a
            // merely-nearby one.
            if (rel <= 0.01)
                score += 3;
            else if (rel <= 0.10)
                score += 1;
        }
        double node_dist = 0.0;
        if (spec.processNode.known() && ref->processNode.known())
            node_dist = std::abs(spec.processNode.get() -
                                 ref->processNode.get());
        else
            node_dist = 1.0; // unknown: de-prioritize slightly
        if (score > best_score ||
            (score == best_score && best &&
             node_dist < best_node_dist)) {
            best = ref;
            best_score = score;
            best_node_dist = node_dist;
        }
    }
    if (!best)
        return false;

    std::ostringstream why;
    why << "copied from same-class cell '" << best->name << "' ("
        << best_score << " matching reported parameters)";
    step = {field, Provenance::H3Similarity,
            *reportedValue(*best, field), why.str()};
    return true;
}

CompletionResult
HeuristicEngine::complete(const CellSpec &raw) const
{
    CompletionResult result;
    result.spec = raw;
    CellSpec &spec = result.spec;

    auto apply = [&](const CompletionStep &step) {
        spec.field(step.field) = CellParam(step.value, step.method);
        result.steps.push_back(step);
    };

    // Pass 1: exhaust H1 identities to a fixpoint -- they are the most
    // accurate and may chain (e.g. read power from current+voltage).
    auto h1FixPoint = [&]() {
        bool progress = true;
        while (progress) {
            progress = false;
            for (CellField f : requiredFields(spec.klass)) {
                if (spec.field(f).known())
                    continue;
                CompletionStep step;
                if (tryElectrical(spec, f, step)) {
                    apply(step);
                    progress = true;
                }
            }
        }
    };

    h1FixPoint();

    // Pass 2: H2 then H3 for the remainder, then re-run H1 in case a
    // filled value unlocks another identity.
    for (CellField f : requiredFields(spec.klass)) {
        if (spec.field(f).known())
            continue;
        CompletionStep step;
        if (tryInterpolation(spec, f, step) ||
            trySimilarity(spec, f, step)) {
            apply(step);
            h1FixPoint();
        }
    }

    return result;
}

} // namespace nvmcache
