/**
 * @file
 * Bit-exact binary codec for the result store's SimStats payloads.
 *
 * Every field of SimStats — including the full hierarchical detail
 * snapshot — round-trips exactly (doubles travel as raw IEEE-754 bit
 * patterns), so a report assembled from warm-loaded results is byte
 * identical to one assembled from fresh simulations.
 */

#ifndef NVMCACHE_STORE_CODEC_HH
#define NVMCACHE_STORE_CODEC_HH

#include <string>

#include "sim/system.hh"

namespace nvmcache {

std::string encodeSimStats(const SimStats &stats);

/**
 * Decode a payload produced by encodeSimStats. Throws
 * std::runtime_error on any structural defect (truncation, bad
 * version, trailing bytes) — callers treat that as a store miss.
 */
SimStats decodeSimStats(const std::string &payload);

} // namespace nvmcache

#endif // NVMCACHE_STORE_CODEC_HH
