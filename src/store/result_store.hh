/**
 * @file
 * Content-addressed on-disk result store.
 *
 * The evaluation pipeline is deterministic: every (workload, model,
 * faults) point always produces the same SimStats, and every recorded
 * trace always packs to the same bytes. The store persists those
 * artifacts across process restarts so the daemon, CLI, and benches
 * only ever pay simulation cost for the frontier of a sweep.
 *
 * Records live under a two-level fanout directory keyed by a stable
 * 64-bit FNV-1a hash of (kind, key): `<dir>/<aa>/<bb>/<16-hex>.nvcs`.
 * Each file is self-describing:
 *
 *   "NVCS" magic · u32 version · u64 kindLen · u64 keyLen ·
 *   u64 payloadLen · kind bytes · key bytes · payload bytes ·
 *   u64 FNV-1a checksum over everything before it
 *
 * The full key is stored so a (vanishingly unlikely) hash collision
 * degrades to a miss, never a wrong result. Writes go to a temp file
 * in the final directory and rename into place, so concurrent writers
 * and crashes can never expose a torn record; corrupt or truncated
 * entries are unlinked and treated as misses (the caller re-simulates
 * and rewrites). Loads bump the entry's atime explicitly (works on
 * noatime mounts), which is what `gc --max-bytes` orders eviction by.
 *
 * A generation number (`<dir>/generation`) increments whenever the
 * store mutates destructively (gc, verify --repair), letting
 * RunnerPool key cached runner handles on it so a mid-flight eviction
 * can't serve a stale in-memory view of the store.
 */

#ifndef NVMCACHE_STORE_RESULT_STORE_HH
#define NVMCACHE_STORE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nvmcache {

/** One record seen by a directory walk (scan/verify/gc). */
struct StoreScanEntry
{
    std::string path;
    std::string kind;          ///< "" when the record is unreadable
    std::uint64_t payloadBytes = 0;
    std::uint64_t fileBytes = 0;
    bool valid = false;
    std::int64_t atimeNs = 0; ///< access time, ns since epoch
};

/** Totals from a directory walk. */
struct StoreUsage
{
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
};

/** Result of a checksum walk. */
struct StoreVerifyResult
{
    std::uint64_t checked = 0;
    std::uint64_t corrupt = 0;
    std::vector<std::string> corruptPaths;
};

/** Result of an LRU-by-atime eviction pass. */
struct StoreGcResult
{
    std::uint64_t evicted = 0;
    std::uint64_t bytesEvicted = 0;
    std::uint64_t bytesRemaining = 0;
};

class ResultStore
{
  public:
    /** Opens (and creates, with parents) the store at @p dir. */
    explicit ResultStore(std::string dir);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return dir_; }

    /**
     * Look @p key up under namespace @p kind. Returns the payload on
     * a clean hit; nullopt on miss, on any corruption (the entry is
     * unlinked so the rewrite starts clean), or on a hash collision
     * with a different key.
     */
    std::optional<std::string> load(const std::string &kind,
                                    const std::string &key);

    /** Write (or atomically replace) the record for (kind, key). */
    void put(const std::string &kind, const std::string &key,
             const std::string &payload);

    /** Stable fanout path a (kind, key) record lives at. */
    std::string pathFor(const std::string &kind,
                        const std::string &key) const;

    /** Walk every record file (valid or not), unordered. */
    std::vector<StoreScanEntry> scan() const;

    StoreUsage usage() const;

    /**
     * Checksum-walk every record; with @p repair, unlink corrupt
     * entries and bump the generation when anything was removed.
     */
    StoreVerifyResult verify(bool repair = false);

    /**
     * Evict least-recently-used records until the store holds at most
     * @p maxBytes of record data. Bumps the generation when anything
     * was evicted.
     */
    StoreGcResult gc(std::uint64_t maxBytes);

    /**
     * Destructive-mutation counter, re-read from disk on every call
     * so sibling processes observe each other's gc/repair passes.
     */
    std::uint64_t generation() const;

    /** Increment the on-disk generation (atomic rename). */
    void bumpGeneration();

    /** This handle's session counters (also mirrored to store.*). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t writes = 0;
        std::uint64_t corrupt = 0;
    };

    Counters counters() const;

    /**
     * Lifetime counters: the persisted totals of every handle that
     * ever flushed (`<dir>/counters.v1.json`) plus this session's.
     */
    Counters cumulativeCounters() const;

    // --- process-wide store selection -------------------------------

    /**
     * Select the process-wide store (the --store-dir/NVMCACHE_STORE
     * knob). An empty @p dir disables it. Every call bumps the global
     * epoch so cached runner handles keyed on it are invalidated.
     */
    static void setGlobal(const std::string &dir);

    /** The selected store, or nullptr when persistence is off. */
    static std::shared_ptr<ResultStore> global();

    /** Monotonic count of setGlobal() calls in this process. */
    static std::uint64_t globalEpoch();

  private:
    std::string fanoutName(const std::string &kind,
                           const std::string &key) const;
    void countHit();
    void countMiss();
    void countWrite();
    void countCorrupt();
    void flushPersistentCounters();

    std::string dir_;
    mutable std::mutex countersMu_;
    Counters counters_;
    std::atomic<std::uint64_t> tmpSeq_{0};
};

/** 64-bit FNV-1a over @p data (the store's stable record hash). */
std::uint64_t fnv1a64(const std::string &data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace nvmcache

#endif // NVMCACHE_STORE_RESULT_STORE_HH
