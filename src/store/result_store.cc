#include "store/result_store.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/wire.hh"

namespace nvmcache {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'N', 'V', 'C', 'S'};
constexpr std::uint32_t kVersion = 1;
constexpr const char *kRecordSuffix = ".nvcs";
constexpr const char *kGenerationFile = "generation";
constexpr const char *kCountersFile = "counters.v1.json";

std::uint64_t
fnv1a64Raw(const char *data, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= std::uint64_t(std::uint8_t(data[i]));
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[std::size_t(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return s;
}

std::string
encodeRecord(const std::string &kind, const std::string &key,
             const std::string &payload)
{
    WireWriter w;
    w.putBytes(kMagic, sizeof(kMagic));
    w.putU32(kVersion);
    w.putU64(kind.size());
    w.putU64(key.size());
    w.putU64(payload.size());
    w.putBytes(kind.data(), kind.size());
    w.putBytes(key.data(), key.size());
    w.putBytes(payload.data(), payload.size());
    const std::uint64_t sum =
        fnv1a64Raw(w.buffer().data(), w.buffer().size(),
                   0xcbf29ce484222325ULL);
    w.putU64(sum);
    return w.take();
}

/**
 * Parse one record file's bytes. Returns false on any structural
 * defect (bad magic/version, truncation, checksum mismatch); outputs
 * are filled only on success.
 */
bool
decodeRecord(const std::string &bytes, std::string *kind,
             std::string *key, std::string *payload)
{
    // magic(4) + version(4) + 3 lengths(24) + checksum(8)
    constexpr std::size_t kMinBytes = 40;
    if (bytes.size() < kMinBytes)
        return false;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return false;
    try {
        WireReader r(bytes);
        for (std::size_t i = 0; i < sizeof(kMagic); ++i)
            r.getU8();
        if (r.getU32() != kVersion)
            return false;
        const std::uint64_t kindLen = r.getU64();
        const std::uint64_t keyLen = r.getU64();
        const std::uint64_t payloadLen = r.getU64();
        const std::uint64_t bodyBytes = kindLen + keyLen + payloadLen;
        if (bytes.size() != kMinBytes + bodyBytes)
            return false;
        // magic(4) + version(4) + 3 lengths(24)
        const std::size_t bodyOff = 32;
        const std::uint64_t sum = fnv1a64Raw(
            bytes.data(), bytes.size() - 8, 0xcbf29ce484222325ULL);
        std::uint64_t footer = 0;
        for (int i = 7; i >= 0; --i)
            footer = (footer << 8) |
                     std::uint8_t(bytes[bytes.size() - 8 +
                                        std::size_t(i)]);
        if (footer != sum)
            return false;
        if (kind)
            *kind = bytes.substr(bodyOff, std::size_t(kindLen));
        if (key)
            *key = bytes.substr(bodyOff + std::size_t(kindLen),
                                std::size_t(keyLen));
        if (payload)
            *payload = bytes.substr(
                bodyOff + std::size_t(kindLen) + std::size_t(keyLen),
                std::size_t(payloadLen));
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad())
        return false;
    *out = std::move(data);
    return true;
}

/** Write @p data to @p path via a same-directory temp + rename. */
bool
writeFileAtomic(const std::string &path, const std::string &data,
                std::uint64_t seq)
{
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seq);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(data.data(), std::streamsize(data.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

/** Skip bookkeeping files and in-flight temps during walks. */
bool
isRecordFile(const fs::path &p)
{
    const std::string name = p.filename().string();
    if (name == kGenerationFile || name == kCountersFile)
        return false;
    if (name.find(".tmp.") != std::string::npos)
        return false;
    return name.size() > std::strlen(kRecordSuffix) &&
           name.rfind(kRecordSuffix) ==
               name.size() - std::strlen(kRecordSuffix);
}

std::int64_t
fileAtimeNs(const std::string &path)
{
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return std::int64_t(st.st_atim.tv_sec) * 1000000000 +
           std::int64_t(st.st_atim.tv_nsec);
}

ResultStore::Counters
readCountersFile(const std::string &path)
{
    ResultStore::Counters c;
    std::string text;
    if (!readFile(path, &text))
        return c;
    try {
        const JsonValue v = JsonValue::parse(text);
        c.hits = std::uint64_t(v.numberOr("hits", 0));
        c.misses = std::uint64_t(v.numberOr("misses", 0));
        c.writes = std::uint64_t(v.numberOr("writes", 0));
        c.corrupt = std::uint64_t(v.numberOr("corrupt", 0));
    } catch (const std::exception &) {
        // unreadable counters are cosmetic; start from zero
    }
    return c;
}

struct GlobalStoreState
{
    std::mutex mu;
    std::shared_ptr<ResultStore> store;
    std::atomic<std::uint64_t> epoch{0};
};

GlobalStoreState &
globalState()
{
    static GlobalStoreState state;
    return state;
}

} // namespace

std::uint64_t
fnv1a64(const std::string &data, std::uint64_t seed)
{
    return fnv1a64Raw(data.data(), data.size(), seed);
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create store directory " + dir_ + ": " +
              ec.message());
}

ResultStore::~ResultStore()
{
    flushPersistentCounters();
}

std::string
ResultStore::fanoutName(const std::string &kind,
                        const std::string &key) const
{
    std::string blob;
    blob.reserve(kind.size() + 1 + key.size());
    blob.append(kind);
    blob.push_back('\0');
    blob.append(key);
    return hex16(fnv1a64(blob));
}

std::string
ResultStore::pathFor(const std::string &kind,
                     const std::string &key) const
{
    const std::string name = fanoutName(kind, key);
    return dir_ + "/" + name.substr(0, 2) + "/" + name.substr(2, 2) +
           "/" + name + kRecordSuffix;
}

std::optional<std::string>
ResultStore::load(const std::string &kind, const std::string &key)
{
    const std::string path = pathFor(kind, key);
    std::string bytes;
    if (!readFile(path, &bytes)) {
        countMiss();
        return std::nullopt;
    }
    std::string gotKind, gotKey, payload;
    if (!decodeRecord(bytes, &gotKind, &gotKey, &payload)) {
        // Torn or damaged record: clear it so the rewrite starts
        // from an empty slot instead of racing a broken file.
        std::error_code ec;
        fs::remove(path, ec);
        countCorrupt();
        countMiss();
        return std::nullopt;
    }
    if (gotKind != kind || gotKey != key) {
        // 64-bit hash collision: leave the resident record alone.
        countMiss();
        return std::nullopt;
    }
    // LRU bookkeeping for gc; explicit so it works on noatime mounts.
    struct timespec times[2];
    times[0].tv_sec = 0;
    times[0].tv_nsec = UTIME_NOW;  // atime
    times[1].tv_sec = 0;
    times[1].tv_nsec = UTIME_OMIT; // mtime untouched
    ::utimensat(AT_FDCWD, path.c_str(), times, 0);
    countHit();
    return payload;
}

void
ResultStore::put(const std::string &kind, const std::string &key,
                 const std::string &payload)
{
    const std::string path = pathFor(kind, key);
    ensureParentDir(path);
    const std::string record = encodeRecord(kind, key, payload);
    const std::uint64_t seq =
        tmpSeq_.fetch_add(1, std::memory_order_relaxed);
    if (!writeFileAtomic(path, record, seq)) {
        // A failed persist only costs a future re-simulation; the
        // current run already has its result in hand.
        warn("store: failed to write " + path);
        return;
    }
    countWrite();
}

std::vector<StoreScanEntry>
ResultStore::scan() const
{
    std::vector<StoreScanEntry> out;
    std::error_code ec;
    fs::recursive_directory_iterator it(dir_, ec), end;
    if (ec)
        return out;
    for (; it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec) || ec)
            continue;
        const fs::path p = it->path();
        if (!isRecordFile(p))
            continue;
        StoreScanEntry entry;
        entry.path = p.string();
        entry.fileBytes = std::uint64_t(fs::file_size(p, ec));
        if (ec)
            entry.fileBytes = 0;
        entry.atimeNs = fileAtimeNs(entry.path);
        std::string bytes;
        if (readFile(entry.path, &bytes)) {
            std::string kind, key, payload;
            if (decodeRecord(bytes, &kind, &key, &payload)) {
                entry.valid = true;
                entry.kind = kind;
                entry.payloadBytes = payload.size();
            }
        }
        out.push_back(std::move(entry));
    }
    return out;
}

StoreUsage
ResultStore::usage() const
{
    StoreUsage u;
    for (const StoreScanEntry &e : scan()) {
        ++u.entries;
        u.bytes += e.fileBytes;
    }
    return u;
}

StoreVerifyResult
ResultStore::verify(bool repair)
{
    StoreVerifyResult r;
    for (const StoreScanEntry &e : scan()) {
        ++r.checked;
        if (e.valid)
            continue;
        ++r.corrupt;
        r.corruptPaths.push_back(e.path);
        if (repair) {
            std::error_code ec;
            fs::remove(e.path, ec);
        }
    }
    std::sort(r.corruptPaths.begin(), r.corruptPaths.end());
    if (repair && r.corrupt > 0)
        bumpGeneration();
    return r;
}

StoreGcResult
ResultStore::gc(std::uint64_t maxBytes)
{
    StoreGcResult r;
    std::vector<StoreScanEntry> entries = scan();
    // Oldest access first; ties broken by path for determinism.
    std::sort(entries.begin(), entries.end(),
              [](const StoreScanEntry &a, const StoreScanEntry &b) {
                  if (a.atimeNs != b.atimeNs)
                      return a.atimeNs < b.atimeNs;
                  return a.path < b.path;
              });
    std::uint64_t total = 0;
    for (const StoreScanEntry &e : entries)
        total += e.fileBytes;
    for (const StoreScanEntry &e : entries) {
        if (total <= maxBytes)
            break;
        std::error_code ec;
        fs::remove(e.path, ec);
        if (ec)
            continue;
        total -= e.fileBytes;
        ++r.evicted;
        r.bytesEvicted += e.fileBytes;
    }
    r.bytesRemaining = total;
    if (r.evicted > 0)
        bumpGeneration();
    return r;
}

std::uint64_t
ResultStore::generation() const
{
    std::string text;
    if (!readFile(dir_ + "/" + kGenerationFile, &text))
        return 0;
    try {
        return std::stoull(text);
    } catch (const std::exception &) {
        return 0;
    }
}

void
ResultStore::bumpGeneration()
{
    const std::uint64_t next = generation() + 1;
    const std::uint64_t seq =
        tmpSeq_.fetch_add(1, std::memory_order_relaxed);
    if (!writeFileAtomic(dir_ + "/" + kGenerationFile,
                         std::to_string(next), seq))
        warn("store: failed to bump generation in " + dir_);
}

ResultStore::Counters
ResultStore::counters() const
{
    std::lock_guard<std::mutex> lock(countersMu_);
    return counters_;
}

ResultStore::Counters
ResultStore::cumulativeCounters() const
{
    Counters c = readCountersFile(dir_ + "/" + kCountersFile);
    const Counters s = counters();
    c.hits += s.hits;
    c.misses += s.misses;
    c.writes += s.writes;
    c.corrupt += s.corrupt;
    return c;
}

void
ResultStore::flushPersistentCounters()
{
    const Counters s = counters();
    if (s.hits == 0 && s.misses == 0 && s.writes == 0 &&
        s.corrupt == 0)
        return;
    // Read-add-rename; best effort, lost updates under concurrent
    // flushes only skew the cosmetic lifetime totals.
    const std::string path = dir_ + "/" + kCountersFile;
    Counters c = readCountersFile(path);
    c.hits += s.hits;
    c.misses += s.misses;
    c.writes += s.writes;
    c.corrupt += s.corrupt;
    JsonValue v = JsonValue::makeObject();
    v.set("hits", JsonValue::makeNumber(double(c.hits)));
    v.set("misses", JsonValue::makeNumber(double(c.misses)));
    v.set("writes", JsonValue::makeNumber(double(c.writes)));
    v.set("corrupt", JsonValue::makeNumber(double(c.corrupt)));
    const std::uint64_t seq =
        tmpSeq_.fetch_add(1, std::memory_order_relaxed);
    writeFileAtomic(path, v.dump(), seq);
    std::lock_guard<std::mutex> lock(countersMu_);
    counters_ = Counters{};
}

void
ResultStore::countHit()
{
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        ++counters_.hits;
    }
    MetricsRegistry::global().counter("store.hits").inc();
}

void
ResultStore::countMiss()
{
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        ++counters_.misses;
    }
    MetricsRegistry::global().counter("store.misses").inc();
}

void
ResultStore::countWrite()
{
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        ++counters_.writes;
    }
    MetricsRegistry::global().counter("store.writes").inc();
}

void
ResultStore::countCorrupt()
{
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        ++counters_.corrupt;
    }
    MetricsRegistry::global().counter("store.corrupt").inc();
}

void
ResultStore::setGlobal(const std::string &dir)
{
    GlobalStoreState &state = globalState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.epoch.fetch_add(1, std::memory_order_relaxed);
    if (dir.empty()) {
        state.store.reset();
        return;
    }
    state.store = std::make_shared<ResultStore>(dir);
}

std::shared_ptr<ResultStore>
ResultStore::global()
{
    GlobalStoreState &state = globalState();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.store;
}

std::uint64_t
ResultStore::globalEpoch()
{
    return globalState().epoch.load(std::memory_order_relaxed);
}

} // namespace nvmcache
