#include "store/codec.hh"

#include <stdexcept>

#include "util/wire.hh"

namespace nvmcache {

namespace {

constexpr std::uint32_t kSimStatsVersion = 1;

void
putDistribution(WireWriter &w, const DistributionSnapshot &d)
{
    w.putU64(d.count);
    w.putF64(d.sum);
    w.putF64(d.minimum);
    w.putF64(d.maximum);
    w.putF64(d.mean);
    w.putF64(d.m2);
    w.putU64(d.buckets.size());
    for (const auto &[bucket, n] : d.buckets) {
        w.putI64(bucket);
        w.putU64(n);
    }
}

DistributionSnapshot
getDistribution(WireReader &r)
{
    DistributionSnapshot d;
    d.count = r.getU64();
    d.sum = r.getF64();
    d.minimum = r.getF64();
    d.maximum = r.getF64();
    d.mean = r.getF64();
    d.m2 = r.getF64();
    const std::uint64_t buckets = r.getU64();
    for (std::uint64_t i = 0; i < buckets; ++i) {
        const std::int64_t bucket = r.getI64();
        const std::uint64_t n = r.getU64();
        d.buckets[int(bucket)] = n;
    }
    return d;
}

void
putSnapshot(WireWriter &w, const StatsSnapshot &snap)
{
    w.putU64(snap.entries.size());
    for (const auto &[path, value] : snap.entries) {
        w.putStr(path);
        w.putU8(std::uint8_t(value.kind));
        w.putF64(value.scalar);
        putDistribution(w, value.dist);
    }
}

StatsSnapshot
getSnapshot(WireReader &r)
{
    StatsSnapshot snap;
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string path = r.getStr();
        StatValue value;
        const std::uint8_t kind = r.getU8();
        if (kind > std::uint8_t(StatKind::Distribution))
            throw std::runtime_error("bad stat kind in payload");
        value.kind = StatKind(kind);
        value.scalar = r.getF64();
        value.dist = getDistribution(r);
        snap.entries.emplace(path, std::move(value));
    }
    return snap;
}

} // namespace

std::string
encodeSimStats(const SimStats &s)
{
    WireWriter w;
    w.putU32(kSimStatsVersion);
    w.putU64(s.instructions);
    w.putF64(s.cycles);
    w.putF64(s.seconds);

    w.putU64(s.llc.demandReads);
    w.putU64(s.llc.demandHits);
    w.putU64(s.llc.demandMisses);
    w.putU64(s.llc.fills);
    w.putU64(s.llc.writebacksIn);
    w.putU64(s.llc.dirtyEvictions);
    w.putU64(s.llc.writeBypasses);
    w.putU64(s.llc.readWaitCycles);
    w.putU64(s.llc.writeStallCycles);
    w.putF64(s.llc.hitEnergy);
    w.putF64(s.llc.missEnergy);
    w.putF64(s.llc.writeEnergy);

    w.putU64(s.dramReads);
    w.putU64(s.dramWrites);
    w.putU64(s.dramQueueCycles);
    w.putU64(s.l1Misses);
    w.putU64(s.l2Misses);

    w.putU64(s.coreCycles.size());
    for (double c : s.coreCycles)
        w.putF64(c);

    w.putF64(s.llcLeakageEnergy);
    w.putF64(s.llcDynamicEnergy);

    putSnapshot(w, s.detail);
    return w.take();
}

SimStats
decodeSimStats(const std::string &payload)
{
    WireReader r(payload);
    if (r.getU32() != kSimStatsVersion)
        throw std::runtime_error("unsupported SimStats payload version");
    SimStats s;
    s.instructions = r.getU64();
    s.cycles = r.getF64();
    s.seconds = r.getF64();

    s.llc.demandReads = r.getU64();
    s.llc.demandHits = r.getU64();
    s.llc.demandMisses = r.getU64();
    s.llc.fills = r.getU64();
    s.llc.writebacksIn = r.getU64();
    s.llc.dirtyEvictions = r.getU64();
    s.llc.writeBypasses = r.getU64();
    s.llc.readWaitCycles = r.getU64();
    s.llc.writeStallCycles = r.getU64();
    s.llc.hitEnergy = r.getF64();
    s.llc.missEnergy = r.getF64();
    s.llc.writeEnergy = r.getF64();

    s.dramReads = r.getU64();
    s.dramWrites = r.getU64();
    s.dramQueueCycles = r.getU64();
    s.l1Misses = r.getU64();
    s.l2Misses = r.getU64();

    const std::uint64_t cores = r.getU64();
    s.coreCycles.reserve(std::size_t(cores));
    for (std::uint64_t i = 0; i < cores; ++i)
        s.coreCycles.push_back(r.getF64());

    s.llcLeakageEnergy = r.getF64();
    s.llcDynamicEnergy = r.getF64();

    s.detail = getSnapshot(r);
    r.expectEnd();
    return s;
}

} // namespace nvmcache
