#include "core/study.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "workload/workload_registry.hh"

namespace nvmcache {

namespace {

/** One simulation to prefetch into the runner's memo. */
struct RunJob
{
    const BenchmarkSpec *spec = nullptr;
    const LlcModel *llc = nullptr;
    std::uint32_t threads = 0; ///< 0 = spec default
};

/**
 * Fan every job out across the runner's thread pool. Each run lands
 * in the runner's memo, so the study's subsequent (serial,
 * order-stable) assembly re-reads them without simulating anything:
 * results are bit-identical at any concurrency level.
 *
 * @p phase labels both the wall-clock timer ("phase.<phase>.fanout")
 * and the live progress line (one tick per completed job, including
 * memo-served ones).
 */
void
prefetchRuns(const ExperimentRunner &runner,
             const std::vector<RunJob> &jobs, const std::string &phase)
{
    PhaseTimer timer("phase." + phase + ".fanout");
    progressBegin(phase + " fan-out", jobs.size());
    parallelMap(runner.jobs(), jobs, [&](const RunJob &job) {
        runner.runOne(*job.spec, *job.llc, job.threads);
        progressTick();
        return 0;
    });
    progressEnd();
}

} // namespace

FigureStudy
runFigureStudy(CapacityMode mode, const ExperimentRunner &runner,
               double traceScale)
{
    return runFigureStudy(FigureConfig{mode, traceScale}, runner);
}

FigureStudy
runFigureStudy(const FigureConfig &cfg, const ExperimentRunner &runner)
{
    const CapacityMode mode = cfg.mode;
    if (cfg.traceScale <= 0.0 || cfg.traceScale > 1.0)
        fatal("runFigureStudy: traceScale must be in (0, 1]");

    // Scale every workload first so job specs are stable in memory.
    std::vector<BenchmarkSpec> specs = benchmarkSuite();
    for (BenchmarkSpec &spec : specs)
        spec.gen.totalAccesses = std::uint64_t(
            double(spec.gen.totalAccesses) * cfg.traceScale);

    // Phase 1: every (workload, technology) point is independent —
    // fan the whole figure out at once.
    const std::vector<LlcModel> &models = publishedLlcModels(mode);
    std::vector<RunJob> jobs;
    jobs.reserve(specs.size() * models.size());
    for (const BenchmarkSpec &spec : specs)
        for (const LlcModel &llc : models)
            jobs.push_back({&spec, &llc, 0});
    prefetchRuns(runner, jobs, "figure");

    // Phase 2: assemble in suite order from the memo. The serial
    // copy shares the memo but skips per-sweep pool spin-up, since
    // every run is already cached.
    PhaseTimer assemble_timer("phase.figure.assemble");
    ExperimentRunner assembler = runner;
    assembler.setJobs(1);
    FigureStudy study;
    study.mode = mode;
    for (const BenchmarkSpec &spec : specs) {
        TechSweep sweep = assembler.sweepTechs(spec, mode);
        if (spec.multiThreaded)
            study.multiThreaded.push_back(std::move(sweep));
        else
            study.singleThreaded.push_back(std::move(sweep));
    }
    return study;
}

const CoreSweepPoint &
CoreSweepStudy::at(const std::string &workload, const std::string &tech,
                   std::uint32_t cores) const
{
    for (const CoreSweepPoint &p : points)
        if (p.workload == workload && p.tech == tech &&
            p.cores == cores)
            return p;
    fatal("CoreSweepStudy: missing point (", workload, ", ", tech,
          ", ", cores, ")");
}

CoreSweepStudy
runCoreSweep(const std::vector<std::string> &workloads,
             const std::vector<std::string> &techs,
             const std::vector<std::uint32_t> &coreCounts,
             const ExperimentRunner &runner)
{
    CoreSweepConfig cfg;
    cfg.workloads = workloads;
    cfg.techs = techs;
    cfg.coreCounts = coreCounts;
    return runCoreSweep(cfg, runner);
}

CoreSweepStudy
runCoreSweep(const CoreSweepConfig &cfg, const ExperimentRunner &runner)
{
    const std::vector<std::string> &workloads = cfg.workloads;
    const std::vector<std::string> &techs = cfg.techs;
    const std::vector<std::uint32_t> &coreCounts = cfg.coreCounts;

    CoreSweepStudy study;
    study.workloads = workloads;
    study.techs = techs;
    study.coreCounts = coreCounts;

    const CapacityMode mode = CapacityMode::FixedArea;
    const LlcModel &sram = publishedLlcModel("SRAM", mode);

    // Phase 1: fan out the baselines and every sweep point. The
    // (SRAM, 1 core) baseline and a requested SRAM/1-core point are
    // the same simulation; the memo runs it once.
    std::vector<RunJob> jobs;
    for (const std::string &wname : workloads) {
        const BenchmarkSpec &spec = benchmark(wname);
        jobs.push_back({&spec, &sram, 1});
        for (const std::string &tname : techs) {
            const LlcModel &llc = publishedLlcModel(tname, mode);
            for (std::uint32_t cores : coreCounts) {
                if (cores > 1 && !spec.multiThreaded)
                    continue;
                jobs.push_back({&spec, &llc, cores});
            }
        }
    }
    prefetchRuns(runner, jobs, "coreSweep");

    // Phase 2: deterministic assembly from the memo.
    PhaseTimer assemble_timer("phase.coreSweep.assemble");
    for (const std::string &wname : workloads) {
        const BenchmarkSpec &spec = benchmark(wname);

        // Baseline: single-core SRAM doing the same total work.
        SimStats base = runner.runOne(spec, sram, 1);

        for (const std::string &tname : techs) {
            const LlcModel &llc = publishedLlcModel(tname, mode);
            for (std::uint32_t cores : coreCounts) {
                if (cores > 1 && !spec.multiThreaded)
                    continue;
                CoreSweepPoint p;
                p.workload = wname;
                p.tech = tname;
                p.cores = cores;
                p.stats = runner.runOne(spec, llc, cores);
                p.speedupVsBaseline =
                    base.seconds / p.stats.seconds;
                p.normEnergy =
                    p.stats.llcEnergy() / base.llcEnergy();
                study.points.push_back(std::move(p));
            }
        }
    }
    return study;
}

CorrelationStudy
runCorrelationStudy(bool aiOnly, const std::vector<std::string> &techs,
                    const std::vector<CapacityMode> &modes,
                    const ExperimentRunner &runner, double traceScale)
{
    CorrelationConfig cfg;
    cfg.aiOnly = aiOnly;
    cfg.techs = techs;
    cfg.modes = modes;
    cfg.traceScale = traceScale;
    return runCorrelationStudy(cfg, runner);
}

namespace {

/**
 * Shared correlation engine: characterize every spec (excluding its
 * warm-up accesses), fan the (mode, workload, technology) grid out,
 * then correlate the configured outcome columns against the measured
 * features. Serves both the Table V/VI correlation study and the
 * server suite.
 */
CorrelationStudy
runCorrelationCore(const std::vector<BenchmarkSpec> &specs,
                   const std::vector<std::string> &techs,
                   const std::vector<CapacityMode> &modes,
                   OutcomeKind outcomes, const ExperimentRunner &runner)
{
    CorrelationStudy study;

    // Feature pass (PRISM): one characterization per workload, each
    // independent of the rest. Characterizing from the runner's trace
    // store means the simulation pass below replays the same recorded
    // traces instead of regenerating every workload. Warm-up accesses
    // still simulate (they fill the cache) but are excluded from the
    // features — they are not the workload being characterized.
    {
        PhaseTimer timer("phase.correlation.characterize");
        progressBegin("correlation characterize", specs.size());
        study.features = parallelMap(
            runner.jobs(), specs, [&](const BenchmarkSpec &spec) {
                auto trace = runner.recordedTrace(
                    spec.gen, spec.defaultThreads);
                WorkloadFeatures features = characterize(
                    *trace, 10,
                    warmupSplit(spec.gen, spec.defaultThreads));
                progressTick();
                return features;
            });
        progressEnd();
    }
    for (const BenchmarkSpec &spec : specs)
        study.workloads.push_back(spec.name);

    // Simulation pass, phase 1: every (mode, workload, technology)
    // point at once.
    std::vector<RunJob> jobs;
    for (CapacityMode mode : modes)
        for (const BenchmarkSpec &spec : specs)
            for (const LlcModel &llc : publishedLlcModels(mode))
                jobs.push_back({&spec, &llc, 0});
    prefetchRuns(runner, jobs, "correlation");

    // Phase 2: one tech sweep per (workload, mode), shared across all
    // studied technologies, assembled from the memo (the serial copy
    // shares it).
    PhaseTimer assemble_timer("phase.correlation.assemble");
    ExperimentRunner assembler = runner;
    assembler.setJobs(1);
    for (CapacityMode mode : modes) {
        std::vector<TechSweep> sweeps;
        sweeps.reserve(specs.size());
        for (const BenchmarkSpec &spec : specs)
            sweeps.push_back(assembler.sweepTechs(spec, mode));

        for (const std::string &tech : techs) {
            TechCorrelation tc;
            tc.tech = tech;
            tc.mode = mode;
            tc.outcomes = outcomes;
            tc.dataset.featureNames = WorkloadFeatures::featureNames();
            for (std::size_t i = 0; i < specs.size(); ++i) {
                const RunResult &r = sweeps[i].byTech(tech);
                tc.dataset.workloads.push_back(specs[i].name);
                tc.dataset.features.push_back(
                    study.features[i].featureVector());
                switch (tc.outcomes) {
                  case OutcomeKind::Normalized:
                    tc.dataset.energy.push_back(r.normEnergy);
                    tc.dataset.speedup.push_back(r.speedup);
                    break;
                  case OutcomeKind::Absolute:
                    tc.dataset.energy.push_back(r.stats.llcEnergy());
                    tc.dataset.speedup.push_back(r.stats.seconds);
                    break;
                  case OutcomeKind::EnergyDelay:
                    tc.dataset.energy.push_back(r.stats.ed2p());
                    tc.dataset.speedup.push_back(r.stats.seconds);
                    break;
                }
            }
            tc.result = correlateFeatures(tc.dataset);
            study.perTech.push_back(std::move(tc));
        }
    }
    return study;
}

/** Resolve one registry spec string and apply the trace scale. */
BenchmarkSpec
scaledSpec(const std::string &workload, double traceScale)
{
    BenchmarkSpec spec = WorkloadRegistry::global().resolve(workload);
    spec.gen.totalAccesses = std::uint64_t(
        double(spec.gen.totalAccesses) * traceScale);
    return spec;
}

} // namespace

CorrelationStudy
runCorrelationStudy(const CorrelationConfig &cfg,
                    const ExperimentRunner &runner)
{
    if (cfg.traceScale <= 0.0 || cfg.traceScale > 1.0)
        fatal("runCorrelationStudy: traceScale must be in (0, 1]");

    std::vector<BenchmarkSpec> specs;
    if (!cfg.workloads.empty()) {
        for (const std::string &workload : cfg.workloads)
            specs.push_back(scaledSpec(workload, cfg.traceScale));
    } else {
        for (const BenchmarkSpec *spec :
             cfg.aiOnly ? aiBenchmarks() : characterizedBenchmarks()) {
            specs.push_back(*spec);
            specs.back().gen.totalAccesses = std::uint64_t(
                double(spec->gen.totalAccesses) * cfg.traceScale);
        }
    }
    return runCorrelationCore(specs, cfg.techs, cfg.modes,
                              cfg.aiOnly ? OutcomeKind::Normalized
                                         : OutcomeKind::Absolute,
                              runner);
}

std::vector<std::string>
serverSuiteWorkloads(const ServerSuiteConfig &cfg)
{
    std::string overrides;
    if (!cfg.keys.empty())
        overrides += ",keys=" + cfg.keys;
    if (!cfg.ops.empty())
        overrides += ",ops=" + cfg.ops;
    if (!cfg.warm.empty())
        overrides += ",warm=" + cfg.warm;

    std::vector<std::string> out;
    for (std::uint32_t t : cfg.tenantCounts)
        for (double rr : cfg.readRatios)
            for (double sk : cfg.skews) {
                std::string w;
                if (t <= 1)
                    w = "kv:readRatio=" + std::to_string(rr) +
                        ",skew=" + std::to_string(sk);
                else
                    w = "tenants:n=" + std::to_string(t) +
                        ",readRatios=" + std::to_string(rr) +
                        ",skews=" + std::to_string(sk);
                out.push_back(w + overrides);
            }
    return out;
}

CorrelationStudy
runServerSuite(const ServerSuiteConfig &cfg,
               const ExperimentRunner &runner)
{
    if (cfg.tenantCounts.empty() || cfg.readRatios.empty() ||
        cfg.skews.empty())
        fatal("runServerSuite: empty grid axis");

    std::vector<BenchmarkSpec> specs;
    for (const std::string &workload : serverSuiteWorkloads(cfg))
        specs.push_back(scaledSpec(workload, 1.0));

    // Every published model of the mode (Table III order): the suite's
    // question is whether the features predict ED^2P across ALL of
    // them, not just the paper's three spotlight technologies.
    std::vector<std::string> techs;
    for (const LlcModel &llc : publishedLlcModels(cfg.mode))
        techs.push_back(llc.name);

    return runCorrelationCore(specs, techs, {cfg.mode},
                              OutcomeKind::EnergyDelay, runner);
}

CompareResult
runCompare(const CompareConfig &cfg, const ExperimentRunner &runner)
{
    if (cfg.traceScale <= 0.0 || cfg.traceScale > 1.0)
        fatal("runCompare: traceScale must be in (0, 1]");

    BenchmarkSpec spec = benchmark(cfg.workload);
    spec.gen.totalAccesses = std::uint64_t(
        double(spec.gen.totalAccesses) * cfg.traceScale);
    const LlcModel &llc = publishedLlcModel(cfg.tech, cfg.mode);
    const LlcModel &sram = publishedLlcModel("SRAM", cfg.mode);

    CompareResult r;
    r.config = cfg;
    {
        PhaseTimer timer("phase.compare.nvm");
        r.nvm = runner.runOne(spec, llc, cfg.threads);
    }
    {
        PhaseTimer timer("phase.compare.sram");
        r.sram = runner.runOne(spec, sram, cfg.threads);
    }
    r.speedup = r.sram.seconds / r.nvm.seconds;
    r.normEnergy = r.nvm.llcEnergy() / r.sram.llcEnergy();
    r.normEd2p = r.nvm.ed2p() / r.sram.ed2p();
    return r;
}

const ReliabilityPoint &
ReliabilityStudy::at(const std::string &tech, double berScale,
                     double wearLevelingFactor) const
{
    for (const ReliabilityPoint &p : points)
        if (p.tech == tech && p.berScale == berScale &&
            p.wearLevelingFactor == wearLevelingFactor)
            return p;
    fatal("ReliabilityStudy: missing point (", tech, ", ", berScale,
          ", ", wearLevelingFactor, ")");
}

namespace {

/** Counter/gauge value at @p path in a detail report; 0 if absent. */
double
detailValue(const StatsSnapshot &snap, const std::string &path)
{
    auto it = snap.entries.find(path);
    return it == snap.entries.end() ? 0.0 : it->second.scalar;
}

} // namespace

ReliabilityStudy
runReliabilityStudy(const ReliabilityConfig &cfg, RunnerPool *pool)
{
    if (cfg.traceScale <= 0.0 || cfg.traceScale > 1.0)
        fatal("runReliabilityStudy: traceScale must be in (0, 1]");
    if (cfg.berScales.empty() || cfg.wearLevelingFactors.empty())
        fatal("runReliabilityStudy: empty sweep axis");

    BenchmarkSpec spec = benchmark(cfg.workload);
    spec.gen.totalAccesses =
        std::uint64_t(double(spec.gen.totalAccesses) * cfg.traceScale);

    ReliabilityStudy study;
    study.config = cfg;

    PhaseTimer timer("phase.reliability");
    progressBegin("reliability sweep", cfg.berScales.size() *
                                           cfg.wearLevelingFactors.size());
    for (double ber : cfg.berScales) {
        for (double wl : cfg.wearLevelingFactors) {
            // One runner per grid point: the fault knobs live in the
            // runner's base SystemConfig, so sharing a memo across
            // points would conflate different fault settings. A
            // caller-owned pool keys runners the same way and keeps
            // them warm across repeated sweeps.
            SystemConfig sys;
            sys.llc.faults.enabled = true;
            sys.llc.faults.berScale = ber;
            sys.llc.faults.wearLevelingFactor = wl;
            sys.llc.faults.wearScale = cfg.wearScale;
            sys.llc.faults.maxWriteRetries = cfg.maxWriteRetries;
            ExperimentRunner runner =
                pool ? pool->acquire(sys) : ExperimentRunner(sys);
            runner.setJobs(cfg.jobs);
            runner.setShards(cfg.shards);

            TechSweep sweep =
                runner.sweepTechs(spec, cfg.mode, cfg.threads);
            for (RunResult &r : sweep.results) {
                ReliabilityPoint p;
                p.tech = r.tech;
                p.klass = r.klass;
                p.berScale = ber;
                p.wearLevelingFactor = wl;
                p.speedup = r.speedup;
                p.normEnergy = r.normEnergy;

                const StatsSnapshot &d = r.stats.detail;
                const std::string f = "sim.llc.faults.";
                p.writeRetries = std::uint64_t(
                    detailValue(d, f + "writeRetries"));
                p.writeScrubs = std::uint64_t(
                    detailValue(d, f + "writeScrubs"));
                p.readScrubs = std::uint64_t(
                    detailValue(d, f + "readScrubs"));
                p.uncorrectable = std::uint64_t(
                    detailValue(d, f + "uncorrectable"));
                p.retiredLines = std::uint64_t(
                    detailValue(d, f + "retiredLines"));
                const double frac =
                    detailValue(d, f + "effectiveCapacityFraction");
                p.effectiveCapacityFraction = frac > 0.0 ? frac : 1.0;

                // Close the loop with the closed-form endurance
                // model: project lifetime from this run's observed
                // write traffic and measured hottest-line imbalance.
                const LlcModel &model =
                    publishedLlcModel(r.tech, cfg.mode);
                LifetimeInputs in;
                in.llcWrites = r.stats.llc.fills +
                               r.stats.llc.writebacksIn -
                               r.stats.llc.writeBypasses;
                in.seconds = r.stats.seconds;
                in.cacheLines =
                    model.capacityBytes / sys.llc.blockBytes;
                const double mean = double(in.llcWrites) /
                                    double(in.cacheLines);
                const double hottest =
                    detailValue(d, "sim.llc.maxLineWrites");
                in.writeImbalance =
                    mean > 0.0 ? std::max(1.0, hottest / mean) : 1.0;
                p.lifetime = estimateLifetime(p.klass, in, wl);

                p.stats = std::move(r.stats);
                study.points.push_back(std::move(p));
            }
            progressTick();
        }
    }
    progressEnd();
    return study;
}

StatsSnapshot
aggregateSimStats(const FigureStudy &study)
{
    StatsSnapshot total;
    for (const std::vector<TechSweep> *group :
         {&study.singleThreaded, &study.multiThreaded})
        for (const TechSweep &sweep : *group)
            for (const RunResult &r : sweep.results)
                total.mergeSum(r.stats.detail);
    return total;
}

StatsSnapshot
aggregateSimStats(const CoreSweepStudy &study)
{
    StatsSnapshot total;
    for (const CoreSweepPoint &p : study.points)
        total.mergeSum(p.stats.detail);
    return total;
}

StatsSnapshot
aggregateSimStats(const ReliabilityStudy &study)
{
    StatsSnapshot total;
    for (const ReliabilityPoint &p : study.points)
        total.mergeSum(p.stats.detail);
    return total;
}

} // namespace nvmcache
