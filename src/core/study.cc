#include "core/study.hh"

#include "util/logging.hh"

namespace nvmcache {

FigureStudy
runFigureStudy(CapacityMode mode, const ExperimentRunner &runner,
               double traceScale)
{
    if (traceScale <= 0.0 || traceScale > 1.0)
        fatal("runFigureStudy: traceScale must be in (0, 1]");
    FigureStudy study;
    study.mode = mode;
    for (BenchmarkSpec spec : benchmarkSuite()) {
        spec.gen.totalAccesses = std::uint64_t(
            double(spec.gen.totalAccesses) * traceScale);
        TechSweep sweep = runner.sweepTechs(spec, mode);
        if (spec.multiThreaded)
            study.multiThreaded.push_back(std::move(sweep));
        else
            study.singleThreaded.push_back(std::move(sweep));
    }
    return study;
}

const CoreSweepPoint &
CoreSweepStudy::at(const std::string &workload, const std::string &tech,
                   std::uint32_t cores) const
{
    for (const CoreSweepPoint &p : points)
        if (p.workload == workload && p.tech == tech &&
            p.cores == cores)
            return p;
    fatal("CoreSweepStudy: missing point (", workload, ", ", tech,
          ", ", cores, ")");
}

CoreSweepStudy
runCoreSweep(const std::vector<std::string> &workloads,
             const std::vector<std::string> &techs,
             const std::vector<std::uint32_t> &coreCounts,
             const ExperimentRunner &runner)
{
    CoreSweepStudy study;
    study.workloads = workloads;
    study.techs = techs;
    study.coreCounts = coreCounts;

    const CapacityMode mode = CapacityMode::FixedArea;

    for (const std::string &wname : workloads) {
        const BenchmarkSpec &spec = benchmark(wname);

        // Baseline: single-core SRAM doing the same total work.
        const LlcModel &sram = publishedLlcModel("SRAM", mode);
        SimStats base = runner.runOne(spec, sram, 1);

        for (const std::string &tname : techs) {
            const LlcModel &llc = publishedLlcModel(tname, mode);
            for (std::uint32_t cores : coreCounts) {
                if (cores > 1 && !spec.multiThreaded)
                    continue;
                CoreSweepPoint p;
                p.workload = wname;
                p.tech = tname;
                p.cores = cores;
                p.stats = runner.runOne(spec, llc, cores);
                p.speedupVsBaseline =
                    base.seconds / p.stats.seconds;
                p.normEnergy =
                    p.stats.llcEnergy() / base.llcEnergy();
                study.points.push_back(std::move(p));
            }
        }
    }
    return study;
}

CorrelationStudy
runCorrelationStudy(bool aiOnly, const std::vector<std::string> &techs,
                    const std::vector<CapacityMode> &modes,
                    const ExperimentRunner &runner, double traceScale)
{
    if (traceScale <= 0.0 || traceScale > 1.0)
        fatal("runCorrelationStudy: traceScale must be in (0, 1]");
    CorrelationStudy study;

    std::vector<BenchmarkSpec> specs;
    for (const BenchmarkSpec *spec :
         aiOnly ? aiBenchmarks() : characterizedBenchmarks()) {
        specs.push_back(*spec);
        specs.back().gen.totalAccesses = std::uint64_t(
            double(spec->gen.totalAccesses) * traceScale);
    }

    // Feature pass (PRISM): one characterization per workload.
    for (const BenchmarkSpec &spec : specs) {
        auto traces = buildTraces(spec);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        study.workloads.push_back(spec.name);
        study.features.push_back(characterize(ptrs));
    }

    // Simulation pass: one tech sweep per (workload, mode), shared
    // across all studied technologies.
    for (CapacityMode mode : modes) {
        std::vector<TechSweep> sweeps;
        sweeps.reserve(specs.size());
        for (const BenchmarkSpec &spec : specs)
            sweeps.push_back(runner.sweepTechs(spec, mode));

        for (const std::string &tech : techs) {
            TechCorrelation tc;
            tc.tech = tech;
            tc.mode = mode;
            tc.outcomes = aiOnly ? OutcomeKind::Normalized
                                 : OutcomeKind::Absolute;
            tc.dataset.featureNames = WorkloadFeatures::featureNames();
            for (std::size_t i = 0; i < specs.size(); ++i) {
                const RunResult &r = sweeps[i].byTech(tech);
                tc.dataset.workloads.push_back(specs[i].name);
                tc.dataset.features.push_back(
                    study.features[i].featureVector());
                if (tc.outcomes == OutcomeKind::Normalized) {
                    tc.dataset.energy.push_back(r.normEnergy);
                    tc.dataset.speedup.push_back(r.speedup);
                } else {
                    tc.dataset.energy.push_back(
                        r.stats.llcEnergy());
                    tc.dataset.speedup.push_back(r.stats.seconds);
                }
            }
            tc.result = correlateFeatures(tc.dataset);
            study.perTech.push_back(std::move(tc));
        }
    }
    return study;
}

} // namespace nvmcache
