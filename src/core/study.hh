/**
 * @file
 * High-level studies: each function regenerates the data behind one
 * of the paper's figures/sections. The bench binaries and examples
 * are thin presentation layers over these.
 */

#ifndef NVMCACHE_CORE_STUDY_HH
#define NVMCACHE_CORE_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "correlate/framework.hh"
#include "nvm/endurance.hh"
#include "prism/metrics.hh"

namespace nvmcache {

/** Figures 1 and 2: all workloads x all technologies for one mode. */
struct FigureStudy
{
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::vector<TechSweep> singleThreaded; ///< Fig a
    std::vector<TechSweep> multiThreaded;  ///< Fig b
};

/**
 * Figure study configuration. traceScale is the fraction of each
 * workload's configured access count to simulate (1.0 = full length;
 * bench --quick uses 0.25). Statistics converge by ~0.25 for
 * everything except the leakage-dominated energy tails.
 */
struct FigureConfig
{
    CapacityMode mode = CapacityMode::FixedCapacity;
    double traceScale = 1.0;
};

FigureStudy runFigureStudy(const FigureConfig &cfg,
                           const ExperimentRunner &runner);

/**
 * @deprecated Positional wrapper kept so existing bench binaries
 * compile unchanged; prefer the FigureConfig overload.
 */
FigureStudy runFigureStudy(CapacityMode mode,
                           const ExperimentRunner &runner,
                           double traceScale = 1.0);

/** One point of the §V-C core sweep. */
struct CoreSweepPoint
{
    std::string workload;
    std::string tech;
    std::uint32_t cores = 1;
    SimStats stats;
    /** T(1-core SRAM) / T(this): speedup over the paper's baseline. */
    double speedupVsBaseline = 1.0;
    /** E_llc(this) / E_llc(1-core SRAM). */
    double normEnergy = 1.0;
};

struct CoreSweepStudy
{
    std::vector<std::string> workloads;
    std::vector<std::string> techs;
    std::vector<std::uint32_t> coreCounts;
    std::vector<CoreSweepPoint> points;

    const CoreSweepPoint &at(const std::string &workload,
                             const std::string &tech,
                             std::uint32_t cores) const;
};

/**
 * Core-sweep configuration; the defaults reproduce the paper's §V-C
 * grid (the five NPB kernels over the technologies its discussion
 * revolves around, 1 -> 32 cores).
 */
struct CoreSweepConfig
{
    std::vector<std::string> workloads{"ft", "cg", "mg", "sp", "lu"};
    std::vector<std::string> techs{"Umeki",    "Jan",   "Xue",
                                   "Hayakawa", "Zhang", "SRAM"};
    std::vector<std::uint32_t> coreCounts{1, 2, 4, 8, 16, 32};
};

/**
 * §V-C: multi-core sensitivity, fixed-area models, baseline is the
 * single-core SRAM system running the same total work.
 */
CoreSweepStudy runCoreSweep(const CoreSweepConfig &cfg,
                            const ExperimentRunner &runner);

/**
 * @deprecated Positional wrapper kept so existing bench binaries
 * compile unchanged; prefer the CoreSweepConfig overload.
 */
CoreSweepStudy runCoreSweep(const std::vector<std::string> &workloads,
                            const std::vector<std::string> &techs,
                            const std::vector<std::uint32_t> &coreCounts,
                            const ExperimentRunner &runner);

/** Which outcomes the correlation study feeds the framework. */
enum class OutcomeKind
{
    /**
     * Normalized energy (E/E_sram) and speedup — the paper's Fig 4
     * AI-specialized analysis.
     */
    Normalized,
    /**
     * Absolute LLC energy [J] and execution time [s] — the paper's
     * general-purpose analysis ("LLC energy and system execution
     * time is most highly correlated with total reads/writes").
     */
    Absolute,
    /**
     * Absolute ED^2P [J*s^2] and execution time [s] — the server
     * suite's headline metric (do the Table VI features still predict
     * energy-delay on server traffic?).
     */
    EnergyDelay
};

/** §VI / Fig 4: feature correlation for one technology and mode. */
struct TechCorrelation
{
    std::string tech;
    CapacityMode mode = CapacityMode::FixedCapacity;
    OutcomeKind outcomes = OutcomeKind::Normalized;
    CorrelationDataset dataset;
    CorrelationResult result;
};

struct CorrelationStudy
{
    /** Workload features, one row per studied workload. */
    std::vector<std::string> workloads;
    std::vector<WorkloadFeatures> features;
    std::vector<TechCorrelation> perTech;
};

/**
 * Correlation-framework configuration. aiOnly=true reproduces Fig 4
 * (the 3 cpu2017 AI workloads, normalized outcomes); false reproduces
 * the general-purpose analysis over all 16 characterized workloads
 * (absolute energy/time outcomes, as in the paper's §VI discussion).
 * The default technologies are the paper's (Jan, Xue, Hayakawa).
 */
struct CorrelationConfig
{
    bool aiOnly = false;
    std::vector<std::string> techs{"Jan", "Xue", "Hayakawa"};
    std::vector<CapacityMode> modes{CapacityMode::FixedCapacity,
                                    CapacityMode::FixedArea};
    double traceScale = 1.0;

    /**
     * Explicit workload list: registry spec strings (Table V names or
     * parameterized families like "kv:skew=1.2"), resolved through
     * WorkloadRegistry::global(). Non-empty overrides the
     * aiOnly-driven selection; outcome kind still follows aiOnly.
     */
    std::vector<std::string> workloads;
};

/** Run the Fig 3 framework. */
CorrelationStudy runCorrelationStudy(const CorrelationConfig &cfg,
                                     const ExperimentRunner &runner);

/**
 * @deprecated Positional wrapper kept so existing bench binaries
 * compile unchanged; prefer the CorrelationConfig overload.
 */
CorrelationStudy runCorrelationStudy(
    bool aiOnly, const std::vector<std::string> &techs,
    const std::vector<CapacityMode> &modes,
    const ExperimentRunner &runner, double traceScale = 1.0);

/**
 * Canned server-traffic grid (the "modern use case behavior" probe):
 * kv and tenants points over read-ratio x skew x tenant-count, each
 * measured-characterized (warm-up excluded) and simulated across ALL
 * published models of the mode, with the correlation framework run on
 * absolute ED^2P outcomes. tenantCounts entries <= 1 emit `kv:`
 * points; larger entries emit `tenants:n=<t>` points.
 */
struct ServerSuiteConfig
{
    std::vector<std::uint32_t> tenantCounts{1, 4};
    std::vector<double> readRatios{0.95, 0.5};
    std::vector<double> skews{0.7, 0.99};
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::string keys; ///< Count override ("32K"); "" = family default
    std::string ops;  ///< Count override ("120K"); "" = family default
    std::string warm; ///< warm-up override ("0.1"); "" = default
};

/** The grid's registry spec strings, in deterministic grid order. */
std::vector<std::string>
serverSuiteWorkloads(const ServerSuiteConfig &cfg);

/**
 * Run the server suite: a correlation study (measured features vs.
 * ED^2P, OutcomeKind::EnergyDelay) over serverSuiteWorkloads() and
 * every published technology of cfg.mode.
 */
CorrelationStudy runServerSuite(const ServerSuiteConfig &cfg,
                                const ExperimentRunner &runner);

/**
 * One-workload, one-technology comparison against the SRAM baseline
 * (the `nvmcache simulate` / `compare` study): both runs share the
 * runner's memo and trace stores.
 */
struct CompareConfig
{
    std::string workload = "lbm";
    std::string tech = "Oh";
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t threads = 0; ///< 0 = workload default
    double traceScale = 1.0;
};

struct CompareResult
{
    CompareConfig config;
    SimStats nvm;
    SimStats sram;
    double speedup = 1.0;    ///< T_sram / T_nvm
    double normEnergy = 1.0; ///< E_llc,nvm / E_llc,sram
    double normEd2p = 1.0;
};

CompareResult runCompare(const CompareConfig &cfg,
                         const ExperimentRunner &runner);

/**
 * Reliability sweep configuration: one workload, every published
 * technology, a grid of (BER scale x wear-leveling factor) fault
 * settings (sim/faults.hh).
 */
struct ReliabilityConfig
{
    std::string workload = "lbm"; ///< the suite's write-heaviest
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t threads = 0; ///< 0 = workload default
    unsigned jobs = 0;         ///< 0 = defaultJobs()
    unsigned shards = 0;       ///< LLC set shards/run; 0 = default
    double traceScale = 1.0;
    std::vector<double> berScales{1.0, 8.0, 64.0};
    std::vector<double> wearLevelingFactors{1.0, 0.5, 0.125};
    /**
     * Wear units per array-write attempt. The class endurance bounds
     * (>= 1e7 writes/line) are unreachable within one simulation, so
     * retirement studies accelerate aging; the default keeps real
     * time (no in-sim retirements, lifetime from the closed form).
     */
    double wearScale = 1.0;
    std::uint32_t maxWriteRetries = 3;
};

/** One (technology, BER scale, wear-leveling) reliability point. */
struct ReliabilityPoint
{
    std::string tech;
    NvmClass klass = NvmClass::SRAM;
    double berScale = 1.0;
    double wearLevelingFactor = 1.0;

    SimStats stats;

    // Fault-layer outcomes (from the run's "sim.llc.faults.*" detail).
    std::uint64_t writeRetries = 0;
    std::uint64_t writeScrubs = 0;
    std::uint64_t readScrubs = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t retiredLines = 0;
    double effectiveCapacityFraction = 1.0;

    double speedup = 1.0;    ///< vs same-grid-point SRAM
    double normEnergy = 1.0; ///< LLC energy vs same-grid-point SRAM

    /** Closed-form endurance projection at this wear-leveling level. */
    LifetimeEstimate lifetime;
};

struct ReliabilityStudy
{
    ReliabilityConfig config;
    /** Grid-major: berScales x wearLevelingFactors x Table III order. */
    std::vector<ReliabilityPoint> points;

    const ReliabilityPoint &at(const std::string &tech, double berScale,
                               double wearLevelingFactor) const;
};

/**
 * Sweep the fault-injection grid over every published technology
 * (plus the SRAM control, whose raw error rates are zero). Each grid
 * point uses an ExperimentRunner whose base system carries that
 * point's FaultConfig, so memoization never mixes fault settings; all
 * statistics are bit-identical at any `jobs` level.
 *
 * @param pool  optional long-lived runner pool (the batch service's):
 *        when given, each grid point's runner is drawn from it keyed
 *        by fault config, so repeated sweeps reuse warm memo caches
 *        and trace stores. nullptr builds ephemeral per-point runners
 *        (the historical behavior); results are identical either way.
 */
ReliabilityStudy runReliabilityStudy(const ReliabilityConfig &cfg,
                                     RunnerPool *pool = nullptr);

/**
 * Accumulate every run's "sim.*" detail report into one study-level
 * report (counters add, distributions merge). Runs are folded in
 * deterministic study order, so the aggregate is identical at any
 * experiment-engine concurrency.
 */
StatsSnapshot aggregateSimStats(const FigureStudy &study);
StatsSnapshot aggregateSimStats(const CoreSweepStudy &study);
StatsSnapshot aggregateSimStats(const ReliabilityStudy &study);

} // namespace nvmcache

#endif // NVMCACHE_CORE_STUDY_HH
