/**
 * @file
 * Experiment orchestration: run (workload x LLC technology) sweeps on
 * the system simulator and normalize every result against the SRAM
 * baseline, exactly as the paper's figures report them:
 *
 *   speedup   = T_sram / T_nvm          (higher is better)
 *   energy    = E_llc,nvm / E_llc,sram  (lower is better)
 *   ED^2P     = (E * T^2)_nvm / (E * T^2)_sram
 *
 * The runner is a parallel, memoizing engine: independent simulations
 * fan out across a thread pool (util/parallel.hh) and every completed
 * run is cached by its exact inputs (generator configuration, LLC
 * model, thread count), so a study that needs the same (workload,
 * mode, cores) SRAM baseline for ten technologies simulates it once.
 * Simulations are deterministic, so memoized and fresh results are
 * bit-identical and the concurrency level never changes any output.
 */

#ifndef NVMCACHE_CORE_EXPERIMENT_HH
#define NVMCACHE_CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nvsim/published.hh"
#include "sim/system.hh"
#include "workload/recorded_trace.hh"
#include "workload/suite.hh"

namespace nvmcache {

class ResultStore;

/** One normalized (workload, technology) data point. */
struct RunResult
{
    std::string workload;
    std::string tech;    ///< citation name ("Oh", ..., "SRAM")
    NvmClass klass = NvmClass::SRAM;
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t cores = 4;

    SimStats stats;

    double speedup = 1.0;    ///< vs SRAM at same workload/mode/cores
    double normEnergy = 1.0; ///< LLC energy vs SRAM
    double normEd2p = 1.0;   ///< ED^2P vs SRAM
};

/** First model of @p klass in @p models; nullptr when absent. */
const LlcModel *findByClass(const std::vector<LlcModel> &models,
                            NvmClass klass);

/** Results of sweeping every technology for one workload. */
struct TechSweep
{
    std::string workload;
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t cores = 4;
    std::vector<RunResult> results; ///< Table III order, SRAM last

    const RunResult &byTech(const std::string &tech) const;
    /** First result of @p klass (e.g. the SRAM baseline). */
    const RunResult &byClass(NvmClass klass) const;
};

/** Execution counters of one ExperimentRunner (memo effectiveness). */
struct RunnerStats
{
    std::uint64_t simulations = 0; ///< actual System::run executions
    std::uint64_t memoHits = 0;    ///< runOne() calls served from cache
    /**
     * SRAM-class entries of `simulations`. A study that is memoizing
     * correctly simulates each (workload, cores) baseline exactly
     * once, so after e.g. runFigureStudy this equals the workload
     * count.
     */
    std::uint64_t baselineSimulations = 0;

    /**
     * Trace-store counters: builds counts RecordedTrace
     * materializations (exactly one per distinct (generator, thread
     * count) pair for the runner's lifetime), hits counts requests
     * served from the store, bytes is the packed bytes resident.
     */
    std::uint64_t traceBuilds = 0;
    std::uint64_t traceHits = 0;
    std::uint64_t traceBytes = 0;

    /**
     * Private-level store counters, one layer above the trace store:
     * builds counts PrivateTrace materializations (exactly one per
     * distinct (generator, thread count, CoreParams)), hits counts
     * requests served from the store, bytes is the packed bytes
     * resident.
     */
    std::uint64_t privateBuilds = 0;
    std::uint64_t privateHits = 0;
    std::uint64_t privateBytes = 0;

    /**
     * Persistent-store counters (zero when no --store-dir is
     * configured): diskHits counts runs and trace recordings served
     * from the on-disk store instead of simulated/recorded — they are
     * deliberately NOT counted in `simulations`/`traceBuilds` —
     * diskWrites counts records persisted after a miss.
     */
    std::uint64_t diskHits = 0;
    std::uint64_t diskWrites = 0;
};

class ExperimentRunner
{
  public:
    /** @param base  System template; LLC model/cores set per run. */
    explicit ExperimentRunner(SystemConfig base = SystemConfig());

    /**
     * Simulate one workload on one LLC model, or return the memoized
     * stats of an identical earlier run. Thread-safe.
     * @param threads 0 = spec default; multi-threaded workloads use
     *        one core per thread.
     */
    SimStats runOne(const BenchmarkSpec &spec, const LlcModel &llc,
                    std::uint32_t threads = 0) const;

    /**
     * Materialize (or fetch from the runner's exactly-once trace
     * store) the recorded trace for @p gen split across @p threads.
     * The first caller of a key records it; concurrent callers block
     * on the build instead of generating again. The returned trace is
     * immutable and shared read-only by every simulation,
     * characterization, and caller of this method. Thread-safe.
     */
    std::shared_ptr<const RecordedTrace>
    recordedTrace(const GeneratorConfig &gen,
                  std::uint32_t threads) const;

    /**
     * Materialize (or fetch) the private-level (L1/L2) outcome
     * recording for @p gen split across @p threads under the
     * runner's CoreParams, built from the recorded trace with the
     * same exactly-once discipline. Every model of a tech sweep
     * replays this recording instead of re-simulating the private
     * caches. Thread-safe.
     */
    std::shared_ptr<const PrivateTrace>
    privateTrace(const GeneratorConfig &gen,
                 std::uint32_t threads) const;

    /**
     * Sweep all published Table III technologies (plus the SRAM
     * baseline) for one workload and normalize. Individual runs fan
     * out over jobs() threads; results are assembled in Table III
     * order regardless of completion order.
     */
    TechSweep sweepTechs(const BenchmarkSpec &spec, CapacityMode mode,
                         std::uint32_t threads = 0) const;

    const SystemConfig &baseConfig() const { return base_; }

    /**
     * Concurrency for sweeps/studies run through this runner.
     * Defaults to defaultJobs() (NVMCACHE_JOBS env var, else the
     * hardware thread count); @p jobs 0 restores that default, 1
     * forces fully serial in-thread execution.
     */
    void setJobs(unsigned jobs);
    unsigned jobs() const { return jobs_; }

    /**
     * LLC set shards of each simulation run (intra-run threading of
     * the batch-replay kernel; see SystemConfig::shards). Defaults
     * to defaultShards() (NVMCACHE_SHARDS env var, else 1); @p shards
     * 0 restores that default. Results are bit-identical at any
     * value, so the knob never enters the memo key.
     */
    void setShards(unsigned shards);
    unsigned shards() const { return shards_; }

    /**
     * Force the legacy per-access replay scheduler instead of the
     * batch-decode kernel (SystemConfig::batchReplay). Both paths
     * are bit-identical; this exists so benchmarks and tests can
     * measure one against the other. Never enters the memo key.
     */
    void setBatchReplay(bool on) { batchReplay_ = on; }

    /** Counters since construction (shared by copies). */
    RunnerStats runnerStats() const;

  private:
    struct Memo;

    SimStats simulateUncached(const BenchmarkSpec &spec,
                              const LlcModel &llc,
                              std::uint32_t threads) const;

    SystemConfig base_;
    unsigned jobs_;
    unsigned shards_;
    bool batchReplay_ = true;
    std::shared_ptr<Memo> memo_; ///< shared so copies reuse runs

    /**
     * Persistent tier between the in-memory memo and simulation,
     * captured from ResultStore::global() at construction (null =
     * persistence off). Disk keys prefix the memo key with
     * diskBaseKey_ — the non-fault base SystemConfig identity — since
     * on disk, unlike in this runner's memo, records from differently
     * configured processes share one namespace.
     */
    std::shared_ptr<ResultStore> store_;
    std::string diskBaseKey_;
};

/**
 * Stable byte-key of a FaultConfig: every knob that distinguishes one
 * fault-injection setting from another, in declaration order. This is
 * the RunnerPool index — runs under different fault settings must
 * never share a memoized result (see runKey()).
 */
std::string faultConfigKey(const FaultConfig &faults);

/**
 * Keyed pool of long-lived ExperimentRunners, one per fault-config
 * key. The batch service (and any other long-lived host) acquires
 * runners from one pool so memo caches, RecordedTrace/PrivateTrace
 * stores, and estimator results persist across requests: the second
 * request for a study hits warm stores instead of re-simulating.
 *
 * acquire() returns a *copy* of the pooled runner. Copies share the
 * memo and trace stores (the expensive state) but carry their own
 * jobs knob, so concurrent studies can set different concurrency
 * levels without racing. The pool assumes every caller uses the same
 * non-fault base SystemConfig (true of all studies today, which vary
 * only the fault knobs); the first acquire() of a key captures its
 * full base config.
 */
class RunnerPool
{
  public:
    RunnerPool() = default;
    RunnerPool(const RunnerPool &) = delete;
    RunnerPool &operator=(const RunnerPool &) = delete;

    /** Runner sharing the pooled state for @p base's fault config. */
    ExperimentRunner acquire(const SystemConfig &base = SystemConfig());

    /** Number of distinct fault-config runners materialized. */
    std::size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, ExperimentRunner> runners_;
};

} // namespace nvmcache

#endif // NVMCACHE_CORE_EXPERIMENT_HH
