/**
 * @file
 * Experiment orchestration: run (workload x LLC technology) sweeps on
 * the system simulator and normalize every result against the SRAM
 * baseline, exactly as the paper's figures report them:
 *
 *   speedup   = T_sram / T_nvm          (higher is better)
 *   energy    = E_llc,nvm / E_llc,sram  (lower is better)
 *   ED^2P     = (E * T^2)_nvm / (E * T^2)_sram
 */

#ifndef NVMCACHE_CORE_EXPERIMENT_HH
#define NVMCACHE_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "nvsim/published.hh"
#include "sim/system.hh"
#include "workload/suite.hh"

namespace nvmcache {

/** One normalized (workload, technology) data point. */
struct RunResult
{
    std::string workload;
    std::string tech;    ///< citation name ("Oh", ..., "SRAM")
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t cores = 4;

    SimStats stats;

    double speedup = 1.0;    ///< vs SRAM at same workload/mode/cores
    double normEnergy = 1.0; ///< LLC energy vs SRAM
    double normEd2p = 1.0;   ///< ED^2P vs SRAM
};

/** Results of sweeping every technology for one workload. */
struct TechSweep
{
    std::string workload;
    CapacityMode mode = CapacityMode::FixedCapacity;
    std::uint32_t cores = 4;
    std::vector<RunResult> results; ///< Table III order, SRAM last

    const RunResult &byTech(const std::string &tech) const;
};

class ExperimentRunner
{
  public:
    /** @param base  System template; LLC model/cores set per run. */
    explicit ExperimentRunner(SystemConfig base = SystemConfig());

    /**
     * Simulate one workload on one LLC model.
     * @param threads 0 = spec default; multi-threaded workloads use
     *        one core per thread.
     */
    SimStats runOne(const BenchmarkSpec &spec, const LlcModel &llc,
                    std::uint32_t threads = 0) const;

    /**
     * Sweep all published Table III technologies (plus the SRAM
     * baseline) for one workload and normalize.
     */
    TechSweep sweepTechs(const BenchmarkSpec &spec, CapacityMode mode,
                         std::uint32_t threads = 0) const;

    const SystemConfig &baseConfig() const { return base_; }

  private:
    SystemConfig base_;
};

} // namespace nvmcache

#endif // NVMCACHE_CORE_EXPERIMENT_HH
