#include "core/study_registry.hh"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "nvm/cell.hh"
#include "util/args.hh"
#include "util/trace_events.hh"
#include "workload/suite.hh"
#include "workload/workload_registry.hh"

namespace nvmcache {

namespace {

/** Canonical (shortest round-trip) numeric text, e.g. "0.25", "1". */
std::string
numText(double v)
{
    return JsonValue::makeNumber(v).dump();
}

std::string
joinNums(const std::vector<double> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? "," : "") + numText(v[i]);
    return out;
}

std::string
joinU32s(const std::vector<std::uint32_t> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? "," : "") + std::to_string(v[i]);
    return out;
}

std::string
joinStrs(const std::vector<std::string> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? "," : "") + v[i];
    return out;
}

/**
 * Workload spec strings carry commas inside their parameter sections
 * ("kv:skew=1.2,keys=64M"), so lists of them are ';'-separated.
 * Every entry is resolved through the workload registry immediately:
 * a bad kind or parameter throws here, at parse time, instead of
 * aborting mid-study.
 */
std::vector<std::string>
parseWorkloadList(const std::string &value)
{
    std::vector<std::string> out;
    std::istringstream in(value);
    std::string tok;
    while (std::getline(in, tok, ';'))
        if (!tok.empty()) {
            WorkloadRegistry::global().resolve(tok);
            out.push_back(tok);
        }
    return out;
}

std::string
joinWorkloadList(const std::vector<std::string> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i)
        out += (i ? ";" : "") + v[i];
    return out;
}

bool
parseBoolParam(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    throw std::runtime_error("bad value '" + value + "' for " + key +
                             " (expected 0/1/true/false)");
}

CapacityMode
parseModeParam(const std::string &key, const std::string &value)
{
    if (value == "fixed-capacity")
        return CapacityMode::FixedCapacity;
    if (value == "fixed-area")
        return CapacityMode::FixedArea;
    throw std::runtime_error(
        "bad value '" + value + "' for " + key +
        " (expected fixed-capacity or fixed-area)");
}

std::vector<CapacityMode>
parseModeList(const std::string &key, const std::string &value)
{
    std::vector<CapacityMode> modes;
    for (const std::string &tok : ArgParser::parseStrList(value))
        modes.push_back(parseModeParam(key, tok));
    return modes;
}

std::vector<std::uint32_t>
parseU32List(const std::string &key, const std::string &value)
{
    std::vector<std::uint32_t> out;
    for (const std::string &tok : ArgParser::parseStrList(value))
        out.push_back(ArgParser::parseU32(key, tok));
    return out;
}

/**
 * One compare-study sub-request — the worker-shard unit of every
 * sweep-shaped study. Its two runs (the technology and the SRAM
 * baseline at the same thread count) land in the shared persistent
 * store under the same keys the parent study will look up.
 */
StudyRequest
compareReq(const std::string &workload, const std::string &tech,
           CapacityMode mode, std::uint32_t threads, double scale)
{
    StudyRequest req;
    req.kind = "compare";
    req.params = {{"workload", workload},
                  {"tech", tech},
                  {"mode", toString(mode)},
                  {"threads", std::to_string(threads)},
                  {"scale", numText(scale)}};
    return req;
}

// --- deterministic JSON builders ------------------------------------

/** The per-run numbers every study result carries. */
JsonValue
simStatsToJson(const SimStats &s)
{
    JsonValue v = JsonValue::makeObject();
    v.set("seconds", JsonValue::makeNumber(s.seconds));
    v.set("instructions", JsonValue::makeNumber(double(s.instructions)));
    v.set("llcEnergy", JsonValue::makeNumber(s.llcEnergy()));
    v.set("llcLeakageEnergy", JsonValue::makeNumber(s.llcLeakageEnergy));
    v.set("llcDynamicEnergy", JsonValue::makeNumber(s.llcDynamicEnergy));
    v.set("llcMpki", JsonValue::makeNumber(s.llcMpki()));
    v.set("dramReads", JsonValue::makeNumber(double(s.dramReads)));
    v.set("dramWrites", JsonValue::makeNumber(double(s.dramWrites)));
    return v;
}

JsonValue
runResultToJson(const RunResult &r)
{
    JsonValue v = JsonValue::makeObject();
    v.set("tech", JsonValue::makeString(r.tech));
    v.set("class", JsonValue::makeString(toString(r.klass)));
    v.set("speedup", JsonValue::makeNumber(r.speedup));
    v.set("normEnergy", JsonValue::makeNumber(r.normEnergy));
    v.set("normEd2p", JsonValue::makeNumber(r.normEd2p));
    v.set("stats", simStatsToJson(r.stats));
    return v;
}

JsonValue
sweepToJson(const TechSweep &sweep)
{
    JsonValue v = JsonValue::makeObject();
    v.set("workload", JsonValue::makeString(sweep.workload));
    v.set("cores", JsonValue::makeNumber(double(sweep.cores)));
    JsonValue results = JsonValue::makeArray();
    for (const RunResult &r : sweep.results)
        results.push(runResultToJson(r));
    v.set("results", std::move(results));
    return v;
}

JsonValue
numArray(const std::vector<double> &v)
{
    JsonValue a = JsonValue::makeArray();
    for (double x : v)
        a.push(JsonValue::makeNumber(x));
    return a;
}

JsonValue
strArray(const std::vector<std::string> &v)
{
    JsonValue a = JsonValue::makeArray();
    for (const std::string &s : v)
        a.push(JsonValue::makeString(s));
    return a;
}

const char *
outcomeName(OutcomeKind k)
{
    switch (k) {
      case OutcomeKind::Normalized:
        return "normalized";
      case OutcomeKind::Absolute:
        return "absolute";
      case OutcomeKind::EnergyDelay:
        return "energy-delay";
    }
    return "?";
}

/**
 * The correlation-shaped report body shared by the correlation study
 * and the server suite: features per workload, then per-technology
 * outcome columns and their feature correlations.
 */
void
fillCorrelationReport(JsonValue &result, const CorrelationStudy &study)
{
    result.set("workloads", strArray(study.workloads));
    JsonValue features = JsonValue::makeArray();
    for (const WorkloadFeatures &f : study.features)
        features.push(numArray(f.featureVector()));
    result.set("features", std::move(features));
    result.set("featureNames",
               strArray(WorkloadFeatures::featureNames()));
    JsonValue perTech = JsonValue::makeArray();
    for (const TechCorrelation &tc : study.perTech) {
        JsonValue v = JsonValue::makeObject();
        v.set("tech", JsonValue::makeString(tc.tech));
        v.set("mode", JsonValue::makeString(toString(tc.mode)));
        v.set("outcomes",
              JsonValue::makeString(outcomeName(tc.outcomes)));
        v.set("energy", numArray(tc.dataset.energy));
        v.set("speedup", numArray(tc.dataset.speedup));
        v.set("energyCorr", numArray(tc.result.energyCorr));
        v.set("speedupCorr", numArray(tc.result.speedupCorr));
        perTech.push(std::move(v));
    }
    result.set("perTech", std::move(perTech));
}

// --- the five built-in studies --------------------------------------

class FigureStudyDef : public Study
{
  public:
    std::string name() const override { return "figure"; }

    std::string
    description() const override
    {
        return "Figures 1/2: all workloads x all Table III "
               "technologies for one capacity mode";
    }

    ParamMap
    defaultConfig() const override
    {
        return {{"mode", toString(cfg_.mode)},
                {"scale", numText(cfg_.traceScale)}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        study_ = runFigureStudy(cfg_, runner);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        std::vector<StudyRequest> reqs;
        for (const BenchmarkSpec &spec : benchmarkSuite())
            for (const LlcModel &llc : publishedLlcModels(cfg_.mode)) {
                if (llc.klass == NvmClass::SRAM)
                    continue; // every compare carries the baseline
                reqs.push_back(compareReq(spec.name, llc.name,
                                          cfg_.mode, 0,
                                          cfg_.traceScale));
            }
        return reqs;
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("mode",
                       JsonValue::makeString(toString(study_.mode)));
        rep.result.set("scale",
                       JsonValue::makeNumber(cfg_.traceScale));
        JsonValue st = JsonValue::makeArray();
        for (const TechSweep &sweep : study_.singleThreaded)
            st.push(sweepToJson(sweep));
        rep.result.set("singleThreaded", std::move(st));
        JsonValue mt = JsonValue::makeArray();
        for (const TechSweep &sweep : study_.multiThreaded)
            mt.push(sweepToJson(sweep));
        rep.result.set("multiThreaded", std::move(mt));
        rep.stats = aggregateSimStats(study_);
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "mode")
            cfg_.mode = parseModeParam(key, value);
        else if (key == "scale")
            cfg_.traceScale = ArgParser::parseNum(key, value);
    }

  private:
    FigureConfig cfg_;
    FigureStudy study_;
};

class CoreSweepStudyDef : public Study
{
  public:
    std::string name() const override { return "core-sweep"; }

    std::string
    description() const override
    {
        return "SV-C sensitivity: fixed-area LLCs over core counts, "
               "baseline 1-core SRAM";
    }

    ParamMap
    defaultConfig() const override
    {
        return {{"workloads", joinStrs(cfg_.workloads)},
                {"techs", joinStrs(cfg_.techs)},
                {"cores", joinU32s(cfg_.coreCounts)}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        study_ = runCoreSweep(cfg_, runner);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        // Mirrors runCoreSweep's grid: fixed-area models, the
        // single-core SRAM baseline per workload, and the
        // multi-threading guard.
        const CapacityMode mode = CapacityMode::FixedArea;
        std::vector<StudyRequest> reqs;
        for (const std::string &wname : cfg_.workloads) {
            const BenchmarkSpec &spec = benchmark(wname);
            reqs.push_back(compareReq(wname, "SRAM", mode, 1, 1.0));
            for (const std::string &tname : cfg_.techs)
                for (std::uint32_t cores : cfg_.coreCounts) {
                    if (cores > 1 && !spec.multiThreaded)
                        continue;
                    reqs.push_back(
                        compareReq(wname, tname, mode, cores, 1.0));
                }
        }
        return reqs;
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("workloads", strArray(study_.workloads));
        rep.result.set("techs", strArray(study_.techs));
        JsonValue points = JsonValue::makeArray();
        for (const CoreSweepPoint &p : study_.points) {
            JsonValue v = JsonValue::makeObject();
            v.set("workload", JsonValue::makeString(p.workload));
            v.set("tech", JsonValue::makeString(p.tech));
            v.set("cores", JsonValue::makeNumber(double(p.cores)));
            v.set("speedupVsBaseline",
                  JsonValue::makeNumber(p.speedupVsBaseline));
            v.set("normEnergy", JsonValue::makeNumber(p.normEnergy));
            v.set("stats", simStatsToJson(p.stats));
            points.push(std::move(v));
        }
        rep.result.set("points", std::move(points));
        rep.stats = aggregateSimStats(study_);
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "workloads")
            cfg_.workloads = ArgParser::parseStrList(value);
        else if (key == "techs")
            cfg_.techs = ArgParser::parseStrList(value);
        else if (key == "cores")
            cfg_.coreCounts = parseU32List(key, value);
    }

  private:
    CoreSweepConfig cfg_;
    CoreSweepStudy study_;
};

class CorrelationStudyDef : public Study
{
  public:
    std::string name() const override { return "correlation"; }

    std::string
    description() const override
    {
        return "Fig 3/4 framework: feature-vs-outcome correlation "
               "per technology and mode";
    }

    ParamMap
    defaultConfig() const override
    {
        std::vector<std::string> modes;
        for (CapacityMode m : cfg_.modes)
            modes.push_back(toString(m));
        return {{"ai", cfg_.aiOnly ? "1" : "0"},
                {"techs", joinStrs(cfg_.techs)},
                {"modes", joinStrs(modes)},
                {"scale", numText(cfg_.traceScale)},
                {"workloads", joinWorkloadList(cfg_.workloads)}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        study_ = runCorrelationStudy(cfg_, runner);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        // The characterization pass is cheap and runs off the same
        // recorded traces the simulations warm, so sharding only the
        // simulation grid covers everything expensive.
        std::vector<std::string> names = cfg_.workloads;
        if (names.empty())
            for (const BenchmarkSpec *spec :
                 cfg_.aiOnly ? aiBenchmarks()
                             : characterizedBenchmarks())
                names.push_back(spec->name);
        std::vector<StudyRequest> reqs;
        for (CapacityMode mode : cfg_.modes)
            for (const std::string &wname : names)
                for (const LlcModel &llc : publishedLlcModels(mode)) {
                    if (llc.klass == NvmClass::SRAM)
                        continue;
                    reqs.push_back(compareReq(wname, llc.name, mode,
                                              0, cfg_.traceScale));
                }
        return reqs;
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("ai", JsonValue::makeBool(cfg_.aiOnly));
        fillCorrelationReport(rep.result, study_);
        // Correlation datasets keep no raw SimStats, so the stats
        // report is intentionally empty (engine metrics still flow
        // through the global registry).
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "ai")
            cfg_.aiOnly = parseBoolParam(key, value);
        else if (key == "techs")
            cfg_.techs = ArgParser::parseStrList(value);
        else if (key == "modes")
            cfg_.modes = parseModeList(key, value);
        else if (key == "scale")
            cfg_.traceScale = ArgParser::parseNum(key, value);
        else if (key == "workloads")
            cfg_.workloads = parseWorkloadList(value);
    }

  private:
    CorrelationConfig cfg_;
    CorrelationStudy study_;
};

class ServerSuiteStudyDef : public Study
{
  public:
    std::string name() const override { return "server-suite"; }

    std::string
    description() const override
    {
        return "Canned server-traffic grid (kv/tenants over "
               "read-ratio x skew x tenant-count) correlated "
               "against ED^2P over all published models";
    }

    ParamMap
    defaultConfig() const override
    {
        return {{"tenants", joinU32s(cfg_.tenantCounts)},
                {"readRatios", joinNums(cfg_.readRatios)},
                {"skews", joinNums(cfg_.skews)},
                {"mode", toString(cfg_.mode)},
                {"keys", cfg_.keys},
                {"ops", cfg_.ops},
                {"warm", cfg_.warm}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        study_ = runServerSuite(cfg_, runner);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        std::vector<StudyRequest> reqs;
        for (const std::string &wname : serverSuiteWorkloads(cfg_))
            for (const LlcModel &llc : publishedLlcModels(cfg_.mode)) {
                if (llc.klass == NvmClass::SRAM)
                    continue; // every compare carries the baseline
                reqs.push_back(
                    compareReq(wname, llc.name, cfg_.mode, 0, 1.0));
            }
        return reqs;
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("mode",
                       JsonValue::makeString(toString(cfg_.mode)));
        fillCorrelationReport(rep.result, study_);
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "tenants")
            cfg_.tenantCounts = parseU32List(key, value);
        else if (key == "readRatios")
            cfg_.readRatios = ArgParser::parseNumList(key, value);
        else if (key == "skews")
            cfg_.skews = ArgParser::parseNumList(key, value);
        else if (key == "mode")
            cfg_.mode = parseModeParam(key, value);
        else if (key == "keys")
            cfg_.keys = value;
        else if (key == "ops")
            cfg_.ops = value;
        else if (key == "warm")
            cfg_.warm = value;
        // Catch bad grid values (negative skews, malformed counts)
        // now, with the daemon's parse-error path, not mid-run.
        for (const std::string &w : serverSuiteWorkloads(cfg_))
            WorkloadRegistry::global().resolve(w);
    }

  private:
    ServerSuiteConfig cfg_;
    CorrelationStudy study_;
};

class ReliabilityStudyDef : public Study
{
  public:
    std::string name() const override { return "reliability"; }

    std::string
    description() const override
    {
        return "Fault-injection sweep: BER x wear-leveling grid over "
               "every technology";
    }

    ParamMap
    defaultConfig() const override
    {
        return {{"workload", cfg_.workload},
                {"mode", toString(cfg_.mode)},
                {"threads", std::to_string(cfg_.threads)},
                {"scale", numText(cfg_.traceScale)},
                {"ber-scale", joinNums(cfg_.berScales)},
                {"wear-leveling", joinNums(cfg_.wearLevelingFactors)},
                {"wear-scale", numText(cfg_.wearScale)},
                {"max-retries", std::to_string(cfg_.maxWriteRetries)}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        // The reliability grid builds one runner per fault setting;
        // the shared pool (when hosted by the service) keeps each of
        // them warm across requests. Concurrency follows the
        // dispatching runner.
        cfg_.jobs = runner.jobs();
        cfg_.shards = runner.shards();
        study_ = runReliabilityStudy(cfg_, pool_);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        // One single-point reliability grid per (BER, wear-leveling)
        // setting: the fault knobs live in the runner's base config,
        // so the sub-request must be a reliability study itself, not
        // a compare.
        std::vector<StudyRequest> reqs;
        for (double ber : cfg_.berScales)
            for (double wl : cfg_.wearLevelingFactors) {
                StudyRequest req;
                req.kind = name();
                req.params = {
                    {"workload", cfg_.workload},
                    {"mode", toString(cfg_.mode)},
                    {"threads", std::to_string(cfg_.threads)},
                    {"scale", numText(cfg_.traceScale)},
                    {"ber-scale", numText(ber)},
                    {"wear-leveling", numText(wl)},
                    {"wear-scale", numText(cfg_.wearScale)},
                    {"max-retries",
                     std::to_string(cfg_.maxWriteRetries)}};
                reqs.push_back(std::move(req));
            }
        return reqs;
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("workload",
                       JsonValue::makeString(cfg_.workload));
        rep.result.set("mode",
                       JsonValue::makeString(toString(cfg_.mode)));
        JsonValue points = JsonValue::makeArray();
        for (const ReliabilityPoint &p : study_.points) {
            JsonValue v = JsonValue::makeObject();
            v.set("tech", JsonValue::makeString(p.tech));
            v.set("berScale", JsonValue::makeNumber(p.berScale));
            v.set("wearLeveling",
                  JsonValue::makeNumber(p.wearLevelingFactor));
            v.set("writeRetries",
                  JsonValue::makeNumber(double(p.writeRetries)));
            v.set("scrubs",
                  JsonValue::makeNumber(
                      double(p.writeScrubs + p.readScrubs)));
            v.set("uncorrectable",
                  JsonValue::makeNumber(double(p.uncorrectable)));
            v.set("retiredLines",
                  JsonValue::makeNumber(double(p.retiredLines)));
            v.set("effectiveCapacityFraction",
                  JsonValue::makeNumber(p.effectiveCapacityFraction));
            v.set("speedup", JsonValue::makeNumber(p.speedup));
            v.set("normEnergy", JsonValue::makeNumber(p.normEnergy));
            v.set("lifetimeYears",
                  JsonValue::makeNumber(p.lifetime.lifetimeYears));
            v.set("stats", simStatsToJson(p.stats));
            points.push(std::move(v));
        }
        rep.result.set("points", std::move(points));
        rep.stats = aggregateSimStats(study_);
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "workload") {
            // Resolve now: a bad spec string throws here, at parse
            // time, instead of aborting the process mid-study.
            WorkloadRegistry::global().resolve(value);
            cfg_.workload = value;
        } else if (key == "mode")
            cfg_.mode = parseModeParam(key, value);
        else if (key == "threads")
            cfg_.threads = ArgParser::parseU32(key, value);
        else if (key == "scale")
            cfg_.traceScale = ArgParser::parseNum(key, value);
        else if (key == "ber-scale")
            cfg_.berScales = ArgParser::parseNumList(key, value);
        else if (key == "wear-leveling")
            cfg_.wearLevelingFactors =
                ArgParser::parseNumList(key, value);
        else if (key == "wear-scale")
            cfg_.wearScale = ArgParser::parseNum(key, value);
        else if (key == "max-retries")
            cfg_.maxWriteRetries = ArgParser::parseU32(key, value);
    }

  private:
    ReliabilityConfig cfg_;
    ReliabilityStudy study_;
};

class CompareStudyDef : public Study
{
  public:
    std::string name() const override { return "compare"; }

    std::string
    description() const override
    {
        return "One workload on one technology vs the SRAM baseline "
               "(the `simulate` core)";
    }

    ParamMap
    defaultConfig() const override
    {
        return {{"workload", cfg_.workload},
                {"tech", cfg_.tech},
                {"mode", toString(cfg_.mode)},
                {"threads", std::to_string(cfg_.threads)},
                {"scale", numText(cfg_.traceScale)}};
    }

    void
    run(const ExperimentRunner &runner) override
    {
        result_ = runCompare(cfg_, runner);
    }

    std::vector<StudyRequest>
    shardRequests() const override
    {
        // A compare is already the shard unit; its singleton lets a
        // worker do the simulating while the front replays the
        // result from the warmed store.
        return {compareReq(cfg_.workload, cfg_.tech, cfg_.mode,
                           cfg_.threads, cfg_.traceScale)};
    }

    StudyReport
    report() const override
    {
        StudyReport rep;
        rep.result = JsonValue::makeObject();
        rep.result.set("study", JsonValue::makeString(name()));
        rep.result.set("workload",
                       JsonValue::makeString(cfg_.workload));
        rep.result.set("tech", JsonValue::makeString(cfg_.tech));
        rep.result.set("mode",
                       JsonValue::makeString(toString(cfg_.mode)));
        rep.result.set("speedup",
                       JsonValue::makeNumber(result_.speedup));
        rep.result.set("normEnergy",
                       JsonValue::makeNumber(result_.normEnergy));
        rep.result.set("normEd2p",
                       JsonValue::makeNumber(result_.normEd2p));
        rep.result.set("nvm", simStatsToJson(result_.nvm));
        rep.result.set("sram", simStatsToJson(result_.sram));
        rep.stats = result_.nvm.detail;
        rep.stats.mergeSum(
            result_.sram.detail.withPrefix("baseline"));
        return rep;
    }

  protected:
    void
    applyParam(const std::string &key,
               const std::string &value) override
    {
        if (key == "workload") {
            // Resolve now: a bad spec string throws here, at parse
            // time, instead of aborting the process mid-study.
            WorkloadRegistry::global().resolve(value);
            cfg_.workload = value;
        } else if (key == "tech")
            cfg_.tech = value;
        else if (key == "mode")
            cfg_.mode = parseModeParam(key, value);
        else if (key == "threads")
            cfg_.threads = ArgParser::parseU32(key, value);
        else if (key == "scale")
            cfg_.traceScale = ArgParser::parseNum(key, value);
    }

  private:
    CompareConfig cfg_;
    CompareResult result_;
};

} // namespace

std::string
StudyRequest::canonicalKey() const
{
    std::string key = kind;
    for (const auto &[k, v] : params) {
        key += '\0';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

JsonValue
StudyRequest::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("study", JsonValue::makeString(kind));
    JsonValue p = JsonValue::makeObject();
    for (const auto &[k, value] : params)
        p.set(k, JsonValue::makeString(value));
    v.set("params", std::move(p));
    return v;
}

StudyRequest
StudyRequest::fromJson(const JsonValue &v)
{
    StudyRequest req;
    req.kind = v.at("study").asString();
    if (const JsonValue *params = v.find("params")) {
        if (!params->isObject())
            throw std::runtime_error(
                "study request: 'params' must be an object");
        for (const auto &[key, value] : params->members) {
            // Accept numbers/bools too: clients writing {"scale":0.25}
            // mean the same thing as {"scale":"0.25"}.
            if (value.isString())
                req.params[key] = value.string;
            else if (value.isNumber() || value.isBool())
                req.params[key] = value.dump();
            else
                throw std::runtime_error(
                    "study request: parameter '" + key +
                    "' must be a string, number, or bool");
        }
    }
    return req;
}

std::vector<StudyRequest>
Study::shardRequests() const
{
    return {};
}

void
Study::parse(const ParamMap &params)
{
    const ParamMap defaults = defaultConfig();
    for (const auto &[key, value] : params) {
        if (!defaults.count(key)) {
            std::string valid;
            for (const auto &[k, v] : defaults)
                valid += (valid.empty() ? "" : ", ") + k;
            throw std::runtime_error("study '" + name() +
                                     "': unknown parameter '" + key +
                                     "' (valid: " + valid + ")");
        }
        applyParam(key, value);
    }
}

void
StudyRegistry::add(const std::string &name, Factory factory)
{
    factories_[name] = std::move(factory);
}

std::unique_ptr<Study>
StudyRegistry::create(const std::string &name) const
{
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::string valid;
        for (const auto &[k, f] : factories_)
            valid += (valid.empty() ? "" : ", ") + k;
        throw std::runtime_error("unknown study '" + name +
                                 "' (valid: " + valid + ")");
    }
    return it->second();
}

bool
StudyRegistry::contains(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
StudyRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

std::string
StudyRegistry::helpText() const
{
    std::string out;
    for (const auto &[name, factory] : factories_) {
        std::unique_ptr<Study> study = factory();
        out += "  " + name + "\n      " + study->description() + "\n";
        for (const auto &[key, value] : study->defaultConfig())
            out += "      " + key + "=" +
                   (value.empty() ? "\"\"" : value) + "\n";
    }
    return out;
}

const StudyRegistry &
StudyRegistry::global()
{
    static const StudyRegistry registry = [] {
        StudyRegistry r;
        r.add("figure",
              [] { return std::make_unique<FigureStudyDef>(); });
        r.add("core-sweep",
              [] { return std::make_unique<CoreSweepStudyDef>(); });
        r.add("correlation",
              [] { return std::make_unique<CorrelationStudyDef>(); });
        r.add("reliability",
              [] { return std::make_unique<ReliabilityStudyDef>(); });
        r.add("server-suite",
              [] { return std::make_unique<ServerSuiteStudyDef>(); });
        r.add("compare",
              [] { return std::make_unique<CompareStudyDef>(); });
        return r;
    }();
    return registry;
}

StudyReport
runStudy(Study &study, const StudyRunOptions &opts)
{
    RunnerPool local;
    RunnerPool *pool = opts.pool ? opts.pool : &local;
    study.setRunnerPool(pool);
    ExperimentRunner runner = pool->acquire();
    runner.setJobs(opts.jobs);
    runner.setShards(opts.shards);
    TraceScope scope(
        TraceContext::current().child("study/" + study.name()));
    {
        TraceSpan span("study.run", "study",
                       TraceContext::current().path);
        study.run(runner);
    }
    TraceSpan span("study.report", "study",
                   TraceContext::current().path + "/report");
    return study.report();
}

unsigned
extractShardsParam(ParamMap &params, unsigned fallback)
{
    const auto it = params.find("shards");
    if (it == params.end())
        return fallback;
    char *end = nullptr;
    const unsigned long n = std::strtoul(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        throw std::invalid_argument(
            "study parameter shards='" + it->second +
            "' is not a non-negative integer");
    params.erase(it);
    return unsigned(n);
}

StudyReport
runStudyRequest(const StudyRequest &req, const StudyRunOptions &opts)
{
    std::unique_ptr<Study> study =
        StudyRegistry::global().create(req.kind);

    // A request-level "shards" value overrides the dispatch default.
    StudyRunOptions effective = opts;
    ParamMap params = req.params;
    effective.shards = extractShardsParam(params, opts.shards);

    study->parse(params);
    return runStudy(*study, effective);
}

} // namespace nvmcache
