#include "core/experiment.hh"

#include "util/logging.hh"

namespace nvmcache {

const RunResult &
TechSweep::byTech(const std::string &tech) const
{
    for (const RunResult &r : results)
        if (r.tech == tech)
            return r;
    fatal("TechSweep: no result for technology '", tech, "'");
}

ExperimentRunner::ExperimentRunner(SystemConfig base)
    : base_(std::move(base))
{
}

SimStats
ExperimentRunner::runOne(const BenchmarkSpec &spec, const LlcModel &llc,
                         std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    SystemConfig cfg = base_;
    cfg.numCores = threads;

    auto traces = buildTraces(spec, threads);
    std::vector<TraceSource *> ptrs;
    ptrs.reserve(traces.size());
    for (auto &t : traces)
        ptrs.push_back(t.get());

    System system(cfg, llc);
    return system.run(ptrs);
}

TechSweep
ExperimentRunner::sweepTechs(const BenchmarkSpec &spec,
                             CapacityMode mode,
                             std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    TechSweep sweep;
    sweep.workload = spec.name;
    sweep.mode = mode;
    sweep.cores = threads;

    // SRAM baseline first (needed for normalization), reported last.
    const LlcModel &sram = publishedLlcModel("SRAM", mode);
    SimStats sram_stats = runOne(spec, sram, threads);

    for (const LlcModel &llc : publishedLlcModels(mode)) {
        RunResult r;
        r.workload = spec.name;
        r.tech = llc.name;
        r.mode = mode;
        r.cores = threads;
        r.stats = llc.name == "SRAM" ? sram_stats
                                     : runOne(spec, llc, threads);
        r.speedup = sram_stats.seconds / r.stats.seconds;
        r.normEnergy = r.stats.llcEnergy() / sram_stats.llcEnergy();
        r.normEd2p = r.stats.ed2p() / sram_stats.ed2p();
        sweep.results.push_back(std::move(r));
    }
    return sweep;
}

} // namespace nvmcache
