#include "core/experiment.hh"

#include <atomic>
#include <cstring>
#include <future>
#include <mutex>
#include <unordered_map>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"

namespace nvmcache {

namespace {

/** Append the raw bytes of a trivially-copyable value to a key. */
template <typename T>
void
appendBytes(std::string &key, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *p = reinterpret_cast<const char *>(&value);
    key.append(p, sizeof(T));
}

void
appendStream(std::string &key, const StreamConfig &sc)
{
    appendBytes(key, sc.kind);
    appendBytes(key, sc.weight);
    appendBytes(key, sc.regionBytes);
    appendBytes(key, sc.zipfSkew);
    appendBytes(key, sc.stride);
    appendBytes(key, sc.shared);
}

void
appendMix(std::string &key, const AccessMix &mix)
{
    appendBytes(key, mix.streams.size());
    for (const StreamConfig &sc : mix.streams)
        appendStream(key, sc);
}

/**
 * Exact identity of one simulation: every input that can change its
 * SimStats. The base SystemConfig is per-runner (the memo is too), so
 * it needs no representation here.
 */
std::string
runKey(const GeneratorConfig &gen, const LlcModel &llc,
       std::uint32_t threads)
{
    std::string key;
    key.reserve(256);
    appendBytes(key, threads);
    appendBytes(key, gen.totalAccesses);
    appendBytes(key, gen.loadFraction);
    appendBytes(key, gen.storeFraction);
    appendBytes(key, gen.meanGap);
    appendBytes(key, gen.seed);
    appendMix(key, gen.loads);
    appendMix(key, gen.stores);
    appendMix(key, gen.ifetches);
    key += llc.name;
    key += '\0';
    appendBytes(key, llc.klass);
    appendBytes(key, llc.capacityBytes);
    appendBytes(key, llc.area);
    appendBytes(key, llc.tagLatency);
    appendBytes(key, llc.readLatency);
    appendBytes(key, llc.writeLatencySet);
    appendBytes(key, llc.writeLatencyReset);
    appendBytes(key, llc.eHit);
    appendBytes(key, llc.eMiss);
    appendBytes(key, llc.eWrite);
    appendBytes(key, llc.leakage);
    return key;
}

} // namespace

/**
 * Run cache with exactly-once semantics: the first caller of a key
 * owns the simulation, concurrent callers of the same key block on
 * its future instead of simulating again.
 *
 * Counters are kept per-memo (so RunnerStats stays an exact view of
 * one runner and its copies) and mirrored into the process-wide
 * registry under "runner.memo.*" so structured run reports capture
 * them; snapshot diffs recover exact per-study deltas there.
 */
struct ExperimentRunner::Memo
{
    struct Entry
    {
        std::promise<SimStats> promise;
        std::shared_future<SimStats> future{promise.get_future()};
    };

    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> runs;
    std::atomic<std::uint64_t> simulations{0};
    std::atomic<std::uint64_t> memoHits{0};
    std::atomic<std::uint64_t> baselineSimulations{0};

    Counter &gSimulations =
        MetricsRegistry::global().counter("runner.memo.simulations");
    Counter &gMemoHits =
        MetricsRegistry::global().counter("runner.memo.hits");
    Counter &gBaselines = MetricsRegistry::global().counter(
        "runner.memo.baselineSimulations");
};

const RunResult &
TechSweep::byTech(const std::string &tech) const
{
    for (const RunResult &r : results)
        if (r.tech == tech)
            return r;
    fatal("TechSweep: no result for technology '", tech, "'");
}

ExperimentRunner::ExperimentRunner(SystemConfig base)
    : base_(std::move(base)), jobs_(defaultJobs()),
      memo_(std::make_shared<Memo>())
{
}

void
ExperimentRunner::setJobs(unsigned jobs)
{
    jobs_ = jobs == 0 ? defaultJobs() : jobs;
    MetricsRegistry::global().gauge("runner.jobs").set(double(jobs_));
}

RunnerStats
ExperimentRunner::runnerStats() const
{
    RunnerStats s;
    s.simulations = memo_->simulations.load();
    s.memoHits = memo_->memoHits.load();
    s.baselineSimulations = memo_->baselineSimulations.load();
    return s;
}

SimStats
ExperimentRunner::simulateUncached(const BenchmarkSpec &spec,
                                   const LlcModel &llc,
                                   std::uint32_t threads) const
{
    SystemConfig cfg = base_;
    cfg.numCores = threads;

    auto traces = buildTraces(spec, threads);
    std::vector<TraceSource *> ptrs;
    ptrs.reserve(traces.size());
    for (auto &t : traces)
        ptrs.push_back(t.get());

    System system(cfg, llc);
    return system.run(ptrs);
}

SimStats
ExperimentRunner::runOne(const BenchmarkSpec &spec, const LlcModel &llc,
                         std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    const std::string key = runKey(spec.gen, llc, threads);
    std::shared_ptr<Memo::Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(memo_->mu);
        auto [it, inserted] = memo_->runs.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Memo::Entry>();
            owner = true;
        }
        entry = it->second;
    }

    if (owner) {
        memo_->simulations.fetch_add(1, std::memory_order_relaxed);
        memo_->gSimulations.inc();
        if (llc.klass == NvmClass::SRAM) {
            memo_->baselineSimulations.fetch_add(
                1, std::memory_order_relaxed);
            memo_->gBaselines.inc();
        }
        PhaseTimer timer("runner.simulateSeconds");
        entry->promise.set_value(
            simulateUncached(spec, llc, threads));
    } else {
        memo_->memoHits.fetch_add(1, std::memory_order_relaxed);
        memo_->gMemoHits.inc();
    }
    return entry->future.get();
}

TechSweep
ExperimentRunner::sweepTechs(const BenchmarkSpec &spec,
                             CapacityMode mode,
                             std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    TechSweep sweep;
    sweep.workload = spec.name;
    sweep.mode = mode;
    sweep.cores = threads;

    // Fan the eleven independent simulations out; the memo makes any
    // repeats (notably the SRAM baseline across studies) free.
    const std::vector<LlcModel> &models = publishedLlcModels(mode);
    std::vector<SimStats> stats =
        parallelMap(jobs_, models, [&](const LlcModel &llc) {
            return runOne(spec, llc, threads);
        });

    const SimStats *found = nullptr;
    for (std::size_t i = 0; i < models.size(); ++i)
        if (models[i].klass == NvmClass::SRAM)
            found = &stats[i];
    if (!found)
        panic("published model list has no SRAM baseline");
    const SimStats sram_stats = *found; // keep valid across the moves

    for (std::size_t i = 0; i < models.size(); ++i) {
        RunResult r;
        r.workload = spec.name;
        r.tech = models[i].name;
        r.mode = mode;
        r.cores = threads;
        r.stats = std::move(stats[i]);
        r.speedup = sram_stats.seconds / r.stats.seconds;
        r.normEnergy = r.stats.llcEnergy() / sram_stats.llcEnergy();
        r.normEd2p = r.stats.ed2p() / sram_stats.ed2p();
        sweep.results.push_back(std::move(r));
    }
    return sweep;
}

} // namespace nvmcache
