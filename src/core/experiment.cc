#include "core/experiment.hh"

#include <atomic>
#include <cstring>
#include <future>
#include <mutex>
#include <unordered_map>

#include "store/codec.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

/** Append the raw bytes of a trivially-copyable value to a key. */
template <typename T>
void
appendBytes(std::string &key, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *p = reinterpret_cast<const char *>(&value);
    key.append(p, sizeof(T));
}

void
appendStream(std::string &key, const StreamConfig &sc)
{
    appendBytes(key, sc.kind);
    appendBytes(key, sc.weight);
    appendBytes(key, sc.regionBytes);
    appendBytes(key, sc.zipfSkew);
    appendBytes(key, sc.stride);
    appendBytes(key, sc.shared);
    appendBytes(key, sc.regionId);
}

void
appendMix(std::string &key, const AccessMix &mix)
{
    appendBytes(key, mix.streams.size());
    for (const StreamConfig &sc : mix.streams)
        appendStream(key, sc);
}

void
appendProfile(std::string &key, const MixProfile &p)
{
    appendBytes(key, p.loadFraction);
    appendBytes(key, p.storeFraction);
    appendMix(key, p.loads);
    appendMix(key, p.stores);
    appendMix(key, p.ifetches);
}

/**
 * Exact identity of one trace: every generator input that can change
 * the produced access sequence or its reported stats, plus the thread
 * split. This is the trace store's key, and every run/privileged key
 * embeds it — so parameterized workloads get distinct memo/store
 * entries by construction.
 */
std::string
genKey(const GeneratorConfig &gen, std::uint32_t threads)
{
    std::string key;
    key.reserve(256);
    appendBytes(key, threads);
    appendBytes(key, gen.totalAccesses);
    appendBytes(key, gen.loadFraction);
    appendBytes(key, gen.storeFraction);
    appendBytes(key, gen.meanGap);
    appendBytes(key, gen.seed);
    appendMix(key, gen.loads);
    appendMix(key, gen.stores);
    appendMix(key, gen.ifetches);
    appendBytes(key, gen.warmupFraction);
    appendBytes(key, gen.perThreadStats);
    appendBytes(key, gen.phases.size());
    for (const MixProfile &p : gen.phases)
        appendProfile(key, p);
    appendBytes(key, gen.tenantMixes.size());
    for (const MixProfile &p : gen.tenantMixes)
        appendProfile(key, p);
    return key;
}

void
appendGeometry(std::string &key, const CacheGeometry &g)
{
    appendBytes(key, g.capacityBytes);
    appendBytes(key, g.associativity);
    appendBytes(key, g.blockBytes);
    appendBytes(key, g.replacement);
}

/**
 * Exact identity of one private-level recording: the trace identity
 * plus every CoreParams input that can change which level satisfies a
 * reference or which victims stream to the LLC. (The timing-only
 * fields — hide windows, stall factor — are included too: one key per
 * core configuration is simplest and they never vary within a study.)
 */
std::string
privKey(const GeneratorConfig &gen, std::uint32_t threads,
        const CoreParams &core)
{
    std::string key = genKey(gen, threads);
    appendBytes(key, core.baseCpi);
    appendGeometry(key, core.l1i);
    appendGeometry(key, core.l1d);
    appendGeometry(key, core.l2);
    appendBytes(key, core.l2Cycles);
    appendBytes(key, core.loadHide);
    appendBytes(key, core.ifetchHide);
    appendBytes(key, core.storeHide);
    appendBytes(key, core.storeStallFactor);
    return key;
}

void
appendFaults(std::string &key, const FaultConfig &f)
{
    appendBytes(key, f.enabled);
    appendBytes(key, f.berScale);
    appendBytes(key, f.wearLevelingFactor);
    appendBytes(key, f.wearScale);
    appendBytes(key, f.maxWriteRetries);
    appendBytes(key, f.scrubCycles);
    appendBytes(key, f.seed);
    appendBytes(key, f.capacitySampleInterval);
}

/**
 * Exact identity of one simulation: the trace identity plus every
 * LLC-model input that can change its SimStats. The base SystemConfig
 * is per-runner (the memo is too), so it needs no representation here
 * — except the fault-injection knobs, which are included defensively
 * because reliability sweeps vary them across otherwise-identical
 * configurations.
 */
std::string
runKey(const GeneratorConfig &gen, const LlcModel &llc,
       std::uint32_t threads, const FaultConfig &faults)
{
    std::string key = genKey(gen, threads);
    appendFaults(key, faults);
    key += llc.name;
    key += '\0';
    appendBytes(key, llc.klass);
    appendBytes(key, llc.capacityBytes);
    appendBytes(key, llc.area);
    appendBytes(key, llc.tagLatency);
    appendBytes(key, llc.readLatency);
    appendBytes(key, llc.writeLatencySet);
    appendBytes(key, llc.writeLatencyReset);
    appendBytes(key, llc.eHit);
    appendBytes(key, llc.eMiss);
    appendBytes(key, llc.eWrite);
    appendBytes(key, llc.leakage);
    return key;
}

/**
 * Identity of the non-fault base SystemConfig, prefixed onto every
 * on-disk run key. The in-memory memo is per-runner so it never needs
 * this, but the disk store is shared by arbitrary processes whose
 * base configurations may differ (fault knobs are already inside
 * runKey(); numCores comes in as the per-run thread count, and
 * shards/batchReplay are bit-identical execution strategies).
 */
std::string
baseConfigKey(const SystemConfig &cfg)
{
    std::string key;
    key.reserve(160);
    appendBytes(key, cfg.frequency);
    appendBytes(key, cfg.core.baseCpi);
    appendGeometry(key, cfg.core.l1i);
    appendGeometry(key, cfg.core.l1d);
    appendGeometry(key, cfg.core.l2);
    appendBytes(key, cfg.core.l2Cycles);
    appendBytes(key, cfg.core.loadHide);
    appendBytes(key, cfg.core.ifetchHide);
    appendBytes(key, cfg.core.storeHide);
    appendBytes(key, cfg.core.storeStallFactor);
    appendBytes(key, cfg.llc.associativity);
    appendBytes(key, cfg.llc.blockBytes);
    appendBytes(key, cfg.llc.numBanks);
    appendBytes(key, cfg.llc.writeQueueDepth);
    appendBytes(key, cfg.llc.controllerCycles);
    appendBytes(key, cfg.llc.writePolicy);
    appendBytes(key, cfg.llc.bypassWritebackMiss);
    appendBytes(key, cfg.dram.numControllers);
    appendBytes(key, cfg.dram.deviceLatency);
    appendBytes(key, cfg.dram.bandwidthPerController);
    appendBytes(key, cfg.dram.blockBytes);
    return key;
}

/** First element of @p v satisfying @p pred; nullptr when absent. */
template <typename T, typename Pred>
const T *
findFirst(const std::vector<T> &v, Pred pred)
{
    for (const T &x : v)
        if (pred(x))
            return &x;
    return nullptr;
}

} // namespace

const LlcModel *
findByClass(const std::vector<LlcModel> &models, NvmClass klass)
{
    return findFirst(models, [klass](const LlcModel &m) {
        return m.klass == klass;
    });
}

std::string
faultConfigKey(const FaultConfig &faults)
{
    std::string key;
    key.reserve(64);
    appendFaults(key, faults);
    return key;
}

ExperimentRunner
RunnerPool::acquire(const SystemConfig &base)
{
    std::string key = faultConfigKey(base.llc.faults);
    // The pooled runner captured its view of the persistent store at
    // construction. A store swap (epoch) or destructive mutation
    // (generation: gc, verify --repair) must therefore change the
    // pool key, or a handle built before the mutation keeps serving
    // state the store no longer agrees with.
    if (auto store = ResultStore::global()) {
        key += '\0';
        key += "e" + std::to_string(ResultStore::globalEpoch()) + "g" +
               std::to_string(store->generation());
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = runners_.find(key);
    if (it == runners_.end()) {
        it = runners_.emplace(key, ExperimentRunner(base)).first;
        MetricsRegistry::global()
            .gauge("service.runnerPoolSize")
            .set(double(runners_.size()));
    }
    return it->second;
}

std::size_t
RunnerPool::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return runners_.size();
}

/**
 * Run cache with exactly-once semantics: the first caller of a key
 * owns the simulation, concurrent callers of the same key block on
 * its future instead of simulating again. The trace store applies
 * the same discipline one layer down, keyed on generator identity
 * only, so the 11 models of a tech sweep (and the characterization
 * pass) replay one shared RecordedTrace instead of regenerating.
 *
 * Counters are kept per-memo (so RunnerStats stays an exact view of
 * one runner and its copies) and mirrored into the process-wide
 * registry under "runner.memo.*" / "runner.traceStore.*" so
 * structured run reports capture them; snapshot diffs recover exact
 * per-study deltas there.
 */
struct ExperimentRunner::Memo
{
    struct Entry
    {
        std::promise<SimStats> promise;
        std::shared_future<SimStats> future{promise.get_future()};
    };

    struct TraceEntry
    {
        std::promise<std::shared_ptr<const RecordedTrace>> promise;
        std::shared_future<std::shared_ptr<const RecordedTrace>>
            future{promise.get_future()};
    };

    struct PrivateEntry
    {
        std::promise<std::shared_ptr<const PrivateTrace>> promise;
        std::shared_future<std::shared_ptr<const PrivateTrace>>
            future{promise.get_future()};
    };

    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> runs;
    std::atomic<std::uint64_t> simulations{0};
    std::atomic<std::uint64_t> memoHits{0};
    std::atomic<std::uint64_t> baselineSimulations{0};

    std::mutex traceMu;
    std::unordered_map<std::string, std::shared_ptr<TraceEntry>>
        traces;
    std::atomic<std::uint64_t> traceBuilds{0};
    std::atomic<std::uint64_t> traceHits{0};
    std::atomic<std::uint64_t> traceBytes{0};

    std::mutex privMu;
    std::unordered_map<std::string, std::shared_ptr<PrivateEntry>>
        privates;
    std::atomic<std::uint64_t> privateBuilds{0};
    std::atomic<std::uint64_t> privateHits{0};
    std::atomic<std::uint64_t> privateBytes{0};

    std::atomic<std::uint64_t> diskHits{0};
    std::atomic<std::uint64_t> diskWrites{0};

    Counter &gSimulations =
        MetricsRegistry::global().counter("runner.memo.simulations");
    Counter &gMemoHits =
        MetricsRegistry::global().counter("runner.memo.hits");
    Counter &gBaselines = MetricsRegistry::global().counter(
        "runner.memo.baselineSimulations");
    Counter &gTraceBuilds = MetricsRegistry::global().counter(
        "runner.traceStore.builds");
    Counter &gTraceHits =
        MetricsRegistry::global().counter("runner.traceStore.hits");
    Gauge &gTraceBytes =
        MetricsRegistry::global().gauge("runner.traceStore.bytes");
    Counter &gPrivateBuilds = MetricsRegistry::global().counter(
        "runner.privateStore.builds");
    Counter &gPrivateHits =
        MetricsRegistry::global().counter("runner.privateStore.hits");
    Gauge &gPrivateBytes =
        MetricsRegistry::global().gauge("runner.privateStore.bytes");
    Counter &gDiskHits =
        MetricsRegistry::global().counter("runner.store.hits");
    Counter &gDiskWrites =
        MetricsRegistry::global().counter("runner.store.writes");

    void
    countDiskHit()
    {
        diskHits.fetch_add(1, std::memory_order_relaxed);
        gDiskHits.inc();
    }

    void
    countDiskWrite()
    {
        diskWrites.fetch_add(1, std::memory_order_relaxed);
        gDiskWrites.inc();
    }
};

const RunResult &
TechSweep::byTech(const std::string &tech) const
{
    const RunResult *r = findFirst(
        results, [&](const RunResult &x) { return x.tech == tech; });
    if (!r)
        fatal("TechSweep: no result for technology '", tech, "'");
    return *r;
}

const RunResult &
TechSweep::byClass(NvmClass klass) const
{
    const RunResult *r = findFirst(
        results, [&](const RunResult &x) { return x.klass == klass; });
    if (!r)
        fatal("TechSweep: no result of class ", int(klass));
    return *r;
}

ExperimentRunner::ExperimentRunner(SystemConfig base)
    : base_(std::move(base)), jobs_(defaultJobs()),
      shards_(defaultShards()), memo_(std::make_shared<Memo>()),
      store_(ResultStore::global()),
      diskBaseKey_(baseConfigKey(base_))
{
}

void
ExperimentRunner::setJobs(unsigned jobs)
{
    jobs_ = jobs == 0 ? defaultJobs() : jobs;
    MetricsRegistry::global().gauge("runner.jobs").set(double(jobs_));
}

void
ExperimentRunner::setShards(unsigned shards)
{
    shards_ = shards == 0 ? defaultShards() : shards;
    MetricsRegistry::global().gauge("runner.shards")
        .set(double(shards_));
}

RunnerStats
ExperimentRunner::runnerStats() const
{
    RunnerStats s;
    s.simulations = memo_->simulations.load();
    s.memoHits = memo_->memoHits.load();
    s.baselineSimulations = memo_->baselineSimulations.load();
    s.traceBuilds = memo_->traceBuilds.load();
    s.traceHits = memo_->traceHits.load();
    s.traceBytes = memo_->traceBytes.load();
    s.privateBuilds = memo_->privateBuilds.load();
    s.privateHits = memo_->privateHits.load();
    s.privateBytes = memo_->privateBytes.load();
    s.diskHits = memo_->diskHits.load();
    s.diskWrites = memo_->diskWrites.load();
    return s;
}

std::shared_ptr<const RecordedTrace>
ExperimentRunner::recordedTrace(const GeneratorConfig &gen,
                                std::uint32_t threads) const
{
    const std::string key = genKey(gen, threads);
    std::shared_ptr<Memo::TraceEntry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(memo_->traceMu);
        auto [it, inserted] = memo_->traces.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Memo::TraceEntry>();
            owner = true;
        }
        entry = it->second;
    }

    if (owner) {
        std::shared_ptr<const RecordedTrace> trace;
        if (store_) {
            if (auto payload = store_->load("trace", key)) {
                try {
                    trace = RecordedTrace::deserialize(*payload);
                    memo_->countDiskHit();
                } catch (const std::exception &) {
                    trace.reset(); // damaged payload: re-record below
                }
            }
        }
        if (!trace) {
            memo_->traceBuilds.fetch_add(1,
                                         std::memory_order_relaxed);
            memo_->gTraceBuilds.inc();
            {
                PhaseTimer timer("runner.recordSeconds");
                // Self-contained id: trace recording ownership races
                // the same way runs do (see traceRunId).
                TraceSpan span("runner.record", "engine",
                               "trace/" + traceHashId(key));
                trace = RecordedTrace::record(gen, threads);
            }
            if (store_) {
                store_->put("trace", key, trace->serialize());
                memo_->countDiskWrite();
            }
        }
        const std::uint64_t total =
            memo_->traceBytes.fetch_add(trace->packedBytes(),
                                        std::memory_order_relaxed) +
            trace->packedBytes();
        memo_->gTraceBytes.set(double(total));
        entry->promise.set_value(std::move(trace));
    } else {
        memo_->traceHits.fetch_add(1, std::memory_order_relaxed);
        memo_->gTraceHits.inc();
    }
    return entry->future.get();
}

std::shared_ptr<const PrivateTrace>
ExperimentRunner::privateTrace(const GeneratorConfig &gen,
                               std::uint32_t threads) const
{
    const std::string key = privKey(gen, threads, base_.core);
    std::shared_ptr<Memo::PrivateEntry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(memo_->privMu);
        auto [it, inserted] = memo_->privates.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Memo::PrivateEntry>();
            owner = true;
        }
        entry = it->second;
    }

    if (owner) {
        std::shared_ptr<const PrivateTrace> priv;
        if (store_) {
            if (auto payload = store_->load("ptrace", key)) {
                try {
                    priv = PrivateTrace::deserialize(*payload);
                    memo_->countDiskHit();
                } catch (const std::exception &) {
                    priv.reset(); // damaged payload: re-record below
                }
            }
        }
        if (!priv) {
            memo_->privateBuilds.fetch_add(1,
                                           std::memory_order_relaxed);
            memo_->gPrivateBuilds.inc();
            auto trace = recordedTrace(gen, threads);
            auto cursors = trace->cursors();
            std::vector<BatchSource *> ptrs;
            ptrs.reserve(cursors.size());
            for (TraceCursor &c : cursors)
                ptrs.push_back(&c);
            {
                PhaseTimer timer("runner.recordPrivateSeconds");
                TraceSpan span("runner.recordPrivate", "engine",
                               "ptrace/" + traceHashId(key));
                priv = PrivateTrace::record(ptrs, base_.core);
            }
            if (store_) {
                store_->put("ptrace", key, priv->serialize());
                memo_->countDiskWrite();
            }
        }
        const std::uint64_t total =
            memo_->privateBytes.fetch_add(priv->packedBytes(),
                                          std::memory_order_relaxed) +
            priv->packedBytes();
        memo_->gPrivateBytes.set(double(total));
        entry->promise.set_value(std::move(priv));
    } else {
        memo_->privateHits.fetch_add(1, std::memory_order_relaxed);
        memo_->gPrivateHits.inc();
    }
    return entry->future.get();
}

SimStats
ExperimentRunner::simulateUncached(const BenchmarkSpec &spec,
                                   const LlcModel &llc,
                                   std::uint32_t threads) const
{
    SystemConfig cfg = base_;
    cfg.numCores = threads;
    cfg.shards = shards_;
    cfg.batchReplay = batchReplay_;
    cfg.perCoreLlcStats = spec.gen.perThreadStats;

    // Replay the workload's recorded trace: generation happens once
    // per (generator, threads) for the runner's lifetime, and every
    // model replays the identical packed sequence. The private-level
    // recording rides one layer above it, so each model simulates
    // only the shared LLC and DRAM — through the batch kernel when
    // single-threaded (bit-identical either way).
    auto trace = recordedTrace(spec.gen, threads);
    auto priv = privateTrace(spec.gen, threads);
    auto cursors = trace->cursors();
    std::vector<ReplaySource *> ptrs;
    ptrs.reserve(cursors.size());
    for (TraceCursor &c : cursors)
        ptrs.push_back(&c);

    System system(cfg, llc);
    return system.runReplay(ptrs, priv.get());
}

namespace {

/**
 * Deterministic trace id of one simulation. Self-contained (not
 * derived from the caller's context path) on purpose: under jobs>1
 * which caller becomes the memo owner is a race, so the span must
 * carry an id that is identical no matter who wins.
 */
std::string
traceRunId(const BenchmarkSpec &spec, const LlcModel &llc,
           std::uint32_t threads, const FaultConfig &faults)
{
    std::string id = "run/" + spec.name + "/" + llc.name + "/c" +
                     std::to_string(llc.capacityBytes >> 20) + "/t" +
                     std::to_string(threads);
    if (faults.enabled)
        id += "/f" + traceHashId(faultConfigKey(faults));
    return id;
}

} // namespace

SimStats
ExperimentRunner::runOne(const BenchmarkSpec &spec, const LlcModel &llc,
                         std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    const std::string key =
        runKey(spec.gen, llc, threads, base_.llc.faults);
    std::shared_ptr<Memo::Entry> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(memo_->mu);
        auto [it, inserted] = memo_->runs.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Memo::Entry>();
            owner = true;
        }
        entry = it->second;
    }

    if (owner) {
        // Disk tier: a run persisted by an earlier process (or an
        // earlier store-backed runner in this one) decodes to stats
        // bit-identical to a fresh simulation, so serve it without
        // simulating. Damaged payloads fall through to re-simulate
        // and rewrite.
        bool served = false;
        if (store_) {
            if (auto payload =
                    store_->load("run", diskBaseKey_ + key)) {
                try {
                    SimStats stats = decodeSimStats(*payload);
                    memo_->countDiskHit();
                    if (tracingEnabled())
                        traceInstant("runner.diskHit", "engine",
                                     traceRunId(spec, llc, threads,
                                                base_.llc.faults) +
                                         "/disk");
                    entry->promise.set_value(std::move(stats));
                    served = true;
                } catch (const std::exception &) {
                }
            }
        }
        if (!served) {
            memo_->simulations.fetch_add(1,
                                         std::memory_order_relaxed);
            memo_->gSimulations.inc();
            if (llc.klass == NvmClass::SRAM) {
                memo_->baselineSimulations.fetch_add(
                    1, std::memory_order_relaxed);
                memo_->gBaselines.inc();
            }
            SimStats stats;
            {
                PhaseTimer timer("runner.simulateSeconds");
                // The run scope REPLACES the caller's path (instead
                // of extending it) so the simulation's spans read the
                // same whichever racing caller won ownership.
                const std::string runId =
                    tracingEnabled()
                        ? traceRunId(spec, llc, threads,
                                     base_.llc.faults)
                        : std::string();
                TraceScope scope(TraceContext{
                    runId, TraceContext::current().traceId});
                TraceSpan span("runner.simulate", "engine", runId);
                stats = simulateUncached(spec, llc, threads);
            }
            if (store_) {
                store_->put("run", diskBaseKey_ + key,
                            encodeSimStats(stats));
                memo_->countDiskWrite();
            }
            entry->promise.set_value(std::move(stats));
        }
    } else {
        memo_->memoHits.fetch_add(1, std::memory_order_relaxed);
        memo_->gMemoHits.inc();
        if (tracingEnabled())
            traceInstant(
                "runner.memoHit", "engine",
                traceRunId(spec, llc, threads, base_.llc.faults) +
                    "/hit");
    }
    return entry->future.get();
}

TechSweep
ExperimentRunner::sweepTechs(const BenchmarkSpec &spec,
                             CapacityMode mode,
                             std::uint32_t threads) const
{
    if (threads == 0)
        threads = spec.defaultThreads;

    TechSweep sweep;
    sweep.workload = spec.name;
    sweep.mode = mode;
    sweep.cores = threads;

    // Validate the model list before simulating anything: every
    // result is normalized against the SRAM baseline, so its absence
    // is a configuration error, not a post-hoc surprise.
    const std::vector<LlcModel> &models = publishedLlcModels(mode);
    const LlcModel *sram = findByClass(models, NvmClass::SRAM);
    if (!sram)
        panic("published model list has no SRAM baseline");

    // Fan the eleven independent simulations out; the memo makes any
    // repeats (notably the SRAM baseline across studies) free.
    std::vector<SimStats> stats =
        parallelMap(jobs_, models, [&](const LlcModel &llc) {
            return runOne(spec, llc, threads);
        });

    const SimStats sram_stats =
        stats[std::size_t(sram - models.data())];

    for (std::size_t i = 0; i < models.size(); ++i) {
        RunResult r;
        r.workload = spec.name;
        r.tech = models[i].name;
        r.klass = models[i].klass;
        r.mode = mode;
        r.cores = threads;
        r.stats = std::move(stats[i]);
        r.speedup = sram_stats.seconds / r.stats.seconds;
        r.normEnergy = r.stats.llcEnergy() / sram_stats.llcEnergy();
        r.normEd2p = r.stats.ed2p() / sram_stats.ed2p();
        sweep.results.push_back(std::move(r));
    }
    return sweep;
}

} // namespace nvmcache
