/**
 * @file
 * Uniform Study API over the paper's evaluation studies.
 *
 * Every study in the tree — the Figure 1/2 sweeps, the §V-C core
 * sweep, the Fig 3/4 correlation framework, the fault-injection
 * reliability grid, and the one-workload compare (the `simulate`
 * subcommand's core) — is exposed behind one interface:
 *
 *   StudyRequest (kind + parameter map)
 *     -> StudyRegistry lookup
 *     -> Study::parse(params)   typed validation, named diagnostics
 *     -> Study::run(runner)     executes on a shared ExperimentRunner
 *     -> Study::report()        deterministic JSON + aggregated stats
 *
 * The same dispatch path serves the CLI subcommands (`nvmcache
 * study`), the persistent evaluation daemon (`nvmcache serve`), and
 * the `nvmcache client` subcommand, so a study result returned over
 * the wire is byte-identical to the one printed locally: report()
 * carries only deterministic simulation outputs (JsonValue::dump is
 * canonical), never wall-clock or host state.
 */

#ifndef NVMCACHE_CORE_STUDY_REGISTRY_HH
#define NVMCACHE_CORE_STUDY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/study.hh"
#include "util/json.hh"
#include "util/metrics.hh"

namespace nvmcache {

/** String-typed study parameters ("mode" -> "fixed-capacity"). */
using ParamMap = std::map<std::string, std::string>;

/** One dispatchable study invocation: kind + parameter overrides. */
struct StudyRequest
{
    std::string kind;
    ParamMap params;

    /**
     * Canonical identity: kind plus the sorted parameter map. Two
     * requests with equal keys produce byte-identical reports, which
     * is what the service's request coalescing relies on.
     */
    std::string canonicalKey() const;

    JsonValue toJson() const;
    /** Throws std::runtime_error naming the defect. */
    static StudyRequest fromJson(const JsonValue &v);
};

/** Everything a finished study hands back. */
struct StudyReport
{
    /**
     * Deterministic result payload: depends only on the study
     * configuration, never on timing, concurrency, or memo state.
     */
    JsonValue result;
    /** Aggregated per-run "sim.*" detail (empty for correlation). */
    StatsSnapshot stats;

    std::string resultJson() const { return result.dump(); }
};

/**
 * One runnable study. Lifecycle: construct via the registry (defaults
 * applied), parse() overrides, run() exactly once, then report().
 */
class Study
{
  public:
    virtual ~Study() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;

    /** Every accepted parameter with its default value, stringified. */
    virtual ParamMap defaultConfig() const = 0;

    /**
     * Apply parameter overrides. Unknown keys and malformed values
     * throw std::runtime_error naming the study, the key, and the
     * valid alternatives.
     */
    void parse(const ParamMap &params);

    virtual void run(const ExperimentRunner &runner) = 0;
    virtual StudyReport report() const = 0;

    /**
     * Decompose this (already parsed) study into independent
     * sub-requests that jointly cover its run grid. The multi-worker
     * serving front dispatches these to worker processes to prime the
     * shared persistent store, then runs the study locally against
     * the warmed store, so a merged report is structurally
     * byte-identical to single-process output. Empty (the default)
     * means the study does not decompose and always runs locally.
     */
    virtual std::vector<StudyRequest> shardRequests() const;

    /**
     * Optional shared runner pool. Studies that build their own
     * fault-keyed runners (reliability) draw them from here so a
     * long-lived host keeps every fault configuration warm; unset,
     * they build ephemeral runners.
     */
    void setRunnerPool(RunnerPool *pool) { pool_ = pool; }

  protected:
    /** Apply one validated-key override; throw on a bad value. */
    virtual void applyParam(const std::string &key,
                            const std::string &value) = 0;

    RunnerPool *pool_ = nullptr;
};

/**
 * Name -> factory registry of every study. global() carries the five
 * built-ins (figure, core-sweep, correlation, reliability, compare).
 */
class StudyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Study>()>;

    void add(const std::string &name, Factory factory);

    /** Throws std::runtime_error listing valid names when unknown. */
    std::unique_ptr<Study> create(const std::string &name) const;

    bool contains(const std::string &name) const;
    std::vector<std::string> names() const;

    /**
     * Generated usage text: one block per study with its description
     * and default parameters (the CLI's `nvmcache studies` output and
     * the substance of `--help`).
     */
    std::string helpText() const;

    static const StudyRegistry &global();

  private:
    std::map<std::string, Factory> factories_;
};

/**
 * Strip the "shards" execution knob out of @p params: returns its
 * parsed value and erases the entry, or @p fallback when absent.
 * Kept separate from Study::parse so every study kind accepts the
 * knob uniformly (it selects intra-run threading, never results).
 * Throws std::invalid_argument on a malformed value.
 */
unsigned extractShardsParam(ParamMap &params, unsigned fallback);

/** Execution knobs shared by every dispatch site. */
struct StudyRunOptions
{
    unsigned jobs = 0;          ///< 0 = engine default
    unsigned shards = 0;        ///< LLC set shards/run; 0 = default
    RunnerPool *pool = nullptr; ///< nullptr = ephemeral runners
};

/**
 * Uniform dispatch: create the study, parse the request's parameters,
 * run it on a runner drawn from the pool (or an ephemeral one), and
 * report. This is the single execution path behind the CLI `study`
 * subcommand and the evaluation daemon.
 */
StudyReport runStudyRequest(const StudyRequest &req,
                            const StudyRunOptions &opts = {});

/** runStudyRequest for an already-created-and-parsed study. */
StudyReport runStudy(Study &study, const StudyRunOptions &opts = {});

} // namespace nvmcache

#endif // NVMCACHE_CORE_STUDY_REGISTRY_HH
