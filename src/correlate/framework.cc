#include "correlate/framework.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace nvmcache {

void
CorrelationDataset::validate() const
{
    const std::size_t w = workloads.size();
    if (features.size() != w || energy.size() != w ||
        speedup.size() != w)
        fatal("CorrelationDataset: inconsistent row counts");
    for (const auto &row : features)
        if (row.size() != featureNames.size())
            fatal("CorrelationDataset: inconsistent feature width");
    if (w < 2)
        fatal("CorrelationDataset: need at least two workloads");
}

CorrelationResult
correlateFeatures(const CorrelationDataset &data)
{
    data.validate();

    CorrelationResult result;
    result.featureNames = data.featureNames;

    const std::size_t nf = data.featureNames.size();
    const std::size_t nw = data.workloads.size();
    for (std::size_t f = 0; f < nf; ++f) {
        std::vector<double> col(nw);
        for (std::size_t w = 0; w < nw; ++w)
            col[w] = data.features[w][f];
        result.energyCorr.push_back(pearson(col, data.energy));
        result.speedupCorr.push_back(pearson(col, data.speedup));
    }
    return result;
}

namespace {

std::vector<std::size_t>
rankByAbs(const std::vector<double> &xs)
{
    std::vector<std::size_t> idx(xs.size());
    std::iota(idx.begin(), idx.end(), std::size_t(0));
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return std::abs(xs[a]) > std::abs(xs[b]);
    });
    return idx;
}

} // namespace

std::vector<std::size_t>
CorrelationResult::rankByEnergy() const
{
    return rankByAbs(energyCorr);
}

std::vector<std::size_t>
CorrelationResult::rankBySpeedup() const
{
    return rankByAbs(speedupCorr);
}

std::string
renderHeatmap(const CorrelationResult &result, const std::string &title,
              bool color)
{
    Table table(title);
    table.setHeader({"feature", "energy", "speedup"});
    table.setHeatmap(Table::Heatmap::PerColumn);
    table.setColor(color);
    for (std::size_t f = 0; f < result.featureNames.size(); ++f) {
        table.startRow(result.featureNames[f]);
        // Shade by |r|: what matters is predictive strength.
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%+.2f", result.energyCorr[f]);
        table.addCell(buf, std::abs(result.energyCorr[f]));
        std::snprintf(buf, sizeof(buf), "%+.2f",
                      result.speedupCorr[f]);
        table.addCell(buf, std::abs(result.speedupCorr[f]));
    }
    std::ostringstream os;
    table.print(os);
    return os.str();
}

} // namespace nvmcache
