/**
 * @file
 * The paper's workload-characterization framework (Fig 3): learn, via
 * linear correlation, which architecture-agnostic workload features
 * predict the energy and speedup of a given NVM-based LLC.
 *
 * For each workload we assemble the Table VI feature array; alongside
 * it we place the normalized energy and speedup measured for one NVM
 * technology and capacity mode. The framework then computes the
 * Pearson correlation of every feature column against each outcome,
 * yielding the Fig 4 heatmap rows.
 */

#ifndef NVMCACHE_CORRELATE_FRAMEWORK_HH
#define NVMCACHE_CORRELATE_FRAMEWORK_HH

#include <string>
#include <vector>

namespace nvmcache {

/** Input matrix: workloads x (features, outcomes). */
struct CorrelationDataset
{
    std::vector<std::string> workloads;
    std::vector<std::string> featureNames;
    /** features[w][f], one row per workload. */
    std::vector<std::vector<double>> features;
    /** Normalized LLC energy per workload (vs SRAM baseline). */
    std::vector<double> energy;
    /** Normalized system speedup per workload. */
    std::vector<double> speedup;

    /** Throws via fatal() if shapes disagree. */
    void validate() const;
};

/** Output: per-feature correlation with each outcome. */
struct CorrelationResult
{
    std::vector<std::string> featureNames;
    std::vector<double> energyCorr;  ///< Pearson r in [-1, 1]
    std::vector<double> speedupCorr;

    /** Indices of features ranked by |r| against energy. */
    std::vector<std::size_t> rankByEnergy() const;
    std::vector<std::size_t> rankBySpeedup() const;
};

/** Compute the correlation matrix for one (technology, mode) pair. */
CorrelationResult correlateFeatures(const CorrelationDataset &data);

/**
 * Render a Fig 4-style heatmap (features on rows, the two outcomes on
 * columns) as an ASCII table string. |r| drives the shading.
 */
std::string renderHeatmap(const CorrelationResult &result,
                          const std::string &title, bool color = true);

} // namespace nvmcache

#endif // NVMCACHE_CORRELATE_FRAMEWORK_HH
