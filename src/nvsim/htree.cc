#include "nvsim/htree.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

HtreeModel
buildHtree(std::uint64_t numMats, double matArea, const TechNode &tech)
{
    if (numMats == 0 || matArea <= 0.0)
        panic("buildHtree: empty bank");

    HtreeModel h;
    const double bank_area = double(numMats) * matArea;
    const double side = std::sqrt(bank_area);

    // Root-to-leaf path: side/2 + side/4 + ... ~= side. A single mat
    // needs no global routing.
    const double path = numMats > 1 ? side : 0.0;

    h.latency = path * tech.bufferedWireDelayPerM;
    h.energyPerBit = path * tech.bufferedWireEnergyPerM;

    // Routing area: ~3% of bank area per tree level beyond the first.
    const double levels =
        numMats > 1 ? std::log2(double(numMats)) : 0.0;
    h.wireArea = 0.015 * levels * bank_area;

    // Repeater leakage: proportional to total wire length; one
    // repeater bank every ~1 mm leaking ~50 uW at nominal supply.
    const double total_wire = path * 2.0 * std::max(1.0, levels);
    h.bufferLeakage = total_wire / 1e-3 * 50e-6 * (tech.vdd / 1.0);

    return h;
}

} // namespace nvmcache
