/**
 * @file
 * The paper's published Table III LLC models.
 *
 * These are the exact NVSim outputs the authors report for the
 * Gainestown LLC, for both simulation strategies:
 *
 *  - FixedCapacity: every technology builds a 2 MB LLC (the
 *    cost-limited assumption);
 *  - FixedArea: every technology fills the SRAM LLC's 6.55 mm^2
 *    area budget with as much capacity as fits (the capacity-limited
 *    assumption the paper argues matches industry practice).
 *
 * The system-level experiments (Figs 1-2, the core sweep, Fig 4) run
 * on these values so that estimator error cannot contaminate the
 * headline reproductions; the from-scratch estimator (estimator.hh)
 * is validated against them separately.
 */

#ifndef NVMCACHE_NVSIM_PUBLISHED_HH
#define NVMCACHE_NVSIM_PUBLISHED_HH

#include <string>
#include <vector>

#include "nvsim/llc_model.hh"

namespace nvmcache {

/** Which Table III block to use. */
enum class CapacityMode
{
    FixedCapacity, ///< all LLCs are 2 MB
    FixedArea      ///< all LLCs fit the 6.55 mm^2 SRAM budget
};

std::string toString(CapacityMode mode);

/**
 * The eleven published LLC models (ten NVMs + the SRAM baseline) for
 * @p mode, in Table III column order. The SRAM baseline is last.
 */
const std::vector<LlcModel> &publishedLlcModels(CapacityMode mode);

/** Look up one published model by citation name ("Oh", ..., "SRAM"). */
const LlcModel &publishedLlcModel(const std::string &name,
                                  CapacityMode mode);

/** The SRAM baseline row (identical in both modes). */
const LlcModel &sramBaselineLlc();

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_PUBLISHED_HH
