/**
 * @file
 * H-tree global routing model (structure of eqs 4-5: reads traverse
 * the tree twice — address in, data out — writes only once).
 */

#ifndef NVMCACHE_NVSIM_HTREE_HH
#define NVMCACHE_NVSIM_HTREE_HH

#include <cstdint>

#include "nvsim/tech.hh"

namespace nvmcache {

/** Global-interconnect figures for one bank of mats. */
struct HtreeModel
{
    double latency = 0.0;       ///< s, one traversal root->leaf
    double energyPerBit = 0.0;  ///< J per bit moved one traversal
    double wireArea = 0.0;      ///< m^2, routing overhead
    double bufferLeakage = 0.0; ///< W, repeater leakage
};

/**
 * Build the H-tree for @p numMats mats of @p matArea each.
 *
 * The tree spans a square bank of side sqrt(numMats * matArea); the
 * root-to-leaf path length is approximately the bank side (sum of the
 * halving segments), driven by repeated (buffered) global wire.
 */
HtreeModel buildHtree(std::uint64_t numMats, double matArea,
                      const TechNode &tech);

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_HTREE_HH
