#include "nvsim/estimator.hh"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "nvsim/array.hh"
#include "nvsim/htree.hh"
#include "nvsim/tech.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace nvmcache {

namespace {

template <typename T>
void
appendBytes(std::string &key, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *p = reinterpret_cast<const char *>(&value);
    key.append(p, sizeof(T));
}

void
appendParam(std::string &key, const CellParam &param)
{
    const bool known = param.known();
    appendBytes(key, known);
    if (known)
        appendBytes(key, param.value.value());
}

/**
 * Exact identity of one estimation: every cell parameter and every
 * organization knob. Calibration is per-Estimator (so is the memo).
 */
std::string
estimateKey(const CellSpec &cell, const CacheOrgConfig &org)
{
    static const CellField kFields[] = {
        CellField::ProcessNode,  CellField::CellSizeF2,
        CellField::CellLevels,   CellField::ReadCurrent,
        CellField::ReadVoltage,  CellField::ReadPower,
        CellField::ReadEnergy,   CellField::ResetCurrent,
        CellField::ResetVoltage, CellField::ResetPulse,
        CellField::ResetEnergy,  CellField::SetCurrent,
        CellField::SetVoltage,   CellField::SetPulse,
        CellField::SetEnergy,
    };

    std::string key;
    key.reserve(256);
    key += cell.name;
    key += '\0';
    appendBytes(key, cell.klass);
    for (CellField f : kFields)
        appendParam(key, cell.field(f));
    appendBytes(key, cell.cellLength.has_value());
    appendBytes(key, cell.cellLength.value_or(0.0));
    appendBytes(key, cell.cellWidth.has_value());
    appendBytes(key, cell.cellWidth.value_or(0.0));

    appendBytes(key, org.capacityBytes);
    appendBytes(key, org.associativity);
    appendBytes(key, org.blockBytes);
    appendBytes(key, org.matRows);
    appendBytes(key, org.matCols);
    appendBytes(key, org.activeMats);
    appendBytes(key, org.tagBitsPerLine);
    return key;
}

} // namespace

/**
 * Per-estimator counters stay exact views of one instance (and its
 * copies); the process-wide mirrors under "estimator.memo.*" feed
 * structured run reports.
 */
struct Estimator::Memo
{
    std::mutex mu;
    std::unordered_map<std::string, LlcModel> models;
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> hits{0};

    Counter &gComputed =
        MetricsRegistry::global().counter("estimator.memo.computed");
    Counter &gHits =
        MetricsRegistry::global().counter("estimator.memo.hits");
};

Estimator::Estimator(Calibration cal)
    : cal_(cal), memo_(std::make_shared<Memo>())
{
}

std::uint64_t
Estimator::estimatesComputed() const
{
    return memo_->computed.load();
}

std::uint64_t
Estimator::estimateCacheHits() const
{
    return memo_->hits.load();
}

LlcModel
Estimator::estimate(const CellSpec &cell, const CacheOrgConfig &org) const
{
    const std::string key = estimateKey(cell, org);
    {
        std::lock_guard<std::mutex> lock(memo_->mu);
        auto it = memo_->models.find(key);
        if (it != memo_->models.end()) {
            memo_->hits.fetch_add(1, std::memory_order_relaxed);
            memo_->gHits.inc();
            return it->second;
        }
    }
    // Compute outside the lock; concurrent first requests for the
    // same point may both compute, but the result is identical and
    // only one copy is kept.
    LlcModel model;
    {
        PhaseTimer timer("estimator.estimateSeconds");
        model = estimateUncached(cell, org);
    }
    std::lock_guard<std::mutex> lock(memo_->mu);
    if (memo_->models.try_emplace(key, model).second) {
        memo_->computed.fetch_add(1, std::memory_order_relaxed);
        memo_->gComputed.inc();
    }
    return model;
}

LlcModel
Estimator::estimateUncached(const CellSpec &cell,
                            const CacheOrgConfig &org) const
{
    auto missing = missingFields(cell);
    if (!missing.empty())
        fatal("estimate(", cell.name, "): spec incomplete (",
              missing.size(), " fields); run HeuristicEngine first");

    const TechNode tech = techAt(cell.processNode.get());
    const MatModel mat = buildMat(cell, tech, org, cal_);

    const int bits_per_cell = cell.bitsPerCell();
    const double data_bits = double(org.capacityBytes) * 8.0;
    const double data_cells = data_bits / double(bits_per_cell);
    const double cells_per_mat =
        double(org.matRows) * double(org.matCols);
    const std::uint64_t num_mats = std::uint64_t(
        std::max(1.0, std::ceil(data_cells / cells_per_mat)));

    const HtreeModel htree = buildHtree(num_mats, mat.area, tech);

    // --- tag array (same memory technology as the data array) -----
    const double tag_bits =
        double(org.numLines()) * double(org.tagBitsPerLine);
    const double tag_cells = tag_bits / double(bits_per_cell);
    const std::uint64_t tag_mats = std::uint64_t(
        std::max(1.0, std::ceil(tag_cells / cells_per_mat)));
    const HtreeModel tag_htree = buildHtree(tag_mats, mat.area, tech);

    LlcModel llc;
    llc.name = cell.name;
    llc.klass = cell.klass;
    llc.capacityBytes = org.capacityBytes;

    // --- area -------------------------------------------------------
    llc.area = double(num_mats) * mat.area + htree.wireArea +
               double(tag_mats) * mat.area;

    // --- latency (eqs 4-5) -------------------------------------------
    llc.tagLatency =
        mat.decodeDelay + mat.senseDelay + tag_htree.latency;
    llc.readLatency = 2.0 * htree.latency + mat.readLatency;
    llc.writeLatencySet = htree.latency + mat.writeSetLatency;
    llc.writeLatencyReset = htree.latency + mat.writeResetLatency;

    // --- energy (eqs 6-8) ---------------------------------------------
    // Tag lookup probes all ways' tags; tags use lightweight
    // voltage-mode sensing, so only the array-access overhead (bitline
    // + sense amp), not the full cell read mechanism, is charged.
    const double tag_read_bits =
        double(org.associativity) * double(org.tagBitsPerLine);
    const double e_tag = tag_read_bits * mat.bitlineEnergyPerBit *
                         cal_.peripheralEnergyFactor;

    const double line_bits = double(org.dataBitsPerLine());
    const double e_array_overhead = line_bits *
                                    mat.bitlineEnergyPerBit *
                                    cal_.peripheralEnergyFactor;
    const double e_htree =
        line_bits * htree.energyPerBit; // one data traversal

    const double e_data_read = line_bits * mat.readEnergyPerBit +
                               e_array_overhead + e_htree;
    // A line write flips half the bits on average between SET and
    // RESET states; NVSim conservatively charges the dearer
    // transition for every bit, which we mirror (it also matches the
    // published write energies).
    const double e_write_bit = std::max(mat.writeSetEnergyPerBit,
                                        mat.writeResetEnergyPerBit);
    const double e_data_write =
        line_bits * e_write_bit + e_array_overhead + e_htree;

    llc.eMiss = e_tag;                 // eq (7)
    llc.eHit = e_tag + e_data_read;    // eq (6)
    llc.eWrite = e_tag + e_data_write; // eq (8)

    // --- leakage ------------------------------------------------------
    const double sa_per_mat = double(org.matCols) / 8.0;
    double leak = double(num_mats + tag_mats) *
                  (mat.leakage + sa_per_mat * tech.senseAmpLeak);
    leak += htree.bufferLeakage + tag_htree.bufferLeakage;
    llc.leakage = leak;

    return llc;
}

} // namespace nvmcache
