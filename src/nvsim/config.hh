/**
 * @file
 * Cache organization input to the circuit-level estimator.
 */

#ifndef NVMCACHE_NVSIM_CONFIG_HH
#define NVMCACHE_NVSIM_CONFIG_HH

#include <cstdint>

namespace nvmcache {

/**
 * Physical organization of the modeled cache. Defaults correspond to
 * the paper's Gainestown LLC: 2 MB, 16-way, 64 B blocks.
 */
struct CacheOrgConfig
{
    std::uint64_t capacityBytes = 2ull << 20;
    std::uint32_t associativity = 16;
    std::uint32_t blockBytes = 64;

    /** Subarray (mat core) dimensions in cells. */
    std::uint32_t matRows = 512;
    std::uint32_t matCols = 512;

    /** Mats activated in parallel by one data access. */
    std::uint32_t activeMats = 8;

    /** Tag size budget per line (address tag + state), in bits. */
    std::uint32_t tagBitsPerLine = 28;

    std::uint64_t numLines() const { return capacityBytes / blockBytes; }
    std::uint64_t numSets() const { return numLines() / associativity; }
    std::uint64_t dataBitsPerLine() const { return 8ull * blockBytes; }
};

/**
 * Calibration constants for the estimator. The structural model
 * (mats, H-tree, per-class sensing and write circuits) fixes the
 * scaling behaviour; these constants absorb the fixed peripheral
 * overheads NVSim models in far more detail. Defaults were fit once
 * against the paper's published Table III and are not workload- or
 * technology-specific.
 */
struct Calibration
{
    /** Effective write voltage across a PCRAM cell stack. */
    double pcramWriteVoltage = 3.0;
    /** Write-driver / charge-pump efficiency for PCRAM. */
    double pcramDriverEfficiency = 0.25;
    /** Write-driver efficiency for STTRAM / RRAM. */
    double nvmDriverEfficiency = 0.30;
    /** Local (in-mat) area overhead multiplier on the cell array. */
    double matLocalOverhead = 1.30;
    /** Mat border (decoder+driver+SA strip) width at 45 nm, metres. */
    double matBorder45 = 28e-6;
    /** Peripheral dynamic-energy multiplier (decoders, muxes, ctl). */
    double peripheralEnergyFactor = 2.0;
    /** Peripheral leakage per mat at 45 nm, watts. */
    double matLeak45 = 0.9e-3;
    /** Sense-margin latency coefficients per class (s*V). */
    double sttSenseCoeff = 0.25;
    double rramSenseCoeff = 0.30;
};

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_CONFIG_HH
