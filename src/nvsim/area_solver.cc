#include "nvsim/area_solver.hh"

#include "util/logging.hh"
#include "util/metrics.hh"

namespace nvmcache {

AreaSolver::AreaSolver(Estimator estimator)
    : AreaSolver(std::move(estimator), Options())
{
}

AreaSolver::AreaSolver(Estimator estimator, Options opts)
    : estimator_(std::move(estimator)), opts_(opts)
{
    if (opts_.minCapacity == 0 ||
        opts_.maxCapacity < opts_.minCapacity)
        fatal("AreaSolver: bad capacity range");
}

AreaSolveResult
AreaSolver::solve(const CellSpec &cell, double areaBudget,
                  CacheOrgConfig org) const
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("estimator.areaSolver.solves").inc();
    PhaseTimer timer("estimator.areaSolver.solveSeconds");

    AreaSolveResult best;
    bool found = false;

    for (std::uint64_t cap = opts_.minCapacity;
         cap <= opts_.maxCapacity; cap <<= 1) {
        org.capacityBytes = cap;
        metrics.counter("estimator.areaSolver.candidates").inc();
        LlcModel m = estimator_.estimate(cell, org);
        if (m.area <= areaBudget * (1.0 + opts_.slack)) {
            best.capacityBytes = cap;
            best.model = m;
            found = true;
        }
        // Area grows monotonically with capacity; once over budget we
        // can stop.
        if (m.area > areaBudget * (1.0 + opts_.slack) && found)
            break;
    }

    if (!found) {
        // Even the minimum capacity busts the budget: report the
        // minimum anyway (mirrors the paper keeping Oh_P at 2 MB).
        org.capacityBytes = opts_.minCapacity;
        best.capacityBytes = opts_.minCapacity;
        best.model = estimator_.estimate(cell, org);
        warn("AreaSolver: ", cell.name,
             " cannot fit the area budget even at minimum capacity; "
             "reporting minimum");
    }
    return best;
}

} // namespace nvmcache
