#include "nvsim/tech.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/logging.hh"

namespace nvmcache {

namespace {

// Representative high-performance logic constants per node. Sources:
// ITRS interconnect tables and published CACTI/NVSim technology files,
// rounded. Ordered by descending node.
const TechNode kTable[] = {
    // node    FO4      R/m     C/m    vdd  saDelay  saE     saLeak  cellLeak wireD/m  wireE/m
    {180e-9, 65e-12, 0.6e5, 2.0e-10, 1.8, 1.30e-9, 16e-15, 4e-6, 20e-9, 4.0e-8, 6.5e-10},
    {120e-9, 43e-12, 1.0e5, 2.0e-10, 1.5, 0.86e-9, 11e-15, 6e-6, 60e-9, 4.5e-8, 4.5e-10},
    {90e-9, 32e-12, 1.5e5, 2.0e-10, 1.2, 0.64e-9, 7e-15, 8e-6, 120e-9, 5.0e-8, 2.9e-10},
    {65e-9, 23e-12, 2.5e5, 2.0e-10, 1.1, 0.46e-9, 6e-15, 9e-6, 160e-9, 5.5e-8, 2.4e-10},
    {45e-9, 16e-12, 4.0e5, 2.0e-10, 1.0, 0.32e-9, 5e-15, 10e-6, 200e-9, 6.5e-8, 2.0e-10},
    {32e-9, 11e-12, 7.0e5, 2.0e-10, 0.9, 0.22e-9, 4e-15, 11e-6, 230e-9, 7.5e-8, 1.6e-10},
    {22e-9, 8e-12, 12.0e5, 2.0e-10, 0.8, 0.16e-9, 3e-15, 12e-6, 260e-9, 9.0e-8, 1.3e-10},
};
constexpr std::size_t kN = sizeof(kTable) / sizeof(kTable[0]);

double
lerpLog(double x, double x0, double x1, double y0, double y1)
{
    double t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
    return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
}

} // namespace

TechNode
techAt(double node_m)
{
    if (node_m <= 0.0)
        panic("techAt: non-positive node");
    double node = std::clamp(node_m, kTable[kN - 1].node, kTable[0].node);

    // Find bracketing entries (table is descending in node).
    std::size_t hi = 0;
    while (hi + 1 < kN && kTable[hi + 1].node >= node)
        ++hi;
    if (hi + 1 == kN)
        return kTable[kN - 1];
    const TechNode &a = kTable[hi];     // larger node
    const TechNode &b = kTable[hi + 1]; // smaller node

    auto ip = [&](double TechNode::*f) {
        return lerpLog(node, a.node, b.node, a.*f, b.*f);
    };

    TechNode out;
    out.node = node;
    out.fo4Delay = ip(&TechNode::fo4Delay);
    out.wireResPerM = ip(&TechNode::wireResPerM);
    out.wireCapPerM = ip(&TechNode::wireCapPerM);
    out.vdd = ip(&TechNode::vdd);
    out.senseAmpDelay = ip(&TechNode::senseAmpDelay);
    out.senseAmpEnergy = ip(&TechNode::senseAmpEnergy);
    out.senseAmpLeak = ip(&TechNode::senseAmpLeak);
    out.sramCellLeak = ip(&TechNode::sramCellLeak);
    out.bufferedWireDelayPerM = ip(&TechNode::bufferedWireDelayPerM);
    out.bufferedWireEnergyPerM = ip(&TechNode::bufferedWireEnergyPerM);
    return out;
}

} // namespace nvmcache
