#include "nvsim/array.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmcache {

double
senseTime(const CellSpec &cell, const TechNode &tech,
          const Calibration &cal)
{
    switch (cell.klass) {
      case NvmClass::SRAM:
        // Full-swing differential pair: the base amplifier delay.
        return tech.senseAmpDelay;
      case NvmClass::PCRAM:
        // Current-mode sensing with a bias-settle penalty that scales
        // with the (older) node.
        return tech.senseAmpDelay +
               0.25e-9 * (cell.processNode.get() / 45e-9);
      case NvmClass::STTRAM: {
        // TMR read margin shrinks with the read voltage; sensing slows
        // accordingly (Jan's 0.08 V read is the paper's slowest).
        double v = cell.readVoltage.get();
        return tech.senseAmpDelay * (1.0 + cal.sttSenseCoeff / v);
      }
      case NvmClass::RRAM: {
        double v = cell.readVoltage.get();
        return tech.senseAmpDelay * (1.0 + cal.rramSenseCoeff / v);
      }
    }
    panic("bad NvmClass");
}

MatModel
buildMat(const CellSpec &cell, const TechNode &tech,
         const CacheOrgConfig &org, const Calibration &cal)
{
    MatModel mat;

    const double f = cell.processNode.get();
    const double cellArea = cell.cellSizeF2.get() * f * f;
    mat.cellPitch = std::sqrt(cellArea);

    const double core_w = double(org.matCols) * mat.cellPitch;
    const double core_h = double(org.matRows) * mat.cellPitch;
    mat.coreArea = core_w * core_h * cal.matLocalOverhead;

    // Border strip holds row decoders/drivers on one side and column
    // circuitry (sense amps, write drivers, muxes) on the other.
    const double border = cal.matBorder45 * (tech.node / 45e-9);
    mat.area = (core_w + border) * (core_h + border) *
               cal.matLocalOverhead;

    // --- timing --------------------------------------------------
    // Row decoder: ~1.2 FO4 per address bit plus predecode.
    const double addr_bits = std::log2(double(org.matRows));
    mat.decodeDelay = (2.0 + 1.2 * addr_bits) * tech.fo4Delay;

    // Distributed-RC wordline/bitline: 0.38 * R * C * L^2.
    auto rcDelay = [&](double len) {
        return 0.38 * tech.wireResPerM * tech.wireCapPerM * len * len;
    };
    mat.wordlineDelay = rcDelay(core_w);
    mat.bitlineDelay = rcDelay(core_h);

    mat.senseDelay = senseTime(cell, tech, cal);

    mat.readLatency = mat.decodeDelay + mat.wordlineDelay +
                      mat.bitlineDelay + mat.senseDelay;

    const double driver_delay = 4.0 * tech.fo4Delay;
    double set_pulse = 0.0, reset_pulse = 0.0;
    if (cell.klass == NvmClass::SRAM) {
        // SRAM write completes within the bitline swing.
        set_pulse = reset_pulse = mat.bitlineDelay + tech.senseAmpDelay;
    } else {
        set_pulse = cell.setPulse.get();
        reset_pulse = cell.resetPulse.get();
    }
    const double write_base =
        mat.decodeDelay + mat.wordlineDelay + driver_delay;
    mat.writeSetLatency = write_base + set_pulse;
    mat.writeResetLatency = write_base + reset_pulse;

    // --- energy ---------------------------------------------------
    const double bl_cap = core_h * tech.wireCapPerM;
    mat.bitlineEnergyPerBit =
        bl_cap * tech.vdd * tech.vdd + tech.senseAmpEnergy;

    switch (cell.klass) {
      case NvmClass::SRAM:
        // Reads half-swing the bitline pair; writes full-swing it.
        mat.readEnergyPerBit = 0.5 * mat.bitlineEnergyPerBit;
        mat.writeSetEnergyPerBit = mat.bitlineEnergyPerBit;
        mat.writeResetEnergyPerBit = mat.bitlineEnergyPerBit;
        break;
      case NvmClass::PCRAM:
        mat.readEnergyPerBit = cell.readEnergy.get();
        mat.writeSetEnergyPerBit = cell.setCurrent.get() *
                                   cal.pcramWriteVoltage *
                                   cell.setPulse.get() /
                                   cal.pcramDriverEfficiency;
        mat.writeResetEnergyPerBit = cell.resetCurrent.get() *
                                     cal.pcramWriteVoltage *
                                     cell.resetPulse.get() /
                                     cal.pcramDriverEfficiency;
        break;
      case NvmClass::STTRAM:
      case NvmClass::RRAM:
        mat.readEnergyPerBit =
            cell.readPower.get() * mat.senseDelay;
        mat.writeSetEnergyPerBit =
            cell.setEnergy.get() / cal.nvmDriverEfficiency;
        mat.writeResetEnergyPerBit =
            cell.resetEnergy.get() / cal.nvmDriverEfficiency;
        break;
    }

    // --- leakage ----------------------------------------------------
    // Peripheral leakage per mat (decoders, drivers, sense amps),
    // scaled by supply relative to 45 nm; NVM cells themselves do not
    // leak, SRAM cells do.
    mat.leakage = cal.matLeak45 * (tech.vdd / 1.0);
    if (cell.klass == NvmClass::SRAM) {
        mat.leakage += double(org.matRows) * double(org.matCols) *
                       tech.sramCellLeak;
    }

    return mat;
}

} // namespace nvmcache
