/**
 * @file
 * Architectural LLC model: the interface between circuit-level
 * estimation (nvsim) and system simulation (sim).
 *
 * One LlcModel corresponds to one column of the paper's Table III:
 * everything the full-system simulator needs to model a last-level
 * cache built from a given memory cell.
 */

#ifndef NVMCACHE_NVSIM_LLC_MODEL_HH
#define NVMCACHE_NVSIM_LLC_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "nvm/cell.hh"

namespace nvmcache {

/**
 * Timing / energy / area model of one LLC configuration.
 * Canonical units: seconds, joules, watts, square metres, bytes.
 */
struct LlcModel
{
    std::string name;          ///< citation name, e.g. "Oh"
    NvmClass klass = NvmClass::SRAM;
    std::uint64_t capacityBytes = 0;

    double area = 0.0;             ///< m^2
    double tagLatency = 0.0;       ///< s, tag lookup
    double readLatency = 0.0;      ///< s, data read (eq 4)
    double writeLatencySet = 0.0;  ///< s, data write, SET path (eq 5)
    double writeLatencyReset = 0.0;///< s, data write, RESET path

    double eHit = 0.0;    ///< J, E_dyn,hit  = E_tag + E_data-read  (eq 6)
    double eMiss = 0.0;   ///< J, E_dyn,miss = E_tag               (eq 7)
    double eWrite = 0.0;  ///< J, E_dyn,write= E_tag + E_data-write(eq 8)
    double leakage = 0.0; ///< W, total cache leakage power

    /**
     * Exposed data-write latency. A line write drives SET and RESET
     * transitions concurrently across the line's bits, so the line
     * completes when the slower transition does.
     */
    double
    writeLatency() const
    {
        return std::max(writeLatencySet, writeLatencyReset);
    }

    /** Citation name with class subscript ("Oh_P"). */
    std::string citationName() const;
};

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_LLC_MODEL_HH
