/**
 * @file
 * Fixed-area capacity solver (paper §IV-C).
 *
 * Given an area budget (the SRAM baseline's 6.55 mm^2) and a cell
 * technology, find the largest power-of-two capacity whose estimated
 * LLC area fits the budget. This is the "capacity-limited"
 * configuration the paper argues matches industry practice.
 */

#ifndef NVMCACHE_NVSIM_AREA_SOLVER_HH
#define NVMCACHE_NVSIM_AREA_SOLVER_HH

#include <cstdint>

#include "nvm/cell.hh"
#include "nvsim/config.hh"
#include "nvsim/estimator.hh"

namespace nvmcache {

/** Result of a fixed-area solve. */
struct AreaSolveResult
{
    std::uint64_t capacityBytes = 0;
    LlcModel model; ///< estimate at the chosen capacity
};

class AreaSolver
{
  public:
    struct Options
    {
        std::uint64_t minCapacity = 1ull << 20;   ///< 1 MB
        std::uint64_t maxCapacity = 1024ull << 20;///< 1 GB
        /**
         * Budget slack: a candidate fits if area <= budget * (1 +
         * slack). The paper keeps Oh_P at 2 MB although its 2 MB area
         * (6.85 mm^2) slightly exceeds the 6.55 mm^2 SRAM budget, so
         * the default tolerates ~5%.
         */
        double slack = 0.05;
    };

    explicit AreaSolver(Estimator estimator);
    AreaSolver(Estimator estimator, Options opts);

    /**
     * Largest power-of-two capacity fitting @p areaBudget (m^2).
     * Other organization fields of @p org are reused per candidate.
     */
    AreaSolveResult solve(const CellSpec &cell, double areaBudget,
                          CacheOrgConfig org) const;

  private:
    Estimator estimator_;
    Options opts_;
};

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_AREA_SOLVER_HH
