/**
 * @file
 * Mat (subarray) level circuit model: decoder, wordline, bitline,
 * sense amplifiers, and the per-class cell read/write circuits.
 */

#ifndef NVMCACHE_NVSIM_ARRAY_HH
#define NVMCACHE_NVSIM_ARRAY_HH

#include "nvm/cell.hh"
#include "nvsim/config.hh"
#include "nvsim/tech.hh"

namespace nvmcache {

/** Derived electrical/physical properties of one mat. */
struct MatModel
{
    double cellPitch = 0.0;   ///< m, cell side (square-cell approx.)
    double area = 0.0;        ///< m^2, including border peripherals
    double coreArea = 0.0;    ///< m^2, cell array only

    double decodeDelay = 0.0;   ///< s, row decoder
    double wordlineDelay = 0.0; ///< s
    double bitlineDelay = 0.0;  ///< s
    double senseDelay = 0.0;    ///< s, class-specific sensing

    double readLatency = 0.0;      ///< s, in-mat read (t_read,mat)
    double writeSetLatency = 0.0;  ///< s, in-mat SET write
    double writeResetLatency = 0.0;///< s, in-mat RESET write

    double readEnergyPerBit = 0.0;     ///< J
    double writeSetEnergyPerBit = 0.0; ///< J
    double writeResetEnergyPerBit = 0.0; ///< J
    double bitlineEnergyPerBit = 0.0;  ///< J, array access overhead

    double leakage = 0.0; ///< W, mat peripherals (+cells for SRAM)
};

/**
 * Build the mat model for a cell technology.
 *
 * @param cell  Completed cell spec (requires the class's NVSim set).
 * @param tech  Peripheral constants at the cell's process node.
 * @param org   Cache organization (mat dimensions).
 * @param cal   Calibration constants.
 */
MatModel buildMat(const CellSpec &cell, const TechNode &tech,
                  const CacheOrgConfig &org, const Calibration &cal);

/** Class-specific sense time (used for both data and tag arrays). */
double senseTime(const CellSpec &cell, const TechNode &tech,
                 const Calibration &cal);

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_ARRAY_HH
