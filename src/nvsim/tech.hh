/**
 * @file
 * CMOS peripheral technology scaling used by the circuit estimator.
 *
 * A small ITRS-flavoured table of per-node constants, log-log
 * interpolated for nodes between table entries. Values are
 * representative of high-performance logic processes; the goal is
 * faithful *scaling behaviour* across the 22-120 nm range spanned by
 * the Table II cells, not sign-off accuracy.
 */

#ifndef NVMCACHE_NVSIM_TECH_HH
#define NVMCACHE_NVSIM_TECH_HH

namespace nvmcache {

/** Peripheral-circuit constants at one process node. */
struct TechNode
{
    double node;          ///< m (feature size F)
    double fo4Delay;      ///< s, fanout-of-4 inverter delay
    double wireResPerM;   ///< ohm/m, intermediate metal
    double wireCapPerM;   ///< F/m
    double vdd;           ///< V, peripheral supply
    double senseAmpDelay; ///< s
    double senseAmpEnergy;///< J per sensing event
    double senseAmpLeak;  ///< W per sense amplifier
    double sramCellLeak;  ///< W per 6T SRAM cell (hi-perf)
    double bufferedWireDelayPerM; ///< s/m, repeated global wire
    double bufferedWireEnergyPerM;///< J/(m*bit) switched
};

/**
 * Interpolated technology constants at an arbitrary node (clamped to
 * the 16-180 nm table range).
 */
TechNode techAt(double node_m);

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_TECH_HH
