/**
 * @file
 * Circuit-level LLC estimator: our from-scratch stand-in for NVSim.
 *
 * Given a completed cell spec (nvm/) and a cache organization, the
 * estimator derives a full LlcModel — the paper's Table III row — by
 * composing the mat model (array.hh), the H-tree model (htree.hh) and
 * an in-technology tag array:
 *
 *   t_read  ~ 2 * t_Htree + t_read,mat    (eq 4)
 *   t_write ~ 1 * t_Htree + t_write,mat   (eq 5)
 *   E_hit   = E_tag + E_data-read         (eq 6)
 *   E_miss  = E_tag                       (eq 7)
 *   E_write = E_tag + E_data-write        (eq 8)
 *
 * Estimation is pure in (cell, org, calibration), so results are
 * memoized: design-space sweeps and the fixed-area capacity solver
 * re-request the same points constantly and pay for each exactly
 * once. The cache is thread-safe and shared between copies of an
 * Estimator (copies keep the same calibration).
 */

#ifndef NVMCACHE_NVSIM_ESTIMATOR_HH
#define NVMCACHE_NVSIM_ESTIMATOR_HH

#include <cstdint>
#include <memory>

#include "nvm/cell.hh"
#include "nvsim/config.hh"
#include "nvsim/llc_model.hh"

namespace nvmcache {

class Estimator
{
  public:
    explicit Estimator(Calibration cal = Calibration());

    /**
     * Estimate the LLC model for @p cell at organization @p org, or
     * return the memoized result of an identical earlier call.
     * The cell spec must be simulator-ready (missingFields empty);
     * fatal() otherwise, since silently guessing here would defeat
     * the apples-to-apples goal.
     */
    LlcModel estimate(const CellSpec &cell,
                      const CacheOrgConfig &org) const;

    const Calibration &calibration() const { return cal_; }

    /** Distinct (cell, org) points actually computed. */
    std::uint64_t estimatesComputed() const;
    /** estimate() calls served from the memo. */
    std::uint64_t estimateCacheHits() const;

  private:
    struct Memo;

    LlcModel estimateUncached(const CellSpec &cell,
                              const CacheOrgConfig &org) const;

    Calibration cal_;
    std::shared_ptr<Memo> memo_; ///< shared so copies reuse results
};

} // namespace nvmcache

#endif // NVMCACHE_NVSIM_ESTIMATOR_HH
