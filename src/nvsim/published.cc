#include "nvsim/published.hh"

#include "nvm/model_library.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace nvmcache {

std::string
LlcModel::citationName() const
{
    if (klass == NvmClass::SRAM)
        return name;
    return name + "_" + classSubscript(klass);
}

std::string
toString(CapacityMode mode)
{
    return mode == CapacityMode::FixedCapacity ? "fixed-capacity"
                                               : "fixed-area";
}

namespace {

/**
 * Build one Table III row. All arguments in the table's display units
 * (mm^2, ns, nJ, W, MB); stored canonically.
 */
LlcModel
row(const std::string &name, NvmClass klass, double capacity_mb,
    double area_mm2, double tag_ns, double read_ns, double wset_ns,
    double wreset_ns, double ehit_nj, double emiss_nj, double ewrite_nj,
    double leak_w)
{
    LlcModel m;
    m.name = name;
    m.klass = klass;
    m.capacityBytes = std::uint64_t(capacity_mb * 1024.0 * 1024.0);
    m.area = area_mm2 * 1e-6;
    m.tagLatency = tag_ns * kNano;
    m.readLatency = read_ns * kNano;
    m.writeLatencySet = wset_ns * kNano;
    m.writeLatencyReset = wreset_ns * kNano;
    m.eHit = ehit_nj * kNano;
    m.eMiss = emiss_nj * kNano;
    m.eWrite = ewrite_nj * kNano;
    m.leakage = leak_w;
    return m;
}

std::vector<LlcModel>
buildFixedCapacity()
{
    using C = NvmClass;
    std::vector<LlcModel> v;
    // name      class      MB  area   tag    read   wSet     wReset   eHit   eMiss  eWrite   leak
    v.push_back(row("Oh", C::PCRAM, 2, 6.847, 0.740, 1.907, 181.206,
                    11.206, 0.840, 0.042, 225.413, 0.062));
    v.push_back(row("Chen", C::PCRAM, 2, 4.104, 0.604, 0.607, 80.491,
                    60.491, 0.421, 0.025, 34.108, 0.071));
    v.push_back(row("Kang", C::PCRAM, 2, 4.591, 0.656, 1.497, 301.018,
                    51.018, 0.678, 0.033, 375.073, 0.061));
    v.push_back(row("Close", C::PCRAM, 2, 2.855, 0.582, 0.820, 20.681,
                    20.681, 0.437, 0.023, 51.116, 0.039));
    v.push_back(row("Chung", C::STTRAM, 2, 1.452, 1.240, 1.763, 11.751,
                    11.751, 0.209, 0.082, 1.332, 0.166));
    v.push_back(row("Jan", C::STTRAM, 2, 9.171, 1.423, 3.072, 7.878,
                    7.878, 0.188, 0.077, 2.305, 0.048));
    v.push_back(row("Umeki", C::STTRAM, 2, 4.348, 1.208, 2.715, 11.916,
                    11.916, 0.173, 0.058, 1.644, 0.295));
    v.push_back(row("Xue", C::STTRAM, 2, 1.585, 1.156, 2.878, 4.038,
                    4.038, 0.251, 0.121, 0.597, 0.115));
    v.push_back(row("Hayakawa", C::RRAM, 2, 0.915, 1.396, 1.722, 20.716,
                    20.716, 0.263, 0.078, 0.952, 0.194));
    v.push_back(row("Zhang", C::RRAM, 2, 0.307, 1.722, 2.160, 300.834,
                    300.834, 0.217, 0.086, 0.523, 0.151));
    v.push_back(row("SRAM", C::SRAM, 2, 6.548, 0.439, 1.234, 0.515,
                    0.515, 0.565, 0.011, 0.537, 3.438));
    return v;
}

std::vector<LlcModel>
buildFixedArea()
{
    using C = NvmClass;
    std::vector<LlcModel> v;
    // Area is the 6.55 mm^2 budget for all rows (the table's bottom
    // block reports capacity instead; we carry the budget as area).
    const double kBudget = 6.548;
    // name      class       MB   area    tag    read   wSet     wReset   eHit   eMiss  eWrite   leak
    v.push_back(row("Oh", C::PCRAM, 2, kBudget, 0.740, 1.909, 181.206,
                    11.206, 0.840, 0.042, 225.413, 0.062));
    // Chen's fixed-area set latency is garbled in the source scan;
    // reconstructed as reset + the same 20 ns set/reset gap the
    // fixed-capacity row shows.
    v.push_back(row("Chen", C::PCRAM, 4, kBudget, 0.607, 1.428, 81.170,
                    61.170, 0.496, 0.030, 33.599, 0.100));
    v.push_back(row("Kang", C::PCRAM, 2, kBudget, 0.656, 1.497, 301.018,
                    51.018, 0.678, 0.033, 375.073, 0.061));
    v.push_back(row("Close", C::PCRAM, 4, kBudget, 0.581, 0.789, 20.460,
                    20.460, 1.003, 0.029, 50.912, 0.137));
    v.push_back(row("Chung", C::STTRAM, 8, kBudget, 1.283, 3.262, 13.088,
                    13.088, 0.457, 0.083, 1.656, 0.661));
    v.push_back(row("Jan", C::STTRAM, 1, kBudget, 1.288, 2.074, 6.170,
                    6.170, 0.187, 0.080, 1.780, 0.025));
    v.push_back(row("Umeki", C::STTRAM, 2, kBudget, 1.208, 2.715, 11.916,
                    11.916, 0.173, 0.058, 1.644, 0.295));
    v.push_back(row("Xue", C::STTRAM, 8, kBudget, 1.229, 3.378, 3.928,
                    3.928, 0.683, 0.123, 0.912, 0.828));
    v.push_back(row("Hayakawa", C::RRAM, 32, kBudget, 1.690, 2.536,
                    20.735, 20.735, 0.715, 0.088, 1.458, 3.896));
    v.push_back(row("Zhang", C::RRAM, 128, kBudget, 2.392, 9.537,
                    304.936, 304.936, 0.605, 0.089, 0.921, 9.000));
    v.push_back(row("SRAM", C::SRAM, 2, kBudget, 0.439, 1.234, 0.515,
                    0.515, 0.565, 0.011, 0.537, 3.438));
    return v;
}

} // namespace

const std::vector<LlcModel> &
publishedLlcModels(CapacityMode mode)
{
    static const std::vector<LlcModel> fixed_cap = buildFixedCapacity();
    static const std::vector<LlcModel> fixed_area = buildFixedArea();
    return mode == CapacityMode::FixedCapacity ? fixed_cap : fixed_area;
}

const LlcModel &
publishedLlcModel(const std::string &name, CapacityMode mode)
{
    for (const LlcModel &m : publishedLlcModels(mode))
        if (m.name == name)
            return m;
    fatal("unknown published LLC model '", name, "'");
}

const LlcModel &
sramBaselineLlc()
{
    return publishedLlcModel("SRAM", CapacityMode::FixedCapacity);
}

} // namespace nvmcache
