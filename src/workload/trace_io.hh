/**
 * @file
 * Binary trace file I/O.
 *
 * The characterization framework is trace-agnostic: anything that
 * yields MemAccess records works. This module defines a compact
 * on-disk format so users can run the pipeline on *real* traces
 * (e.g. converted PRISM/DynamoRIO output) instead of the synthetic
 * suite, and so synthetic traces can be exported for inspection.
 *
 * Format "NVMT" v1, little-endian:
 *   header: magic 'N''V''M''T', u32 version, u64 record count
 *   record: u64 addr | kind in the two MSBs, u16 nonMemInstrs
 * Addresses are limited to 2^62, which loses nothing for user-space
 * virtual addresses.
 */

#ifndef NVMCACHE_WORKLOAD_TRACE_IO_HH
#define NVMCACHE_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nvmcache {

/**
 * In-memory trace backed by a loaded file (or any record vector).
 * Replayable: reset() rewinds.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(std::vector<MemAccess> records);

    bool next(MemAccess &out) override;
    void reset() override;

    std::size_t size() const { return records_.size(); }

  private:
    std::vector<MemAccess> records_;
    std::size_t pos_ = 0;
};

/**
 * Write @p source's remaining records to @p path. The source is
 * reset before and after writing. Returns the record count.
 * fatal() on I/O failure.
 */
std::uint64_t writeTraceFile(const std::string &path,
                             TraceSource &source);

/**
 * Load a trace file written by writeTraceFile.
 *
 * Throws std::runtime_error — naming the file and the defect — for
 * anything malformed: unopenable path, bad magic, unsupported
 * version, or a record count that disagrees with the file's actual
 * payload size (truncation/corruption). Trace files are user-supplied
 * input, so these are recoverable conditions, not fatal() programming
 * errors.
 */
FileTrace readTraceFile(const std::string &path);

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_TRACE_IO_HH
