#include "workload/recorded_trace.hh"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hh"
#include "util/varint.hh"
#include "util/wire.hh"

namespace nvmcache {

std::shared_ptr<const RecordedTrace>
RecordedTrace::record(const GeneratorConfig &cfg,
                      std::uint32_t numThreads)
{
    if (numThreads == 0)
        fatal("RecordedTrace: need at least one thread");

    std::shared_ptr<RecordedTrace> trace(new RecordedTrace());
    trace->tracks_.resize(numThreads);

    std::array<MemAccess, 256> batch;
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        SyntheticTrace gen(cfg, t, numThreads);
        Track &track = trace->tracks_[t];
        const std::uint64_t expected =
            cfg.totalAccesses / numThreads +
            (t == 0 ? cfg.totalAccesses % numThreads : 0);
        // Deltas are mostly <= 4 bytes and gaps 1 byte; 6 per access
        // over-reserves slightly, then we trim once below.
        track.stream.reserve(expected * 6);
        track.kinds.reserve(expected / 4 + 1);

        std::uint64_t prev = 0;
        std::size_t n;
        while ((n = gen.fill(batch)) > 0) {
            for (std::size_t i = 0; i < n; ++i) {
                const MemAccess &a = batch[i];
                putVarint(track.stream,
                          zigzag(std::int64_t(a.addr - prev)));
                prev = a.addr;
                putVarint(track.stream, a.nonMemInstrs);
                if ((track.count & 3) == 0)
                    track.kinds.push_back(0);
                track.kinds.back() |= std::uint8_t(
                    std::uint8_t(a.kind) << ((track.count & 3) * 2));
                ++track.count;
            }
        }
        track.stream.insert(track.stream.end(), kVarintPad, 0);
        track.stream.shrink_to_fit();
        track.kinds.shrink_to_fit();
    }
    return trace;
}

std::uint64_t
RecordedTrace::accesses(std::uint32_t thread) const
{
    if (thread >= tracks_.size())
        fatal("RecordedTrace: bad thread index ", thread);
    return tracks_[thread].count;
}

std::uint64_t
RecordedTrace::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const Track &t : tracks_)
        total += t.count;
    return total;
}

std::uint64_t
RecordedTrace::packedBytes() const
{
    std::uint64_t bytes = 0;
    for (const Track &t : tracks_)
        bytes += t.stream.size() + t.kinds.size();
    return bytes;
}

TraceCursor
RecordedTrace::cursor(std::uint32_t thread) const
{
    if (thread >= tracks_.size())
        fatal("RecordedTrace: bad thread index ", thread);
    return TraceCursor(&tracks_[thread]);
}

std::vector<TraceCursor>
RecordedTrace::cursors() const
{
    std::vector<TraceCursor> all;
    all.reserve(tracks_.size());
    for (const Track &t : tracks_)
        all.push_back(TraceCursor(&t));
    return all;
}

std::size_t
TraceCursor::fill(std::span<MemAccess> out)
{
    if (!track_)
        return 0;
    const std::uint64_t left = track_->count - idx_;
    const std::size_t n =
        std::size_t(std::min<std::uint64_t>(out.size(), left));
    const std::uint8_t *p = pos_;
    const std::uint8_t *kinds = track_->kinds.data();
    std::uint64_t addr = addr_;
    std::uint64_t idx = idx_;
    for (std::size_t i = 0; i < n; ++i, ++idx) {
        addr += std::uint64_t(unzigzag(getVarintFast(p)));
        const std::uint64_t gap = getVarintFast(p);
        MemAccess &a = out[i];
        a.addr = addr;
        a.kind = AccessKind((kinds[idx >> 2] >> ((idx & 3) * 2)) & 3);
        a.nonMemInstrs = std::uint32_t(gap);
    }
    pos_ = p;
    addr_ = addr;
    idx_ = idx;
    return n;
}

std::uint32_t
TraceCursor::fillBlock(TraceBlock &out)
{
    if (!track_) {
        out.count = 0;
        return 0;
    }
    const std::uint64_t left = track_->count - idx_;
    const std::uint32_t n = std::uint32_t(
        std::min<std::uint64_t>(TraceBlock::kCapacity, left));
    const std::uint8_t *p = pos_;
    const std::uint8_t *kinds = track_->kinds.data();
    std::uint64_t addr = addr_;
    std::uint64_t idx = idx_;
    for (std::uint32_t i = 0; i < n; ++i, ++idx) {
        addr += std::uint64_t(unzigzag(getVarintFast(p)));
        const std::uint64_t gap = getVarintFast(p);
        out.addr[i] = addr;
        out.gap[i] = std::uint32_t(gap);
        out.kind[i] = (kinds[idx >> 2] >> ((idx & 3) * 2)) & 3;
    }
    pos_ = p;
    addr_ = addr;
    idx_ = idx;
    out.count = n;
    return n;
}

void
TraceCursor::reset()
{
    if (!track_)
        return;
    pos_ = track_->stream.data();
    idx_ = 0;
    addr_ = 0;
}

std::string
RecordedTrace::serialize() const
{
    WireWriter w;
    w.putU32(std::uint32_t(tracks_.size()));
    for (const Track &track : tracks_) {
        w.putU64(track.count);
        w.putU64(track.stream.size());
        w.putBytes(track.stream.data(), track.stream.size());
        w.putU64(track.kinds.size());
        w.putBytes(track.kinds.data(), track.kinds.size());
    }
    return w.take();
}

std::shared_ptr<const RecordedTrace>
RecordedTrace::deserialize(const std::string &payload)
{
    WireReader r(payload);
    const std::uint32_t numTracks = r.getU32();
    std::shared_ptr<RecordedTrace> trace(new RecordedTrace());
    trace->tracks_.resize(numTracks);
    for (std::uint32_t t = 0; t < numTracks; ++t) {
        Track &track = trace->tracks_[t];
        track.count = r.getU64();
        const std::string stream = r.getStr();
        track.stream.assign(stream.begin(), stream.end());
        const std::string kinds = r.getStr();
        track.kinds.assign(kinds.begin(), kinds.end());
        // The 2-bit kind column must cover count accesses or replay
        // would read past its end.
        if (track.kinds.size() * 4 < track.count)
            throw std::runtime_error(
                "RecordedTrace payload: kind column too short");
    }
    r.expectEnd();
    return trace;
}

bool
RecordedTraceSource::next(MemAccess &out)
{
    if (pos_ == n_) {
        n_ = std::uint32_t(cur_.fill(buf_));
        pos_ = 0;
        if (n_ == 0)
            return false;
    }
    out = buf_[pos_++];
    return true;
}

void
RecordedTraceSource::reset()
{
    cur_.reset();
    pos_ = n_ = 0;
}

} // namespace nvmcache
