#include "workload/generators.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <string>

#include "util/logging.hh"

namespace nvmcache {

namespace {

constexpr std::uint64_t kLine = 64;
constexpr std::uint64_t kRegionAlign = 1ull << 22; ///< 4 MB spacing

/** Largest power of two <= x (min 1). */
std::uint64_t
floorPow2(std::uint64_t x)
{
    if (x == 0)
        return 1;
    return std::uint64_t(1) << (63 - std::countl_zero(x));
}

/** Deterministic sub-line word offset for a line index. */
std::uint64_t
wordOffset(std::uint64_t line)
{
    std::uint64_t h = line * 0x9e3779b97f4a7c15ull;
    return ((h >> 57) & 7) * 8;
}

const char *
kindName(StreamConfig::Kind k)
{
    switch (k) {
      case StreamConfig::Kind::Zipf:
        return "Zipf";
      case StreamConfig::Kind::Uniform:
        return "Uniform";
      case StreamConfig::Kind::Sequential:
        return "Sequential";
      case StreamConfig::Kind::Chase:
        return "Chase";
    }
    return "?";
}

/**
 * Reject configuration values the generator would otherwise silently
 * misbehave on (zero-probability streams that still consume alias
 * slots, sub-line regions rounding to garbage, non-positive Zipf
 * exponents breaking the rejection-inversion envelope). @p where
 * names the stream, e.g. "phase 1 stores[0]".
 */
void
validateStream(const StreamConfig &sc, const std::string &where)
{
    if (!(sc.weight > 0.0))
        fatal("SyntheticTrace: stream ", where, " (",
              kindName(sc.kind), "): weight must be > 0, got ",
              sc.weight);
    if (sc.regionBytes < kLine)
        fatal("SyntheticTrace: stream ", where, " (",
              kindName(sc.kind), "): regionBytes must be >= ", kLine,
              ", got ", sc.regionBytes);
    if (sc.kind == StreamConfig::Kind::Zipf && !(sc.zipfSkew > 0.0))
        fatal("SyntheticTrace: stream ", where, " (",
              kindName(sc.kind), "): zipfSkew must be > 0, got ",
              sc.zipfSkew);
}

} // namespace

SyntheticTrace::SyntheticTrace(const GeneratorConfig &cfg,
                               std::uint32_t threadId,
                               std::uint32_t numThreads)
    : cfg_(cfg), threadId_(threadId), numThreads_(numThreads),
      rng_(deriveSeed(cfg.seed, threadId))
{
    if (numThreads_ == 0 || threadId_ >= numThreads_)
        fatal("SyntheticTrace: bad thread ids");
    if (!cfg_.phases.empty() && !cfg_.tenantMixes.empty())
        fatal("SyntheticTrace: phases and tenantMixes are mutually "
              "exclusive");
    if (cfg_.warmupFraction < 0.0 || cfg_.warmupFraction >= 1.0)
        fatal("SyntheticTrace: warmupFraction must be in [0, 1), "
              "got ", cfg_.warmupFraction);
    length_ = cfg_.totalAccesses / numThreads_;
    if (threadId_ == 0)
        length_ += cfg_.totalAccesses % numThreads_;
    warmLength_ =
        std::uint64_t(cfg_.warmupFraction * double(length_));
    buildStreams();
}

void
SyntheticTrace::buildStreams()
{
    // Carve disjoint regions out of one flat arena: shared streams
    // get one region for all threads; private streams get a
    // per-thread slice. Every thread walks the SAME allocation
    // sequence — including tenant profiles it does not draw from —
    // so region layout is identical across threads and tenants never
    // overlap.
    std::uint64_t cursor = kRegionAlign; // keep address 0 unused

    struct RegionSlot
    {
        std::uint64_t base = 0;
        std::uint64_t lines = 0;
        bool shared = false;
    };
    std::map<std::int32_t, RegionSlot> regionsById;

    // Lay out (and validate) one stream; materialize its sampler
    // state into *out when this thread actually draws from it.
    auto layout = [&](const StreamConfig &sc, const std::string &where,
                      StreamState *out) {
        validateStream(sc, where);
        const std::uint64_t lines = floorPow2(
            std::max<std::uint64_t>(1, sc.regionBytes / kLine));

        std::uint64_t base = 0;
        auto slot = sc.regionId >= 0 ? regionsById.find(sc.regionId)
                                     : regionsById.end();
        if (sc.regionId >= 0 && slot != regionsById.end()) {
            if (slot->second.lines != lines ||
                slot->second.shared != sc.shared)
                fatal("SyntheticTrace: stream ", where, ": regionId ",
                      sc.regionId, " reused with a different "
                      "regionBytes or shared flag");
            base = slot->second.base;
        } else {
            const std::uint64_t span = lines * kLine;
            const std::uint64_t padded = (span + kRegionAlign - 1) /
                                         kRegionAlign * kRegionAlign;
            if (sc.shared) {
                base = cursor;
                cursor += padded;
            } else {
                base = cursor + std::uint64_t(threadId_) * padded;
                cursor += padded * numThreads_;
            }
            if (sc.regionId >= 0)
                regionsById[sc.regionId] = {base, lines, sc.shared};
        }

        if (out) {
            out->cfg = sc;
            out->lines = lines;
            out->base = base;
            if (sc.kind == StreamConfig::Kind::Zipf) {
                out->zipf = std::make_unique<ZipfSampler>(lines,
                                                          sc.zipfSkew);
                out->scramble = 0x9e3779b97f4a7c15ull | 1ull;
            }
            out->chasePos = threadId_ % lines;
        }
    };

    auto setupKind = [&](const AccessMix &mix, KindState *ks,
                         const std::string &label) {
        std::vector<double> weights;
        if (ks)
            ks->streams.clear();
        for (std::size_t i = 0; i < mix.streams.size(); ++i) {
            const std::string where =
                label + "[" + std::to_string(i) + "]";
            if (ks) {
                StreamState st;
                layout(mix.streams[i], where, &st);
                weights.push_back(mix.streams[i].weight);
                ks->streams.push_back(std::move(st));
            } else {
                layout(mix.streams[i], where, nullptr);
            }
        }
        if (ks)
            ks->pick = weights.empty()
                           ? nullptr
                           : std::make_unique<DiscreteSampler>(weights);
    };

    // Lay out one full profile; @p ms == nullptr walks the
    // allocation/validation sequence without materializing (another
    // tenant's profile).
    auto setupProfile = [&](double loadFraction, double storeFraction,
                            const AccessMix &loads,
                            const AccessMix &stores,
                            const AccessMix &ifetches, MixSet *ms,
                            const std::string &label) {
        setupKind(loads, ms ? &ms->loads : nullptr, label + "loads");
        setupKind(stores, ms ? &ms->stores : nullptr,
                  label + "stores");
        setupKind(ifetches, ms ? &ms->ifetches : nullptr,
                  label + "ifetches");

        // Effective kind fractions: a kind with an empty mixture
        // emits nothing and its configured share falls through to
        // loads, which take the remainder — so the three fractions
        // sum to exactly 1.
        const double effStore =
            stores.streams.empty() ? 0.0 : storeFraction;
        const double effIfetch =
            ifetches.streams.empty()
                ? 0.0
                : 1.0 - loadFraction - storeFraction;
        if (effStore < 0.0 || effIfetch < 0.0 ||
            effStore + effIfetch > 1.0)
            fatal("SyntheticTrace: ", label, "store/ifetch fractions "
                  "must be nonnegative and sum to <= 1 (store ",
                  effStore, ", ifetch ", effIfetch, ")");
        const double effLoad = 1.0 - effStore - effIfetch;
        if (effLoad > 0.0 && loads.streams.empty())
            fatal("SyntheticTrace: ", label, "nonzero load share but "
                  "the load mixture is empty");
        if (ms) {
            ms->effStore = effStore;
            ms->effIfetch = effIfetch;
            ms->effLoad = effLoad;
        }
    };

    sets_.clear();
    if (!cfg_.phases.empty()) {
        sets_.resize(cfg_.phases.size());
        for (std::size_t i = 0; i < cfg_.phases.size(); ++i) {
            const MixProfile &p = cfg_.phases[i];
            setupProfile(p.loadFraction, p.storeFraction, p.loads,
                         p.stores, p.ifetches, &sets_[i],
                         "phase " + std::to_string(i) + " ");
        }
    } else if (!cfg_.tenantMixes.empty()) {
        const std::size_t sel = threadId_ % cfg_.tenantMixes.size();
        sets_.resize(1);
        for (std::size_t i = 0; i < cfg_.tenantMixes.size(); ++i) {
            const MixProfile &p = cfg_.tenantMixes[i];
            setupProfile(p.loadFraction, p.storeFraction, p.loads,
                         p.stores, p.ifetches,
                         i == sel ? &sets_[0] : nullptr,
                         "tenant " + std::to_string(i) + " ");
        }
    } else {
        sets_.resize(1);
        setupProfile(cfg_.loadFraction, cfg_.storeFraction, cfg_.loads,
                     cfg_.stores, cfg_.ifetches, &sets_[0], "");
    }

    ++streamBuilds_;
}

std::uint64_t
SyntheticTrace::draw(KindState &ks)
{
    if (!ks.pick)
        panic("SyntheticTrace: drawing from an empty mixture");
    StreamState &st = ks.streams[(*ks.pick)(rng_)];

    std::uint64_t line = 0;
    switch (st.cfg.kind) {
      case StreamConfig::Kind::Zipf: {
        const std::uint64_t rank = (*st.zipf)(rng_);
        // Scatter ranks across the region so popularity does not
        // correlate with adjacency (st.lines is a power of two, so
        // the odd multiplier is a bijection).
        line = (rank * st.scramble) & (st.lines - 1);
        break;
      }
      case StreamConfig::Kind::Uniform:
        line = rng_.below(st.lines);
        break;
      case StreamConfig::Kind::Sequential: {
        const std::uint64_t bytes = st.lines * kLine;
        const std::uint64_t pos = st.seqPos % bytes;
        st.seqPos += st.cfg.stride;
        return st.base + (pos & ~std::uint64_t(7));
      }
      case StreamConfig::Kind::Chase:
        // Full-period LCG walk over the (power-of-two) line count.
        st.chasePos = (st.chasePos * 6364136223846793005ull +
                       1442695040888963407ull) &
                      (st.lines - 1);
        line = st.chasePos;
        break;
    }
    return st.base + line * kLine + wordOffset(line);
}

bool
SyntheticTrace::next(MemAccess &out)
{
    if (emitted_ >= length_)
        return false;
    // Phase selection: equal access-count segments, segment i of P
    // over [0, length_) — a single profile (the common case) skips
    // the division.
    MixSet &ms =
        sets_.size() == 1
            ? sets_[0]
            : sets_[std::min<std::uint64_t>(
                  sets_.size() - 1,
                  emitted_ * sets_.size() / length_)];
    ++emitted_;

    const double u = rng_.uniform();
    KindState *ks = nullptr;
    if (u < ms.effStore) {
        out.kind = AccessKind::Store;
        ks = &ms.stores;
    } else if (u < ms.effStore + ms.effIfetch) {
        out.kind = AccessKind::IFetch;
        ks = &ms.ifetches;
    } else {
        out.kind = AccessKind::Load;
        ks = &ms.loads;
    }

    out.addr = draw(*ks);
    out.nonMemInstrs =
        std::uint32_t(rng_.exponentialGap(cfg_.meanGap) - 1);
    return true;
}

std::size_t
SyntheticTrace::fill(std::span<MemAccess> out)
{
    std::size_t n = 0;
    while (n < out.size() && next(out[n]))
        ++n;
    return n;
}

void
SyntheticTrace::reset()
{
    // Rewind only: the stream structures (regions, samplers, picks)
    // are immutable after construction, so a reset just re-seeds the
    // RNG and rewinds the per-stream cursors. No reallocation.
    rng_ = Rng(deriveSeed(cfg_.seed, threadId_));
    emitted_ = 0;
    for (MixSet &ms : sets_)
        for (KindState *ks : {&ms.loads, &ms.stores, &ms.ifetches})
            for (StreamState &st : ks->streams) {
                st.seqPos = 0;
                st.chasePos = threadId_ % st.lines;
            }
}

std::vector<std::uint64_t>
warmupSplit(const GeneratorConfig &cfg, std::uint32_t numThreads)
{
    std::vector<std::uint64_t> warm(numThreads, 0);
    if (cfg.warmupFraction <= 0.0 || numThreads == 0)
        return warm;
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        std::uint64_t len = cfg.totalAccesses / numThreads;
        if (t == 0)
            len += cfg.totalAccesses % numThreads;
        warm[t] = std::uint64_t(cfg.warmupFraction * double(len));
    }
    return warm;
}

std::vector<std::unique_ptr<SyntheticTrace>>
buildThreadTraces(const GeneratorConfig &cfg, std::uint32_t numThreads)
{
    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    traces.reserve(numThreads);
    for (std::uint32_t t = 0; t < numThreads; ++t)
        traces.push_back(
            std::make_unique<SyntheticTrace>(cfg, t, numThreads));
    return traces;
}

} // namespace nvmcache
