#include "workload/generators.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace nvmcache {

namespace {

constexpr std::uint64_t kLine = 64;
constexpr std::uint64_t kRegionAlign = 1ull << 22; ///< 4 MB spacing

/** Largest power of two <= x (min 1). */
std::uint64_t
floorPow2(std::uint64_t x)
{
    if (x == 0)
        return 1;
    return std::uint64_t(1) << (63 - std::countl_zero(x));
}

/** Deterministic sub-line word offset for a line index. */
std::uint64_t
wordOffset(std::uint64_t line)
{
    std::uint64_t h = line * 0x9e3779b97f4a7c15ull;
    return ((h >> 57) & 7) * 8;
}

} // namespace

SyntheticTrace::SyntheticTrace(const GeneratorConfig &cfg,
                               std::uint32_t threadId,
                               std::uint32_t numThreads)
    : cfg_(cfg), threadId_(threadId), numThreads_(numThreads),
      rng_(deriveSeed(cfg.seed, threadId))
{
    if (numThreads_ == 0 || threadId_ >= numThreads_)
        fatal("SyntheticTrace: bad thread ids");
    length_ = cfg_.totalAccesses / numThreads_;
    if (threadId_ == 0)
        length_ += cfg_.totalAccesses % numThreads_;
    buildStreams();
}

void
SyntheticTrace::buildStreams()
{
    // Carve disjoint regions out of one flat arena: shared streams
    // get one region for all threads; private streams get a
    // per-thread slice.
    std::uint64_t cursor = kRegionAlign; // keep address 0 unused

    auto setup = [&](const AccessMix &mix, KindState &ks) {
        ks.streams.clear();
        std::vector<double> weights;
        for (const StreamConfig &sc : mix.streams) {
            StreamState st;
            st.cfg = sc;
            st.lines = floorPow2(std::max<std::uint64_t>(
                1, sc.regionBytes / kLine));

            const std::uint64_t span = st.lines * kLine;
            const std::uint64_t padded =
                (span + kRegionAlign - 1) / kRegionAlign * kRegionAlign;
            if (sc.shared) {
                st.base = cursor;
                cursor += padded;
            } else {
                st.base = cursor + std::uint64_t(threadId_) * padded;
                cursor += padded * numThreads_;
            }

            if (sc.kind == StreamConfig::Kind::Zipf) {
                st.zipf = std::make_unique<ZipfSampler>(st.lines,
                                                        sc.zipfSkew);
                st.scramble = 0x9e3779b97f4a7c15ull | 1ull;
            }
            st.chasePos = threadId_ % st.lines;
            weights.push_back(sc.weight);
            ks.streams.push_back(std::move(st));
        }
        ks.pick = weights.empty()
                      ? nullptr
                      : std::make_unique<DiscreteSampler>(weights);
    };

    setup(cfg_.loads, loads_);
    setup(cfg_.stores, stores_);
    setup(cfg_.ifetches, ifetches_);

    // Effective kind fractions: a kind with an empty mixture emits
    // nothing and its configured share falls through to loads, which
    // take the remainder — so the three fractions sum to exactly 1.
    effStore_ = stores_.pick ? cfg_.storeFraction : 0.0;
    effIfetch_ = ifetches_.pick
                     ? 1.0 - cfg_.loadFraction - cfg_.storeFraction
                     : 0.0;
    if (effStore_ < 0.0 || effIfetch_ < 0.0 ||
        effStore_ + effIfetch_ > 1.0)
        fatal("SyntheticTrace: store/ifetch fractions must be "
              "nonnegative and sum to <= 1 (store ", effStore_,
              ", ifetch ", effIfetch_, ")");
    effLoad_ = 1.0 - effStore_ - effIfetch_;
    if (effLoad_ > 0.0 && !loads_.pick)
        fatal("SyntheticTrace: nonzero load share but the load "
              "mixture is empty");

    ++streamBuilds_;
}

std::uint64_t
SyntheticTrace::draw(KindState &ks)
{
    if (!ks.pick)
        panic("SyntheticTrace: drawing from an empty mixture");
    StreamState &st = ks.streams[(*ks.pick)(rng_)];

    std::uint64_t line = 0;
    switch (st.cfg.kind) {
      case StreamConfig::Kind::Zipf: {
        const std::uint64_t rank = (*st.zipf)(rng_);
        // Scatter ranks across the region so popularity does not
        // correlate with adjacency (st.lines is a power of two, so
        // the odd multiplier is a bijection).
        line = (rank * st.scramble) & (st.lines - 1);
        break;
      }
      case StreamConfig::Kind::Uniform:
        line = rng_.below(st.lines);
        break;
      case StreamConfig::Kind::Sequential: {
        const std::uint64_t bytes = st.lines * kLine;
        const std::uint64_t pos = st.seqPos % bytes;
        st.seqPos += st.cfg.stride;
        return st.base + (pos & ~std::uint64_t(7));
      }
      case StreamConfig::Kind::Chase:
        // Full-period LCG walk over the (power-of-two) line count.
        st.chasePos = (st.chasePos * 6364136223846793005ull +
                       1442695040888963407ull) &
                      (st.lines - 1);
        line = st.chasePos;
        break;
    }
    return st.base + line * kLine + wordOffset(line);
}

bool
SyntheticTrace::next(MemAccess &out)
{
    if (emitted_ >= length_)
        return false;
    ++emitted_;

    const double u = rng_.uniform();
    KindState *ks = nullptr;
    if (u < effStore_) {
        out.kind = AccessKind::Store;
        ks = &stores_;
    } else if (u < effStore_ + effIfetch_) {
        out.kind = AccessKind::IFetch;
        ks = &ifetches_;
    } else {
        out.kind = AccessKind::Load;
        ks = &loads_;
    }

    out.addr = draw(*ks);
    out.nonMemInstrs =
        std::uint32_t(rng_.exponentialGap(cfg_.meanGap) - 1);
    return true;
}

std::size_t
SyntheticTrace::fill(std::span<MemAccess> out)
{
    std::size_t n = 0;
    while (n < out.size() && next(out[n]))
        ++n;
    return n;
}

void
SyntheticTrace::reset()
{
    // Rewind only: the stream structures (regions, samplers, picks)
    // are immutable after construction, so a reset just re-seeds the
    // RNG and rewinds the per-stream cursors. No reallocation.
    rng_ = Rng(deriveSeed(cfg_.seed, threadId_));
    emitted_ = 0;
    for (KindState *ks : {&loads_, &stores_, &ifetches_})
        for (StreamState &st : ks->streams) {
            st.seqPos = 0;
            st.chasePos = threadId_ % st.lines;
        }
}

std::vector<std::unique_ptr<SyntheticTrace>>
buildThreadTraces(const GeneratorConfig &cfg, std::uint32_t numThreads)
{
    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    traces.reserve(numThreads);
    for (std::uint32_t t = 0; t < numThreads; ++t)
        traces.push_back(
            std::make_unique<SyntheticTrace>(cfg, t, numThreads));
    return traces;
}

} // namespace nvmcache
