/**
 * @file
 * Uniform Workload API: kind + typed params -> validated
 * BenchmarkSpec.
 *
 * Mirrors the StudyRegistry redesign (core/study_registry.hh) one
 * layer down: every workload in the tree — the 20 Table V benchmarks,
 * the extra named workloads, and the parameterized server families
 * (kv / phased / tenants) — registers a *kind* with a typed parameter
 * schema, and every consumer (ExperimentRunner call sites, studies,
 * the daemon, the CLI, benches) resolves workloads through
 *
 *   "kv:skew=0.99,readRatio=0.95,keys=64M"
 *     -> WorkloadRegistry::resolve(spec string)
 *     -> kind lookup + per-parameter validation (named diagnostics)
 *     -> canonical name (sorted non-default params, normalized values)
 *     -> interned BenchmarkSpec (stable reference, built once)
 *
 * The canonical name is embedded in spec.name, and the generator
 * parameters it selects are byte-folded into every runKey/privKey by
 * the experiment engine — so two different parameterizations can never
 * share a memo, store, or coalescing slot, while two spellings of the
 * same parameterization ("keys=64M" vs "keys=67108864") resolve to
 * the identical interned spec.
 */

#ifndef NVMCACHE_WORKLOAD_WORKLOAD_REGISTRY_HH
#define NVMCACHE_WORKLOAD_WORKLOAD_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workload/suite.hh"

namespace nvmcache {

/** String-typed workload parameters ("skew" -> "0.99"). */
using WorkloadParams = std::map<std::string, std::string>;

/** One accepted parameter of a workload kind. */
struct WorkloadParamDef
{
    /** Value type: drives validation and canonical rendering. */
    enum class Type
    {
        Num,     ///< double ("0.99")
        NumList, ///< comma list of doubles ("0.95,0.5")
        Count,   ///< uint64 with binary K/M/G suffix ("64M")
        U32,     ///< uint32 ("4")
    };

    std::string key;
    Type type = Type::Num;
    std::string defaultValue; ///< canonical rendering
    std::string help;         ///< one-line meaning for listings
};

/** One registered workload kind. */
struct WorkloadKindDef
{
    std::string name;
    std::string suite;       ///< grouping label ("cpu2006", "server")
    std::string description;
    std::vector<WorkloadParamDef> params; ///< empty = fixed workload

    /**
     * Build the spec from the full canonicalized parameter map
     * (defaults overlaid with the caller's overrides). Must not set
     * spec.name (the registry stamps the canonical name) and throws
     * std::runtime_error naming the kind and parameter on semantic
     * errors the per-parameter type check cannot catch.
     */
    std::function<BenchmarkSpec(const WorkloadParams &)> build;
};

/**
 * Parse/render a Count value: plain digits or binary "K"/"M"/"G"
 * suffix. Both throw/produce canonical forms shared by the registry
 * and the CLI. parseCount throws std::runtime_error naming @p what.
 */
std::uint64_t parseCount(const std::string &what,
                         const std::string &token);
std::string renderCount(std::uint64_t value);

/**
 * Kind -> definition registry of every workload. global() carries the
 * Table V suite, the extra named workloads, and the server families;
 * resolved specs are interned so repeated resolution (and pointer
 * comparison) is cheap and stable for a process lifetime.
 *
 * All lookup errors are std::runtime_error with named tokens and the
 * valid alternatives listed — never process exit — so the daemon's
 * request parsing survives bad client input.
 */
class WorkloadRegistry
{
  public:
    void add(WorkloadKindDef def);

    bool contains(const std::string &kind) const;
    std::vector<std::string> kinds() const;

    /** Throws listing valid kinds when unknown. */
    const WorkloadKindDef &kind(const std::string &name) const;

    /**
     * Resolve a workload spec string — "gcc", "kv", or
     * "kv:skew=0.99,keys=64M" — to its interned spec. A list-typed
     * value keeps its commas: inside the parameter section, a
     * comma-token without '=' continues the previous value
     * ("phased:readRatios=0.95,0.5,warm=0.1" parses as
     * readRatios=[0.95,0.5], warm=0.1).
     */
    const BenchmarkSpec &resolve(const std::string &specString) const;

    /** resolve() with the kind and overrides already split. */
    const BenchmarkSpec &resolve(const std::string &kind,
                                 const WorkloadParams &params) const;

    /**
     * Canonical workload name: the kind alone when every override
     * equals its default, else kind + ':' + sorted "key=value" pairs
     * with normalized values. Validates like resolve() but does not
     * build the spec.
     */
    std::string canonicalName(const std::string &kind,
                              const WorkloadParams &params) const;

    /**
     * Generated usage text: one block per kind with its description
     * and parameter schema (the CLI's `nvmcache workloads` output).
     */
    std::string helpText() const;

    static const WorkloadRegistry &global();

  private:
    /** Validate keys and canonicalize values for @p def. */
    WorkloadParams canonicalParams(const WorkloadKindDef &def,
                                   const WorkloadParams &params) const;

    std::map<std::string, WorkloadKindDef> kinds_;
    mutable std::mutex mutex_;
    mutable std::map<std::string, std::unique_ptr<BenchmarkSpec>>
        interned_;
};

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_WORKLOAD_REGISTRY_HH
