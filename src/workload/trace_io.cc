#include "workload/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "util/logging.hh"

namespace nvmcache {

namespace {

constexpr char kMagic[4] = {'N', 'V', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kAddrMask = (1ull << 62) - 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

void
writeRaw(std::FILE *f, const void *data, std::size_t size,
         const std::string &path)
{
    if (std::fwrite(data, 1, size, f) != size)
        fatal("trace write failed: ", path);
}

void
readRaw(std::FILE *f, void *data, std::size_t size,
        const std::string &path)
{
    if (std::fread(data, 1, size, f) != size)
        fatal("trace read failed or truncated: ", path);
}

} // namespace

FileTrace::FileTrace(std::vector<MemAccess> records)
    : records_(std::move(records))
{
}

bool
FileTrace::next(MemAccess &out)
{
    if (pos_ >= records_.size())
        return false;
    out = records_[pos_++];
    return true;
}

void
FileTrace::reset()
{
    pos_ = 0;
}

std::uint64_t
writeTraceFile(const std::string &path, TraceSource &source)
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: ", path);

    writeRaw(f.get(), kMagic, sizeof(kMagic), path);
    writeRaw(f.get(), &kVersion, sizeof(kVersion), path);
    std::uint64_t count = 0;
    // Count placeholder; patched after the records are streamed.
    writeRaw(f.get(), &count, sizeof(count), path);

    source.reset();
    MemAccess a;
    while (source.next(a)) {
        if (a.addr > kAddrMask)
            fatal("trace address exceeds 2^62: ", a.addr);
        const std::uint64_t word =
            a.addr | (std::uint64_t(std::uint8_t(a.kind)) << 62);
        const std::uint16_t gap =
            a.nonMemInstrs > 0xffff ? 0xffff
                                    : std::uint16_t(a.nonMemInstrs);
        writeRaw(f.get(), &word, sizeof(word), path);
        writeRaw(f.get(), &gap, sizeof(gap), path);
        ++count;
    }
    source.reset();

    if (std::fseek(f.get(), sizeof(kMagic) + sizeof(kVersion),
                   SEEK_SET) != 0)
        fatal("trace seek failed: ", path);
    writeRaw(f.get(), &count, sizeof(count), path);
    return count;
}

namespace {

/**
 * fread for the load path: unlike readRaw, failures throw (corrupt or
 * truncated input files are a caller-recoverable condition, not a
 * programming error).
 */
void
loadRaw(std::FILE *f, void *data, std::size_t size,
        const std::string &path, const char *what)
{
    if (std::fread(data, 1, size, f) != size)
        throw std::runtime_error("truncated NVMT trace file (EOF in " +
                                 std::string(what) + "): " + path);
}

} // namespace

FileTrace
readTraceFile(const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw std::runtime_error("cannot open trace file: " + path);

    char magic[4];
    loadRaw(f.get(), magic, sizeof(magic), path, "header");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error(
            "not an NVMT trace file (bad magic): " + path);
    std::uint32_t version = 0;
    loadRaw(f.get(), &version, sizeof(version), path, "header");
    if (version != kVersion)
        throw std::runtime_error(
            "unsupported NVMT trace version " +
            std::to_string(version) + " (expected " +
            std::to_string(kVersion) + "): " + path);
    std::uint64_t count = 0;
    loadRaw(f.get(), &count, sizeof(count), path, "header");

    // Validate the declared record count against the payload actually
    // present before allocating or reading anything: a corrupt count
    // would otherwise turn into a giant reserve() or a slow walk to a
    // mid-record EOF.
    constexpr std::uint64_t kRecordBytes =
        sizeof(std::uint64_t) + sizeof(std::uint16_t);
    const long payloadStart = std::ftell(f.get());
    if (payloadStart < 0 || std::fseek(f.get(), 0, SEEK_END) != 0)
        throw std::runtime_error("cannot size trace file: " + path);
    const long end = std::ftell(f.get());
    if (end < 0 ||
        std::fseek(f.get(), payloadStart, SEEK_SET) != 0)
        throw std::runtime_error("cannot size trace file: " + path);
    const std::uint64_t payload = std::uint64_t(end - payloadStart);
    // Divide instead of multiplying so an adversarial count near
    // 2^64 cannot overflow the comparison.
    if (payload % kRecordBytes != 0 ||
        payload / kRecordBytes != count)
        throw std::runtime_error(
            "corrupt NVMT trace file: header declares " +
            std::to_string(count) + " records but the file holds " +
            std::to_string(payload) + " payload bytes (" +
            std::to_string(kRecordBytes) + " per record): " + path);

    std::vector<MemAccess> records;
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t word = 0;
        std::uint16_t gap = 0;
        loadRaw(f.get(), &word, sizeof(word), path, "record");
        loadRaw(f.get(), &gap, sizeof(gap), path, "record");
        MemAccess a;
        a.addr = word & kAddrMask;
        a.kind = AccessKind(std::uint8_t(word >> 62));
        a.nonMemInstrs = gap;
        records.push_back(a);
    }
    return FileTrace(std::move(records));
}

} // namespace nvmcache
