/**
 * @file
 * Record-once / replay-many trace materialization.
 *
 * Every study in the paper consumes each workload's trace many times
 * (11 LLC technologies per sweep, plus the core sweep and the PRISM
 * characterization), yet synthetic generation — Zipf rejection
 * sampling, alias-method mixture draws, exponential gaps — costs more
 * per access than the simulator itself in the Zipf-heavy workloads. A
 * RecordedTrace runs each per-thread generator exactly once and
 * freezes the sequence into compact per-thread SoA tracks:
 *
 *  - addresses as zigzag-varint deltas (consecutive references
 *    cluster by stream region, so deltas are short);
 *  - access kinds packed 2 bits each;
 *  - non-memory gaps as varints (mean ~2, almost always one byte).
 *
 * Replay decodes through TraceCursor::fill into caller batches with a
 * non-virtual inner loop, is bit-exact (every MemAccess field
 * round-trips losslessly), and is read-only after construction, so
 * one RecordedTrace is safely shared by any number of concurrent
 * simulations.
 */

#ifndef NVMCACHE_WORKLOAD_RECORDED_TRACE_HH
#define NVMCACHE_WORKLOAD_RECORDED_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/replay.hh"
#include "sim/types.hh"
#include "workload/generators.hh"

namespace nvmcache {

class TraceCursor;

/**
 * One benchmark's full set of per-thread traces, materialized once.
 * Immutable after record(); share freely across threads.
 */
class RecordedTrace
{
  public:
    /**
     * Generate and encode every thread's trace for @p cfg split
     * across @p numThreads, exactly as buildThreadTraces would
     * produce them.
     */
    static std::shared_ptr<const RecordedTrace>
    record(const GeneratorConfig &cfg, std::uint32_t numThreads);

    /**
     * Pack the recorded tracks into a self-contained byte payload
     * (for the persistent result store). Deterministic: the same
     * recording always serializes to the same bytes.
     */
    std::string serialize() const;

    /**
     * Rebuild a recording from serialize() output. Throws
     * std::runtime_error on any structural defect — callers treat
     * that as a store miss and re-record.
     */
    static std::shared_ptr<const RecordedTrace>
    deserialize(const std::string &payload);

    std::uint32_t threads() const
    {
        return std::uint32_t(tracks_.size());
    }

    /** Accesses recorded for one thread. */
    std::uint64_t accesses(std::uint32_t thread) const;

    /** Accesses recorded across all threads. */
    std::uint64_t totalAccesses() const;

    /** Resident size of the packed buffers, in bytes. */
    std::uint64_t packedBytes() const;

    /** Fresh replay cursor over one thread's track. */
    TraceCursor cursor(std::uint32_t thread) const;

    /** Fresh cursors for every thread, in thread order. */
    std::vector<TraceCursor> cursors() const;

  private:
    friend class TraceCursor;

    /** One thread's packed columns. */
    struct Track
    {
        std::vector<std::uint8_t> stream; ///< addr-delta + gap varints
        std::vector<std::uint8_t> kinds;  ///< 2-bit packed AccessKind
        std::uint64_t count = 0;          ///< accesses encoded
    };

    RecordedTrace() = default;

    std::vector<Track> tracks_;
};

/**
 * Non-virtual batched decoder over one recorded thread track. Holds
 * only replay position; the track data stays in the (shared, const)
 * RecordedTrace, which must outlive the cursor.
 */
class TraceCursor final : public ReplaySource
{
  public:
    TraceCursor() = default;

    /** Decode up to out.size() accesses; 0 at end of trace. */
    std::size_t fill(std::span<MemAccess> out) override;

    /**
     * Decode up to TraceBlock::kCapacity accesses into @p out's SoA
     * arrays (same position, same values as fill()); 0 at end.
     */
    std::uint32_t fillBlock(TraceBlock &out) override;

    /** Rewind to the beginning of the track. */
    void reset();

    std::uint64_t remaining() const
    {
        return track_ ? track_->count - idx_ : 0;
    }

  private:
    friend class RecordedTrace;

    explicit TraceCursor(const RecordedTrace::Track *track)
        : track_(track), pos_(track->stream.data())
    {
    }

    const RecordedTrace::Track *track_ = nullptr;
    const std::uint8_t *pos_ = nullptr; ///< varint stream position
    std::uint64_t idx_ = 0;             ///< accesses decoded so far
    std::uint64_t addr_ = 0;            ///< delta-decoding state
};

/**
 * TraceSource view of one recorded track, for consumers of the
 * virtual per-access interface (trace export, generic tests). The
 * backing RecordedTrace must outlive it.
 */
class RecordedTraceSource final : public TraceSource
{
  public:
    explicit RecordedTraceSource(TraceCursor cursor) : cur_(cursor) {}

    bool next(MemAccess &out) override;
    void reset() override;

  private:
    TraceCursor cur_;
    std::array<MemAccess, 64> buf_;
    std::uint32_t pos_ = 0;
    std::uint32_t n_ = 0;
};

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_RECORDED_TRACE_HH
