#include "workload/workload_registry.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/args.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "workload/server_workloads.hh"

namespace nvmcache {

namespace {

/** Canonical text of a double (JSON number rendering). */
std::string
numText(double v)
{
    return JsonValue::makeNumber(v).dump();
}

std::string
join(const std::vector<std::string> &items, const char *sep = ", ")
{
    std::string out;
    for (const std::string &s : items) {
        if (!out.empty())
            out += sep;
        out += s;
    }
    return out;
}

std::vector<std::string>
paramKeys(const WorkloadKindDef &def)
{
    std::vector<std::string> keys;
    keys.reserve(def.params.size());
    for (const WorkloadParamDef &p : def.params)
        keys.push_back(p.key);
    return keys;
}

/**
 * Split the parameter section of a spec string. Tokens are
 * comma-separated "key=value" pairs, but a comma-token without '='
 * continues the previous value, so list-typed values keep their
 * commas: "readRatios=0.95,0.5,warm=0.1" -> {readRatios: "0.95,0.5",
 * warm: "0.1"}.
 */
WorkloadParams
parseParamSection(const std::string &kind, const std::string &section)
{
    WorkloadParams params;
    std::string lastKey;
    std::stringstream ss(section);
    std::string token;
    while (std::getline(ss, token, ',')) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (lastKey.empty())
                throw std::runtime_error(
                    "workload '" + kind + "': expected key=value, got '" +
                    token + "'");
            params[lastKey] += "," + token;
            continue;
        }
        lastKey = token.substr(0, eq);
        if (lastKey.empty())
            throw std::runtime_error("workload '" + kind +
                                     "': empty parameter name in '" +
                                     token + "'");
        if (params.count(lastKey))
            throw std::runtime_error("workload '" + kind +
                                     "': duplicate parameter '" +
                                     lastKey + "'");
        params[lastKey] = token.substr(eq + 1);
    }
    return params;
}

/** Validate and canonically re-render one parameter value. */
std::string
canonValue(const std::string &kindName, const WorkloadParamDef &p,
           const std::string &value)
{
    const std::string what =
        "workload '" + kindName + "' parameter '" + p.key + "'";
    switch (p.type) {
      case WorkloadParamDef::Type::Num:
        return numText(ArgParser::parseNum(what, value));
      case WorkloadParamDef::Type::NumList: {
        const std::vector<double> list =
            ArgParser::parseNumList(what, value);
        if (list.empty())
            throw std::runtime_error(what + ": empty list");
        std::vector<std::string> rendered;
        rendered.reserve(list.size());
        for (double v : list)
            rendered.push_back(numText(v));
        return join(rendered, ",");
      }
      case WorkloadParamDef::Type::Count:
        return renderCount(parseCount(what, value));
      case WorkloadParamDef::Type::U32:
        return std::to_string(ArgParser::parseU32(what, value));
    }
    throw std::runtime_error(what + ": bad parameter type");
}

} // namespace

std::uint64_t
parseCount(const std::string &what, const std::string &token)
{
    if (token.empty())
        throw std::runtime_error(what + ": empty count");
    std::uint64_t scale = 1;
    std::string digits = token;
    switch (token.back()) {
      case 'K':
        scale = 1ull << 10;
        break;
      case 'M':
        scale = 1ull << 20;
        break;
      case 'G':
        scale = 1ull << 30;
        break;
      default:
        break;
    }
    if (scale != 1)
        digits = token.substr(0, token.size() - 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        throw std::runtime_error(
            what + ": expected a count (digits with optional K/M/G "
                   "suffix), got '" + token + "'");
    return std::stoull(digits) * scale;
}

std::string
renderCount(std::uint64_t value)
{
    if (value != 0 && value % (1ull << 30) == 0)
        return std::to_string(value >> 30) + "G";
    if (value != 0 && value % (1ull << 20) == 0)
        return std::to_string(value >> 20) + "M";
    if (value != 0 && value % (1ull << 10) == 0)
        return std::to_string(value >> 10) + "K";
    return std::to_string(value);
}

void
WorkloadRegistry::add(WorkloadKindDef def)
{
    if (def.name.empty() || !def.build)
        fatal("WorkloadRegistry: kind needs a name and a builder");
    if (kinds_.count(def.name))
        fatal("WorkloadRegistry: duplicate kind '", def.name, "'");
    kinds_.emplace(def.name, std::move(def));
}

bool
WorkloadRegistry::contains(const std::string &kind) const
{
    return kinds_.count(kind) != 0;
}

std::vector<std::string>
WorkloadRegistry::kinds() const
{
    std::vector<std::string> names;
    names.reserve(kinds_.size());
    for (const auto &[name, def] : kinds_)
        names.push_back(name);
    return names;
}

const WorkloadKindDef &
WorkloadRegistry::kind(const std::string &name) const
{
    auto it = kinds_.find(name);
    if (it == kinds_.end())
        throw std::runtime_error("unknown workload '" + name +
                                 "' (valid kinds: " + join(kinds()) +
                                 ")");
    return it->second;
}

WorkloadParams
WorkloadRegistry::canonicalParams(const WorkloadKindDef &def,
                                  const WorkloadParams &params) const
{
    if (!params.empty() && def.params.empty())
        throw std::runtime_error("workload '" + def.name +
                                 "' accepts no parameters");

    WorkloadParams canon;
    for (const auto &[key, value] : params) {
        const auto def_it = std::find_if(
            def.params.begin(), def.params.end(),
            [&, k = key](const WorkloadParamDef &p) {
                return p.key == k;
            });
        if (def_it == def.params.end())
            throw std::runtime_error(
                "workload '" + def.name + "': unknown parameter '" +
                key + "' (valid: " + join(paramKeys(def)) + ")");
        canon[key] = canonValue(def.name, *def_it, value);
    }
    return canon;
}

std::string
WorkloadRegistry::canonicalName(const std::string &kindName,
                                const WorkloadParams &params) const
{
    const WorkloadKindDef &def = kind(kindName);
    const WorkloadParams canon = canonicalParams(def, params);

    // Drop overrides equal to their default so every spelling of the
    // default configuration collapses onto the bare kind name
    // (std::map iteration makes the remainder sorted by key).
    std::vector<std::string> parts;
    for (const auto &[key, value] : canon) {
        const auto def_it = std::find_if(
            def.params.begin(), def.params.end(),
            [&, k = key](const WorkloadParamDef &p) {
                return p.key == k;
            });
        if (value != canonValue(def.name, *def_it, def_it->defaultValue))
            parts.push_back(key + "=" + value);
    }
    if (parts.empty())
        return kindName;
    return kindName + ":" + join(parts, ",");
}

const BenchmarkSpec &
WorkloadRegistry::resolve(const std::string &specString) const
{
    const std::size_t colon = specString.find(':');
    if (colon == std::string::npos)
        return resolve(specString, {});
    return resolve(specString.substr(0, colon),
                   parseParamSection(specString.substr(0, colon),
                                     specString.substr(colon + 1)));
}

const BenchmarkSpec &
WorkloadRegistry::resolve(const std::string &kindName,
                          const WorkloadParams &params) const
{
    const WorkloadKindDef &def = kind(kindName);
    const std::string name = canonicalName(kindName, params);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = interned_.find(name);
    if (it != interned_.end())
        return *it->second;

    // Full parameter map: defaults overlaid with the (canonicalized)
    // overrides, so builders see every key.
    WorkloadParams merged;
    for (const WorkloadParamDef &p : def.params)
        merged[p.key] = p.defaultValue;
    for (const auto &[key, value] : canonicalParams(def, params))
        merged[key] = value;

    auto spec = std::make_unique<BenchmarkSpec>(def.build(merged));
    spec->name = name;
    const BenchmarkSpec &ref = *spec;
    interned_.emplace(name, std::move(spec));
    return ref;
}

std::string
WorkloadRegistry::helpText() const
{
    std::string out;
    for (const auto &[name, def] : kinds_) {
        out += name + " (" + def.suite + ") — " + def.description + "\n";
        for (const WorkloadParamDef &p : def.params)
            out += "    " + p.key + "=" + p.defaultValue + "  " +
                   p.help + "\n";
    }
    return out;
}

const WorkloadRegistry &
WorkloadRegistry::global()
{
    static const WorkloadRegistry *registry = [] {
        auto *reg = new WorkloadRegistry;
        auto addFixed = [&](const BenchmarkSpec &spec) {
            WorkloadKindDef def;
            def.name = spec.name;
            def.suite = spec.suite;
            def.description = spec.description;
            def.build = [&spec](const WorkloadParams &) {
                return spec;
            };
            reg->add(std::move(def));
        };
        for (const BenchmarkSpec &b : benchmarkSuite())
            addFixed(b);
        for (const BenchmarkSpec &b : extraBenchmarks())
            addFixed(b);
        registerServerWorkloads(*reg);
        return reg;
    }();
    return *registry;
}

} // namespace nvmcache
