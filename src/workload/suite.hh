/**
 * @file
 * The benchmark suite of paper Table V: 20 workloads drawn from SPEC
 * cpu2006, PARSEC 3.0, NPB 3.3.1 and SPEC cpu2017 (the AI inference
 * trio), modeled as tuned synthetic trace generators.
 *
 * Substitution note (see DESIGN.md): we cannot ship SPEC/PARSEC/NPB
 * binaries, so each workload is a generator whose mixture parameters
 * were tuned to reproduce the published behaviour that the paper's
 * analysis actually consumes: the LLC pressure (Table V mpki) and the
 * architecture-agnostic features (Table VI entropies / footprints).
 * Access totals are scaled down ~1000x to keep every experiment
 * minutes-fast; footprints are kept at true scale relative to the LLC
 * capacities under study, which is what the results depend on.
 */

#ifndef NVMCACHE_WORKLOAD_SUITE_HH
#define NVMCACHE_WORKLOAD_SUITE_HH

#include <cmath>
#include <string>
#include <vector>

#include "workload/generators.hh"

namespace nvmcache {

/** Published Table VI feature row (NaN where the paper has no data). */
struct PaperFeatures
{
    double globalReadEntropy = NAN;  ///< H_rg, bits
    double localReadEntropy = NAN;   ///< H_rl, bits
    double globalWriteEntropy = NAN; ///< H_wg, bits
    double localWriteEntropy = NAN;  ///< H_wl, bits
    double uniqueReads = NAN;        ///< addresses
    double uniqueWrites = NAN;
    double footprint90Read = NAN;    ///< addresses
    double footprint90Write = NAN;
    double totalReads = NAN;
    double totalWrites = NAN;

    bool available() const { return !std::isnan(globalReadEntropy); }
};

/** One Table V workload. */
struct BenchmarkSpec
{
    std::string name;
    std::string suite;       ///< "cpu2006", "PARSEC3.0", "NPB3.3.1",
                             ///< "cpu2017"
    std::string description; ///< Table V description
    bool multiThreaded = false;
    std::uint32_t defaultThreads = 1;
    bool ai = false;         ///< cpu2017 AI trio
    bool prismCompatible = true; ///< in Table VI (16 of 20)

    double paperMpki = 0.0;  ///< Table V LLC mpki
    PaperFeatures paper;     ///< Table VI row

    GeneratorConfig gen;     ///< tuned generator parameters
};

/** All 20 workloads in Table V order. */
const std::vector<BenchmarkSpec> &benchmarkSuite();

/**
 * Workloads resolvable by name but outside the paper's Table V suite
 * (e.g. "lbm"), kept out of the figure studies.
 */
const std::vector<BenchmarkSpec> &extraBenchmarks();

/**
 * Look up one workload by name.
 *
 * Deprecated back-compat wrapper: lookups now flow through
 * WorkloadRegistry::global().resolve(), which additionally accepts
 * parameterized spec strings ("kv:skew=0.99"). Prefer the registry in
 * new code; this wrapper exits via fatal() on unknown names where the
 * registry throws a listing std::runtime_error.
 */
const BenchmarkSpec &benchmark(const std::string &name);

/** The three cpu2017 AI workloads (deepsjeng, leela, exchange2). */
std::vector<const BenchmarkSpec *> aiBenchmarks();

/** The 16 PRISM-compatible workloads of Table VI, in table order. */
std::vector<const BenchmarkSpec *> characterizedBenchmarks();

/**
 * Build this workload's per-thread traces. @p threads == 0 uses the
 * spec's default (1 for single-threaded, 4 for multi-threaded).
 * Single-threaded workloads reject threads > 1.
 */
std::vector<std::unique_ptr<SyntheticTrace>>
buildTraces(const BenchmarkSpec &spec, std::uint32_t threads = 0);

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_SUITE_HH
